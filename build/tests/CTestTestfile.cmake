# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sampwh_util_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_core_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_stats_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_workload_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_warehouse_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_property_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_integration_test[1]_include.cmake")
include("/root/repo/build/tests/sampwh_tool_test[1]_include.cmake")
