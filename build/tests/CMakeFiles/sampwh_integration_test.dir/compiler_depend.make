# Empty compiler generated dependencies file for sampwh_integration_test.
# This may be replaced when dependencies are built.
