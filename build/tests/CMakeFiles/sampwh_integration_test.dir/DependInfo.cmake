
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/sampwh_integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/lifecycle_test.cc" "tests/CMakeFiles/sampwh_integration_test.dir/integration/lifecycle_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_integration_test.dir/integration/lifecycle_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sampwh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sampwh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/sampwh_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
