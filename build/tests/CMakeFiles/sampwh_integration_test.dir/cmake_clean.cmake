file(REMOVE_RECURSE
  "CMakeFiles/sampwh_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/sampwh_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/sampwh_integration_test.dir/integration/lifecycle_test.cc.o"
  "CMakeFiles/sampwh_integration_test.dir/integration/lifecycle_test.cc.o.d"
  "sampwh_integration_test"
  "sampwh_integration_test.pdb"
  "sampwh_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
