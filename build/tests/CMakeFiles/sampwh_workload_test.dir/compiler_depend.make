# Empty compiler generated dependencies file for sampwh_workload_test.
# This may be replaced when dependencies are built.
