file(REMOVE_RECURSE
  "CMakeFiles/sampwh_workload_test.dir/workload/arrival_test.cc.o"
  "CMakeFiles/sampwh_workload_test.dir/workload/arrival_test.cc.o.d"
  "CMakeFiles/sampwh_workload_test.dir/workload/generators_test.cc.o"
  "CMakeFiles/sampwh_workload_test.dir/workload/generators_test.cc.o.d"
  "sampwh_workload_test"
  "sampwh_workload_test.pdb"
  "sampwh_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
