file(REMOVE_RECURSE
  "CMakeFiles/sampwh_util_test.dir/util/alias_table_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/alias_table_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/distributions_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/distributions_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/fenwick_tree_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/fenwick_tree_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/random_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/random_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/serialization_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/serialization_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/special_functions_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/special_functions_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/status_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/thread_pool_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/thread_pool_test.cc.o.d"
  "CMakeFiles/sampwh_util_test.dir/util/timer_test.cc.o"
  "CMakeFiles/sampwh_util_test.dir/util/timer_test.cc.o.d"
  "sampwh_util_test"
  "sampwh_util_test.pdb"
  "sampwh_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
