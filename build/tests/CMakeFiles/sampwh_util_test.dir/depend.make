# Empty dependencies file for sampwh_util_test.
# This may be replaced when dependencies are built.
