file(REMOVE_RECURSE
  "CMakeFiles/sampwh_stats_test.dir/stats/chi_square_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/chi_square_test.cc.o.d"
  "CMakeFiles/sampwh_stats_test.dir/stats/estimators_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/estimators_test.cc.o.d"
  "CMakeFiles/sampwh_stats_test.dir/stats/ks_test_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/ks_test_test.cc.o.d"
  "CMakeFiles/sampwh_stats_test.dir/stats/profile_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/profile_test.cc.o.d"
  "CMakeFiles/sampwh_stats_test.dir/stats/stratified_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/stratified_test.cc.o.d"
  "CMakeFiles/sampwh_stats_test.dir/stats/uniformity_test.cc.o"
  "CMakeFiles/sampwh_stats_test.dir/stats/uniformity_test.cc.o.d"
  "sampwh_stats_test"
  "sampwh_stats_test.pdb"
  "sampwh_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
