# Empty dependencies file for sampwh_stats_test.
# This may be replaced when dependencies are built.
