# Empty compiler generated dependencies file for sampwh_core_test.
# This may be replaced when dependencies are built.
