
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/any_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/any_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/any_sampler_test.cc.o.d"
  "/root/repo/tests/core/bernoulli_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/bernoulli_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/bernoulli_sampler_test.cc.o.d"
  "/root/repo/tests/core/compact_histogram_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/compact_histogram_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/compact_histogram_test.cc.o.d"
  "/root/repo/tests/core/concise_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/concise_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/concise_sampler_test.cc.o.d"
  "/root/repo/tests/core/counting_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/counting_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/counting_sampler_test.cc.o.d"
  "/root/repo/tests/core/hybrid_bernoulli_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/hybrid_bernoulli_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/hybrid_bernoulli_test.cc.o.d"
  "/root/repo/tests/core/hybrid_reservoir_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/hybrid_reservoir_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/hybrid_reservoir_test.cc.o.d"
  "/root/repo/tests/core/merge_edge_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/merge_edge_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/merge_edge_test.cc.o.d"
  "/root/repo/tests/core/merge_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/merge_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/merge_test.cc.o.d"
  "/root/repo/tests/core/multi_purge_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/multi_purge_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/multi_purge_sampler_test.cc.o.d"
  "/root/repo/tests/core/purge_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/purge_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/purge_test.cc.o.d"
  "/root/repo/tests/core/qbound_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/qbound_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/qbound_test.cc.o.d"
  "/root/repo/tests/core/reservoir_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/reservoir_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/reservoir_sampler_test.cc.o.d"
  "/root/repo/tests/core/sample_fuzz_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/sample_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/sample_fuzz_test.cc.o.d"
  "/root/repo/tests/core/sample_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/sample_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/sample_test.cc.o.d"
  "/root/repo/tests/core/systematic_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/systematic_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/systematic_sampler_test.cc.o.d"
  "/root/repo/tests/core/vitter_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/vitter_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/vitter_test.cc.o.d"
  "/root/repo/tests/core/weighted_sampler_test.cc" "tests/CMakeFiles/sampwh_core_test.dir/core/weighted_sampler_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_core_test.dir/core/weighted_sampler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sampwh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sampwh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/sampwh_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
