# Empty compiler generated dependencies file for sampwh_property_test.
# This may be replaced when dependencies are built.
