file(REMOVE_RECURSE
  "CMakeFiles/sampwh_property_test.dir/property/distribution_scale_test.cc.o"
  "CMakeFiles/sampwh_property_test.dir/property/distribution_scale_test.cc.o.d"
  "CMakeFiles/sampwh_property_test.dir/property/footprint_property_test.cc.o"
  "CMakeFiles/sampwh_property_test.dir/property/footprint_property_test.cc.o.d"
  "CMakeFiles/sampwh_property_test.dir/property/merge_property_test.cc.o"
  "CMakeFiles/sampwh_property_test.dir/property/merge_property_test.cc.o.d"
  "CMakeFiles/sampwh_property_test.dir/property/uniformity_property_test.cc.o"
  "CMakeFiles/sampwh_property_test.dir/property/uniformity_property_test.cc.o.d"
  "sampwh_property_test"
  "sampwh_property_test.pdb"
  "sampwh_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
