file(REMOVE_RECURSE
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/catalog_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/catalog_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/dictionary_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/dictionary_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/ids_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/ids_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/manifest_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/manifest_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/partitioner_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/partitioner_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/retention_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/retention_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/sample_store_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/sample_store_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/splitter_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/splitter_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/stream_ingestor_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/stream_ingestor_test.cc.o.d"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/warehouse_test.cc.o"
  "CMakeFiles/sampwh_warehouse_test.dir/warehouse/warehouse_test.cc.o.d"
  "sampwh_warehouse_test"
  "sampwh_warehouse_test.pdb"
  "sampwh_warehouse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_warehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
