
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/warehouse/catalog_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/catalog_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/catalog_test.cc.o.d"
  "/root/repo/tests/warehouse/dictionary_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/dictionary_test.cc.o.d"
  "/root/repo/tests/warehouse/ids_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/ids_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/ids_test.cc.o.d"
  "/root/repo/tests/warehouse/manifest_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/manifest_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/manifest_test.cc.o.d"
  "/root/repo/tests/warehouse/partitioner_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/partitioner_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/partitioner_test.cc.o.d"
  "/root/repo/tests/warehouse/retention_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/retention_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/retention_test.cc.o.d"
  "/root/repo/tests/warehouse/sample_store_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/sample_store_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/sample_store_test.cc.o.d"
  "/root/repo/tests/warehouse/splitter_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/splitter_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/splitter_test.cc.o.d"
  "/root/repo/tests/warehouse/stream_ingestor_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/stream_ingestor_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/stream_ingestor_test.cc.o.d"
  "/root/repo/tests/warehouse/warehouse_test.cc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/warehouse_test.cc.o" "gcc" "tests/CMakeFiles/sampwh_warehouse_test.dir/warehouse/warehouse_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sampwh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sampwh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/sampwh_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
