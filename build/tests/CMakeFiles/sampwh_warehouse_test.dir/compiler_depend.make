# Empty compiler generated dependencies file for sampwh_warehouse_test.
# This may be replaced when dependencies are built.
