file(REMOVE_RECURSE
  "CMakeFiles/sampwh_tool_test.dir/tools/tool_test.cc.o"
  "CMakeFiles/sampwh_tool_test.dir/tools/tool_test.cc.o.d"
  "sampwh_tool_test"
  "sampwh_tool_test.pdb"
  "sampwh_tool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_tool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
