# Empty compiler generated dependencies file for sampwh_tool_test.
# This may be replaced when dependencies are built.
