file(REMOVE_RECURSE
  "libsampwh_util.a"
)
