
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/alias_table.cc" "src/util/CMakeFiles/sampwh_util.dir/alias_table.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/alias_table.cc.o.d"
  "/root/repo/src/util/distributions.cc" "src/util/CMakeFiles/sampwh_util.dir/distributions.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/distributions.cc.o.d"
  "/root/repo/src/util/fenwick_tree.cc" "src/util/CMakeFiles/sampwh_util.dir/fenwick_tree.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/fenwick_tree.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/sampwh_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/random.cc.o.d"
  "/root/repo/src/util/serialization.cc" "src/util/CMakeFiles/sampwh_util.dir/serialization.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/serialization.cc.o.d"
  "/root/repo/src/util/special_functions.cc" "src/util/CMakeFiles/sampwh_util.dir/special_functions.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/special_functions.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/sampwh_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/sampwh_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/thread_pool.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/util/CMakeFiles/sampwh_util.dir/timer.cc.o" "gcc" "src/util/CMakeFiles/sampwh_util.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
