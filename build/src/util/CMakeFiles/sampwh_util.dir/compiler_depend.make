# Empty compiler generated dependencies file for sampwh_util.
# This may be replaced when dependencies are built.
