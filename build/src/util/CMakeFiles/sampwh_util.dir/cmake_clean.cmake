file(REMOVE_RECURSE
  "CMakeFiles/sampwh_util.dir/alias_table.cc.o"
  "CMakeFiles/sampwh_util.dir/alias_table.cc.o.d"
  "CMakeFiles/sampwh_util.dir/distributions.cc.o"
  "CMakeFiles/sampwh_util.dir/distributions.cc.o.d"
  "CMakeFiles/sampwh_util.dir/fenwick_tree.cc.o"
  "CMakeFiles/sampwh_util.dir/fenwick_tree.cc.o.d"
  "CMakeFiles/sampwh_util.dir/random.cc.o"
  "CMakeFiles/sampwh_util.dir/random.cc.o.d"
  "CMakeFiles/sampwh_util.dir/serialization.cc.o"
  "CMakeFiles/sampwh_util.dir/serialization.cc.o.d"
  "CMakeFiles/sampwh_util.dir/special_functions.cc.o"
  "CMakeFiles/sampwh_util.dir/special_functions.cc.o.d"
  "CMakeFiles/sampwh_util.dir/status.cc.o"
  "CMakeFiles/sampwh_util.dir/status.cc.o.d"
  "CMakeFiles/sampwh_util.dir/thread_pool.cc.o"
  "CMakeFiles/sampwh_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/sampwh_util.dir/timer.cc.o"
  "CMakeFiles/sampwh_util.dir/timer.cc.o.d"
  "libsampwh_util.a"
  "libsampwh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
