file(REMOVE_RECURSE
  "libsampwh_core.a"
)
