# Empty compiler generated dependencies file for sampwh_core.
# This may be replaced when dependencies are built.
