
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/any_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/any_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/any_sampler.cc.o.d"
  "/root/repo/src/core/bernoulli_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/bernoulli_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/bernoulli_sampler.cc.o.d"
  "/root/repo/src/core/compact_histogram.cc" "src/core/CMakeFiles/sampwh_core.dir/compact_histogram.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/compact_histogram.cc.o.d"
  "/root/repo/src/core/concise_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/concise_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/concise_sampler.cc.o.d"
  "/root/repo/src/core/counting_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/counting_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/counting_sampler.cc.o.d"
  "/root/repo/src/core/hybrid_bernoulli.cc" "src/core/CMakeFiles/sampwh_core.dir/hybrid_bernoulli.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/hybrid_bernoulli.cc.o.d"
  "/root/repo/src/core/hybrid_reservoir.cc" "src/core/CMakeFiles/sampwh_core.dir/hybrid_reservoir.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/hybrid_reservoir.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/core/CMakeFiles/sampwh_core.dir/merge.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/merge.cc.o.d"
  "/root/repo/src/core/multi_purge_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/multi_purge_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/multi_purge_sampler.cc.o.d"
  "/root/repo/src/core/purge.cc" "src/core/CMakeFiles/sampwh_core.dir/purge.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/purge.cc.o.d"
  "/root/repo/src/core/qbound.cc" "src/core/CMakeFiles/sampwh_core.dir/qbound.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/qbound.cc.o.d"
  "/root/repo/src/core/reservoir_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/reservoir_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/reservoir_sampler.cc.o.d"
  "/root/repo/src/core/sample.cc" "src/core/CMakeFiles/sampwh_core.dir/sample.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/sample.cc.o.d"
  "/root/repo/src/core/systematic_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/systematic_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/systematic_sampler.cc.o.d"
  "/root/repo/src/core/vitter.cc" "src/core/CMakeFiles/sampwh_core.dir/vitter.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/vitter.cc.o.d"
  "/root/repo/src/core/weighted_sampler.cc" "src/core/CMakeFiles/sampwh_core.dir/weighted_sampler.cc.o" "gcc" "src/core/CMakeFiles/sampwh_core.dir/weighted_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
