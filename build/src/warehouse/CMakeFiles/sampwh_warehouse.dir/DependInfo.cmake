
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/warehouse/catalog.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/catalog.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/catalog.cc.o.d"
  "/root/repo/src/warehouse/dictionary.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/dictionary.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/dictionary.cc.o.d"
  "/root/repo/src/warehouse/ids.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/ids.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/ids.cc.o.d"
  "/root/repo/src/warehouse/partitioner.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/partitioner.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/partitioner.cc.o.d"
  "/root/repo/src/warehouse/retention.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/retention.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/retention.cc.o.d"
  "/root/repo/src/warehouse/sample_store.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/sample_store.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/sample_store.cc.o.d"
  "/root/repo/src/warehouse/splitter.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/splitter.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/splitter.cc.o.d"
  "/root/repo/src/warehouse/stream_ingestor.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/stream_ingestor.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/stream_ingestor.cc.o.d"
  "/root/repo/src/warehouse/warehouse.cc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/warehouse.cc.o" "gcc" "src/warehouse/CMakeFiles/sampwh_warehouse.dir/warehouse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
