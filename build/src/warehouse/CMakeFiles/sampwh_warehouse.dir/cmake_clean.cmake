file(REMOVE_RECURSE
  "CMakeFiles/sampwh_warehouse.dir/catalog.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/catalog.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/dictionary.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/dictionary.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/ids.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/ids.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/partitioner.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/partitioner.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/retention.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/retention.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/sample_store.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/sample_store.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/splitter.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/splitter.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/stream_ingestor.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/stream_ingestor.cc.o.d"
  "CMakeFiles/sampwh_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/sampwh_warehouse.dir/warehouse.cc.o.d"
  "libsampwh_warehouse.a"
  "libsampwh_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
