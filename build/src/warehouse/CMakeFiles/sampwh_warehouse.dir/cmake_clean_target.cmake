file(REMOVE_RECURSE
  "libsampwh_warehouse.a"
)
