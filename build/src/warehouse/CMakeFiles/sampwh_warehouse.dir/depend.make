# Empty dependencies file for sampwh_warehouse.
# This may be replaced when dependencies are built.
