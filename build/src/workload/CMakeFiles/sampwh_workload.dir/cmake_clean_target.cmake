file(REMOVE_RECURSE
  "libsampwh_workload.a"
)
