file(REMOVE_RECURSE
  "CMakeFiles/sampwh_workload.dir/arrival.cc.o"
  "CMakeFiles/sampwh_workload.dir/arrival.cc.o.d"
  "CMakeFiles/sampwh_workload.dir/generators.cc.o"
  "CMakeFiles/sampwh_workload.dir/generators.cc.o.d"
  "libsampwh_workload.a"
  "libsampwh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
