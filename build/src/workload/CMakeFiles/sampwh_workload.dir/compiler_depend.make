# Empty compiler generated dependencies file for sampwh_workload.
# This may be replaced when dependencies are built.
