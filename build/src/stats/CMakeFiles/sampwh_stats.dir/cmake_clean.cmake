file(REMOVE_RECURSE
  "CMakeFiles/sampwh_stats.dir/chi_square.cc.o"
  "CMakeFiles/sampwh_stats.dir/chi_square.cc.o.d"
  "CMakeFiles/sampwh_stats.dir/estimators.cc.o"
  "CMakeFiles/sampwh_stats.dir/estimators.cc.o.d"
  "CMakeFiles/sampwh_stats.dir/ks_test.cc.o"
  "CMakeFiles/sampwh_stats.dir/ks_test.cc.o.d"
  "CMakeFiles/sampwh_stats.dir/profile.cc.o"
  "CMakeFiles/sampwh_stats.dir/profile.cc.o.d"
  "CMakeFiles/sampwh_stats.dir/stratified.cc.o"
  "CMakeFiles/sampwh_stats.dir/stratified.cc.o.d"
  "CMakeFiles/sampwh_stats.dir/uniformity.cc.o"
  "CMakeFiles/sampwh_stats.dir/uniformity.cc.o.d"
  "libsampwh_stats.a"
  "libsampwh_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
