
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_square.cc" "src/stats/CMakeFiles/sampwh_stats.dir/chi_square.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/chi_square.cc.o.d"
  "/root/repo/src/stats/estimators.cc" "src/stats/CMakeFiles/sampwh_stats.dir/estimators.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/estimators.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/stats/CMakeFiles/sampwh_stats.dir/ks_test.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/ks_test.cc.o.d"
  "/root/repo/src/stats/profile.cc" "src/stats/CMakeFiles/sampwh_stats.dir/profile.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/profile.cc.o.d"
  "/root/repo/src/stats/stratified.cc" "src/stats/CMakeFiles/sampwh_stats.dir/stratified.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/stratified.cc.o.d"
  "/root/repo/src/stats/uniformity.cc" "src/stats/CMakeFiles/sampwh_stats.dir/uniformity.cc.o" "gcc" "src/stats/CMakeFiles/sampwh_stats.dir/uniformity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
