# Empty compiler generated dependencies file for sampwh_stats.
# This may be replaced when dependencies are built.
