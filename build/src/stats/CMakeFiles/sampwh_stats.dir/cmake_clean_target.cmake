file(REMOVE_RECURSE
  "libsampwh_stats.a"
)
