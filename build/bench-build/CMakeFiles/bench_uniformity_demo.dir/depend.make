# Empty dependencies file for bench_uniformity_demo.
# This may be replaced when dependencies are built.
