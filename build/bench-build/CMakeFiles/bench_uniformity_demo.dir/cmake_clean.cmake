file(REMOVE_RECURSE
  "../bench/bench_uniformity_demo"
  "../bench/bench_uniformity_demo.pdb"
  "CMakeFiles/bench_uniformity_demo.dir/uniformity_demo.cc.o"
  "CMakeFiles/bench_uniformity_demo.dir/uniformity_demo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniformity_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
