file(REMOVE_RECURSE
  "../bench/bench_ablation_multipurge"
  "../bench/bench_ablation_multipurge.pdb"
  "CMakeFiles/bench_ablation_multipurge.dir/ablation_multipurge.cc.o"
  "CMakeFiles/bench_ablation_multipurge.dir/ablation_multipurge.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multipurge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
