# Empty compiler generated dependencies file for bench_ablation_multipurge.
# This may be replaced when dependencies are built.
