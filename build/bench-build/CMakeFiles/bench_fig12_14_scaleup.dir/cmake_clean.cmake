file(REMOVE_RECURSE
  "../bench/bench_fig12_14_scaleup"
  "../bench/bench_fig12_14_scaleup.pdb"
  "CMakeFiles/bench_fig12_14_scaleup.dir/fig12_14_scaleup.cc.o"
  "CMakeFiles/bench_fig12_14_scaleup.dir/fig12_14_scaleup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_14_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
