file(REMOVE_RECURSE
  "../bench/bench_ablation_binomial"
  "../bench/bench_ablation_binomial.pdb"
  "CMakeFiles/bench_ablation_binomial.dir/ablation_binomial.cc.o"
  "CMakeFiles/bench_ablation_binomial.dir/ablation_binomial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
