# Empty dependencies file for bench_ablation_binomial.
# This may be replaced when dependencies are built.
