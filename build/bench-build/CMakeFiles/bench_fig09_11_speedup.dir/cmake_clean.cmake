file(REMOVE_RECURSE
  "../bench/bench_fig09_11_speedup"
  "../bench/bench_fig09_11_speedup.pdb"
  "CMakeFiles/bench_fig09_11_speedup.dir/fig09_11_speedup.cc.o"
  "CMakeFiles/bench_fig09_11_speedup.dir/fig09_11_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_11_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
