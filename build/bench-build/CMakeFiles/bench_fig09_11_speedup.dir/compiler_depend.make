# Empty compiler generated dependencies file for bench_fig09_11_speedup.
# This may be replaced when dependencies are built.
