file(REMOVE_RECURSE
  "CMakeFiles/sampwh_bench_common.dir/common.cc.o"
  "CMakeFiles/sampwh_bench_common.dir/common.cc.o.d"
  "libsampwh_bench_common.a"
  "libsampwh_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
