file(REMOVE_RECURSE
  "libsampwh_bench_common.a"
)
