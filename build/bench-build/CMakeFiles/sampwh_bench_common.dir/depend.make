# Empty dependencies file for sampwh_bench_common.
# This may be replaced when dependencies are built.
