file(REMOVE_RECURSE
  "../bench/bench_ablation_hypergeo"
  "../bench/bench_ablation_hypergeo.pdb"
  "CMakeFiles/bench_ablation_hypergeo.dir/ablation_hypergeo.cc.o"
  "CMakeFiles/bench_ablation_hypergeo.dir/ablation_hypergeo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hypergeo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
