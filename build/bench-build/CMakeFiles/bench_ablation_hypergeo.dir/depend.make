# Empty dependencies file for bench_ablation_hypergeo.
# This may be replaced when dependencies are built.
