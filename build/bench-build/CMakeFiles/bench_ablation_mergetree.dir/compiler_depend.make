# Empty compiler generated dependencies file for bench_ablation_mergetree.
# This may be replaced when dependencies are built.
