file(REMOVE_RECURSE
  "../bench/bench_ablation_mergetree"
  "../bench/bench_ablation_mergetree.pdb"
  "CMakeFiles/bench_ablation_mergetree.dir/ablation_mergetree.cc.o"
  "CMakeFiles/bench_ablation_mergetree.dir/ablation_mergetree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mergetree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
