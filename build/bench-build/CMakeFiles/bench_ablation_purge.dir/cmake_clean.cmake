file(REMOVE_RECURSE
  "../bench/bench_ablation_purge"
  "../bench/bench_ablation_purge.pdb"
  "CMakeFiles/bench_ablation_purge.dir/ablation_purge.cc.o"
  "CMakeFiles/bench_ablation_purge.dir/ablation_purge.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
