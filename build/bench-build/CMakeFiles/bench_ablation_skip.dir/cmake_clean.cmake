file(REMOVE_RECURSE
  "../bench/bench_ablation_skip"
  "../bench/bench_ablation_skip.pdb"
  "CMakeFiles/bench_ablation_skip.dir/ablation_skip.cc.o"
  "CMakeFiles/bench_ablation_skip.dir/ablation_skip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
