# Empty dependencies file for bench_fig05_qapprox.
# This may be replaced when dependencies are built.
