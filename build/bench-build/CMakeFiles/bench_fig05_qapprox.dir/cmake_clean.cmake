file(REMOVE_RECURSE
  "../bench/bench_fig05_qapprox"
  "../bench/bench_fig05_qapprox.pdb"
  "CMakeFiles/bench_fig05_qapprox.dir/fig05_qapprox.cc.o"
  "CMakeFiles/bench_fig05_qapprox.dir/fig05_qapprox.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_qapprox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
