file(REMOVE_RECURSE
  "CMakeFiles/sampwh_tool.dir/sampwh_tool.cc.o"
  "CMakeFiles/sampwh_tool.dir/sampwh_tool.cc.o.d"
  "sampwh_tool"
  "sampwh_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampwh_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
