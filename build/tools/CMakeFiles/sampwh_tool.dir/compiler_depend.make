# Empty compiler generated dependencies file for sampwh_tool.
# This may be replaced when dependencies are built.
