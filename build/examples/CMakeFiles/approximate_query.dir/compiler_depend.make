# Empty compiler generated dependencies file for approximate_query.
# This may be replaced when dependencies are built.
