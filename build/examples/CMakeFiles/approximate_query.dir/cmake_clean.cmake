file(REMOVE_RECURSE
  "CMakeFiles/approximate_query.dir/approximate_query.cpp.o"
  "CMakeFiles/approximate_query.dir/approximate_query.cpp.o.d"
  "approximate_query"
  "approximate_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
