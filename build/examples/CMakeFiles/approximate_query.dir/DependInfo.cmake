
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/approximate_query.cpp" "examples/CMakeFiles/approximate_query.dir/approximate_query.cpp.o" "gcc" "examples/CMakeFiles/approximate_query.dir/approximate_query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/sampwh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sampwh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/sampwh_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sampwh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sampwh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
