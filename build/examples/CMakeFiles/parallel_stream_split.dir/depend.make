# Empty dependencies file for parallel_stream_split.
# This may be replaced when dependencies are built.
