file(REMOVE_RECURSE
  "CMakeFiles/parallel_stream_split.dir/parallel_stream_split.cpp.o"
  "CMakeFiles/parallel_stream_split.dir/parallel_stream_split.cpp.o.d"
  "parallel_stream_split"
  "parallel_stream_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_stream_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
