# Empty dependencies file for daily_rollup.
# This may be replaced when dependencies are built.
