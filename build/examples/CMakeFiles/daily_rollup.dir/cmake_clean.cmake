file(REMOVE_RECURSE
  "CMakeFiles/daily_rollup.dir/daily_rollup.cpp.o"
  "CMakeFiles/daily_rollup.dir/daily_rollup.cpp.o.d"
  "daily_rollup"
  "daily_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
