file(REMOVE_RECURSE
  "CMakeFiles/metadata_discovery.dir/metadata_discovery.cpp.o"
  "CMakeFiles/metadata_discovery.dir/metadata_discovery.cpp.o.d"
  "metadata_discovery"
  "metadata_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
