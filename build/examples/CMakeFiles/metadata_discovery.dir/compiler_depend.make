# Empty compiler generated dependencies file for metadata_discovery.
# This may be replaced when dependencies are built.
