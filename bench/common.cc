#include "bench/common.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>

#include "src/core/sample.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace sampwh::bench {

bool FullScale() {
  const char* env = std::getenv("REPRO_FULL");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

int Repetitions() { return FullScale() ? 3 : 1; }

uint64_t SimulatedWorkers(uint64_t fallback) {
  const char* env = std::getenv("REPRO_WORKERS");
  if (env == nullptr || env[0] == '\0') return fallback;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  return parsed >= 1 ? parsed : fallback;
}

unsigned HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  if (reported >= 1) return reported;
  const long online = sysconf(_SC_NPROCESSORS_ONLN);
  if (online >= 1) return static_cast<unsigned>(online);
  return 1;
}

namespace {

// Makespan of a longest-processing-time greedy assignment of
// per-partition sampling times onto `workers` identical machines.
double ParallelMakespan(std::vector<double> times, uint64_t workers) {
  if (times.empty()) return 0.0;
  std::sort(times.begin(), times.end(), std::greater<double>());
  std::vector<double> load(std::min<uint64_t>(workers, times.size()), 0.0);
  for (const double t : times) {
    auto lightest = std::min_element(load.begin(), load.end());
    *lightest += t;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

ScenarioResult RunScenario(const ScenarioSpec& spec) {
  SAMPWH_CHECK(spec.partitions >= 1);
  const uint64_t per_partition = spec.total_elements / spec.partitions;
  SAMPWH_CHECK(per_partition >= 1);

  SamplerConfig config;
  config.footprint_bound_bytes = spec.footprint_bound_bytes;
  config.exceedance_probability = spec.exceedance_probability;
  config.kind = spec.algorithm;
  config.expected_partition_size = per_partition;
  if (spec.algorithm == SamplerKind::kStratifiedBernoulli) {
    double rate = spec.sb_rate;
    if (rate <= 0.0) {
      const double n_f = static_cast<double>(
          MaxSampleSizeForFootprint(spec.footprint_bound_bytes));
      rate = n_f / static_cast<double>(per_partition);
      if (rate > 1.0) rate = 1.0;
    }
    config.bernoulli_rate = rate;
  }

  Pcg64 seeder(spec.seed);
  ScenarioResult result;
  result.partitions = spec.partitions;
  result.total_elements = per_partition * spec.partitions;

  // --- Sampling stage (per-partition, independent) -----------------------
  // Each partition is timed on its own; partitions are independent, so an
  // idealized W-worker cluster finishes in the makespan of their greedy
  // assignment — the substitution for the paper's testbed parallelism.
  std::vector<PartitionSample> samples;
  samples.reserve(spec.partitions);
  std::vector<double> partition_times;
  partition_times.reserve(spec.partitions);
  for (uint64_t p = 0; p < spec.partitions; ++p) {
    DataGenerator gen =
        DataGenerator::Make(spec.data, per_partition, p, spec.seed);
    AnySampler sampler(config, seeder.Fork(p));
    WallTimer partition_timer;
    while (gen.HasNext()) sampler.Add(gen.Next());
    samples.push_back(sampler.Finalize());
    const double t = partition_timer.ElapsedSeconds();
    partition_times.push_back(t);
    result.sample_seconds_serial += t;
  }
  result.sample_seconds =
      ParallelMakespan(partition_times, spec.simulated_workers);

  // --- Merge stage (serial pairwise, as in the paper's experiments) ------
  WallTimer merge_timer;
  std::vector<const PartitionSample*> pointers;
  pointers.reserve(samples.size());
  for (const PartitionSample& s : samples) pointers.push_back(&s);
  Pcg64 merge_rng = seeder.Fork(0xBEEF);
  if (spec.algorithm == SamplerKind::kStratifiedBernoulli) {
    const auto merged = UnionBernoulli(pointers, merge_rng);
    SAMPWH_CHECK(merged.ok());
    result.merged_sample_size = merged.value().size();
  } else {
    MergeOptions merge_options;
    merge_options.footprint_bound_bytes = spec.footprint_bound_bytes;
    merge_options.exceedance_probability = spec.exceedance_probability;
    const auto merged = MergeAll(pointers, merge_options, merge_rng,
                                 MergeStrategy::kLeftFold);
    SAMPWH_CHECK(merged.ok());
    result.merged_sample_size = merged.value().size();
  }
  result.merge_seconds = merge_timer.ElapsedSeconds();
  return result;
}

ScenarioResult RunScenarioAveraged(const ScenarioSpec& spec, int reps) {
  ScenarioResult total;
  for (int r = 0; r < reps; ++r) {
    ScenarioSpec run = spec;
    run.seed = spec.seed + static_cast<uint64_t>(r) * 7919;
    const ScenarioResult one = RunScenario(run);
    total.sample_seconds += one.sample_seconds;
    total.sample_seconds_serial += one.sample_seconds_serial;
    total.merge_seconds += one.merge_seconds;
    total.merged_sample_size += one.merged_sample_size;
    total.total_elements = one.total_elements;
    total.partitions = one.partitions;
  }
  total.sample_seconds /= reps;
  total.sample_seconds_serial /= reps;
  total.merge_seconds /= reps;
  total.merged_sample_size /= static_cast<uint64_t>(reps);
  return total;
}

std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

void PrintRow(const std::vector<std::string>& columns,
              const std::vector<int>& widths) {
  SAMPWH_CHECK(columns.size() == widths.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%-*s", widths[i], columns[i].c_str());
  }
  std::printf("\n");
}

}  // namespace sampwh::bench
