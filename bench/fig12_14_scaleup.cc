// Figures 12-14: scaleup. The number of data elements per partition is
// held fixed (paper: 32K) while the scale factor — the partition count,
// and hence the population size — grows from 32 to 512. One series per
// data kind (unique / uniform / Zipfian); the paper plots log(seconds) and
// finds roughly linear scaleup for all three algorithms, with SB clearly
// fastest and HB comparable to HR.
//
// Default scale: 8K elements/partition. REPRO_FULL=1 uses the paper's 32K
// and 3 repetitions.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace sampwh;
using namespace sampwh::bench;

int main() {
  const bool full = FullScale();
  const uint64_t per_partition = full ? 32768 : 8192;
  const int reps = Repetitions();
  const std::vector<uint64_t> scale_factors = {32, 64, 128, 256, 512};

  std::printf(
      "Figures 12-14: scaleup at %llu elements/partition "
      "(total seconds and log10(seconds), mean of %d)%s\n\n",
      static_cast<unsigned long long>(per_partition), reps,
      full ? "" : "   [reduced scale; REPRO_FULL=1 for the paper's 32K]");

  const std::vector<int> widths = {8, 14, 14, 14, 14, 14, 14};
  for (const SamplerKind algorithm :
       {SamplerKind::kStratifiedBernoulli, SamplerKind::kHybridBernoulli,
        SamplerKind::kHybridReservoir}) {
    std::printf("--- Figure %s: Algorithm %s ---\n",
                algorithm == SamplerKind::kStratifiedBernoulli ? "12"
                : algorithm == SamplerKind::kHybridBernoulli   ? "13"
                                                               : "14",
                std::string(SamplerKindToString(algorithm)).c_str());
    PrintRow({"scale", "unique_s", "log10", "uniform_s", "log10",
              "zipfian_s", "log10"},
             widths);
    for (const uint64_t scale : scale_factors) {
      std::vector<std::string> row = {std::to_string(scale)};
      for (const DataKind data :
           {DataKind::kUnique, DataKind::kUniform, DataKind::kZipf}) {
        ScenarioSpec spec;
        spec.algorithm = algorithm;
        spec.data = data;
        spec.partitions = scale;
        spec.total_elements = scale * per_partition;
        const ScenarioResult r = RunScenarioAveraged(spec, reps);
        const double total_s = r.sample_seconds + r.merge_seconds;
        char log_buf[32];
        std::snprintf(log_buf, sizeof(log_buf), "%.2f",
                      std::log10(std::max(total_s, 1e-6)));
        row.push_back(FormatSeconds(total_s));
        row.push_back(log_buf);
      }
      PrintRow(row, widths);
    }
    std::printf("\n");
  }
  std::printf(
      "Paper shape check: roughly linear scaleup for all three algorithms "
      "(doubling the scale factor ~doubles the time); SB fastest. Zipfian "
      "partitions stay exhaustive (4000 distinct values fit the compact "
      "histogram, paper footnote 5), so their merges replay values through "
      "a resumed sampler — the dominant hybrid cost at high scale even "
      "though each merge only streams the smaller side.\n");
  return 0;
}
