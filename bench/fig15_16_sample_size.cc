// Figures 15-16: terminal sample size after sampling fixed 32K-element
// partitions and serially merging all partition samples, as a function of
// the partition count. n_F = 8192 (the paper's integer-data setting).
//
//  * Fig. 15 (Algorithm HB): sizes fall below n_F and destabilize as more
//    merges stack up (each pairwise merge re-derives a common rate q and
//    Bernoulli-thins, so fluctuations compound); the curve is insensitive
//    to the exceedance target p (1e-3 vs 1e-5). Paper's worst case: 512
//    partitions, 9.25% below HR.
//  * Fig. 16 (Algorithm HR): size pinned at exactly n_F once the data
//    outgrows the footprint, at every partition count.
//
// The Zipfian population is omitted exactly as in the paper (footnote 5):
// with 4000 distinct values the samples are always exhaustive.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace sampwh;
using namespace sampwh::bench;

namespace {

uint64_t MeanMergedSize(SamplerKind algorithm, DataKind data, double p,
                        uint64_t partitions, uint64_t per_partition,
                        int reps) {
  ScenarioSpec spec;
  spec.algorithm = algorithm;
  spec.data = data;
  spec.partitions = partitions;
  spec.total_elements = partitions * per_partition;
  spec.exceedance_probability = p;
  spec.footprint_bound_bytes = 64 * 1024;  // n_F = 8192
  return RunScenarioAveraged(spec, reps).merged_sample_size;
}

}  // namespace

int main() {
  const bool full = FullScale();
  const uint64_t per_partition = 32768;  // the paper's fixed partition size
  const uint64_t max_partitions = full ? 1024 : 128;
  const int reps = Repetitions();

  std::printf(
      "Figures 15-16: merged sample size vs partition count "
      "(32K elements/partition, n_F = 8192, mean of %d)%s\n\n",
      reps, full ? "" : "   [partitions capped at 128; REPRO_FULL=1 for 1024]");

  const std::vector<int> widths = {12, 16, 16, 18, 18};
  std::printf("--- Figure 15: Algorithm HB ---\n");
  PrintRow({"partitions", "uniform_p1e-3", "unique_p1e-3", "uniform_p1e-5",
            "unique_p1e-5"},
           widths);
  for (uint64_t parts = 1; parts <= max_partitions; parts *= 2) {
    PrintRow(
        {std::to_string(parts),
         std::to_string(MeanMergedSize(SamplerKind::kHybridBernoulli,
                                       DataKind::kUniform, 1e-3, parts,
                                       per_partition, reps)),
         std::to_string(MeanMergedSize(SamplerKind::kHybridBernoulli,
                                       DataKind::kUnique, 1e-3, parts,
                                       per_partition, reps)),
         std::to_string(MeanMergedSize(SamplerKind::kHybridBernoulli,
                                       DataKind::kUniform, 1e-5, parts,
                                       per_partition, reps)),
         std::to_string(MeanMergedSize(SamplerKind::kHybridBernoulli,
                                       DataKind::kUnique, 1e-5, parts,
                                       per_partition, reps))},
        widths);
  }

  std::printf("\n--- Figure 16: Algorithm HR ---\n");
  PrintRow({"partitions", "uniform", "unique"}, {12, 16, 16});
  for (uint64_t parts = 1; parts <= max_partitions; parts *= 2) {
    PrintRow(
        {std::to_string(parts),
         std::to_string(MeanMergedSize(SamplerKind::kHybridReservoir,
                                       DataKind::kUniform, 1e-3, parts,
                                       per_partition, reps)),
         std::to_string(MeanMergedSize(SamplerKind::kHybridReservoir,
                                       DataKind::kUnique, 1e-3, parts,
                                       per_partition, reps))},
        {12, 16, 16});
  }

  std::printf(
      "\nPaper shape check: HR pinned at n_F = 8192 for every partition "
      "count; HB below n_F and drifting further down as partition count "
      "grows (paper worst case: 9.25%% below at 512 partitions), largely "
      "insensitive to p.\n");
  return 0;
}
