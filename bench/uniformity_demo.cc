// §3.3 demonstration: concise sampling is NOT uniform, the hybrid schemes
// are. Reproduces the paper's {a,a,a,b,b,b} counterexample empirically —
// under any uniform scheme the mixed histogram H3 = {(a,2), b} must appear
// nine times as often as H1 = {(a,3)} among size-3 samples, but concise
// sampling never produces it — and backs it with a chi-square subset-
// uniformity sweep over a small distinct-valued population for HB, HR and
// the merges.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/concise_sampler.h"
#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/reservoir_sampler.h"
#include "src/core/merge.h"
#include "src/stats/uniformity.h"

using namespace sampwh;

namespace {

std::string OutcomeName(const HistogramOutcome& outcome) {
  std::string name = "{";
  for (size_t i = 0; i < outcome.size(); ++i) {
    if (i > 0) name += ", ";
    name += (outcome[i].first == 100 ? "a" : "b");
    if (outcome[i].second > 1) {
      name += "x" + std::to_string(outcome[i].second);
    }
  }
  return name + "}";
}

void RunCounterexample() {
  std::printf("Part 1 — the paper's Section 3.3 counterexample\n");
  std::printf("Population: values {a,a,a,b,b,b}; footprint bound: one "
              "(value,count) pair.\n");
  std::printf("Uniform law for size-3 outcomes: P{(a,2),b} : P{(a,3)} "
              "must be 9 : 1.\n\n");

  constexpr Value a = 100;
  constexpr Value b = 200;
  const uint64_t trials = 50000;

  // Concise sampling, bound = one pair (12 bytes).
  Pcg64 rng(1);
  const auto concise_tally = TallyHistogramOutcomes(
      trials,
      [&](Pcg64& trial_rng) {
        ConciseSampler::Options options;
        options.footprint_bound_bytes = kPairFootprintBytes;
        options.threshold_growth = 1.5;
        ConciseSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : {a, a, a, b, b, b}) sampler.Add(v);
        return sampler.histogram().ToBag();
      },
      rng);

  std::printf("%-22s%s\n", "concise outcome", "frequency");
  uint64_t concise_mixed = 0;
  for (const auto& [outcome, count] : concise_tally) {
    std::printf("%-22s%llu\n", OutcomeName(outcome).c_str(),
                static_cast<unsigned long long>(count));
    bool has_a = false;
    bool has_b = false;
    for (const auto& [v, n] : outcome) {
      has_a |= (v == a);
      has_b |= (v == b);
    }
    if (has_a && has_b) concise_mixed += count;
  }
  std::printf("mixed-value outcomes under concise sampling: %llu "
              "(uniformity demands they dominate 9:1) -> NOT uniform\n\n",
              static_cast<unsigned long long>(concise_mixed));

  // The uniform comparator: a plain size-3 reservoir sample. (Algorithm HR
  // under a 24-byte bound would simply keep the exact 2-pair histogram of
  // this tiny population — the compactness feature — so the bounded
  // comparison needs the size-capped classical sampler.)
  Pcg64 rng2(2);
  const auto hr_tally = TallyHistogramOutcomes(
      trials,
      [&](Pcg64& trial_rng) {
        ReservoirSampler sampler(3, trial_rng.Fork(0));
        for (const Value v : {a, a, a, b, b, b}) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng2);
  std::printf("%-22s%s\n", "reservoir(3) outcome", "frequency");
  uint64_t hr_mixed = 0;
  uint64_t hr_pure = 0;
  for (const auto& [outcome, count] : hr_tally) {
    std::printf("%-22s%llu\n", OutcomeName(outcome).c_str(),
                static_cast<unsigned long long>(count));
    bool has_a = false;
    bool has_b = false;
    for (const auto& [v, n] : outcome) {
      has_a |= (v == a);
      has_b |= (v == b);
    }
    if (has_a && has_b) {
      hr_mixed += count;
    } else {
      hr_pure += count;
    }
  }
  std::printf("reservoir(3) mixed : pure = %.2f : 1   (uniform law: 9 : 1)\n\n",
              static_cast<double>(hr_mixed) /
                  static_cast<double>(hr_pure > 0 ? hr_pure : 1));
}

void RunChiSquareSweep() {
  std::printf("Part 2 — chi-square subset-uniformity sweep "
              "(8 distinct values, n_F = 4, 50000 trials each)\n");
  std::printf("Algorithm HB deliberately runs with a forced-overflow p = "
              "0.3 so its phase-2->3 fallback class (size = n_F) is "
              "populated: that class is biased BY DESIGN of the paper's "
              "Fig. 2 (see hybrid_bernoulli.h); all phase-2 classes are "
              "exactly uniform.\n\n");
  std::printf("%-22s%-8s%-10s%-12s%s\n", "scheme", "size", "trials",
              "p-value", "verdict");

  const std::vector<Value> population = {0, 1, 2, 3, 4, 5, 6, 7};
  const uint64_t trials = 50000;

  struct Scheme {
    std::string name;
    SampleTrialFn fn;
  };
  std::vector<Scheme> schemes;
  schemes.push_back(
      {"Algorithm HR", [&](Pcg64& trial_rng) {
         HybridReservoirSampler::Options options;
         options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
         HybridReservoirSampler sampler(options, trial_rng.Fork(0));
         for (const Value v : population) sampler.Add(v);
         return sampler.Finalize().histogram().ToBag();
       }});
  schemes.push_back(
      {"Algorithm HB", [&](Pcg64& trial_rng) {
         HybridBernoulliSampler::Options options;
         options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
         options.expected_population_size = population.size();
         options.exceedance_probability = 0.3;
         HybridBernoulliSampler sampler(options, trial_rng.Fork(0));
         for (const Value v : population) sampler.Add(v);
         return sampler.Finalize().histogram().ToBag();
       }});
  schemes.push_back(
      {"HRMerge(HR, HR)", [&](Pcg64& trial_rng) {
         HybridReservoirSampler::Options options;
         options.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
         HybridReservoirSampler sa(options, trial_rng.Fork(1));
         for (Value v = 0; v < 4; ++v) sa.Add(v);
         HybridReservoirSampler sb(options, trial_rng.Fork(2));
         for (Value v = 4; v < 8; ++v) sb.Add(v);
         const PartitionSample s1 = sa.Finalize();
         const PartitionSample s2 = sb.Finalize();
         MergeOptions merge_options;
         merge_options.footprint_bound_bytes =
             3 * kSingletonFootprintBytes;
         Pcg64 merge_rng = trial_rng.Fork(3);
         auto merged = HRMerge(s1, s2, merge_options, merge_rng);
         return merged.ok() ? merged.value().histogram().ToBag()
                            : std::vector<Value>{};
       }});

  for (const Scheme& scheme : schemes) {
    Pcg64 rng(42);
    const UniformityReport report = RunSubsetUniformityExperiment(
        population, trials, scheme.fn, rng);
    for (const auto& [k, result] : report.by_size) {
      if (!result.tested) continue;
      const bool is_hb_fallback = scheme.name == "Algorithm HB" && k == 4;
      const char* verdict =
          is_hb_fallback
              ? (result.chi_square.p_value < 1e-4
                     ? "biased fallback path (expected; bounded by p)"
                     : "uniform")
              : (result.chi_square.p_value > 1e-4 ? "uniform"
                                                  : "NOT uniform");
      std::printf("%-22s%-8llu%-10llu%-12.4f%s\n", scheme.name.c_str(),
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(result.trials),
                  result.chi_square.p_value, verdict);
    }
  }
}

}  // namespace

int main() {
  RunCounterexample();
  RunChiSquareSweep();
  return 0;
}
