// Ablation: multiway merge tree shape. The paper's experiments use serial
// pairwise merges (a left fold); a balanced tree has the same statistical
// output law but different cost structure, and — per §4.2 — lets symmetric
// inputs reuse one alias table per level. Measures HR merges of 64 equal
// partitions under: left fold, balanced tree, and balanced tree + alias
// cache.

#include <vector>

#include <benchmark/benchmark.h>

#include "src/core/hybrid_reservoir.h"
#include "src/core/merge.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

constexpr uint64_t kPartitions = 64;
constexpr uint64_t kPerPartition = 32768;
constexpr uint64_t kF = 8 * 1024;  // n_F = 1024

const std::vector<PartitionSample>& Samples() {
  static const std::vector<PartitionSample> samples = [] {
    std::vector<PartitionSample> out;
    Pcg64 seeder(1);
    for (uint64_t p = 0; p < kPartitions; ++p) {
      HybridReservoirSampler::Options options;
      options.footprint_bound_bytes = kF;
      HybridReservoirSampler sampler(options, seeder.Fork(p));
      DataGenerator gen = DataGenerator::Make(DataKind::kUnique,
                                              kPerPartition, p, 1);
      while (gen.HasNext()) sampler.Add(gen.Next());
      out.push_back(sampler.Finalize());
    }
    return out;
  }();
  return samples;
}

std::vector<const PartitionSample*> Pointers() {
  std::vector<const PartitionSample*> pointers;
  for (const PartitionSample& s : Samples()) pointers.push_back(&s);
  return pointers;
}

void RunMerge(benchmark::State& state, MergeStrategy strategy,
              bool use_cache) {
  const auto pointers = Pointers();
  AliasCache cache;
  Pcg64 rng(2);
  for (auto _ : state) {
    MergeOptions options;
    options.footprint_bound_bytes = kF;
    if (use_cache) options.alias_cache = &cache;
    auto merged = MergeAll(pointers, options, rng, strategy);
    benchmark::DoNotOptimize(merged.ok());
  }
  state.SetItemsProcessed(state.iterations() * kPartitions);
  if (use_cache) {
    state.counters["alias_tables_built"] =
        static_cast<double>(cache.size());
  }
}

void BM_MergeLeftFold(benchmark::State& state) {
  RunMerge(state, MergeStrategy::kLeftFold, false);
}
BENCHMARK(BM_MergeLeftFold)->Unit(benchmark::kMillisecond);

void BM_MergeBalancedTree(benchmark::State& state) {
  RunMerge(state, MergeStrategy::kBalancedTree, false);
}
BENCHMARK(BM_MergeBalancedTree)->Unit(benchmark::kMillisecond);

void BM_MergeBalancedTreeAliasCache(benchmark::State& state) {
  RunMerge(state, MergeStrategy::kBalancedTree, true);
}
BENCHMARK(BM_MergeBalancedTreeAliasCache)->Unit(benchmark::kMillisecond);

void BM_MergeLeftFoldAliasCache(benchmark::State& state) {
  // Left fold's split distributions all differ (accumulated parent grows),
  // so the cache cannot amortize: this quantifies the mismatch the paper's
  // §4.2 caveat ("symmetric pairwise fashion") warns about.
  RunMerge(state, MergeStrategy::kLeftFold, true);
}
BENCHMARK(BM_MergeLeftFoldAliasCache)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
