// Ablation (§4.2): drawing the HRMerge split L ~ Hypergeometric(n1, n2, k)
// by mode-centered inversion versus through a precomputed alias table. The
// paper recommends the alias method when many merges reuse one
// distribution (symmetric pairwise merge trees); this bench quantifies the
// per-draw gap and the table-construction cost that must be amortized.

#include <benchmark/benchmark.h>

#include "src/core/merge.h"
#include "src/util/alias_table.h"
#include "src/util/distributions.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

void BM_HypergeoInversion(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t k = static_cast<uint64_t>(state.range(1));
  const HypergeometricDistribution dist(n, n, k);
  Pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypergeoInversion)
    ->Args({32768, 64})
    ->Args({32768, 1024})
    ->Args({32768, 8192})
    ->Args({1 << 22, 8192});

void BM_HypergeoAliasSampleOnly(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t k = static_cast<uint64_t>(state.range(1));
  const HypergeometricDistribution dist(n, n, k);
  const AliasTable table(dist.PmfVector());
  Pcg64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.support_min() + table.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypergeoAliasSampleOnly)
    ->Args({32768, 64})
    ->Args({32768, 1024})
    ->Args({32768, 8192})
    ->Args({1 << 22, 8192});

void BM_HypergeoAliasConstruction(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  const uint64_t k = static_cast<uint64_t>(state.range(1));
  const HypergeometricDistribution dist(n, n, k);
  for (auto _ : state) {
    AliasTable table(dist.PmfVector());
    benchmark::DoNotOptimize(table.size());
  }
}
BENCHMARK(BM_HypergeoAliasConstruction)
    ->Args({32768, 64})
    ->Args({32768, 8192});

// The end-to-end §4.2 scenario: repeated symmetric merges drawing from the
// same distribution, with and without the cache.
void BM_RepeatedSplitsUncached(benchmark::State& state) {
  Pcg64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleHypergeometricSplit(32768, 32768, 8192, rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepeatedSplitsUncached);

void BM_RepeatedSplitsCached(benchmark::State& state) {
  Pcg64 rng(4);
  AliasCache cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleHypergeometricSplit(32768, 32768, 8192, rng, &cache));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RepeatedSplitsCached);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
