// Ablation: purgeReservoir victim selection. The paper's Fig. 4 line 9
// picks the eviction victim by scanning partial prefix sums — O(m) per
// eviction over m (value, count) entries. This library replaces the scan
// with a Fenwick tree (O(log m) select + update). The gap matters when
// samples hold many distinct values (large m) and purges evict heavily
// (subsample size far below the input size).

#include <benchmark/benchmark.h>

#include "src/core/compact_histogram.h"
#include "src/core/purge.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

CompactHistogram MakeInput(uint64_t distinct, uint64_t copies_per_value) {
  CompactHistogram h;
  for (uint64_t v = 0; v < distinct; ++v) {
    h.Insert(static_cast<Value>(v), copies_per_value);
  }
  return h;
}

void BM_PurgeFenwick(benchmark::State& state) {
  const uint64_t distinct = static_cast<uint64_t>(state.range(0));
  const uint64_t target = static_cast<uint64_t>(state.range(1));
  const CompactHistogram input = MakeInput(distinct, 4);
  Pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PurgeReservoirStreamed({&input}, target, rng).total_count());
  }
  state.SetItemsProcessed(state.iterations() * distinct * 4);
}
BENCHMARK(BM_PurgeFenwick)
    ->Args({1024, 512})
    ->Args({8192, 4096})
    ->Args({8192, 512})
    ->Args({65536, 8192});

void BM_PurgeLinearScan(benchmark::State& state) {
  const uint64_t distinct = static_cast<uint64_t>(state.range(0));
  const uint64_t target = static_cast<uint64_t>(state.range(1));
  const CompactHistogram input = MakeInput(distinct, 4);
  Pcg64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PurgeReservoirStreamedLinearScan({&input}, target, rng)
            .total_count());
  }
  state.SetItemsProcessed(state.iterations() * distinct * 4);
}
BENCHMARK(BM_PurgeLinearScan)
    ->Args({1024, 512})
    ->Args({8192, 4096})
    ->Args({8192, 512})
    ->Args({65536, 8192});

void BM_PurgeBernoulliThinning(benchmark::State& state) {
  // For context: the cost of the competing purge primitive (Fig. 3) on the
  // same input.
  const uint64_t distinct = static_cast<uint64_t>(state.range(0));
  const CompactHistogram input = MakeInput(distinct, 4);
  Pcg64 rng(3);
  for (auto _ : state) {
    CompactHistogram copy = input;
    PurgeBernoulli(&copy, 0.25, rng);
    benchmark::DoNotOptimize(copy.total_count());
  }
  state.SetItemsProcessed(state.iterations() * distinct * 4);
}
BENCHMARK(BM_PurgeBernoulliThinning)->Arg(1024)->Arg(8192)->Arg(65536);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
