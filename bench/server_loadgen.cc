// Warehouse-server load generator: measures the RPC query path end to end
// against in-process shard deployments.
//
// For every node count in {1, 2, 4} the harness starts that many
// WarehouseServer instances on ephemeral loopback ports, places a fixed
// partition population through a ShardCoordinator, and first asserts the
// distributed-exactness contract: the coordinator's merged sample — full
// union and random subsets — is byte-for-byte identical to a single
// embedded warehouse holding every partition under the same seed and
// merge options. Then, for every client count in {1, 4, 16}, that many
// closed-loop client threads (each with its own coordinator connection
// set) issue random-subset queries for a fixed wall-time window, yielding
// sustained qps and p50/p95/p99 latency per cell of the matrix.
//
// A replication cell then runs the same population through a three-node
// deployment at replication factor R in {1, 2, 3}: write amplification is
// read off the servers' own replica-write counters, and for R > 1 one
// node is stopped mid-run — every subsequent strict query must stay
// byte-identical to the reference (served via replica failover, never
// flagged partial), with the failover latency reported alongside the
// healthy baseline.
//
// Results go to stdout as a table and to BENCH_server.json in the working
// directory. --smoke (or SERVER_BENCH_SMOKE=1) runs a reduced matrix in a
// couple of seconds for CI; --replication R pins the replication cell to
// a single factor. The gate is correctness, not speed: exactness
// must hold in every deployment (including through the replication cell's
// node kill) and the servers must finish with zero protocol errors;
// either failure exits 1.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/types.h"
#include "src/server/coordinator.h"
#include "src/server/server.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/serialization.h"
#include "src/util/timer.h"
#include "src/warehouse/warehouse.h"

namespace sampwh::bench {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;
constexpr char kTenant[] = "bench";
constexpr char kDataset[] = "load";

struct BenchParams {
  bool smoke = false;
  std::vector<size_t> node_counts;
  std::vector<unsigned> client_counts;
  uint64_t partitions = 0;
  uint64_t per_partition_values = 0;
  uint64_t merge_bound_bytes = 0;
  int exactness_subsets = 0;
  double window_seconds = 0.0;
  std::vector<uint32_t> replication_factors;
  int replication_queries = 0;
};

BenchParams MakeParams(bool smoke) {
  BenchParams p;
  p.smoke = smoke;
  if (smoke) {
    p.node_counts = {1, 2};
    p.client_counts = {1, 4};
    p.partitions = 12;
    p.per_partition_values = 8;
    p.exactness_subsets = 8;
    p.window_seconds = 0.15;
    p.replication_factors = {1, 2};
    p.replication_queries = 6;
  } else {
    p.node_counts = {1, 2, 4};
    p.client_counts = {1, 4, 16};
    p.partitions = 32;
    p.per_partition_values = 16;
    p.exactness_subsets = 25;
    p.window_seconds = 1.0;
    p.replication_factors = {1, 2, 3};
    p.replication_queries = 16;
  }
  p.merge_bound_bytes = 16 * kSingletonFootprintBytes;
  return p;
}

struct CellResult {
  size_t nodes = 0;
  unsigned clients = 0;
  uint64_t requests = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Failure-path breakdown. On a healthy loopback deployment every
  /// counter stays 0; anything in `unexpected_errors` fails the gate.
  uint64_t retries_attempted = 0;
  uint64_t breaker_open_total = 0;
  uint64_t unavailable_errors = 0;
  uint64_t deadline_errors = 0;
  uint64_t unexpected_errors = 0;
};

/// The admission-control cell: a capped server refusing over-cap
/// connections with structured kResourceExhausted. Shedding is EXPECTED
/// here and must be visible in the counters; anything else fails the gate.
struct OverloadResult {
  uint32_t cap = 0;
  uint64_t over_cap_attempts = 0;
  uint64_t resource_exhausted = 0;
  uint64_t connections_shed = 0;
  uint64_t unexpected_errors = 0;
};

/// The replication cell: a three-node deployment at replication factor R.
/// `write_amplification` is physical partition stores per logical roll-in,
/// read off the servers' own replica-write counters. For R > 1 one node
/// is stopped mid-run; `exact` records whether every post-kill strict
/// query stayed byte-identical to the single-node reference (served via
/// replica failover — `failover_reads` counts the re-driven spans).
struct ReplicationResult {
  uint32_t replication_factor = 0;
  size_t nodes = 0;
  uint64_t logical_writes = 0;
  uint64_t replica_writes = 0;
  double write_amplification = 1.0;
  double healthy_p50_ms = 0.0;
  double failover_p50_ms = 0.0;
  double failover_p95_ms = 0.0;
  uint64_t failover_queries = 0;
  uint64_t failover_reads = 0;
  bool exact = true;
  uint64_t unexpected_errors = 0;
};

/// One shard deployment: N in-process servers plus the addresses client
/// threads dial their own coordinators against.
struct Deployment {
  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::vector<ShardNodeAddress> addresses;
  std::vector<PartitionId> ids;
};

ServerOptions NodeOptions(const BenchParams& params) {
  ServerOptions options;
  options.port = 0;  // ephemeral; read back via port()
  options.warehouse.seed = kSeed;
  options.warehouse.merge_memo_bytes = 4u << 20;
  options.warehouse.merge.footprint_bound_bytes = params.merge_bound_bytes;
  return options;
}

CoordinatorOptions CoordOptions(const BenchParams& params) {
  CoordinatorOptions options;
  options.seed = kSeed;
  options.merge.footprint_bound_bytes = params.merge_bound_bytes;
  return options;
}

PartitionSample MakeSample(const BenchParams& params, uint64_t partition) {
  CompactHistogram h;
  for (uint64_t i = 0; i < params.per_partition_values; ++i) {
    h.Insert(static_cast<Value>(partition * 1000 + i), 1);
  }
  return PartitionSample::MakeReservoir(
      h, params.per_partition_values,
      params.per_partition_values * kSingletonFootprintBytes);
}

std::string SampleBytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

/// A random nonempty subset of `ids` (each id kept with probability 1/2).
std::vector<PartitionId> RandomSubset(const std::vector<PartitionId>& ids,
                                      Pcg64& rng) {
  std::vector<PartitionId> subset;
  for (const PartitionId id : ids) {
    if (rng.Bernoulli(0.5)) subset.push_back(id);
  }
  if (subset.empty()) subset.push_back(ids[rng.UniformInt(ids.size())]);
  return subset;
}

Deployment StartDeployment(const BenchParams& params, size_t num_nodes) {
  Deployment d;
  for (size_t i = 0; i < num_nodes; ++i) {
    auto server = WarehouseServer::Start(NodeOptions(params));
    SAMPWH_CHECK(server.ok());
    d.addresses.push_back(
        {server.value()->host(), server.value()->port()});
    d.servers.push_back(std::move(server).value());
  }
  auto coordinator =
      ShardCoordinator::Connect(d.addresses, CoordOptions(params));
  SAMPWH_CHECK(coordinator.ok());
  ShardCoordinator& coord = *coordinator.value();
  SAMPWH_CHECK(coord.CreateTenant(kTenant, {}).ok());
  SAMPWH_CHECK(coord.CreateDataset(kTenant, kDataset).ok());
  for (uint64_t p = 0; p < params.partitions; ++p) {
    auto id = coord.RollIn(kTenant, kDataset, MakeSample(params, p), p, p);
    SAMPWH_CHECK(id.ok());
    d.ids.push_back(id.value());
  }
  return d;
}

/// The contract the throughput numbers are only meaningful under: the
/// distributed merge is bit-identical to a single node holding every
/// partition — for the full union and for random subsets.
bool CheckExactness(const BenchParams& params, const Deployment& d) {
  auto coordinator =
      ShardCoordinator::Connect(d.addresses, CoordOptions(params));
  SAMPWH_CHECK(coordinator.ok());
  ShardCoordinator& coord = *coordinator.value();

  ServerOptions reference_options = NodeOptions(params);
  Warehouse reference(reference_options.warehouse);
  const DatasetId key = std::string(kTenant) + "." + kDataset;
  SAMPWH_CHECK(reference.CreateDataset(key).ok());
  for (uint64_t p = 0; p < params.partitions; ++p) {
    SAMPWH_CHECK(
        reference.RollInAt(key, d.ids[p], MakeSample(params, p), p, p).ok());
  }

  auto distributed = coord.Query(kTenant, kDataset);
  auto local = reference.MergedSampleAll(key);
  SAMPWH_CHECK(distributed.ok() && local.ok());
  if (SampleBytes(distributed.value()) != SampleBytes(local.value())) {
    std::fprintf(stderr, "exactness: full union diverged at %zu nodes\n",
                 d.servers.size());
    return false;
  }

  Pcg64 rng(kSeed, d.servers.size());
  for (int s = 0; s < params.exactness_subsets; ++s) {
    const std::vector<PartitionId> subset = RandomSubset(d.ids, rng);
    auto remote = coord.Query(kTenant, kDataset, subset);
    auto expected = reference.MergedSample(key, subset);
    SAMPWH_CHECK(remote.ok() && expected.ok());
    if (SampleBytes(remote.value()) != SampleBytes(expected.value())) {
      std::fprintf(stderr, "exactness: subset %d diverged at %zu nodes\n", s,
                   d.servers.size());
      return false;
    }
  }
  return true;
}

CellResult RunCell(const BenchParams& params, const Deployment& d,
                   unsigned clients) {
  // Each client thread dials its own connection set before the timed
  // window opens; the closed loop issues random-subset queries until the
  // stop flag flips.
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<CoordinatorStats> coord_stats(clients);
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto coordinator =
          ShardCoordinator::Connect(d.addresses, CoordOptions(params));
      SAMPWH_CHECK(coordinator.ok());
      ShardCoordinator& coord = *coordinator.value();
      Pcg64 rng(kSeed ^ 0x10adull, c + 1);
      std::vector<double>& lat = latencies[c];
      lat.reserve(4096);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<PartitionId> subset = RandomSubset(d.ids, rng);
        WallTimer timer;
        auto merged = coord.Query(kTenant, kDataset, subset);
        if (merged.ok()) {
          lat.push_back(timer.ElapsedSeconds());
        } else if (merged.status().IsUnavailable()) {
          unavailable.fetch_add(1, std::memory_order_relaxed);
        } else if (merged.status().IsDeadlineExceeded()) {
          deadline.fetch_add(1, std::memory_order_relaxed);
        } else {
          unexpected.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "unexpected query error: %s\n",
                       merged.status().ToString().c_str());
        }
      }
      coord_stats[c] = coord.stats();
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  WallTimer window;
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(params.window_seconds));
  stop.store(true);
  for (std::thread& t : threads) t.join();
  const double elapsed = window.ElapsedSeconds();

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  const auto percentile_ms = [&all](double q) {
    if (all.empty()) return 0.0;
    const size_t index = std::min(
        all.size() - 1, static_cast<size_t>(q * static_cast<double>(
                                                    all.size())));
    return all[index] * 1e3;
  };

  CellResult cell;
  cell.nodes = d.servers.size();
  cell.clients = clients;
  cell.requests = all.size();
  cell.qps = static_cast<double>(all.size()) / elapsed;
  cell.p50_ms = percentile_ms(0.50);
  cell.p95_ms = percentile_ms(0.95);
  cell.p99_ms = percentile_ms(0.99);
  for (const CoordinatorStats& s : coord_stats) {
    cell.retries_attempted += s.retries_attempted;
    cell.breaker_open_total += s.breaker_open_total;
  }
  cell.unavailable_errors = unavailable.load();
  cell.deadline_errors = deadline.load();
  cell.unexpected_errors = unexpected.load();
  return cell;
}

/// Fail-fast connections for the replication cell: the stopped node must
/// cost two quick refused connects (then a 250ms breaker window), not the
/// default retry budget, so the failover latencies measure the re-drive
/// rather than the backoff schedule.
CoordinatorOptions ReplicationCoordOptions(const BenchParams& params,
                                           uint32_t replication_factor) {
  CoordinatorOptions options = CoordOptions(params);
  options.replication_factor = replication_factor;
  options.tolerate_unreachable = true;
  options.client.connect_timeout_millis = 1'000;
  options.client.read_timeout_millis = 2'000;
  options.client.max_retries = 1;
  options.client.backoff_initial_millis = 5;
  options.client.backoff_max_millis = 20;
  options.client.breaker_failure_threshold = 2;
  options.client.breaker_open_millis = 250;
  return options;
}

ReplicationResult RunReplicationCell(const BenchParams& params,
                                     uint32_t replication_factor) {
  constexpr size_t kReplNodes = 3;
  ReplicationResult cell;
  cell.replication_factor = replication_factor;
  cell.nodes = kReplNodes;

  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::vector<ShardNodeAddress> addresses;
  for (size_t i = 0; i < kReplNodes; ++i) {
    auto server = WarehouseServer::Start(NodeOptions(params));
    SAMPWH_CHECK(server.ok());
    addresses.push_back({server.value()->host(), server.value()->port()});
    servers.push_back(std::move(server).value());
  }
  auto coordinator = ShardCoordinator::Connect(
      addresses, ReplicationCoordOptions(params, replication_factor));
  SAMPWH_CHECK(coordinator.ok());
  ShardCoordinator& coord = *coordinator.value();
  SAMPWH_CHECK(coord.CreateTenant(kTenant, {}).ok());
  SAMPWH_CHECK(coord.CreateDataset(kTenant, kDataset).ok());

  ServerOptions reference_options = NodeOptions(params);
  Warehouse reference(reference_options.warehouse);
  const DatasetId key = std::string(kTenant) + "." + kDataset;
  SAMPWH_CHECK(reference.CreateDataset(key).ok());

  std::vector<PartitionId> ids;
  for (uint64_t p = 0; p < params.partitions; ++p) {
    const PartitionSample sample = MakeSample(params, p);
    auto id = coord.RollIn(kTenant, kDataset, sample, p, p);
    SAMPWH_CHECK(id.ok());
    SAMPWH_CHECK(reference.RollInAt(key, id.value(), sample, p, p).ok());
    ids.push_back(id.value());
  }
  cell.logical_writes = params.partitions;
  for (const auto& server : servers) {
    cell.replica_writes += server->stats().replica_writes;
  }
  cell.write_amplification =
      static_cast<double>(cell.logical_writes + cell.replica_writes) /
      static_cast<double>(cell.logical_writes);

  const auto percentile_ms = [](std::vector<double> lat, double q) {
    if (lat.empty()) return 0.0;
    std::sort(lat.begin(), lat.end());
    const size_t index = std::min(
        lat.size() - 1,
        static_cast<size_t>(q * static_cast<double>(lat.size())));
    return lat[index] * 1e3;
  };
  const auto check_exact = [&](const std::vector<PartitionId>& subset,
                               const PartitionSample& merged) {
    auto expected = reference.MergedSample(key, subset);
    SAMPWH_CHECK(expected.ok());
    if (SampleBytes(merged) != SampleBytes(expected.value())) {
      cell.exact = false;
      std::fprintf(stderr, "replication r=%u: query diverged from reference\n",
                   replication_factor);
    }
  };

  Pcg64 rng(kSeed ^ 0xf417ull, replication_factor);
  std::vector<double> healthy;
  for (int q = 0; q < params.replication_queries; ++q) {
    const std::vector<PartitionId> subset = RandomSubset(ids, rng);
    WallTimer timer;
    auto merged = coord.Query(kTenant, kDataset, subset);
    if (!merged.ok()) {
      cell.unexpected_errors++;
      continue;
    }
    healthy.push_back(timer.ElapsedSeconds());
    check_exact(subset, merged.value());
  }
  cell.healthy_p50_ms = percentile_ms(healthy, 0.50);

  if (replication_factor > 1) {
    // Kill one node; every strict query must keep answering exactly via
    // the survivors. Every fourth query is the full union, which provably
    // touches the stopped node's spans.
    servers[1]->Stop();
    std::vector<double> failover;
    for (int q = 0; q < params.replication_queries; ++q) {
      const std::vector<PartitionId> subset =
          (q % 4 == 0) ? ids : RandomSubset(ids, rng);
      WallTimer timer;
      auto merged = coord.Query(kTenant, kDataset, subset);
      if (!merged.ok()) {
        cell.exact = false;
        cell.unexpected_errors++;
        std::fprintf(stderr, "replication r=%u: post-kill query failed: %s\n",
                     replication_factor, merged.status().ToString().c_str());
        continue;
      }
      failover.push_back(timer.ElapsedSeconds());
      check_exact(subset, merged.value());
    }
    cell.failover_queries = failover.size();
    cell.failover_p50_ms = percentile_ms(failover, 0.50);
    cell.failover_p95_ms = percentile_ms(failover, 0.95);
    cell.failover_reads = coord.stats().failover_reads;
  }
  return cell;
}

/// Deterministic admission-control probe: fill a capped server with
/// `cap` persistent querying clients, then attempt `extra` more. Every
/// over-cap connection must be refused with a structured
/// kResourceExhausted in bounded time — never a hang, never a raw FIN.
OverloadResult RunOverloadCell(const BenchParams& params) {
  OverloadResult r;
  r.cap = 2;
  ServerOptions options = NodeOptions(params);
  options.max_connections = r.cap;
  auto server = WarehouseServer::Start(options);
  SAMPWH_CHECK(server.ok());
  ClientOptions no_retry;
  no_retry.max_retries = 0;
  no_retry.breaker_failure_threshold = 0;

  std::vector<std::unique_ptr<WarehouseClient>> held;
  for (uint32_t i = 0; i < r.cap; ++i) {
    auto client = WarehouseClient::Connect(server.value()->host(),
                                           server.value()->port(), no_retry);
    SAMPWH_CHECK(client.ok());
    if (i == 0) {
      SAMPWH_CHECK(client.value()->CreateTenant(kTenant, {}).ok());
      SAMPWH_CHECK(client.value()->CreateDataset(kTenant, kDataset).ok());
    }
    SAMPWH_CHECK(client.value()->Ping().ok());
    held.push_back(std::move(client).value());
  }
  for (int i = 0; i < 4; ++i) {
    r.over_cap_attempts++;
    auto client = WarehouseClient::Connect(server.value()->host(),
                                           server.value()->port(), no_retry);
    if (!client.ok()) {
      r.unexpected_errors++;
      continue;
    }
    const Status st = client.value()->Ping().status();
    if (st.IsResourceExhausted()) {
      r.resource_exhausted++;
    } else {
      r.unexpected_errors++;
      std::fprintf(stderr, "overload: expected kResourceExhausted, got %s\n",
                   st.ToString().c_str());
    }
  }
  // In-cap clients must have been untouched by the shedding.
  for (const auto& client : held) {
    if (!client->Ping().ok()) r.unexpected_errors++;
  }
  r.connections_shed = server.value()->stats().connections_shed;
  return r;
}

bool WriteJson(const std::string& path, const BenchParams& params,
               const std::vector<CellResult>& cells,
               const OverloadResult& overload,
               const std::vector<ReplicationResult>& replication,
               bool exactness_passed, bool replication_exact,
               uint64_t protocol_errors, uint64_t unexpected_errors,
               bool gate_passed) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"config\": {\"smoke\": " << (params.smoke ? "true" : "false")
      << ", \"partitions\": " << params.partitions
      << ", \"per_partition_values\": " << params.per_partition_values
      << ", \"window_seconds\": " << params.window_seconds
      << ", \"store\": \"memory\", \"hardware_threads\": "
      << HardwareThreads() << "},\n";
  out << "  \"series\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"nodes\": " << c.nodes << ", \"clients\": " << c.clients
        << ", \"requests\": " << c.requests << ", \"qps\": " << c.qps
        << ", \"p50_ms\": " << c.p50_ms << ", \"p95_ms\": " << c.p95_ms
        << ", \"p99_ms\": " << c.p99_ms
        << ", \"retries\": " << c.retries_attempted
        << ", \"breaker_opens\": " << c.breaker_open_total
        << ", \"unavailable\": " << c.unavailable_errors
        << ", \"deadline_exceeded\": " << c.deadline_errors
        << ", \"unexpected\": " << c.unexpected_errors << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"overload\": {\"cap\": " << overload.cap
      << ", \"over_cap_attempts\": " << overload.over_cap_attempts
      << ", \"resource_exhausted\": " << overload.resource_exhausted
      << ", \"connections_shed\": " << overload.connections_shed
      << ", \"unexpected\": " << overload.unexpected_errors << "},\n";
  out << "  \"replication\": [\n";
  for (size_t i = 0; i < replication.size(); ++i) {
    const ReplicationResult& r = replication[i];
    out << "    {\"replication_factor\": " << r.replication_factor
        << ", \"nodes\": " << r.nodes
        << ", \"logical_writes\": " << r.logical_writes
        << ", \"replica_writes\": " << r.replica_writes
        << ", \"write_amplification\": " << r.write_amplification
        << ", \"healthy_p50_ms\": " << r.healthy_p50_ms
        << ", \"failover_p50_ms\": " << r.failover_p50_ms
        << ", \"failover_p95_ms\": " << r.failover_p95_ms
        << ", \"failover_queries\": " << r.failover_queries
        << ", \"failover_reads\": " << r.failover_reads
        << ", \"exact\": " << (r.exact ? "true" : "false")
        << ", \"unexpected\": " << r.unexpected_errors << "}"
        << (i + 1 < replication.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"gate\": {\"exactness_passed\": "
      << (exactness_passed ? "true" : "false")
      << ", \"replication_exact\": " << (replication_exact ? "true" : "false")
      << ", \"protocol_errors\": " << protocol_errors
      << ", \"unexpected_errors\": " << unexpected_errors
      << ", \"overload_shed_visible\": "
      << (overload.resource_exhausted == overload.over_cap_attempts ? "true"
                                                                    : "false")
      << ", \"passed\": " << (gate_passed ? "true" : "false") << "}\n";
  out << "}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  uint32_t replication_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      replication_override =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  if (const char* env = std::getenv("SERVER_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    smoke = true;
  }
  BenchParams params = MakeParams(smoke);
  // --replication R pins the replication cell to a single factor (handy
  // for eyeballing one failover configuration without the full sweep).
  if (replication_override > 0) {
    params.replication_factors = {replication_override};
  }

  std::printf("Warehouse-server query load%s: %llu partitions, "
              "random-subset unions\n",
              smoke ? " (smoke)" : "",
              static_cast<unsigned long long>(params.partitions));
  std::printf("%-6s %-8s %10s %10s %10s %10s %10s %8s %8s\n", "nodes",
              "clients", "requests", "qps", "p50_ms", "p95_ms", "p99_ms",
              "retries", "errors");

  std::vector<CellResult> cells;
  bool exactness_passed = true;
  uint64_t protocol_errors = 0;
  uint64_t unexpected_errors = 0;
  for (const size_t nodes : params.node_counts) {
    Deployment d = StartDeployment(params, nodes);
    exactness_passed = CheckExactness(params, d) && exactness_passed;
    for (const unsigned clients : params.client_counts) {
      cells.push_back(RunCell(params, d, clients));
      const CellResult& c = cells.back();
      std::printf(
          "%-6zu %-8u %10llu %10.0f %10.3f %10.3f %10.3f %8llu %8llu\n",
          c.nodes, c.clients, static_cast<unsigned long long>(c.requests),
          c.qps, c.p50_ms, c.p95_ms, c.p99_ms,
          static_cast<unsigned long long>(c.retries_attempted),
          static_cast<unsigned long long>(c.unavailable_errors +
                                          c.deadline_errors +
                                          c.unexpected_errors));
      unexpected_errors += c.unexpected_errors;
    }
    for (const auto& server : d.servers) {
      protocol_errors += server->stats().protocol_errors;
    }
  }

  const OverloadResult overload = RunOverloadCell(params);
  std::printf("overload: cap=%u, %llu/%llu over-cap refusals structured "
              "(connections_shed=%llu)\n",
              overload.cap,
              static_cast<unsigned long long>(overload.resource_exhausted),
              static_cast<unsigned long long>(overload.over_cap_attempts),
              static_cast<unsigned long long>(overload.connections_shed));
  unexpected_errors += overload.unexpected_errors;

  // The replication cells: write amplification at R in {1, 2, 3} on three
  // nodes, and for R > 1 strict-query exactness straight through a node
  // kill (served via replica failover — failover_reads must be nonzero).
  std::vector<ReplicationResult> repl_cells;
  bool replication_exact = true;
  std::printf("replication: 3 nodes, one node stopped mid-run for R > 1\n");
  std::printf("%-6s %-6s %12s %12s %14s %14s %10s %6s\n", "R", "ampl",
              "healthy_p50", "failover_p50", "failover_p95", "failover_rds",
              "queries", "exact");
  for (const uint32_t r : params.replication_factors) {
    repl_cells.push_back(RunReplicationCell(params, r));
    const ReplicationResult& c = repl_cells.back();
    std::printf("%-6u %-6.2f %12.3f %12.3f %14.3f %14llu %10llu %6s\n",
                c.replication_factor, c.write_amplification, c.healthy_p50_ms,
                c.failover_p50_ms, c.failover_p95_ms,
                static_cast<unsigned long long>(c.failover_reads),
                static_cast<unsigned long long>(c.failover_queries),
                c.exact ? "yes" : "NO");
    unexpected_errors += c.unexpected_errors;
    replication_exact = replication_exact && c.exact &&
                        (c.replication_factor <= 1 || c.failover_reads > 0);
  }

  // The gate: exactness (including through the replication kill), clean
  // protocols, zero UNEXPECTED errors. Load shedding under the overload
  // cell is expected — but only in its structured kResourceExhausted form,
  // and it must be visible in the counters.
  const bool gate_passed =
      exactness_passed && replication_exact && protocol_errors == 0 &&
      unexpected_errors == 0 &&
      overload.resource_exhausted == overload.over_cap_attempts &&
      overload.connections_shed >= overload.over_cap_attempts;
  if (!WriteJson("BENCH_server.json", params, cells, overload, repl_cells,
                 exactness_passed, replication_exact, protocol_errors,
                 unexpected_errors, gate_passed)) {
    std::fprintf(stderr, "failed to write BENCH_server.json\n");
    return 1;
  }
  std::printf("Wrote BENCH_server.json\n");
  if (!gate_passed) {
    std::fprintf(stderr,
                 "FAIL: exactness_passed=%d replication_exact=%d "
                 "protocol_errors=%llu "
                 "unexpected_errors=%llu overload_refusals=%llu/%llu\n",
                 exactness_passed ? 1 : 0, replication_exact ? 1 : 0,
                 static_cast<unsigned long long>(protocol_errors),
                 static_cast<unsigned long long>(unexpected_errors),
                 static_cast<unsigned long long>(overload.resource_exhausted),
                 static_cast<unsigned long long>(overload.over_cap_attempts));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sampwh::bench

int main(int argc, char** argv) { return sampwh::bench::Main(argc, argv); }
