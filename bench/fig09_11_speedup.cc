// Figures 9-11: speedup. Fixed population of unique-valued data elements,
// partition count swept from 1 to 1024; per partition-count the harness
// reports sampling time (light bars in the paper) and serial pairwise
// merge time (dark bars) for Algorithms SB, HB and HR.
//
// Expected shape (paper §5): SB fastest at every partition count and
// scaling to the most partitions; HB second; HR slightly slower. Total
// time is U-shaped in the partition count — more partitions shrink
// per-partition sampling time but add merges — and the minimum marks the
// exploitable parallelism. Also prints the §5 point-2 throughput summary
// (elements sampled per second of total time at the best partition count).
//
// Default scale: 2^22 elements, partitions up to 256. REPRO_FULL=1 runs
// the paper's 2^26 elements and 1..1024 partitions, averaged over 3 runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

using namespace sampwh;
using namespace sampwh::bench;

int main() {
  const bool full = FullScale();
  const uint64_t total = full ? (1ULL << 26) : (1ULL << 22);
  const uint64_t max_partitions = full ? 1024 : 256;
  const int reps = Repetitions();
  const uint64_t workers = SimulatedWorkers();

  std::printf(
      "Figures 9-11: speedup on %llu unique data elements "
      "(parallel sample time on a simulated %llu-worker cluster + serial "
      "pairwise merge time, seconds, mean of %d)\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(workers), reps);
  std::printf("F = 64 KiB (n_F = 8192), p = 1e-3%s\n\n",
              full ? "" : "   [reduced scale; REPRO_FULL=1 for 2^26]");

  const std::vector<int> widths = {12, 12, 12, 12, 12, 12};
  struct Best {
    double total = 1e300;
    uint64_t partitions = 0;
  };

  for (const SamplerKind algorithm :
       {SamplerKind::kStratifiedBernoulli, SamplerKind::kHybridBernoulli,
        SamplerKind::kHybridReservoir}) {
    std::printf("--- Figure %s: Algorithm %s ---\n",
                algorithm == SamplerKind::kStratifiedBernoulli ? "9"
                : algorithm == SamplerKind::kHybridBernoulli   ? "10"
                                                               : "11",
                std::string(SamplerKindToString(algorithm)).c_str());
    PrintRow({"partitions", "sample_s", "merge_s", "total_s", "serial_s",
              "sample_sz"},
             widths);
    Best best;
    for (uint64_t parts = 1; parts <= max_partitions; parts *= 2) {
      ScenarioSpec spec;
      spec.algorithm = algorithm;
      spec.data = DataKind::kUnique;
      spec.total_elements = total;
      spec.partitions = parts;
      spec.simulated_workers = workers;
      const ScenarioResult r = RunScenarioAveraged(spec, reps);
      const double total_s = r.sample_seconds + r.merge_seconds;
      if (total_s < best.total) {
        best.total = total_s;
        best.partitions = parts;
      }
      PrintRow({std::to_string(parts), FormatSeconds(r.sample_seconds),
                FormatSeconds(r.merge_seconds), FormatSeconds(total_s),
                FormatSeconds(r.sample_seconds_serial),
                std::to_string(r.merged_sample_size)},
               widths);
    }
    std::printf(
        "best: %llu partitions, %.3f s total -> %.2fM elements/second\n\n",
        static_cast<unsigned long long>(best.partitions), best.total,
        static_cast<double>(total) / best.total / 1e6);
  }

  std::printf(
      "Paper shape check: SB fastest overall; HB ~ HR; total time U-shaped "
      "in partition count — parallel sampling amortizes over the simulated "
      "cluster while serial merges keep growing (paper: SB best at 256-512 "
      "partitions, hybrids at 32-64 on their 2-node cluster).\n");
  return 0;
}
