// Ingestion-throughput harness for the skip-based batch fast path: measures
// elements/sec through the three ingestion paths
//
//   append_scalar  StreamIngestor::Append, one element at a time
//   append_batch   StreamIngestor::AppendBatch in 64K-element chunks
//   sampler_batch  AnySampler::AddBatch on the whole stream (the pure
//                  skip-sampling path, no warehouse bookkeeping)
//
// across sampler configurations (SB at several rates, HB, HR), plus a
// multi-partition scaling series: 8 partitions ingested through
// Warehouse::IngestBatch on thread pools of 1/2/4/8 workers. Each scaling
// row reports both the real measured wall time on this machine and the
// makespan of an LPT assignment of the measured per-partition times onto
// W idealized workers — the same simulated-cluster substitution the
// figure-reproduction harnesses use (DESIGN.md §2), so scaling is
// meaningful even on single-core CI runners.
//
// A fourth section measures the cost of crash-safe ingestion: AppendBatch
// through a file-backed warehouse with the checkpoint protocol off vs
// every-N-element cadences, reporting the throughput overhead each cadence
// pays for its resume granularity.
//
// A fifth section compares the Bern(q) acceptance kernels head to head:
// the geometric-skip path vs the 64-lane bitmask path (branch-free mask
// generation + compress-store), at several rates.
//
// A sixth section measures the shard-per-core ParallelIngestor: 256
// stripes fed through lock-free SPSC rings into 1/2/4/8 shard threads.
// Each row reports the real wall time, the *busy makespan* — max over
// shards of CLOCK_THREAD_CPUTIME_ID spent applying batches, i.e. the
// parallel completion time of the useful work on a machine with >= W free
// cores — and a simulated series that routes independently measured
// per-stripe sampling times through the same router hash. The measured
// speedup is the run's work/span ratio (total shard busy time over busy
// makespan) because CI runners are single-core: wall time cannot scale
// there, but the per-shard work distribution (what the shard architecture
// actually determines) can and does. The section also
// re-ingests under a different producer count and feed order and verifies
// the rolled-in sample bytes are identical — the determinism contract.
//
// Results go to stdout as tables and to BENCH_ingest.json in the working
// directory. REPRO_FULL=1 runs the paper-scale stream (2^26 elements);
// --smoke runs a reduced-size gated subset for CI.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/any_sampler.h"
#include "src/core/batch_accept.h"
#include "src/core/bernoulli_sampler.h"
#include "src/util/logging.h"
#include "src/util/serialization.h"
#include "src/util/shard_router.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/warehouse/parallel_ingestor.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

namespace sampwh::bench {
namespace {

constexpr size_t kChunk = 64 * 1024;

struct PathRow {
  std::string config;   // "SB q=0.01", "HB F=64KiB", ...
  std::string path;     // append_scalar / append_batch / sampler_batch
  double seconds = 0.0;
  double elements_per_sec = 0.0;
  double speedup_vs_scalar = 1.0;
};

struct CheckpointRow {
  uint64_t cadence = 0;  // every-N-elements; 0 = checkpoints off
  uint64_t wal_records = 0;  // delta records group-committed to the WAL
  double seconds = 0.0;
  double elements_per_sec = 0.0;
  double overhead_pct = 0.0;  // vs checkpoints off
  uint64_t checkpoints_written = 0;
};

struct ScalingRow {
  uint64_t workers = 1;
  double measured_seconds = 0.0;
  double measured_speedup = 1.0;
  double simulated_makespan_seconds = 0.0;
  double simulated_speedup = 1.0;
};

struct AcceptModeRow {
  std::string config;  // "SB q=0.01", ...
  std::string mode;    // geometric_skip / bitmask
  double seconds = 0.0;
  double elements_per_sec = 0.0;
  double speedup_vs_skip = 1.0;
};

struct ParallelScalingRow {
  uint64_t workers = 1;
  double wall_seconds = 0.0;
  /// Max over shards of thread-CPU time spent applying batches: the
  /// completion time of the run's useful work given >= `workers` cores.
  double busy_makespan_seconds = 0.0;
  double measured_speedup = 1.0;  // busy makespan at 1 shard / at W shards
  double simulated_makespan_seconds = 0.0;
  double simulated_speedup = 1.0;
};

SamplerConfig SbConfig(double q) {
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = q;
  return config;
}

SamplerConfig BoundedConfig(SamplerKind kind, uint64_t expected) {
  SamplerConfig config;
  config.kind = kind;
  config.footprint_bound_bytes = 64 * 1024;
  config.expected_partition_size = expected;
  return config;
}

/// Best-of-`reps` of `fn()`, where `fn` returns the seconds it measured
/// (setup and teardown stay outside the measured section).
template <typename Fn>
double BestOf(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, fn());
  return best;
}

/// Times the append loop only; warehouse setup and the final partition
/// close (finalize + roll-in, identical for every path) run untimed.
template <typename AppendLoop>
double TimeIngestorPath(const SamplerConfig& config, int reps,
                        AppendLoop&& loop) {
  return BestOf(reps, [&]() -> double {
    WarehouseOptions options;
    options.sampler = config;
    Warehouse warehouse(options);
    SAMPWH_CHECK(warehouse.CreateDataset("bench").ok());
    StreamIngestor ingestor(&warehouse, "bench", nullptr);
    WallTimer timer;
    loop(ingestor);
    const double seconds = timer.ElapsedSeconds();
    SAMPWH_CHECK(ingestor.Flush().ok());
    return seconds;
  });
}

double TimeAppendScalar(const SamplerConfig& config,
                        const std::vector<Value>& values, int reps) {
  return TimeIngestorPath(config, reps, [&](StreamIngestor& ingestor) {
    for (Value v : values) SAMPWH_CHECK(ingestor.Append(v).ok());
  });
}

double TimeAppendBatch(const SamplerConfig& config,
                       const std::vector<Value>& values, int reps) {
  return TimeIngestorPath(config, reps, [&](StreamIngestor& ingestor) {
    const std::span<const Value> all(values);
    for (size_t i = 0; i < all.size(); i += kChunk) {
      SAMPWH_CHECK(
          ingestor.AppendBatch(all.subspan(i, std::min(kChunk, all.size() - i)))
              .ok());
    }
  });
}

double TimeSamplerBatch(const SamplerConfig& config,
                        const std::vector<Value>& values, int reps) {
  return BestOf(reps, [&]() -> double {
    AnySampler sampler(config, Pcg64(20060403));
    WallTimer timer;
    sampler.AddBatch(values);
    const double seconds = timer.ElapsedSeconds();
    (void)sampler.Finalize();
    return seconds;
  });
}

/// Longest-processing-time makespan of `times` on `workers` idealized
/// workers (same greedy the figure harnesses use for their simulated
/// sampling cluster).
double LptMakespan(std::vector<double> times, uint64_t workers) {
  if (workers == 0) workers = 1;
  std::sort(times.begin(), times.end(), std::greater<double>());
  std::vector<double> load(workers, 0.0);
  for (double t : times) {
    *std::min_element(load.begin(), load.end()) += t;
  }
  return *std::max_element(load.begin(), load.end());
}

void RunPathSection(uint64_t total_elements, int reps,
                    std::vector<PathRow>& rows) {
  struct Case {
    std::string name;
    SamplerConfig config;
  };
  const std::vector<Case> cases = {
      {"SB q=0.01", SbConfig(0.01)},
      {"SB q=0.05", SbConfig(0.05)},
      {"SB q=0.10", SbConfig(0.10)},
      {"HB F=64KiB",
       BoundedConfig(SamplerKind::kHybridBernoulli, total_elements)},
      {"HR F=64KiB",
       BoundedConfig(SamplerKind::kHybridReservoir, total_elements)},
  };
  const std::vector<Value> values =
      DataGenerator::Unique(total_elements).TakeAll();

  std::printf("Ingestion paths (%llu elements, best of %d)\n",
              static_cast<unsigned long long>(total_elements), reps);
  const std::vector<int> widths = {12, 14, 10, 14, 9};
  PrintRow({"config", "path", "seconds", "elems/sec", "speedup"}, widths);

  for (const Case& c : cases) {
    const double scalar = TimeAppendScalar(c.config, values, reps);
    const double batch = TimeAppendBatch(c.config, values, reps);
    const double pure = TimeSamplerBatch(c.config, values, reps);
    const auto emit = [&](const std::string& path, double seconds) {
      PathRow row;
      row.config = c.name;
      row.path = path;
      row.seconds = seconds;
      row.elements_per_sec =
          static_cast<double>(total_elements) / std::max(seconds, 1e-12);
      row.speedup_vs_scalar = scalar / std::max(seconds, 1e-12);
      rows.push_back(row);
      std::printf("%-12s %-14s %9.4f %14.0f %8.2fx\n", row.config.c_str(),
                  row.path.c_str(), row.seconds, row.elements_per_sec,
                  row.speedup_vs_scalar);
    };
    emit("append_scalar", scalar);
    emit("append_batch", batch);
    emit("sampler_batch", pure);
  }
  std::printf("\n");
}

void RunCheckpointSection(uint64_t total_elements, int reps,
                          std::vector<CheckpointRow>& rows) {
  // Cadence checkpoints fire at append-chunk granularity, so the stream is
  // delivered in batches no larger than the smallest cadence — the
  // realistic shape for a checkpointed source (e.g. a replayable queue
  // delivering bounded batches).
  constexpr size_t kCkptChunk = 4096;
  const SamplerConfig config =
      BoundedConfig(SamplerKind::kHybridReservoir, total_elements);
  const std::vector<Value> values =
      DataGenerator::Unique(total_elements).TakeAll();
  // Per-process scratch dir: concurrent bench/check.sh invocations must
  // not recover each other's WAL and snapshot files.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sampwh_bench_ckpt." + std::to_string(::getpid())))
          .string();

  std::printf(
      "Checkpoint cadence overhead (%llu elements, HR, file store, "
      "asynchronous delta checkpointing, best of %d)\n",
      static_cast<unsigned long long>(total_elements), reps);
  const std::vector<int> widths = {12, 10, 14, 10, 8, 12};
  PrintRow({"cadence", "seconds", "elems/sec", "overhead", "ckpts", "deltas"},
           widths);

  double baseline = 0.0;
  for (uint64_t cadence : {uint64_t{0}, uint64_t{65536}, uint64_t{16384},
                           uint64_t{4096}}) {
    CheckpointRow row;
    row.cadence = cadence;
    row.seconds = BestOf(reps, [&]() -> double {
      std::filesystem::remove_all(dir);
      auto store = FileSampleStore::Open(dir);
      SAMPWH_CHECK(store.ok());
      WarehouseOptions options;
      options.sampler = config;
      Warehouse warehouse(options, std::move(store).value());
      SAMPWH_CHECK(warehouse.CreateDataset("bench").ok());
      double seconds = 0.0;
      {
        StreamIngestor ingestor(&warehouse, "bench", nullptr);
        if (cadence > 0) {
          ingestor.EnableCheckpoints({.every_n_elements = cadence});
        }
        const std::span<const Value> all(values);
        WallTimer timer;
        for (size_t i = 0; i < all.size(); i += kCkptChunk) {
          SAMPWH_CHECK(ingestor
                           .AppendBatch(all.subspan(
                               i, std::min(kCkptChunk, all.size() - i)))
                           .ok());
        }
        seconds = timer.ElapsedSeconds();
        SAMPWH_CHECK(ingestor.Flush().ok());
      }  // joins the background checkpoint writer: stats below are final
      const StoreStats stats =
          warehouse.store_for_testing()->GetStoreStats();
      row.checkpoints_written = stats.checkpoints_written;
      row.wal_records = stats.wal_records_appended;
      return seconds;
    });
    if (cadence == 0) baseline = row.seconds;
    row.elements_per_sec =
        static_cast<double>(total_elements) / std::max(row.seconds, 1e-12);
    row.overhead_pct =
        100.0 * (row.seconds / std::max(baseline, 1e-12) - 1.0);
    rows.push_back(row);
    std::printf("%-12llu %9.4f %14.0f %8.2f%% %7llu %11llu\n",
                static_cast<unsigned long long>(row.cadence), row.seconds,
                row.elements_per_sec, row.overhead_pct,
                static_cast<unsigned long long>(row.checkpoints_written),
                static_cast<unsigned long long>(row.wal_records));
  }
  std::filesystem::remove_all(dir);
  std::printf("\n");
}

void RunScalingSection(uint64_t total_elements, int reps,
                       std::vector<ScalingRow>& rows) {
  constexpr uint64_t kPartitions = 8;
  const SamplerConfig config = SbConfig(0.10);
  const std::vector<Value> values =
      DataGenerator::Unique(total_elements).TakeAll();

  // Per-partition serial sampling times feed the simulated-cluster series.
  const uint64_t per_partition = total_elements / kPartitions;
  std::vector<double> partition_times;
  for (uint64_t p = 0; p < kPartitions; ++p) {
    const std::span<const Value> chunk(values.data() + p * per_partition,
                                       per_partition);
    partition_times.push_back(BestOf(reps, [&]() -> double {
      AnySampler sampler(config, Pcg64(20060403 + p));
      WallTimer timer;
      sampler.AddBatch(chunk);
      const double seconds = timer.ElapsedSeconds();
      (void)sampler.Finalize();
      return seconds;
    }));
  }
  const double serial =
      std::accumulate(partition_times.begin(), partition_times.end(), 0.0);

  std::printf(
      "Multi-partition scaling (%llu elements, %llu partitions, SB q=0.10)\n",
      static_cast<unsigned long long>(total_elements),
      static_cast<unsigned long long>(kPartitions));
  const std::vector<int> widths = {8, 12, 12, 14, 12};
  PrintRow({"workers", "measured", "meas.spd", "sim.makespan", "sim.spd"},
           widths);

  double measured_base = 0.0;
  for (uint64_t workers : {1u, 2u, 4u, 8u}) {
    ScalingRow row;
    row.workers = workers;
    row.measured_seconds = BestOf(reps, [&]() -> double {
      WarehouseOptions options;
      options.sampler = config;
      Warehouse warehouse(options);
      SAMPWH_CHECK(warehouse.CreateDataset("bench").ok());
      ThreadPool pool(workers);
      WallTimer timer;
      auto ids = warehouse.IngestBatch("bench", values, kPartitions, &pool);
      const double seconds = timer.ElapsedSeconds();
      SAMPWH_CHECK(ids.ok());
      return seconds;
    });
    if (workers == 1) measured_base = row.measured_seconds;
    row.measured_speedup =
        measured_base / std::max(row.measured_seconds, 1e-12);
    row.simulated_makespan_seconds = LptMakespan(partition_times, workers);
    row.simulated_speedup =
        serial / std::max(row.simulated_makespan_seconds, 1e-12);
    rows.push_back(row);
    std::printf("%-8llu %11.4fs %11.2fx %13.4fs %11.2fx\n",
                static_cast<unsigned long long>(workers), row.measured_seconds,
                row.measured_speedup, row.simulated_makespan_seconds,
                row.simulated_speedup);
  }
  std::printf("\n");
}

void RunAcceptModeSection(uint64_t total_elements, int reps,
                          std::vector<AcceptModeRow>& rows) {
  const std::vector<Value> values =
      DataGenerator::Unique(total_elements).TakeAll();

  std::printf("Bern(q) acceptance kernels (%llu elements, best of %d)\n",
              static_cast<unsigned long long>(total_elements), reps);
  const std::vector<int> widths = {12, 16, 10, 14, 9};
  PrintRow({"config", "mode", "seconds", "elems/sec", "speedup"}, widths);

  for (const double q : {0.01, 0.10, 0.50}) {
    char name[32];
    std::snprintf(name, sizeof(name), "SB q=%.2f", q);
    double skip_seconds = 0.0;
    for (const BernAcceptMode mode :
         {BernAcceptMode::kGeometricSkip, BernAcceptMode::kBitmask}) {
      AcceptModeRow row;
      row.config = name;
      row.mode = mode == BernAcceptMode::kBitmask ? "bitmask"
                                                  : "geometric_skip";
      row.seconds = BestOf(reps, [&]() -> double {
        BernoulliSampler sampler(q, Pcg64(20060403), mode);
        WallTimer timer;
        sampler.AddBatch(values);
        const double seconds = timer.ElapsedSeconds();
        (void)sampler.Finalize();
        return seconds;
      });
      if (mode == BernAcceptMode::kGeometricSkip) skip_seconds = row.seconds;
      row.elements_per_sec =
          static_cast<double>(total_elements) / std::max(row.seconds, 1e-12);
      row.speedup_vs_skip = skip_seconds / std::max(row.seconds, 1e-12);
      rows.push_back(row);
      std::printf("%-12s %-16s %9.4f %14.0f %8.2fx\n", row.config.c_str(),
                  row.mode.c_str(), row.seconds, row.elements_per_sec,
                  row.speedup_vs_skip);
    }
  }
  std::printf("\n");
}

/// Serialized bytes of every rolled-in sample of `ds`, sorted (partition
/// ids depend on arrival order; the sample bytes must not).
std::vector<std::string> SortedSampleBytes(Warehouse& warehouse,
                                           const std::string& ds) {
  std::vector<std::string> out;
  auto infos = warehouse.ListPartitions(ds);
  SAMPWH_CHECK(infos.ok());
  for (const PartitionInfo& p : infos.value()) {
    auto sample = warehouse.GetSample(ds, p.id);
    SAMPWH_CHECK(sample.ok());
    BinaryWriter writer;
    sample.value().SerializeTo(&writer);
    out.push_back(writer.Release());
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ParallelRunResult {
  double wall_seconds = 0.0;
  double busy_makespan_seconds = 0.0;
  /// Sum over shards of busy time: the same run's single-core cost.
  double busy_total_seconds = 0.0;
  std::vector<std::string> sample_bytes;
};

/// One ParallelIngestor run: `producers` threads feed disjoint stripe sets
/// (producer p owns stripes ≡ p mod producers) into `shards` shard
/// threads; `reverse_feed` flips each producer's stripe order to vary the
/// interleaving. Returns wall time, busy makespan and the rolled-in bytes.
ParallelRunResult RunParallelOnce(
    const std::vector<std::vector<Value>>& stripe_data, size_t shards,
    size_t producers, bool reverse_feed) {
  constexpr size_t kFeedChunk = 4096;
  WarehouseOptions options;
  options.sampler = SbConfig(0.10);
  options.seed = 20060403;
  Warehouse warehouse(options);
  SAMPWH_CHECK(warehouse.CreateDataset("bench").ok());

  ParallelIngestOptions popts;
  popts.shards = shards;
  ParallelRunResult result;
  WallTimer timer;
  {
    ParallelIngestor ingestor(&warehouse, "bench", nullptr, popts);
    std::vector<std::thread> feeders;
    for (size_t p = 0; p < producers; ++p) {
      ParallelIngestor::Producer* producer = ingestor.AddProducer();
      feeders.emplace_back([&, p, producer] {
        std::vector<uint64_t> owned;
        for (uint64_t s = p; s < stripe_data.size(); s += producers) {
          owned.push_back(s);
        }
        if (reverse_feed) std::reverse(owned.begin(), owned.end());
        for (const uint64_t s : owned) {
          const std::span<const Value> all(stripe_data[s]);
          for (size_t i = 0; i < all.size(); i += kFeedChunk) {
            SAMPWH_CHECK(
                producer
                    ->Append(s, all.subspan(
                                    i, std::min(kFeedChunk, all.size() - i)))
                    .ok());
          }
        }
      });
    }
    for (std::thread& t : feeders) t.join();
    SAMPWH_CHECK(ingestor.Finish().ok());
    result.wall_seconds = timer.ElapsedSeconds();
    uint64_t busy_max = 0;
    uint64_t busy_sum = 0;
    for (const ShardIngestStats& s : ingestor.shard_stats()) {
      busy_max = std::max(busy_max, s.busy_nanos);
      busy_sum += s.busy_nanos;
    }
    result.busy_makespan_seconds = static_cast<double>(busy_max) * 1e-9;
    result.busy_total_seconds = static_cast<double>(busy_sum) * 1e-9;
  }
  result.sample_bytes = SortedSampleBytes(warehouse, "bench");
  return result;
}

bool RunParallelScalingSection(uint64_t total_elements, uint64_t stripes,
                               int reps,
                               std::vector<ParallelScalingRow>& rows) {
  const uint64_t per_stripe = total_elements / stripes;
  std::vector<std::vector<Value>> stripe_data(stripes);
  for (uint64_t s = 0; s < stripes; ++s) {
    stripe_data[s] =
        DataGenerator::Unique(per_stripe,
                              static_cast<Value>(s * per_stripe + 1))
            .TakeAll();
  }

  // Independently measured per-stripe sampling times feed the simulated
  // series: route them through the same hash the real shards use and take
  // the per-shard-sum makespan (the router is static, not LPT).
  const SamplerConfig config = SbConfig(0.10);
  std::vector<double> stripe_times;
  for (uint64_t s = 0; s < stripes; ++s) {
    stripe_times.push_back(BestOf(reps, [&]() -> double {
      AnySampler sampler(config, Pcg64(20060403 + s));
      WallTimer timer;
      sampler.AddBatch(stripe_data[s]);
      const double seconds = timer.ElapsedSeconds();
      (void)sampler.Finalize();
      return seconds;
    }));
  }
  const double stripe_serial =
      std::accumulate(stripe_times.begin(), stripe_times.end(), 0.0);

  std::printf(
      "Shard-per-core parallel ingestion (%llu elements, %llu stripes, SB "
      "q=0.10)\n",
      static_cast<unsigned long long>(total_elements),
      static_cast<unsigned long long>(stripes));
  const std::vector<int> widths = {8, 10, 14, 12, 14, 12};
  PrintRow({"workers", "wall", "busy.makespan", "meas.spd", "sim.makespan",
            "sim.spd"},
           widths);

  for (const uint64_t workers : {1u, 2u, 4u, 8u}) {
    ParallelScalingRow row;
    row.workers = workers;
    row.wall_seconds = std::numeric_limits<double>::infinity();
    row.busy_makespan_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      const ParallelRunResult run =
          RunParallelOnce(stripe_data, workers, /*producers=*/1,
                          /*reverse_feed=*/false);
      if (run.busy_makespan_seconds < row.busy_makespan_seconds) {
        row.busy_makespan_seconds = run.busy_makespan_seconds;
        // Work/span ratio of the same run: the speedup of its measured
        // per-shard work on W free cores over one core. Both numbers come
        // from one run, so single-core scheduling noise cancels.
        row.measured_speedup =
            run.busy_total_seconds /
            std::max(run.busy_makespan_seconds, 1e-12);
      }
      row.wall_seconds = std::min(row.wall_seconds, run.wall_seconds);
    }
    const ShardRouter router("bench", workers);
    std::vector<double> load(workers, 0.0);
    for (uint64_t s = 0; s < stripes; ++s) {
      load[router.ShardFor(s)] += stripe_times[s];
    }
    row.simulated_makespan_seconds =
        *std::max_element(load.begin(), load.end());
    row.simulated_speedup =
        stripe_serial / std::max(row.simulated_makespan_seconds, 1e-12);
    rows.push_back(row);
    std::printf("%-8llu %9.4f %13.4fs %11.2fx %13.4fs %11.2fx\n",
                static_cast<unsigned long long>(workers), row.wall_seconds,
                row.busy_makespan_seconds, row.measured_speedup,
                row.simulated_makespan_seconds, row.simulated_speedup);
  }

  // Determinism gate: a different shard count, producer count and feed
  // order must roll in byte-identical samples.
  const ParallelRunResult a =
      RunParallelOnce(stripe_data, /*shards=*/4, /*producers=*/1,
                      /*reverse_feed=*/false);
  const ParallelRunResult b =
      RunParallelOnce(stripe_data, /*shards=*/3, /*producers=*/2,
                      /*reverse_feed=*/true);
  const bool determinism_ok = a.sample_bytes == b.sample_bytes;
  std::printf("determinism (4 shards/1 producer vs 3 shards/2 reversed "
              "producers): %s\n\n",
              determinism_ok ? "byte-identical" : "MISMATCH");
  return determinism_ok;
}

bool WriteJson(const std::string& path, uint64_t path_elements,
               uint64_t scaling_elements, uint64_t parallel_stripes,
               bool determinism_ok, const std::vector<PathRow>& paths,
               const std::vector<CheckpointRow>& checkpoints,
               const std::vector<ScalingRow>& scaling,
               const std::vector<AcceptModeRow>& accept_modes,
               const std::vector<ParallelScalingRow>& parallel) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"config\": {\"path_elements\": " << path_elements
      << ", \"scaling_elements\": " << scaling_elements
      << ", \"scaling_partitions\": 8, \"parallel_stripes\": "
      << parallel_stripes << ", \"full_scale\": "
      << (FullScale() ? "true" : "false")
      << ", \"hardware_threads\": " << HardwareThreads()
      << "},\n";
  out << "  \"paths\": [\n";
  for (size_t i = 0; i < paths.size(); ++i) {
    const PathRow& r = paths[i];
    out << "    {\"config\": \"" << r.config << "\", \"path\": \"" << r.path
        << "\", \"seconds\": " << r.seconds
        << ", \"elements_per_sec\": " << r.elements_per_sec
        << ", \"speedup_vs_scalar\": " << r.speedup_vs_scalar << "}"
        << (i + 1 < paths.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"checkpoint_cadence\": [\n";
  for (size_t i = 0; i < checkpoints.size(); ++i) {
    const CheckpointRow& r = checkpoints[i];
    out << "    {\"cadence\": " << r.cadence << ", \"seconds\": " << r.seconds
        << ", \"elements_per_sec\": " << r.elements_per_sec
        << ", \"overhead_pct\": " << r.overhead_pct
        << ", \"checkpoints_written\": " << r.checkpoints_written
        << ", \"wal_records\": " << r.wal_records << "}"
        << (i + 1 < checkpoints.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    out << "    {\"workers\": " << r.workers
        << ", \"measured_seconds\": " << r.measured_seconds
        << ", \"measured_speedup\": " << r.measured_speedup
        << ", \"simulated_makespan_seconds\": " << r.simulated_makespan_seconds
        << ", \"simulated_speedup\": " << r.simulated_speedup << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"accept_modes\": [\n";
  for (size_t i = 0; i < accept_modes.size(); ++i) {
    const AcceptModeRow& r = accept_modes[i];
    out << "    {\"config\": \"" << r.config << "\", \"mode\": \"" << r.mode
        << "\", \"seconds\": " << r.seconds
        << ", \"elements_per_sec\": " << r.elements_per_sec
        << ", \"speedup_vs_skip\": " << r.speedup_vs_skip << "}"
        << (i + 1 < accept_modes.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"scaling_parallel\": [\n";
  for (size_t i = 0; i < parallel.size(); ++i) {
    const ParallelScalingRow& r = parallel[i];
    out << "    {\"workers\": " << r.workers
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"busy_makespan_seconds\": " << r.busy_makespan_seconds
        << ", \"measured_speedup\": " << r.measured_speedup
        << ", \"simulated_makespan_seconds\": " << r.simulated_makespan_seconds
        << ", \"simulated_speedup\": " << r.simulated_speedup
        << ", \"determinism_ok\": " << (determinism_ok ? "true" : "false")
        << "}" << (i + 1 < parallel.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

int Main(bool smoke) {
  const uint64_t elements =
      FullScale() ? (1ull << 26) : (smoke ? (1ull << 20) : (1ull << 22));
  const uint64_t stripes = smoke ? 64 : 512;
  const int reps = smoke ? 1 : 3;

  std::vector<PathRow> paths;
  std::vector<CheckpointRow> checkpoints;
  std::vector<ScalingRow> scaling;
  std::vector<AcceptModeRow> accept_modes;
  std::vector<ParallelScalingRow> parallel;
  RunPathSection(elements, reps, paths);
  RunCheckpointSection(elements, reps, checkpoints);
  RunScalingSection(elements, reps, scaling);
  RunAcceptModeSection(elements, reps, accept_modes);
  const bool determinism_ok =
      RunParallelScalingSection(elements, stripes, reps, parallel);
  if (!WriteJson("BENCH_ingest.json", elements, elements, stripes,
                 determinism_ok, paths, checkpoints, scaling, accept_modes,
                 parallel)) {
    std::fprintf(stderr, "failed to write BENCH_ingest.json\n");
    return 1;
  }
  std::printf("Wrote BENCH_ingest.json\n");
  if (!determinism_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel ingest is not interleaving-independent\n");
    return 1;
  }
  if (smoke) {
    // CI gate: the sharded path's useful-work distribution must actually
    // spread — busy-makespan speedup at 4 shards comfortably above 2x.
    for (const ParallelScalingRow& r : parallel) {
      if (r.workers == 4 && r.measured_speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: parallel busy-makespan speedup %.2fx at 4 "
                     "workers (gate: 2x)\n",
                     r.measured_speedup);
        return 1;
      }
    }
    // CI gate: asynchronous checkpointing must stay off the hot path. The
    // 64Ki cadence costs a couple of snapshots plus coalesced WAL deltas
    // over the whole stream; 25% is a generous noise allowance on the
    // smoke machine, an order of magnitude under the synchronous-era cost.
    for (const CheckpointRow& r : checkpoints) {
      if (r.cadence == 65536 && r.overhead_pct > 25.0) {
        std::fprintf(stderr,
                     "FAIL: checkpoint overhead %.2f%% at 64Ki cadence "
                     "(gate: 25%%)\n",
                     r.overhead_pct);
        return 1;
      }
      if (r.cadence > 0 && r.checkpoints_written == 0) {
        std::fprintf(stderr,
                     "FAIL: cadence %llu wrote no snapshot generation\n",
                     static_cast<unsigned long long>(r.cadence));
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace sampwh::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_ingest_throughput [--smoke]\n");
      return 2;
    }
  }
  return sampwh::bench::Main(smoke);
}
