// Figure 5: relative error of the Eq. (1) normal approximation for the
// Algorithm HB sampling rate q(N, p, n_F), against the exact solution of
// f(q) = P{Binomial(N, q) > n_F} = p obtained by bisection on the
// incomplete-beta form of the binomial tail.
//
// Paper setting: N = 10^5, p swept over [1e-5, 5e-3], n_F in {10^2, 10^3,
// 10^4}. The paper reports a maximum relative error of 2.765%, typically
// much lower; the harness prints the same series plus the observed
// maximum.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/core/qbound.h"

namespace {

using sampwh::ApproxBernoulliRate;
using sampwh::ExactBernoulliRate;

}  // namespace

int main() {
  const uint64_t n = 100000;
  const std::vector<uint64_t> n_f_values = {100, 1000, 10000};
  // Log-spaced p from 1e-5 to 5e-3 (the x-axis of Fig. 5).
  std::vector<double> p_values;
  for (double p = 1e-5; p <= 5.001e-3; p *= std::pow(500.0, 1.0 / 16.0)) {
    p_values.push_back(p);
  }

  std::printf("Figure 5: relative error (%%) of the Eq. (1) approximation "
              "of q(N=1e5, p, n_F)\n\n");
  std::printf("%-12s", "p");
  for (const uint64_t n_f : n_f_values) {
    std::printf("n_F=%-12llu", static_cast<unsigned long long>(n_f));
  }
  std::printf("\n");

  double max_error_pct = 0.0;
  for (const double p : p_values) {
    std::printf("%-12.3e", p);
    for (const uint64_t n_f : n_f_values) {
      const double approx = ApproxBernoulliRate(n, p, n_f);
      const double exact = ExactBernoulliRate(n, p, n_f);
      const double rel_err_pct =
          100.0 * std::fabs(approx - exact) / exact;
      max_error_pct = std::max(max_error_pct, rel_err_pct);
      std::printf("%-16.4f", rel_err_pct);
    }
    std::printf("\n");
  }
  std::printf("\nmax relative error: %.3f%%  (paper: max = 2.765%%, "
              "typically much lower)\n",
              max_error_pct);
  return 0;
}
