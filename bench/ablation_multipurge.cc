// Ablation (§4.1): Algorithm HB versus its multiple-purge variant. The
// paper dismisses the variant as dominated — "somewhat more expensive than
// Algorithm HB on average, and the final sample sizes would tend to be
// smaller and less stable". This bench measures both halves of that claim:
// ingest throughput, and the mean/stddev of the final sample size on a
// stream that overshoots the planned population (the regime where the
// variant actually purges).

#include <cmath>

#include <benchmark/benchmark.h>

#include "src/core/hybrid_bernoulli.h"
#include "src/core/multi_purge_sampler.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

constexpr uint64_t kF = 8 * 1024;       // n_F = 1024
constexpr uint64_t kPlanned = 100000;   // what the sampler is told
constexpr uint64_t kActual = 400000;    // what actually arrives (4x)

void BM_HbIngestOvershoot(benchmark::State& state) {
  double size_sum = 0.0;
  double size_sq = 0.0;
  int runs = 0;
  uint64_t seed = 77;
  for (auto _ : state) {
    HybridBernoulliSampler::Options options;
    options.footprint_bound_bytes = kF;
    options.expected_population_size = kPlanned;
    HybridBernoulliSampler sampler(options, Pcg64(seed++));
    DataGenerator gen = DataGenerator::Unique(kActual, 1);
    while (gen.HasNext()) sampler.Add(gen.Next());
    const double size = static_cast<double>(sampler.Finalize().size());
    size_sum += size;
    size_sq += size * size;
    ++runs;
  }
  state.SetItemsProcessed(state.iterations() * kActual);
  const double mean = size_sum / runs;
  state.counters["final_size_mean"] = mean;
  state.counters["final_size_sd"] =
      std::sqrt(std::max(0.0, size_sq / runs - mean * mean));
}
BENCHMARK(BM_HbIngestOvershoot)->Unit(benchmark::kMillisecond);

void BM_MultiPurgeIngestOvershoot(benchmark::State& state) {
  double size_sum = 0.0;
  double size_sq = 0.0;
  double purges = 0.0;
  int runs = 0;
  uint64_t seed = 177000;
  for (auto _ : state) {
    MultiPurgeBernoulliSampler::Options options;
    options.footprint_bound_bytes = kF;
    options.expected_population_size = kPlanned;
    MultiPurgeBernoulliSampler sampler(options, Pcg64(seed++));
    DataGenerator gen = DataGenerator::Unique(kActual, 1);
    while (gen.HasNext()) sampler.Add(gen.Next());
    purges += static_cast<double>(sampler.forced_purges());
    const double size = static_cast<double>(sampler.Finalize().size());
    size_sum += size;
    size_sq += size * size;
    ++runs;
  }
  state.SetItemsProcessed(state.iterations() * kActual);
  const double mean = size_sum / runs;
  state.counters["final_size_mean"] = mean;
  state.counters["final_size_sd"] =
      std::sqrt(std::max(0.0, size_sq / runs - mean * mean));
  state.counters["forced_purges"] = purges / runs;
}
BENCHMARK(BM_MultiPurgeIngestOvershoot)->Unit(benchmark::kMillisecond);

// On-plan streams (no overshoot): the variant should behave like HB's
// phase 2, so any throughput gap here is pure overhead.
void BM_HbIngestOnPlan(benchmark::State& state) {
  for (auto _ : state) {
    HybridBernoulliSampler::Options options;
    options.footprint_bound_bytes = kF;
    options.expected_population_size = kPlanned;
    HybridBernoulliSampler sampler(options, Pcg64(79));
    DataGenerator gen = DataGenerator::Unique(kPlanned, 1);
    while (gen.HasNext()) sampler.Add(gen.Next());
    benchmark::DoNotOptimize(sampler.Finalize().size());
  }
  state.SetItemsProcessed(state.iterations() * kPlanned);
}
BENCHMARK(BM_HbIngestOnPlan)->Unit(benchmark::kMillisecond);

void BM_MultiPurgeIngestOnPlan(benchmark::State& state) {
  for (auto _ : state) {
    MultiPurgeBernoulliSampler::Options options;
    options.footprint_bound_bytes = kF;
    options.expected_population_size = kPlanned;
    MultiPurgeBernoulliSampler sampler(options, Pcg64(80));
    DataGenerator gen = DataGenerator::Unique(kPlanned, 1);
    while (gen.HasNext()) sampler.Add(gen.Next());
    benchmark::DoNotOptimize(sampler.Finalize().size());
  }
  state.SetItemsProcessed(state.iterations() * kPlanned);
}
BENCHMARK(BM_MultiPurgeIngestOnPlan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
