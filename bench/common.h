// Shared scaffolding for the figure-reproduction harnesses: scenario
// runners that sample partitioned data sets (optionally in parallel) and
// serially merge the per-partition samples, timing the two stages
// separately — matching the paper's sample-time / merge-time bar charts.
//
// All harnesses run at a laptop-friendly reduced scale by default and
// honor REPRO_FULL=1 to run the paper's full parameter grid (2^26
// elements, up to 1024 partitions, 3 repetitions).

#ifndef SAMPWH_BENCH_COMMON_H_
#define SAMPWH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/any_sampler.h"
#include "src/core/merge.h"
#include "src/workload/generators.h"

namespace sampwh::bench {

/// True when the REPRO_FULL environment variable is set to a truthy value.
bool FullScale();

/// Number of repetitions per scenario (paper: 3; reduced: 1).
int Repetitions();

struct ScenarioResult {
  /// Wall time of an idealized `simulated_workers`-node cluster sampling
  /// the partitions in parallel: the makespan of a longest-processing-time
  /// assignment of the measured per-partition times. This is the
  /// substitution for the paper's 2-machine/4-CPU testbed (DESIGN.md §2);
  /// on partitions >= workers it approaches sample_seconds_serial / W.
  double sample_seconds = 0.0;
  /// Sum of per-partition sampling times (single-CPU cost).
  double sample_seconds_serial = 0.0;
  double merge_seconds = 0.0;
  uint64_t merged_sample_size = 0;
  uint64_t total_elements = 0;
  uint64_t partitions = 0;
};

struct ScenarioSpec {
  SamplerKind algorithm = SamplerKind::kHybridReservoir;
  DataKind data = DataKind::kUnique;
  uint64_t total_elements = 1 << 22;
  uint64_t partitions = 1;
  /// F (HB/HR). The paper's main setting is 64 KiB = n_F 8192.
  uint64_t footprint_bound_bytes = 64 * 1024;
  /// p for HB.
  double exceedance_probability = 1e-3;
  /// Fixed rate for SB, chosen to land near n_F for comparability.
  double sb_rate = 0.0;  // 0: derive as n_F / partition_size (capped at 1)
  /// Size of the simulated sampling cluster (paper: 2 machines with dual
  /// CPUs = 4 workers). Overridable via the REPRO_WORKERS env variable.
  uint64_t simulated_workers = 4;
  uint64_t seed = 20060403;
};

/// REPRO_WORKERS env value, defaulting to `fallback`.
uint64_t SimulatedWorkers(uint64_t fallback = 4);

/// Usable hardware thread count for bench metadata and sizing.
/// std::thread::hardware_concurrency() is allowed to return 0 ("unknown")
/// and, under some container runtimes, reports a value that ignores the
/// cgroup CPU quota; fall back to sysconf(_SC_NPROCESSORS_ONLN) and
/// finally to 1 so benches never report or divide by zero.
unsigned HardwareThreads();

/// Samples every partition of the scenario (serially, timing aggregate CPU
/// work as the paper's instrumented executables did), then merges the
/// partition samples with serial pairwise merges (SB: rate-equalized
/// union). Returns per-stage wall times and the merged sample size.
ScenarioResult RunScenario(const ScenarioSpec& spec);

/// Mean of `reps` runs of the scenario with distinct seeds.
ScenarioResult RunScenarioAveraged(const ScenarioSpec& spec, int reps);

/// Formats seconds with millisecond resolution.
std::string FormatSeconds(double s);

/// Prints an aligned row of columns to stdout.
void PrintRow(const std::vector<std::string>& columns,
              const std::vector<int>& widths);

}  // namespace sampwh::bench

#endif  // SAMPWH_BENCH_COMMON_H_
