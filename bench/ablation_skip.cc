// Ablation: Vitter's Algorithm X (sequential search, O(skip) per call)
// versus Algorithm Z (rejection, O(1) expected) for the reservoir skip
// function, across n/k ratios. Vitter's guidance — X wins while n is a
// small multiple of k, Z wins beyond — is what VitterSkip::kAuto encodes
// with its switch factor of 22.

#include <benchmark/benchmark.h>

#include "src/core/vitter.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

void RunSkips(benchmark::State& state, VitterSkip::Mode mode) {
  const uint64_t k = 1024;
  const uint64_t ratio = static_cast<uint64_t>(state.range(0));
  Pcg64 rng(1);
  for (auto _ : state) {
    // Rebuild the stream walk each iteration batch: walk ~64 skips
    // starting from n = ratio * k.
    VitterSkip skip(k, mode);
    uint64_t n = ratio * k;
    for (int i = 0; i < 64; ++i) {
      n = skip.NextInsertionIndex(rng, n);
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}

void BM_SkipAlgorithmX(benchmark::State& state) {
  RunSkips(state, VitterSkip::Mode::kAlgorithmX);
}
BENCHMARK(BM_SkipAlgorithmX)->Arg(1)->Arg(4)->Arg(22)->Arg(128)->Arg(1024);

void BM_SkipAlgorithmZ(benchmark::State& state) {
  RunSkips(state, VitterSkip::Mode::kAlgorithmZ);
}
BENCHMARK(BM_SkipAlgorithmZ)->Arg(1)->Arg(4)->Arg(22)->Arg(128)->Arg(1024);

void BM_SkipAuto(benchmark::State& state) {
  RunSkips(state, VitterSkip::Mode::kAuto);
}
BENCHMARK(BM_SkipAuto)->Arg(1)->Arg(4)->Arg(22)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
