// Ablation: binomial variate generation — exact CDF inversion versus
// Hörmann's BTRS transformed rejection — around the library's np = 30
// crossover. purgeBernoulli draws one binomial per (value, count) pair, so
// this generator sits on the merge hot path.

#include <benchmark/benchmark.h>

#include "src/util/distributions.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

// The public SampleBinomial dispatches on np; to compare the raw methods we
// pick parameter points solidly inside each regime and also time the
// dispatcher at the crossover.
void BM_BinomialSmallNp(benchmark::State& state) {
  // np = 5: inversion regime.
  Pcg64 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBinomial(rng, 100, 0.05));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialSmallNp);

void BM_BinomialNearCrossover(benchmark::State& state) {
  // np = 29 vs np = 31 straddle the dispatch threshold.
  Pcg64 rng(2);
  const double p = state.range(0) == 0 ? 0.029 : 0.031;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBinomial(rng, 1000, p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialNearCrossover)->Arg(0)->Arg(1);

void BM_BinomialLargeNp(benchmark::State& state) {
  // np = 10^4: BTRS regime; inversion here would walk ~10^4 terms.
  Pcg64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBinomial(rng, 100000, 0.1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialLargeNp);

void BM_BinomialHalf(benchmark::State& state) {
  // Worst case for symmetry tricks: p = 0.5, large n.
  Pcg64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBinomial(rng, 1 << 20, 0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BinomialHalf);

void BM_PurgeStylePairThinning(benchmark::State& state) {
  // The purgeBernoulli inner loop: thin a (value, count) pair with one
  // binomial draw; count drawn from a skewed distribution of pair sizes.
  Pcg64 rng(5);
  const uint64_t counts[] = {1, 1, 1, 2, 3, 8, 100, 5000};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SampleBinomial(rng, counts[i++ & 7], 0.37));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PurgeStylePairThinning);

}  // namespace
}  // namespace sampwh

BENCHMARK_MAIN();
