// Query-path throughput harness for the read caches: measures union-query
// latency against a FileSampleStore-backed warehouse
//
//   cold   caches invalidated before every query — store reads,
//          deserialization and the full merge tree on the critical path
//   warm   repeated identical query — sample cache and memoized merge
//          tree absorb the work
//
// across partition counts (16/64/256) and reader-thread counts (1/4/8),
// with the caches on (sample cache + merge memo) and off. Both
// configurations run the balanced merge tree, so cold-vs-warm and
// on-vs-off isolate the caches rather than the tree shape. The harness
// also asserts the caches' core contract: the warm result is byte-for-byte
// identical to the cold result (serialized form compared), because every
// merge node's RNG stream is derived from the node's identity.
//
// Results go to stdout as a table and to BENCH_query.json in the working
// directory. --smoke (or QUERY_BENCH_SMOKE=1) runs a ~2 second subset for
// CI; full mode gates on warm >= 5x cold at 256 partitions, smoke on
// warm >= 2x cold at 64 partitions. Exit status 1 when the gate fails.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/util/logging.h"
#include "src/util/serialization.h"
#include "src/util/timer.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

namespace sampwh::bench {
namespace {

struct BenchParams {
  bool smoke = false;
  std::vector<uint64_t> partition_counts;
  std::vector<unsigned> reader_counts;
  uint64_t per_partition_elements = 0;
  int cold_reps = 0;
  int warm_reps = 0;
  double qps_seconds = 0.0;   // per reader configuration
  uint64_t gate_partitions = 0;
  double gate_speedup = 0.0;
};

BenchParams MakeParams(bool smoke) {
  BenchParams p;
  p.smoke = smoke;
  if (smoke) {
    p.partition_counts = {16, 64};
    p.reader_counts = {1, 4};
    p.per_partition_elements = 512;
    p.cold_reps = 2;
    p.warm_reps = 5;
    p.qps_seconds = 0.15;
    p.gate_partitions = 64;
    p.gate_speedup = 2.0;
  } else {
    p.partition_counts = {16, 64, 256};
    p.reader_counts = {1, 4, 8};
    p.per_partition_elements = 4096;
    p.cold_reps = 3;
    p.warm_reps = 20;
    p.qps_seconds = 0.5;
    p.gate_partitions = 256;
    p.gate_speedup = 5.0;
  }
  return p;
}

struct QpsPoint {
  unsigned readers = 1;
  double qps = 0.0;
};

struct SeriesRow {
  uint64_t partitions = 0;
  bool cache = false;
  double cold_latency_seconds = 0.0;
  double warm_latency_seconds = 0.0;
  double warm_speedup = 1.0;
  std::vector<QpsPoint> qps;
};

std::string SerializeSample(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return std::string(writer.buffer().begin(), writer.buffer().end());
}

/// A file-backed warehouse holding `partitions` rolled-in partition
/// samples of the "q" dataset, with both read caches sized by `cached`.
struct BenchWarehouse {
  std::unique_ptr<Warehouse> warehouse;
  std::string directory;

  BenchWarehouse() = default;
  BenchWarehouse(BenchWarehouse&&) = default;
  BenchWarehouse& operator=(BenchWarehouse&&) = default;
  ~BenchWarehouse() {
    warehouse.reset();
    std::error_code ec;
    std::filesystem::remove_all(directory, ec);
  }
};

BenchWarehouse MakeWarehouse(const BenchParams& params, uint64_t partitions,
                             bool cached) {
  BenchWarehouse bw;
  bw.directory = (std::filesystem::temp_directory_path() /
                  ("sampwh_query_bench_" + std::to_string(partitions) +
                   (cached ? "_on" : "_off")))
                     .string();
  std::filesystem::remove_all(bw.directory);
  auto store = FileSampleStore::Open(bw.directory);
  SAMPWH_CHECK(store.ok());

  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 16 * 1024;
  options.merge_strategy = MergeStrategy::kBalancedTree;
  options.worker_threads = 4;
  options.sample_cache_bytes = cached ? (256ull << 20) : 0;
  options.merge_memo_bytes = cached ? (256ull << 20) : 0;
  bw.warehouse =
      std::make_unique<Warehouse>(options, std::move(store).value());
  SAMPWH_CHECK(bw.warehouse->CreateDataset("q").ok());

  const std::vector<Value> values =
      DataGenerator::Unique(partitions * params.per_partition_elements)
          .TakeAll();
  auto ids = bw.warehouse->IngestBatch("q", values, partitions);
  SAMPWH_CHECK(ids.ok());
  SAMPWH_CHECK(ids.value().size() == partitions);
  return bw;
}

PartitionSample QueryOnce(Warehouse& warehouse) {
  auto merged = warehouse.MergedSampleAll("q");
  SAMPWH_CHECK(merged.ok());
  return std::move(merged).value();
}

SeriesRow RunSeries(const BenchParams& params, uint64_t partitions,
                    bool cached) {
  BenchWarehouse bw = MakeWarehouse(params, partitions, cached);
  Warehouse& wh = *bw.warehouse;

  SeriesRow row;
  row.partitions = partitions;
  row.cache = cached;

  // Cold: every repetition starts from dropped caches. For the uncached
  // configuration invalidation is a no-op and cold == warm by definition.
  std::string cold_bytes;
  row.cold_latency_seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < params.cold_reps; ++r) {
    wh.InvalidateCaches();
    WallTimer timer;
    PartitionSample sample = QueryOnce(wh);
    row.cold_latency_seconds =
        std::min(row.cold_latency_seconds, timer.ElapsedSeconds());
    if (r == 0) cold_bytes = SerializeSample(sample);
  }

  // Warm: repeated identical query (one untimed warming repetition).
  PartitionSample warm_sample = QueryOnce(wh);
  {
    WallTimer timer;
    for (int r = 0; r < params.warm_reps; ++r) warm_sample = QueryOnce(wh);
    row.warm_latency_seconds = timer.ElapsedSeconds() / params.warm_reps;
  }
  row.warm_speedup =
      row.cold_latency_seconds / std::max(row.warm_latency_seconds, 1e-12);

  if (cached) {
    // The caches' contract: warm results are byte-identical to cold ones,
    // and invalidating everything reproduces the same bytes again.
    SAMPWH_CHECK(SerializeSample(warm_sample) == cold_bytes);
    wh.InvalidateCaches();
    SAMPWH_CHECK(SerializeSample(QueryOnce(wh)) == cold_bytes);
  }

  // Sustained throughput: R readers issue the query in a closed loop
  // against the warm warehouse for a fixed wall-time window.
  for (const unsigned readers : params.reader_counts) {
    QueryOnce(wh);  // re-warm after the invalidation above
    std::atomic<uint64_t> completed{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    threads.reserve(readers);
    WallTimer timer;
    for (unsigned t = 0; t < readers; ++t) {
      threads.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          QueryOnce(wh);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        params.qps_seconds));
    stop.store(true);
    for (std::thread& t : threads) t.join();
    const double elapsed = timer.ElapsedSeconds();
    QpsPoint point;
    point.readers = readers;
    point.qps = static_cast<double>(completed.load()) / elapsed;
    row.qps.push_back(point);
  }
  return row;
}

void PrintSeriesRow(const SeriesRow& row) {
  std::printf("%-11llu %-6s %11.6fs %11.6fs %8.1fx",
              static_cast<unsigned long long>(row.partitions),
              row.cache ? "on" : "off", row.cold_latency_seconds,
              row.warm_latency_seconds, row.warm_speedup);
  for (const QpsPoint& p : row.qps) {
    std::printf("  %u:%.0f", p.readers, p.qps);
  }
  std::printf("\n");
}

bool WriteJson(const std::string& path, const BenchParams& params,
               const std::vector<SeriesRow>& rows, double gate_measured,
               bool gate_passed) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"config\": {\"smoke\": " << (params.smoke ? "true" : "false")
      << ", \"per_partition_elements\": " << params.per_partition_elements
      << ", \"worker_threads\": 4, \"store\": \"file\""
      << ", \"hardware_threads\": " << HardwareThreads()
      << "},\n";
  out << "  \"series\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SeriesRow& r = rows[i];
    out << "    {\"partitions\": " << r.partitions
        << ", \"cache\": " << (r.cache ? "true" : "false")
        << ", \"cold_latency_seconds\": " << r.cold_latency_seconds
        << ", \"warm_latency_seconds\": " << r.warm_latency_seconds
        << ", \"warm_speedup\": " << r.warm_speedup << ", \"qps\": [";
    for (size_t q = 0; q < r.qps.size(); ++q) {
      out << "{\"readers\": " << r.qps[q].readers
          << ", \"qps\": " << r.qps[q].qps << "}"
          << (q + 1 < r.qps.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"gate\": {\"partitions\": " << params.gate_partitions
      << ", \"required_speedup\": " << params.gate_speedup
      << ", \"measured_speedup\": " << gate_measured
      << ", \"passed\": " << (gate_passed ? "true" : "false") << "}\n";
  out << "}\n";
  return out.good();
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (const char* env = std::getenv("QUERY_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    smoke = true;
  }
  const BenchParams params = MakeParams(smoke);

  std::printf("Union-query latency and throughput, FileSampleStore%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%-11s %-6s %12s %12s %9s  qps(readers:qps)\n", "partitions",
              "cache", "cold", "warm", "speedup");

  std::vector<SeriesRow> rows;
  double gate_measured = 0.0;
  for (const uint64_t partitions : params.partition_counts) {
    for (const bool cached : {true, false}) {
      rows.push_back(RunSeries(params, partitions, cached));
      PrintSeriesRow(rows.back());
      if (cached && partitions == params.gate_partitions) {
        gate_measured = rows.back().warm_speedup;
      }
    }
  }

  const bool gate_passed = gate_measured >= params.gate_speedup;
  if (!WriteJson("BENCH_query.json", params, rows, gate_measured,
                 gate_passed)) {
    std::fprintf(stderr, "failed to write BENCH_query.json\n");
    return 1;
  }
  std::printf("Wrote BENCH_query.json\n");
  if (!gate_passed) {
    std::fprintf(stderr,
                 "FAIL: warm speedup %.2fx at %llu partitions is below the "
                 "%.1fx gate\n",
                 gate_measured,
                 static_cast<unsigned long long>(params.gate_partitions),
                 params.gate_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace sampwh::bench

int main(int argc, char** argv) { return sampwh::bench::Main(argc, argv); }
