// End-to-end scenarios straight from the paper's §2:
//  1. Bulk load an initial batch in parallel, then merge periodic update
//     partitions into a running sample of the whole data set.
//  2. Split an overwhelming stream across workers, sample concurrently,
//     merge on demand.
//  3. Partition temporally (daily), roll daily samples in, build weekly /
//     monthly rollups, roll old days out.
//  4. Dictionary-encoded string data sampled through the same machinery.
// Every scenario checks statistical plausibility of downstream estimates
// against ground truth.

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/estimators.h"
#include "src/warehouse/dictionary.h"
#include "src/warehouse/splitter.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

WarehouseOptions DefaultOptions(SamplerKind kind, uint64_t f = 8192) {
  WarehouseOptions options;
  options.sampler.kind = kind;
  options.sampler.footprint_bound_bytes = f;
  return options;
}

TEST(EndToEndTest, BulkLoadPlusPeriodicUpdates) {
  // Scenario 1 (§2): parallel initial load, then periodic smaller updates;
  // the merged sample always covers the full data set and supports
  // accurate estimates.
  Warehouse wh(DefaultOptions(SamplerKind::kHybridBernoulli));
  ASSERT_TRUE(wh.CreateDataset("sales").ok());

  // Initial bulk load: 200k values uniform on [1, 1000], 8-way parallel.
  DataGenerator initial = DataGenerator::Uniform(200000, 1000, 42);
  ThreadPool pool(4);
  ASSERT_TRUE(wh.IngestBatch("sales", initial.TakeAll(), 8, &pool).ok());

  // Ten periodic updates of 10k values each.
  for (int update = 0; update < 10; ++update) {
    DataGenerator gen =
        DataGenerator::Uniform(10000, 1000, 1000 + update);
    ASSERT_TRUE(wh.IngestBatch("sales", gen.TakeAll(), 1).ok());
  }

  const auto merged = wh.MergedSampleAll("sales");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().parent_size(), 300000u);
  EXPECT_LE(merged.value().footprint_bytes(), 8192u);

  // Mean of Uniform[1,1000] is 500.5.
  const auto mean = EstimateMean(merged.value());
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(mean.value().value, 500.5,
              5.0 * mean.value().standard_error + 1.0);

  // Selectivity of v <= 100 is ~0.1.
  const auto sel = EstimateSelectivity(merged.value(),
                                       [](Value v) { return v <= 100; });
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel.value().value, 0.1, 5.0 * sel.value().standard_error + 0.01);
}

TEST(EndToEndTest, SplitStreamAcrossWorkersAndMergeOnDemand) {
  // Scenario 2 (§2): the stream is split over "machines" (ingestors); each
  // samples independently; the warehouse merges on demand.
  Warehouse wh(DefaultOptions(SamplerKind::kHybridReservoir, 2048));
  ASSERT_TRUE(wh.CreateDataset("clicks").ok());

  constexpr size_t kWorkers = 4;
  StreamSplitter splitter(kWorkers, SplitPolicy::kRoundRobin);
  std::vector<std::unique_ptr<StreamIngestor>> ingestors;
  for (size_t w = 0; w < kWorkers; ++w) {
    ingestors.push_back(std::make_unique<StreamIngestor>(
        &wh, "clicks", MakeCountPartitioner(5000)));
  }
  DataGenerator gen = DataGenerator::Uniform(60000, 1000000, 7);
  while (gen.HasNext()) {
    const Value v = gen.Next();
    ASSERT_TRUE(ingestors[splitter.Route(v)]->Append(v).ok());
  }
  for (auto& ingestor : ingestors) ASSERT_TRUE(ingestor->Flush().ok());

  const auto info = wh.GetDatasetInfo("clicks");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().total_parent_size, 60000u);
  EXPECT_EQ(info.value().num_partitions, 12u);  // 3 per worker

  const auto merged = wh.MergedSampleAll("clicks");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 60000u);
  EXPECT_EQ(merged.value().size(), 256u);  // n_F for 2048 bytes

  const auto mean = EstimateMean(merged.value());
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(mean.value().value, 500000.5,
              5.0 * mean.value().standard_error);
}

TEST(EndToEndTest, DailyPartitionsWeeklyRollupsAndRollOut) {
  // Scenario 3 (§2): one partition per day; weekly and monthly samples by
  // merging; old days rolled out as the retention window slides.
  Warehouse wh(DefaultOptions(SamplerKind::kHybridReservoir, 1024));
  ASSERT_TRUE(wh.CreateDataset("events").ok());
  StreamIngestor ingestor(&wh, "events", MakeTemporalPartitioner(24));

  // 28 days, 2000 events/day; day d produces values centered on d.
  constexpr uint64_t kDays = 28;
  constexpr uint64_t kPerDay = 2000;
  for (uint64_t day = 0; day < kDays; ++day) {
    Pcg64 rng(500 + day);
    for (uint64_t i = 0; i < kPerDay; ++i) {
      const uint64_t ts = day * 24 + (i * 24) / kPerDay;
      const Value v = static_cast<Value>(day * 1000 + rng.UniformInt(1000));
      ASSERT_TRUE(ingestor.Append(v, ts).ok());
    }
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  ASSERT_EQ(ingestor.rolled_in().size(), kDays);

  // Weekly rollup for week 2 (days 7..13).
  const auto week2 = wh.MergedSampleInTimeRange("events", 7 * 24,
                                                14 * 24 - 1);
  ASSERT_TRUE(week2.ok());
  EXPECT_EQ(week2.value().parent_size(), 7 * kPerDay);
  week2.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_GE(v, 7000);
    EXPECT_LT(v, 14000);
  });

  // Monthly rollup covers everything.
  const auto month = wh.MergedSampleAll("events");
  ASSERT_TRUE(month.ok());
  EXPECT_EQ(month.value().parent_size(), kDays * kPerDay);

  // Slide the retention window: roll out week 1 (days 0..6).
  const auto old_parts = wh.PartitionsInTimeRange("events", 0, 7 * 24 - 1);
  ASSERT_TRUE(old_parts.ok());
  EXPECT_EQ(old_parts.value().size(), 7u);
  for (const PartitionId id : old_parts.value()) {
    ASSERT_TRUE(wh.RollOut("events", id).ok());
  }
  const auto remaining = wh.MergedSampleAll("events");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining.value().parent_size(), (kDays - 7) * kPerDay);
  remaining.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_GE(v, 7000);  // week 1 values are gone
  });
}

TEST(EndToEndTest, DictionaryEncodedStringDataset) {
  // Scenario 4: string-valued data flows through the dictionary, gets
  // sampled as codes, and decodes back to strings at query time.
  Warehouse wh(DefaultOptions(SamplerKind::kHybridReservoir, 512));
  ASSERT_TRUE(wh.CreateDataset("countries").ok());
  ValueDictionary dict;
  const std::vector<std::string> tokens = {"us", "de", "jp", "br", "in"};
  // Skewed token stream: token i appears (5 - i) * 4000 times.
  std::vector<Value> encoded;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Value code = dict.Encode(tokens[i]);
    encoded.insert(encoded.end(), (5 - i) * 4000, code);
  }
  ASSERT_TRUE(wh.IngestBatch("countries", encoded, 4).ok());
  const auto merged = wh.MergedSampleAll("countries");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 60000u);

  // Estimated frequency of "us" (~20000 of 60000) within tolerance; decode
  // every sampled code successfully.
  const auto us_freq =
      EstimateFrequency(merged.value(), dict.Lookup("us").value());
  ASSERT_TRUE(us_freq.ok());
  EXPECT_NEAR(us_freq.value().value, 20000.0,
              5.0 * us_freq.value().standard_error + 500.0);
  merged.value().histogram().ForEach([&dict](Value code, uint64_t) {
    EXPECT_TRUE(dict.Decode(code).ok());
  });
}

TEST(EndToEndTest, FileBackedWarehouseFullCycle) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_e2e").string();
  std::filesystem::remove_all(dir);
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Warehouse wh(DefaultOptions(SamplerKind::kHybridBernoulli, 4096),
                 std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("persisted").ok());
    DataGenerator gen = DataGenerator::Uniform(50000, 1000, 99);
    ASSERT_TRUE(wh.IngestBatch("persisted", gen.TakeAll(), 5).ok());
    const auto merged = wh.MergedSampleAll("persisted");
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().parent_size(), 50000u);
  }
  // The samples survive on disk beyond the warehouse's lifetime.
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    const auto ids = store.value()->List("persisted");
    ASSERT_TRUE(ids.ok());
    EXPECT_EQ(ids.value().size(), 5u);
    for (const PartitionId id : ids.value()) {
      const auto s = store.value()->Get({"persisted", id});
      ASSERT_TRUE(s.ok());
      EXPECT_TRUE(s.value().Validate().ok());
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(EndToEndTest, HbVersusHrSampleSizeCharacter) {
  // §4.3 / §5 conclusion 4, as an integration check: on identical data,
  // HR's merged sample is exactly n_F while HB's is smaller and random.
  const uint64_t f = 2048;  // n_F = 256
  DataGenerator gen = DataGenerator::Uniform(100000, 1000000, 3);
  const std::vector<Value> data = gen.TakeAll();

  Warehouse hr(DefaultOptions(SamplerKind::kHybridReservoir, f));
  ASSERT_TRUE(hr.CreateDataset("d").ok());
  ASSERT_TRUE(hr.IngestBatch("d", data, 8).ok());
  const auto hr_merged = hr.MergedSampleAll("d");
  ASSERT_TRUE(hr_merged.ok());
  EXPECT_EQ(hr_merged.value().size(), 256u);

  Warehouse hb(DefaultOptions(SamplerKind::kHybridBernoulli, f));
  ASSERT_TRUE(hb.CreateDataset("d").ok());
  ASSERT_TRUE(hb.IngestBatch("d", data, 8).ok());
  const auto hb_merged = hb.MergedSampleAll("d");
  ASSERT_TRUE(hb_merged.ok());
  EXPECT_LT(hb_merged.value().size(), 256u);
  EXPECT_GT(hb_merged.value().size(), 128u);  // but not collapsed
}

}  // namespace
}  // namespace sampwh
