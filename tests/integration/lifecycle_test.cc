// A "month in the life" of a file-backed sample warehouse, exercising the
// full operational surface in one continuous scenario: streaming ingestion
// with temporal partitioning, weekly compaction, retention-driven
// roll-out, manifest persistence, process "restart", and continued
// operation afterwards — with estimate sanity-checks at every stage.

#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/stats/estimators.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

constexpr uint64_t kTicksPerDay = 24;
constexpr uint64_t kEventsPerDay = 3000;

WarehouseOptions Options() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 2048;  // n_F = 256
  return options;
}

// Day `day` produces values uniform on [day*100, day*100 + 100000).
void IngestDay(StreamIngestor* ingestor, uint64_t day) {
  Pcg64 rng(9000 + day);
  for (uint64_t i = 0; i < kEventsPerDay; ++i) {
    const uint64_t ts = day * kTicksPerDay + (i * kTicksPerDay) / kEventsPerDay;
    const Value v = static_cast<Value>(day * 100 + rng.UniformInt(100000));
    ASSERT_TRUE(ingestor->Append(v, ts).ok());
  }
}

TEST(LifecycleTest, FourWeeksOfOperation) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_lifecycle").string();
  const std::string manifest = dir + "/MANIFEST";
  std::filesystem::remove_all(dir);

  // ---- Weeks 1-3: daily ingestion, weekly compaction --------------------
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Warehouse wh(Options(), std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("events").ok());
    StreamIngestor ingestor(&wh, "events",
                            MakeTemporalPartitioner(kTicksPerDay));
    for (uint64_t day = 0; day < 21; ++day) {
      IngestDay(&ingestor, day);
    }
    ASSERT_TRUE(ingestor.Flush().ok());
    ASSERT_EQ(wh.ListPartitions("events").value().size(), 21u);

    // Compact each closed week into one stored sample.
    for (int week = 0; week < 3; ++week) {
      const auto days = wh.PartitionsInTimeRange(
          "events", week * 7 * kTicksPerDay,
          (week + 1) * 7 * kTicksPerDay - 1);
      ASSERT_TRUE(days.ok());
      ASSERT_EQ(days.value().size(), 7u);
      ASSERT_TRUE(wh.CompactPartitions("events", days.value()).ok());
    }
    const auto parts = wh.ListPartitions("events");
    ASSERT_TRUE(parts.ok());
    EXPECT_EQ(parts.value().size(), 3u);  // three weekly samples
    const auto info = wh.GetDatasetInfo("events");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().total_parent_size, 21 * kEventsPerDay);

    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
  }

  // ---- "Restart": restore from manifest, keep operating ------------------
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto restored =
        Warehouse::Restore(Options(), std::move(store).value(), manifest);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    Warehouse& wh = *restored.value();

    // Week 4 streams in after the restart.
    StreamIngestor ingestor(&wh, "events",
                            MakeTemporalPartitioner(kTicksPerDay));
    for (uint64_t day = 21; day < 28; ++day) {
      IngestDay(&ingestor, day);
    }
    ASSERT_TRUE(ingestor.Flush().ok());
    EXPECT_EQ(wh.ListPartitions("events").value().size(), 10u);  // 3 + 7

    // Month-to-date query spans compacted weeklies and fresh dailies.
    const auto month = wh.MergedSampleAll("events");
    ASSERT_TRUE(month.ok());
    EXPECT_EQ(month.value().parent_size(), 28 * kEventsPerDay);
    EXPECT_EQ(month.value().size(), 256u);
    const auto mean = EstimateMean(month.value());
    ASSERT_TRUE(mean.ok());
    // True mean ~ 50000 + mean(day)*100 ~ 51350.
    EXPECT_NEAR(mean.value().value, 51350.0,
                5.0 * mean.value().standard_error + 100.0);

    // Retention: keep a 2-week window at the end of day 28.
    RetentionPolicy policy;
    policy.keep_window_ticks = 14 * kTicksPerDay;
    const auto expired =
        wh.ApplyRetention("events", policy, 28 * kTicksPerDay);
    ASSERT_TRUE(expired.ok());
    EXPECT_EQ(expired.value().size(), 2u);  // weeks 1 and 2 age out
    const auto remaining = wh.MergedSampleAll("events");
    ASSERT_TRUE(remaining.ok());
    EXPECT_EQ(remaining.value().parent_size(), 14 * kEventsPerDay);
    // All surviving values come from days >= 14.
    remaining.value().histogram().ForEach([](Value v, uint64_t) {
      EXPECT_GE(v, 1400);
    });

    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
  }

  // ---- Second restart proves the post-retention state is durable --------
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto restored =
        Warehouse::Restore(Options(), std::move(store).value(), manifest);
    ASSERT_TRUE(restored.ok());
    const auto info = restored.value()->GetDatasetInfo("events");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().total_parent_size, 14 * kEventsPerDay);
    EXPECT_EQ(info.value().num_partitions, 8u);  // week-3 compact + 7 dailies
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sampwh
