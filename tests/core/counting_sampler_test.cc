#include "src/core/counting_sampler.h"

#include <map>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(CountingSamplerTest, ExactCountsWhileThresholdIsOne) {
  CountingSampler::Options options;
  options.footprint_bound_bytes = 1024;
  CountingSampler sampler(options, Pcg64(1));
  for (int i = 0; i < 60; ++i) sampler.Add(i % 3);
  EXPECT_EQ(sampler.threshold(), 1.0);
  for (Value v = 0; v < 3; ++v) {
    EXPECT_EQ(sampler.histogram().CountOf(v), 20u);
  }
}

TEST(CountingSamplerTest, MembersAlwaysCounted) {
  // Once a value is in the sample, later occurrences increment exactly —
  // as long as no threshold raise intervenes (a raise may evict counts;
  // that is the Gibbons-Matias semantics, not a bug). A raise only fires
  // when the footprint grows, and incrementing a value already stored as a
  // (value, count) pair leaves the footprint unchanged, so the test first
  // secures a survivor in pair form.
  CountingSampler::Options options;
  options.footprint_bound_bytes = 64;
  CountingSampler sampler(options, Pcg64(2));
  // Force the threshold up with distinct values.
  for (Value v = 100; v < 200; ++v) sampler.Add(v);
  ASSERT_GT(sampler.threshold(), 1.0);
  // Secure a survivor with count >= 2 (stored as a pair). Adding a copy of
  // a current member may itself trigger a raise that evicts it; retry with
  // whatever member remains.
  Value survivor = -1;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Value member = -1;
    sampler.histogram().ForEach([&](Value v, uint64_t) { member = v; });
    ASSERT_NE(member, -1);
    sampler.Add(member);
    if (sampler.histogram().CountOf(member) >= 2) {
      survivor = member;
      break;
    }
  }
  ASSERT_NE(survivor, -1);
  const uint64_t before = sampler.histogram().CountOf(survivor);
  for (int i = 0; i < 25; ++i) sampler.Add(survivor);
  EXPECT_EQ(sampler.histogram().CountOf(survivor), before + 25);
}

TEST(CountingSamplerTest, FootprintNeverExceedsBound) {
  CountingSampler::Options options;
  options.footprint_bound_bytes = 128;
  CountingSampler sampler(options, Pcg64(3));
  for (Value v = 0; v < 20000; ++v) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), options.footprint_bound_bytes);
  }
}

TEST(CountingSamplerTest, DeleteDecrementsAndRemoves) {
  CountingSampler::Options options;
  options.footprint_bound_bytes = 1024;
  CountingSampler sampler(options, Pcg64(4));
  sampler.Add(7);
  sampler.Add(7);
  EXPECT_TRUE(sampler.Delete(7));
  EXPECT_EQ(sampler.histogram().CountOf(7), 1u);
  EXPECT_TRUE(sampler.Delete(7));
  EXPECT_EQ(sampler.histogram().CountOf(7), 0u);
  EXPECT_FALSE(sampler.Delete(7));
}

TEST(CountingSamplerTest, DeleteOfUnsampledValueIsNoop) {
  CountingSampler::Options options;
  CountingSampler sampler(options, Pcg64(5));
  sampler.Add(1);
  EXPECT_FALSE(sampler.Delete(99));
  EXPECT_EQ(sampler.sample_size(), 1u);
}

TEST(CountingSamplerTest, InsertDeleteBalanceTracksParent) {
  // With threshold still 1 (no purge pressure), the sample mirrors the
  // parent multiset exactly through interleaved inserts and deletes.
  CountingSampler::Options options;
  options.footprint_bound_bytes = 4096;
  CountingSampler sampler(options, Pcg64(6));
  Pcg64 rng(7);
  std::map<Value, uint64_t> model;
  for (int step = 0; step < 5000; ++step) {
    const Value v = static_cast<Value>(rng.UniformInt(20));
    if (rng.Bernoulli(0.6) || model[v] == 0) {
      sampler.Add(v);
      ++model[v];
    } else {
      EXPECT_TRUE(sampler.Delete(v));
      --model[v];
    }
  }
  for (const auto& [v, n] : model) {
    EXPECT_EQ(sampler.histogram().CountOf(v), n) << v;
  }
}

}  // namespace
}  // namespace sampwh
