#include "src/core/reservoir_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(ReservoirSamplerTest, ShortStreamIsExhaustive) {
  ReservoirSampler sampler(10, Pcg64(1));
  for (Value v = 0; v < 7; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 7u);
  for (Value v = 0; v < 7; ++v) EXPECT_EQ(s.histogram().CountOf(v), 1u);
}

TEST(ReservoirSamplerTest, LongStreamCapsAtCapacity) {
  ReservoirSampler sampler(10, Pcg64(2));
  for (Value v = 0; v < 10000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_EQ(s.parent_size(), 10000u);
}

TEST(ReservoirSamplerTest, EveryElementEquallyLikely) {
  // Inclusion frequency of each stream position must be k/N.
  const uint64_t k = 4;
  const uint64_t n = 40;
  const int trials = 40000;
  std::vector<int> included(n, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler sampler(k, Pcg64(10 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    for (const Value v : sampler.contents()) ++included[v];
  }
  const double expected = trials * static_cast<double>(k) / n;  // 4000
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], expected, 5.0 * std::sqrt(expected)) << v;
  }
}

TEST(ReservoirSamplerTest, SkipModesProduceSameLaw) {
  // Mean of sampled values should match under X-only and Z-only skips.
  const uint64_t n = 5000;
  for (const auto mode :
       {VitterSkip::Mode::kAlgorithmX, VitterSkip::Mode::kAlgorithmZ}) {
    double sum = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      ReservoirSampler sampler(16, Pcg64(500 + t), mode);
      for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
      for (const Value v : sampler.contents()) sum += static_cast<double>(v);
    }
    const double mean = sum / (300.0 * 16.0);
    // Population mean (n-1)/2 = 2499.5; SE ~ n/sqrt(12 * 4800) ~ 21.
    EXPECT_NEAR(mean, 2499.5, 110.0);
  }
}

TEST(ReservoirSamplerTest, FinalizeResetsState) {
  ReservoirSampler sampler(5, Pcg64(3));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  sampler.Finalize();
  EXPECT_EQ(sampler.sample_size(), 0u);
  EXPECT_EQ(sampler.elements_seen(), 0u);
}

TEST(ReservoirSamplerTest, CapacityOneHoldsUniformElement) {
  std::vector<int> chosen(5, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler sampler(1, Pcg64(7000 + t));
    for (Value v = 0; v < 5; ++v) sampler.Add(v);
    ++chosen[sampler.contents()[0]];
  }
  for (int v = 0; v < 5; ++v) {
    EXPECT_NEAR(chosen[v], trials / 5.0, 5.0 * std::sqrt(trials / 5.0)) << v;
  }
}

TEST(ReservoirSamplerTest, FootprintBoundRecorded) {
  ReservoirSampler sampler(100, Pcg64(4));
  for (Value v = 0; v < 1000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.footprint_bound_bytes(), 100 * kSingletonFootprintBytes);
  EXPECT_TRUE(s.Validate().ok());
}

}  // namespace
}  // namespace sampwh
