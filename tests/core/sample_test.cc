#include "src/core/sample.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

TEST(PartitionSampleTest, ExhaustiveFactoryAndAccessors) {
  const PartitionSample s = PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 2}, {2, 1}}), 3, 1024);
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.parent_size(), 3u);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.sampling_rate(), 1.0);
  EXPECT_EQ(s.footprint_bound_bytes(), 1024u);
  EXPECT_EQ(s.max_sample_size(), 128u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(PartitionSampleTest, BernoulliFactory) {
  const PartitionSample s = PartitionSample::MakeBernoulli(
      MakeHistogram({{5, 1}}), 100, 0.01, 1024);
  EXPECT_EQ(s.phase(), SamplePhase::kBernoulli);
  EXPECT_EQ(s.sampling_rate(), 0.01);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(PartitionSampleTest, ReservoirFactory) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{5, 2}, {6, 1}}), 100, 1024);
  EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(PartitionSampleTest, ValidateRejectsOverfullExhaustive) {
  const PartitionSample s = PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 2}}), 5, 1024);  // claims parent 5, holds 2
  EXPECT_TRUE(s.Validate().IsCorruption());
}

TEST(PartitionSampleTest, ValidateRejectsSampleLargerThanParent) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 10}}), 5, 1024);
  EXPECT_TRUE(s.Validate().IsCorruption());
}

TEST(PartitionSampleTest, ValidateRejectsBadRate) {
  const PartitionSample s = PartitionSample::MakeBernoulli(
      MakeHistogram({{1, 1}}), 5, 1.5, 1024);
  EXPECT_TRUE(s.Validate().IsCorruption());
}

TEST(PartitionSampleTest, ValidateRejectsFootprintOverBound) {
  // 3 distinct singletons = 24 bytes > 16-byte bound.
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}, {2, 1}, {3, 1}}), 100, 16);
  EXPECT_TRUE(s.Validate().IsCorruption());
}

TEST(PartitionSampleTest, ZeroBoundMeansUnbounded) {
  const PartitionSample s = PartitionSample::MakeBernoulli(
      MakeHistogram({{1, 1}, {2, 1}, {3, 1}}), 100, 0.5, 0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(PartitionSampleTest, SerializationRoundTripAllPhases) {
  const std::vector<PartitionSample> samples = {
      PartitionSample::MakeExhaustive(MakeHistogram({{-10, 2}, {42, 3}}), 5,
                                      4096),
      PartitionSample::MakeBernoulli(MakeHistogram({{1, 1}, {1000000, 4}}),
                                     123456, 0.0125, 4096),
      PartitionSample::MakeReservoir(
          MakeHistogram({{-5, 1}, {0, 2}, {7, 1}}), 999, 4096),
  };
  for (const PartitionSample& s : samples) {
    BinaryWriter w;
    s.SerializeTo(&w);
    BinaryReader r(w.buffer());
    const Result<PartitionSample> decoded =
        PartitionSample::DeserializeFrom(&r);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().phase(), s.phase());
    EXPECT_EQ(decoded.value().parent_size(), s.parent_size());
    EXPECT_EQ(decoded.value().sampling_rate(), s.sampling_rate());
    EXPECT_EQ(decoded.value().footprint_bound_bytes(),
              s.footprint_bound_bytes());
    EXPECT_TRUE(decoded.value().histogram() == s.histogram());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(PartitionSampleTest, EmptySampleSerializes) {
  const PartitionSample s =
      PartitionSample::MakeReservoir(CompactHistogram(), 100, 4096);
  BinaryWriter w;
  s.SerializeTo(&w);
  BinaryReader r(w.buffer());
  const Result<PartitionSample> decoded =
      PartitionSample::DeserializeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 0u);
}

TEST(PartitionSampleTest, DeserializeRejectsBadMagic) {
  BinaryWriter w;
  w.PutFixed32(0x12345678);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(PartitionSample::DeserializeFrom(&r).status().IsCorruption());
}

TEST(PartitionSampleTest, DeserializeRejectsBadPhase) {
  BinaryWriter w;
  w.PutFixed32(0x53575331);
  w.PutVarint64(9);  // invalid phase
  BinaryReader r(w.buffer());
  EXPECT_TRUE(PartitionSample::DeserializeFrom(&r).status().IsCorruption());
}

TEST(PartitionSampleTest, DeserializeRejectsTruncation) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 2}, {2, 2}}), 50, 4096);
  BinaryWriter w;
  s.SerializeTo(&w);
  const std::string truncated = w.buffer().substr(0, w.size() - 2);
  BinaryReader r(truncated);
  EXPECT_FALSE(PartitionSample::DeserializeFrom(&r).ok());
}

TEST(PartitionSampleTest, DeserializeValidatesInvariants) {
  // Hand-craft an exhaustive sample whose histogram does not cover the
  // claimed parent size.
  BinaryWriter w;
  w.PutFixed32(0x53575331);
  w.PutVarint64(1);    // phase exhaustive
  w.PutVarint64(10);   // parent size 10
  w.PutDouble(1.0);
  w.PutVarint64(0);    // unbounded
  w.PutVarint64(1);    // one entry
  w.PutVarintSigned64(7);
  w.PutVarint64(2);    // ... holding 2 values only
  BinaryReader r(w.buffer());
  EXPECT_TRUE(PartitionSample::DeserializeFrom(&r).status().IsCorruption());
}

TEST(SamplePhaseTest, Names) {
  EXPECT_EQ(SamplePhaseToString(SamplePhase::kExhaustive), "exhaustive");
  EXPECT_EQ(SamplePhaseToString(SamplePhase::kBernoulli), "bernoulli");
  EXPECT_EQ(SamplePhaseToString(SamplePhase::kReservoir), "reservoir");
}

}  // namespace
}  // namespace sampwh
