#include "src/core/hybrid_bernoulli.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/qbound.h"

namespace sampwh {
namespace {

HybridBernoulliSampler::Options SmallOptions(uint64_t f, uint64_t n,
                                             double p = 1e-3) {
  HybridBernoulliSampler::Options options;
  options.footprint_bound_bytes = f;
  options.expected_population_size = n;
  options.exceedance_probability = p;
  return options;
}

TEST(HybridBernoulliTest, SmallStreamStaysExhaustive) {
  HybridBernoulliSampler sampler(SmallOptions(4096, 100), Pcg64(1));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  EXPECT_EQ(sampler.phase(), SamplePhase::kExhaustive);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 100u);
  for (Value v = 0; v < 100; ++v) EXPECT_EQ(s.histogram().CountOf(v), 1u);
}

TEST(HybridBernoulliTest, DuplicateHeavyStreamStaysExhaustive) {
  // 1M elements over 8 distinct values easily fit the footprint: the final
  // sample is the exact histogram (the paper's Zipfian case, footnote 5).
  HybridBernoulliSampler sampler(SmallOptions(1024, 1 << 20), Pcg64(2));
  for (int i = 0; i < (1 << 20); ++i) sampler.Add(i & 7);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 1u << 20);
  EXPECT_EQ(s.histogram().CountOf(3), (1u << 20) / 8);
}

TEST(HybridBernoulliTest, DistinctStreamSwitchesToBernoulli) {
  const uint64_t n = 100000;
  HybridBernoulliSampler sampler(SmallOptions(8192, n), Pcg64(3));
  for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
  EXPECT_EQ(sampler.phase(), SamplePhase::kBernoulli);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kBernoulli);
  EXPECT_EQ(s.parent_size(), n);
  EXPECT_NEAR(s.sampling_rate(), ApproxBernoulliRate(n, 1e-3, 1024), 1e-12);
  EXPECT_LE(s.size(), 1024u);
  EXPECT_GT(s.size(), 0u);
}

TEST(HybridBernoulliTest, FootprintBoundHoldsAtEveryInstant) {
  const uint64_t f = 2048;
  HybridBernoulliSampler sampler(SmallOptions(f, 50000), Pcg64(4));
  for (Value v = 0; v < 50000; ++v) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), f) << v;
  }
}

TEST(HybridBernoulliTest, SampleSizeConcentratesNearExpectation) {
  const uint64_t n = 200000;
  const uint64_t f = 8192;  // n_F = 1024
  const double p = 1e-3;
  const double q = ApproxBernoulliRate(n, p, 1024);
  double sum = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    HybridBernoulliSampler sampler(SmallOptions(f, n, p), Pcg64(100 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    const PartitionSample s = sampler.Finalize();
    EXPECT_LE(s.size(), 1024u);
    sum += static_cast<double>(s.size());
  }
  const double expected = n * q;
  EXPECT_NEAR(sum / trials, expected, 5.0 * std::sqrt(expected / trials));
}

TEST(HybridBernoulliTest, OverflowFallsBackToReservoir) {
  // Force phase 3 by feeding far more data than HB planned for: q was
  // computed for N = 20000 but the stream is 20x longer, so the Bernoulli
  // sample outgrows n_F with near certainty.
  const uint64_t planned_n = 20000;
  HybridBernoulliSampler sampler(SmallOptions(1024, planned_n), Pcg64(5));
  for (Value v = 0; v < static_cast<Value>(20 * planned_n); ++v) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), 1024u);
  }
  EXPECT_EQ(sampler.phase(), SamplePhase::kReservoir);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(s.size(), 128u);  // exactly n_F
  EXPECT_EQ(s.parent_size(), 20 * planned_n);
}

TEST(HybridBernoulliTest, MarginalInclusionIsUniformAcrossPositions) {
  // Every stream position must appear in the final sample equally often —
  // including positions before and after the phase-1 -> 2 switch.
  const uint64_t n = 600;
  const uint64_t f = 512;  // n_F = 64, switch happens around element 64
  const int trials = 30000;
  std::vector<int> included(n, 0);
  for (int t = 0; t < trials; ++t) {
    HybridBernoulliSampler sampler(SmallOptions(f, n), Pcg64(1000 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    const PartitionSample s = sampler.Finalize();
    s.histogram().ForEach(
        [&](Value v, uint64_t c) { included[v] += static_cast<int>(c); });
  }
  double mean = 0.0;
  for (const int c : included) mean += c;
  mean /= static_cast<double>(n);
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], mean, 5.0 * std::sqrt(mean) + 1) << v;
  }
}

TEST(HybridBernoulliTest, ExactRateOptionAlsoRespectsBound) {
  HybridBernoulliSampler::Options options = SmallOptions(1024, 50000);
  options.use_exact_rate = true;
  HybridBernoulliSampler sampler(options, Pcg64(6));
  for (Value v = 0; v < 50000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_LE(s.size(), 128u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(HybridBernoulliTest, ResumeFromExhaustiveAccumulates) {
  // Build a small exhaustive sample, then resume and stream more data.
  HybridBernoulliSampler first(SmallOptions(65536, 50), Pcg64(7));
  for (Value v = 0; v < 50; ++v) first.Add(v);
  const PartitionSample base = first.Finalize();

  auto resumed = HybridBernoulliSampler::Resume(
      base, SmallOptions(65536, 100), Pcg64(8));
  ASSERT_TRUE(resumed.ok());
  HybridBernoulliSampler sampler = std::move(resumed).value();
  for (Value v = 50; v < 100; ++v) sampler.Add(v);
  const PartitionSample merged = sampler.Finalize();
  EXPECT_EQ(merged.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(merged.parent_size(), 100u);
  EXPECT_EQ(merged.size(), 100u);
}

TEST(HybridBernoulliTest, ResumeFromBernoulliKeepsRate) {
  const uint64_t n = 100000;
  HybridBernoulliSampler first(SmallOptions(8192, n), Pcg64(9));
  for (Value v = 0; v < static_cast<Value>(n); ++v) first.Add(v);
  const PartitionSample base = first.Finalize();
  ASSERT_EQ(base.phase(), SamplePhase::kBernoulli);

  auto resumed = HybridBernoulliSampler::Resume(
      base, SmallOptions(8192, 2 * n), Pcg64(10));
  ASSERT_TRUE(resumed.ok());
  HybridBernoulliSampler sampler = std::move(resumed).value();
  EXPECT_EQ(sampler.sampling_rate(), base.sampling_rate());
  EXPECT_EQ(sampler.elements_seen(), n);
  for (Value v = 0; v < 1000; ++v) sampler.Add(v + 1000000);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.parent_size(), n + 1000);
}

TEST(HybridBernoulliTest, ResumeFromOversizedBernoulliCutsToReservoir) {
  // A duplicate-compressed Bernoulli sample can hold more than n_F values
  // within the byte bound; resuming under the same bound must cut it to a
  // size-n_F reservoir rather than reject or overflow.
  CompactHistogram h;
  for (Value v = 0; v < 10; ++v) h.Insert(v, 20);  // 200 values, 120 bytes
  const PartitionSample base =
      PartitionSample::MakeBernoulli(std::move(h), 1000, 0.2, 512);
  ASSERT_TRUE(base.Validate().ok());
  ASSERT_GT(base.size(), MaxSampleSizeForFootprint(512) / 8);
  auto resumed = HybridBernoulliSampler::Resume(
      base, SmallOptions(128, 2000), Pcg64(20));  // n_F = 16 < 200
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  HybridBernoulliSampler sampler = std::move(resumed).value();
  EXPECT_EQ(sampler.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(sampler.sample_size(), 16u);
  for (Value v = 100; v < 600; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(s.parent_size(), 1500u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(HybridBernoulliTest, ResumeRejectsInvalidBase) {
  const PartitionSample bogus = PartitionSample::MakeBernoulli(
      CompactHistogram(), 10, 1.5, 4096);  // invalid rate
  EXPECT_FALSE(HybridBernoulliSampler::Resume(bogus, SmallOptions(4096, 20),
                                              Pcg64(11))
                   .ok());
}

TEST(HybridBernoulliTest, UnknownPopulationFallsBackToElementsSeen) {
  // expected_population_size = 0: the transition uses the count observed so
  // far; the bound still holds throughout.
  HybridBernoulliSampler sampler(SmallOptions(1024, 0), Pcg64(12));
  for (Value v = 0; v < 30000; ++v) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), 1024u);
  }
  EXPECT_TRUE(sampler.Finalize().Validate().ok());
}

}  // namespace
}  // namespace sampwh
