#include "src/core/vitter.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(VitterSkipTest, NextIndexAlwaysAdvances) {
  // Walks a realistic reservoir trajectory. n grows by a factor of about
  // (1 + 1/k) per skip, so the iteration count is capped to keep n small
  // enough that Algorithm X's O(skip) sequential search stays fast.
  for (const auto mode : {VitterSkip::Mode::kAlgorithmX,
                          VitterSkip::Mode::kAlgorithmZ,
                          VitterSkip::Mode::kAuto}) {
    Pcg64 rng(1);
    VitterSkip skip(64, mode);
    uint64_t n = 64;
    for (int i = 0; i < 250; ++i) {
      const uint64_t next = skip.NextInsertionIndex(rng, n);
      ASSERT_GT(next, n);
      n = next;
    }
    EXPECT_GT(n, 64u);
  }
}

// The marginal law of the skip: P{next included = n + s + 1} for a
// reservoir of size k after n elements equals
//   (k / (n+s+1)) * prod_{j=1..s} (n+j-k)/(n+j).
double SkipPmf(uint64_t n, uint64_t k, uint64_t s) {
  double prob = 1.0;
  for (uint64_t j = 1; j <= s; ++j) {
    prob *= static_cast<double>(n + j - k) / static_cast<double>(n + j);
  }
  return prob * static_cast<double>(k) / static_cast<double>(n + s + 1);
}

class VitterSkipDistributionTest
    : public ::testing::TestWithParam<VitterSkip::Mode> {};

TEST_P(VitterSkipDistributionTest, SkipLawMatchesReservoirSampling) {
  const uint64_t k = 5;
  const uint64_t n = 200;  // n/k = 40 forces Z in auto mode
  Pcg64 rng(42);
  VitterSkip skip(k, GetParam());
  const int trials = 60000;
  std::vector<int> counts(2000, 0);
  for (int i = 0; i < trials; ++i) {
    const uint64_t s = skip.NextInsertionIndex(rng, n) - n - 1;
    if (s < counts.size()) ++counts[s];
  }
  double chi2 = 0.0;
  int cells = 0;
  for (uint64_t s = 0; s < counts.size(); ++s) {
    const double expected = trials * SkipPmf(n, k, s);
    if (expected < 10.0) break;
    chi2 += (counts[s] - expected) * (counts[s] - expected) / expected;
    ++cells;
  }
  ASSERT_GT(cells, 10);
  // Generous: P{chi2(df~cells) > cells + 5 sqrt(2 cells)} is tiny.
  EXPECT_LT(chi2, cells + 5.0 * std::sqrt(2.0 * cells)) << "cells " << cells;
}

INSTANTIATE_TEST_SUITE_P(AllModes, VitterSkipDistributionTest,
                         ::testing::Values(VitterSkip::Mode::kAlgorithmX,
                                           VitterSkip::Mode::kAlgorithmZ,
                                           VitterSkip::Mode::kAuto));

TEST(VitterSkipTest, XAndZAgreeOnMeanSkip) {
  const uint64_t k = 8;
  const uint64_t n = 500;
  const int trials = 30000;
  double mean_x = 0.0;
  double mean_z = 0.0;
  {
    Pcg64 rng(7);
    VitterSkip skip(k, VitterSkip::Mode::kAlgorithmX);
    for (int i = 0; i < trials; ++i) {
      mean_x += static_cast<double>(skip.NextInsertionIndex(rng, n) - n);
    }
  }
  {
    Pcg64 rng(8);
    VitterSkip skip(k, VitterSkip::Mode::kAlgorithmZ);
    for (int i = 0; i < trials; ++i) {
      mean_z += static_cast<double>(skip.NextInsertionIndex(rng, n) - n);
    }
  }
  mean_x /= trials;
  mean_z /= trials;
  EXPECT_NEAR(mean_x, mean_z, 0.05 * mean_x);
}

TEST(VitterSkipTest, ReservoirSizeOneWorks) {
  // k = 1 roughly doubles n per skip; 25 steps keeps n around 10^7.
  Pcg64 rng(9);
  VitterSkip skip(1);
  uint64_t n = 1;
  for (int i = 0; i < 25; ++i) {
    n = skip.NextInsertionIndex(rng, n);
  }
  EXPECT_GT(n, 25u);
}

TEST(VitterSkipTest, InclusionProbabilityIsKOverN) {
  // Simulate reservoir decisions over a fixed stream and verify that
  // element t is replaced into the reservoir with probability ~ k/t.
  const uint64_t k = 20;
  const uint64_t stream = 2000;
  const int trials = 4000;
  std::vector<int> included(stream + 1, 0);
  Pcg64 rng(10);
  for (int t = 0; t < trials; ++t) {
    VitterSkip skip(k);
    uint64_t next = skip.NextInsertionIndex(rng, k);
    while (next <= stream) {
      ++included[next];
      next = skip.NextInsertionIndex(rng, next);
    }
  }
  // Check a few positions well past k.
  for (uint64_t pos : {100ULL, 500ULL, 1999ULL}) {
    const double expected = static_cast<double>(k) / static_cast<double>(pos);
    const double observed = included[pos] / static_cast<double>(trials);
    EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected / trials))
        << pos;
  }
}

}  // namespace
}  // namespace sampwh
