#include "src/core/concise_sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(ConciseSamplerTest, ExactHistogramWhileItFits) {
  ConciseSampler::Options options;
  options.footprint_bound_bytes = 1024;
  ConciseSampler sampler(options, Pcg64(1));
  for (int i = 0; i < 100; ++i) sampler.Add(i % 10);
  EXPECT_EQ(sampler.threshold(), 1.0);
  EXPECT_EQ(sampler.sample_size(), 100u);
  for (Value v = 0; v < 10; ++v) {
    EXPECT_EQ(sampler.histogram().CountOf(v), 10u);
  }
}

TEST(ConciseSamplerTest, FootprintNeverExceedsBound) {
  ConciseSampler::Options options;
  options.footprint_bound_bytes = 256;
  ConciseSampler sampler(options, Pcg64(2));
  for (Value v = 0; v < 50000; ++v) {
    sampler.Add(v);  // all-distinct stream: worst case for the footprint
    ASSERT_LE(sampler.footprint_bytes(), options.footprint_bound_bytes);
  }
  EXPECT_GT(sampler.threshold(), 1.0);
}

TEST(ConciseSamplerTest, LowDiversityStreamStaysExhaustive) {
  ConciseSampler::Options options;
  options.footprint_bound_bytes = 256;
  ConciseSampler sampler(options, Pcg64(3));
  for (int i = 0; i < 100000; ++i) sampler.Add(i % 4);
  // 4 pairs fit easily: the "sample" is the exact histogram.
  EXPECT_EQ(sampler.threshold(), 1.0);
  EXPECT_EQ(sampler.sample_size(), 100000u);
}

// The paper's §3.3 counterexample, reproduced empirically. Population
// D = {1..6} with values u1 = u2 = u3 = a, u4 = u5 = u6 = b and room for
// only one (value, count) pair. Under ANY uniform scheme producing size-3
// samples, outcome H3 = {(a,2), b} arises from 9 of the C(6,3) = 20
// subsets and H1 = {(a,3)} from exactly 1, so H3 must appear ~9x as often
// as H1. Concise sampling can NEVER produce H3 (it does not fit), yet
// produces H1 — hence it is not uniform.
TEST(ConciseSamplerTest, Section33CounterexampleNonUniform) {
  constexpr Value a = 100;
  constexpr Value b = 200;
  // One pair = 12 bytes. Bound of 12 bytes: H1/H2 fit, H3 (pair +
  // singleton = 20 bytes) does not.
  ConciseSampler::Options options;
  options.footprint_bound_bytes = kPairFootprintBytes;
  options.threshold_growth = 1.5;

  uint64_t h1_or_h2 = 0;  // {(a,3)} or {(b,3)}
  uint64_t h3_like = 0;   // any outcome holding both values
  Pcg64 seeder(42);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    ConciseSampler sampler(options, seeder.Fork(t));
    for (const Value v : {a, a, a, b, b, b}) sampler.Add(v);
    const CompactHistogram& h = sampler.histogram();
    if (h.CountOf(a) > 0 && h.CountOf(b) > 0) ++h3_like;
    if (h.CountOf(a) == 3 && h.CountOf(b) == 0) ++h1_or_h2;
    if (h.CountOf(b) == 3 && h.CountOf(a) == 0) ++h1_or_h2;
  }
  // Mixed-value outcomes never fit in one pair.
  EXPECT_EQ(h3_like, 0u);
  // Yet the pure outcomes do occur.
  EXPECT_GT(h1_or_h2, 0u);
}

TEST(ConciseSamplerTest, SingleValueStreamNeverPurges) {
  ConciseSampler::Options options;
  options.footprint_bound_bytes = 64;
  ConciseSampler sampler(options, Pcg64(5));
  for (int i = 0; i < 1000000; ++i) sampler.Add(7);
  EXPECT_EQ(sampler.sample_size(), 1000000u);
  EXPECT_EQ(sampler.footprint_bytes(), kPairFootprintBytes);
}

TEST(ConciseSamplerTest, ViolatesTheUniformSizeThreeLaw) {
  // §3.3, quantitatively: on {a,a,a,b,b,b}, a UNIFORM scheme producing
  // size-3 samples emits mixed-value outcomes ({(a,2),b} or {a,(b,2)})
  // exactly 18/20 of the time and pure outcomes ({(a,3)} or {(b,3)}) 2/20.
  // Concise sampling's footprint-coupled purging distorts that law: the
  // observed mixed fraction among size-3 outcomes deviates from 0.9 by
  // many standard errors (the direction depends on the bound and purge
  // schedule; non-uniformity is the invariant claim).
  constexpr Value a = 1;
  constexpr Value b = 2;
  ConciseSampler::Options options;
  options.footprint_bound_bytes =
      kPairFootprintBytes + kSingletonFootprintBytes;  // 20 bytes
  options.threshold_growth = 1.5;
  Pcg64 seeder(77);
  uint64_t mixed = 0;
  uint64_t pure = 0;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    ConciseSampler sampler(options, seeder.Fork(t));
    for (const Value v : {a, a, a, b, b, b}) sampler.Add(v);
    const CompactHistogram& h = sampler.histogram();
    if (h.total_count() != 3) continue;  // condition on sample size 3
    const bool has_a = h.CountOf(a) > 0;
    const bool has_b = h.CountOf(b) > 0;
    if (has_a && has_b) {
      ++mixed;
    } else {
      ++pure;
    }
  }
  const uint64_t size3 = pure + mixed;
  ASSERT_GT(size3, 1000u) << "not enough size-3 outcomes";
  const double fraction =
      static_cast<double>(mixed) / static_cast<double>(size3);
  const double se =
      std::sqrt(0.9 * 0.1 / static_cast<double>(size3));
  EXPECT_GT(std::fabs(fraction - 0.9), 5.0 * se)
      << "mixed=" << mixed << " pure=" << pure
      << " fraction=" << fraction;
}

}  // namespace
}  // namespace sampwh
