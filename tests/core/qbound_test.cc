#include "src/core/qbound.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/special_functions.h"

namespace sampwh {
namespace {

TEST(QBoundTest, FullPopulationFitsMeansRateOne) {
  EXPECT_EQ(ApproxBernoulliRate(100, 0.01, 100), 1.0);
  EXPECT_EQ(ApproxBernoulliRate(100, 0.01, 200), 1.0);
  EXPECT_EQ(ExactBernoulliRate(100, 0.01, 100), 1.0);
}

TEST(QBoundTest, ExactRateSatisfiesTheDefiningEquation) {
  for (const auto& [n, p, nf] :
       std::vector<std::tuple<uint64_t, double, uint64_t>>{
           {100000, 0.001, 8192},
           {1 << 20, 0.001, 8192},
           {100000, 0.00001, 1000},
           {32768, 0.5, 100}}) {
    const double q = ExactBernoulliRate(n, p, nf);
    EXPECT_NEAR(BinomialTailProbability(n, q, nf), p, 1e-6 * p + 1e-12)
        << n << " " << p << " " << nf;
  }
}

TEST(QBoundTest, ApproxCloseToExactPaperFigure5Regime) {
  // Fig. 5: N = 1e5, p in [1e-5, 5e-3], n_F in {1e2, 1e3, 1e4}: the paper
  // reports relative error never above 2.765%.
  const uint64_t n = 100000;
  for (const uint64_t nf : {100ULL, 1000ULL, 10000ULL}) {
    for (const double p : {1e-5, 1e-4, 1e-3, 5e-3}) {
      const double approx = ApproxBernoulliRate(n, p, nf);
      const double exact = ExactBernoulliRate(n, p, nf);
      const double rel_err = std::fabs(approx - exact) / exact;
      EXPECT_LT(rel_err, 0.03) << "nf=" << nf << " p=" << p;
    }
  }
}

TEST(QBoundTest, RateDecreasesWithTighterBound) {
  const double loose = ExactBernoulliRate(1 << 20, 0.001, 16384);
  const double tight = ExactBernoulliRate(1 << 20, 0.001, 1024);
  EXPECT_GT(loose, tight);
}

TEST(QBoundTest, RateDecreasesWithSmallerExceedance) {
  const double p_large = ExactBernoulliRate(1 << 20, 0.01, 8192);
  const double p_small = ExactBernoulliRate(1 << 20, 0.00001, 8192);
  EXPECT_GT(p_large, p_small);
}

TEST(QBoundTest, RateDecreasesWithLargerPopulation) {
  const double small_n = ExactBernoulliRate(1 << 16, 0.001, 4096);
  const double large_n = ExactBernoulliRate(1 << 24, 0.001, 4096);
  EXPECT_GT(small_n, large_n);
}

TEST(QBoundTest, ApproxRateIsAValidProbability) {
  for (uint64_t n : {64ULL, 1024ULL, 1ULL << 26}) {
    for (uint64_t nf : {1ULL, 16ULL, 8192ULL}) {
      if (nf >= n) continue;
      for (double p : {1e-6, 1e-3, 0.5}) {
        const double q = ApproxBernoulliRate(n, p, nf);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

TEST(QBoundTest, ExpectedSampleSizeIsNearButBelowBound) {
  // With p = 0.001, Nq should be a bit below n_F (about z_p sigma below).
  const uint64_t n = 1 << 20;
  const uint64_t nf = 8192;
  const double q = ExactBernoulliRate(n, 0.001, nf);
  const double expected_size = n * q;
  EXPECT_LT(expected_size, static_cast<double>(nf));
  EXPECT_GT(expected_size, 0.9 * static_cast<double>(nf));
}

}  // namespace
}  // namespace sampwh
