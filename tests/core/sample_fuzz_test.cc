// Robustness fuzzing for the PartitionSample wire format: random byte
// mutations, truncations and garbage must never crash the decoder — every
// outcome is either a clean error Status or a sample that passes
// Validate(). (Deterministic seeds: this is a reproducible mini-fuzzer,
// not an OSS-Fuzz harness.)

#include <string>

#include <gtest/gtest.h>

#include "src/core/sample.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

std::string SerializeReference(uint64_t seed) {
  Pcg64 rng(seed);
  CompactHistogram h;
  const uint64_t distinct = 1 + rng.UniformInt(200);
  for (uint64_t i = 0; i < distinct; ++i) {
    h.Insert(rng.UniformRange(-1000000, 1000000), 1 + rng.UniformInt(5));
  }
  const uint64_t total = h.total_count();
  PartitionSample s;
  switch (rng.UniformInt(3)) {
    case 0:
      s = PartitionSample::MakeExhaustive(std::move(h), total, 0);
      break;
    case 1:
      s = PartitionSample::MakeBernoulli(std::move(h), total * 10,
                                         rng.NextDouble(), 0);
      break;
    default:
      s = PartitionSample::MakeReservoir(std::move(h), total * 10, 0);
      break;
  }
  BinaryWriter w;
  s.SerializeTo(&w);
  return w.Release();
}

void ExpectNoCrash(const std::string& bytes) {
  BinaryReader reader(bytes);
  const Result<PartitionSample> decoded =
      PartitionSample::DeserializeFrom(&reader);
  if (decoded.ok()) {
    EXPECT_TRUE(decoded.value().Validate().ok());
  }
}

TEST(SampleFuzzTest, SingleByteMutationsNeverCrash) {
  Pcg64 rng(1);
  for (int round = 0; round < 200; ++round) {
    const std::string reference = SerializeReference(100 + round);
    for (int mutation = 0; mutation < 20; ++mutation) {
      std::string bytes = reference;
      const size_t pos = static_cast<size_t>(rng.UniformInt(bytes.size()));
      bytes[pos] = static_cast<char>(rng.UniformInt(256));
      ExpectNoCrash(bytes);
    }
  }
}

TEST(SampleFuzzTest, TruncationsNeverCrash) {
  for (int round = 0; round < 100; ++round) {
    const std::string reference = SerializeReference(500 + round);
    for (size_t len = 0; len < reference.size();
         len += 1 + reference.size() / 37) {
      ExpectNoCrash(reference.substr(0, len));
    }
  }
}

TEST(SampleFuzzTest, RandomGarbageNeverCrashes) {
  Pcg64 rng(2);
  for (int round = 0; round < 500; ++round) {
    std::string bytes(rng.UniformInt(200), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.UniformInt(256));
    ExpectNoCrash(bytes);
  }
}

TEST(SampleFuzzTest, ByteSwapsNeverCrash) {
  Pcg64 rng(3);
  for (int round = 0; round < 200; ++round) {
    std::string bytes = SerializeReference(900 + round);
    if (bytes.size() < 2) continue;
    const size_t i = static_cast<size_t>(rng.UniformInt(bytes.size()));
    const size_t j = static_cast<size_t>(rng.UniformInt(bytes.size()));
    std::swap(bytes[i], bytes[j]);
    ExpectNoCrash(bytes);
  }
}

TEST(SampleFuzzTest, UnmutatedReferenceAlwaysDecodes) {
  for (int round = 0; round < 100; ++round) {
    const std::string reference = SerializeReference(1300 + round);
    BinaryReader reader(reference);
    const Result<PartitionSample> decoded =
        PartitionSample::DeserializeFrom(&reader);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(reader.AtEnd());
  }
}

}  // namespace
}  // namespace sampwh
