#include "src/core/purge.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/compact_histogram.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

TEST(PurgeBernoulliTest, RateOneIsIdentity) {
  CompactHistogram h = MakeHistogram({{1, 3}, {2, 1}, {3, 7}});
  const CompactHistogram original = h;
  Pcg64 rng(1);
  PurgeBernoulli(&h, 1.0, rng);
  EXPECT_TRUE(h == original);
}

TEST(PurgeBernoulliTest, RateZeroEmptiesSample) {
  CompactHistogram h = MakeHistogram({{1, 3}, {2, 5}});
  Pcg64 rng(2);
  PurgeBernoulli(&h, 0.0, rng);
  EXPECT_TRUE(h.empty());
}

TEST(PurgeBernoulliTest, CountsNeverGrow) {
  Pcg64 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    CompactHistogram h = MakeHistogram({{1, 10}, {2, 1}, {3, 4}});
    PurgeBernoulli(&h, 0.5, rng);
    EXPECT_LE(h.CountOf(1), 10u);
    EXPECT_LE(h.CountOf(2), 1u);
    EXPECT_LE(h.CountOf(3), 4u);
  }
}

TEST(PurgeBernoulliTest, RetentionRateMatchesQ) {
  Pcg64 rng(4);
  const double q = 0.3;
  uint64_t kept = 0;
  const int trials = 2000;
  const uint64_t per_trial = 100;
  for (int t = 0; t < trials; ++t) {
    CompactHistogram h = MakeHistogram({{1, 40}, {2, 35}, {3, 25}});
    PurgeBernoulli(&h, q, rng);
    kept += h.total_count();
  }
  const double observed =
      kept / static_cast<double>(trials * per_trial);
  EXPECT_NEAR(observed, q, 0.01);
}

TEST(PurgeBernoulliTest, ComposesMultiplicatively) {
  // Bern(a) then Bern(b) must keep each element with probability a*b.
  Pcg64 rng(5);
  uint64_t kept = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    CompactHistogram h = MakeHistogram({{1, 50}, {2, 50}});
    PurgeBernoulli(&h, 0.6, rng);
    PurgeBernoulli(&h, 0.5, rng);
    kept += h.total_count();
  }
  EXPECT_NEAR(kept / static_cast<double>(trials * 100), 0.3, 0.01);
}

TEST(PurgeReservoirTest, NoopWhenAlreadySmallEnough) {
  CompactHistogram h = MakeHistogram({{1, 2}, {2, 1}});
  const CompactHistogram original = h;
  Pcg64 rng(6);
  PurgeReservoir(&h, 5, rng);
  EXPECT_TRUE(h == original);
}

TEST(PurgeReservoirTest, ProducesExactTargetSize) {
  Pcg64 rng(7);
  for (const uint64_t m : {1ULL, 5ULL, 17ULL, 59ULL}) {
    CompactHistogram h = MakeHistogram({{1, 20}, {2, 20}, {3, 20}});
    PurgeReservoir(&h, m, rng);
    EXPECT_EQ(h.total_count(), m);
  }
}

TEST(PurgeReservoirTest, ZeroTargetEmptiesSample) {
  CompactHistogram h = MakeHistogram({{1, 3}});
  Pcg64 rng(8);
  PurgeReservoir(&h, 0, rng);
  EXPECT_TRUE(h.empty());
}

TEST(PurgeReservoirTest, CountsBoundedByOriginals) {
  Pcg64 rng(9);
  for (int t = 0; t < 100; ++t) {
    CompactHistogram h = MakeHistogram({{1, 3}, {2, 8}, {3, 1}});
    PurgeReservoir(&h, 6, rng);
    EXPECT_LE(h.CountOf(1), 3u);
    EXPECT_LE(h.CountOf(2), 8u);
    EXPECT_LE(h.CountOf(3), 1u);
    EXPECT_EQ(h.total_count(), 6u);
  }
}

TEST(PurgeReservoirTest, SelectionIsHypergeometric) {
  // Subsampling {a x 30, b x 20} down to 10 elements: the number of a's
  // kept must follow Hypergeometric(30, 20, 10), mean 6.
  Pcg64 rng(10);
  const int trials = 20000;
  double sum_a = 0.0;
  for (int t = 0; t < trials; ++t) {
    CompactHistogram h = MakeHistogram({{1, 30}, {2, 20}});
    PurgeReservoir(&h, 10, rng);
    sum_a += static_cast<double>(h.CountOf(1));
  }
  // mean = 10 * 30/50 = 6; var = 10*(3/5)(2/5)(40/49) ~ 1.96.
  EXPECT_NEAR(sum_a / trials, 6.0, 5.0 * std::sqrt(1.96 / trials));
}

TEST(PurgeReservoirStreamedTest, MultiSourceSizeAndBounds) {
  Pcg64 rng(11);
  CompactHistogram a = MakeHistogram({{1, 10}, {2, 5}});
  CompactHistogram b = MakeHistogram({{2, 7}, {3, 3}});
  const CompactHistogram merged = PurgeReservoirStreamed({&a, &b}, 12, rng);
  EXPECT_EQ(merged.total_count(), 12u);
  EXPECT_LE(merged.CountOf(1), 10u);
  EXPECT_LE(merged.CountOf(2), 12u);
  EXPECT_LE(merged.CountOf(3), 3u);
}

TEST(PurgeReservoirStreamedTest, KeepsEverythingWhenTargetExceedsTotal) {
  Pcg64 rng(12);
  CompactHistogram a = MakeHistogram({{1, 2}});
  CompactHistogram b = MakeHistogram({{1, 1}, {5, 2}});
  const CompactHistogram merged = PurgeReservoirStreamed({&a, &b}, 100, rng);
  EXPECT_EQ(merged.total_count(), 5u);
  EXPECT_EQ(merged.CountOf(1), 3u);
  EXPECT_EQ(merged.CountOf(5), 2u);
}

TEST(PurgeReservoirLinearScanTest, MatchesFenwickImplementationLaw) {
  // The Fig.-4-literal linear-scan variant and the Fenwick-tree variant
  // must produce identically distributed subsamples. Compare mean kept
  // count per value over many runs.
  const int trials = 10000;
  double fenwick_a = 0.0;
  double linear_a = 0.0;
  Pcg64 rng1(20);
  Pcg64 rng2(21);
  for (int t = 0; t < trials; ++t) {
    CompactHistogram h = MakeHistogram({{1, 12}, {2, 6}, {3, 2}});
    const CompactHistogram f = PurgeReservoirStreamed({&h}, 5, rng1);
    const CompactHistogram l =
        PurgeReservoirStreamedLinearScan({&h}, 5, rng2);
    EXPECT_EQ(f.total_count(), 5u);
    EXPECT_EQ(l.total_count(), 5u);
    fenwick_a += static_cast<double>(f.CountOf(1));
    linear_a += static_cast<double>(l.CountOf(1));
  }
  // Both must track the hypergeometric mean 5 * 12/20 = 3.
  EXPECT_NEAR(fenwick_a / trials, 3.0, 0.05);
  EXPECT_NEAR(linear_a / trials, 3.0, 0.05);
}

TEST(PurgeReservoirStreamedTest, EachElementEquallyLikelyToSurvive) {
  // 5 distinct values, keep 2 of 5 elements: each value should survive
  // with probability 2/5.
  Pcg64 rng(13);
  const int trials = 30000;
  std::vector<int> survived(6, 0);
  for (int t = 0; t < trials; ++t) {
    CompactHistogram h =
        MakeHistogram({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}});
    PurgeReservoir(&h, 2, rng);
    for (Value v = 1; v <= 5; ++v) {
      if (h.CountOf(v) > 0) ++survived[v];
    }
  }
  for (Value v = 1; v <= 5; ++v) {
    EXPECT_NEAR(survived[v] / static_cast<double>(trials), 0.4, 0.015) << v;
  }
}

}  // namespace
}  // namespace sampwh
