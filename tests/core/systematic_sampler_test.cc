#include "src/core/systematic_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SystematicSamplerTest, StrideOneKeepsEverything) {
  SystematicSampler sampler(1, Pcg64(1));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  EXPECT_EQ(sampler.sample_size(), 100u);
}

TEST(SystematicSamplerTest, SampleSizeIsDeterministicWithinOne) {
  for (int t = 0; t < 50; ++t) {
    SystematicSampler sampler(10, Pcg64(100 + t));
    for (Value v = 0; v < 995; ++v) sampler.Add(v);
    // 995 / 10 = 99.5: every offset yields 99 or 100 inclusions.
    EXPECT_GE(sampler.sample_size(), 99u);
    EXPECT_LE(sampler.sample_size(), 100u);
  }
}

TEST(SystematicSamplerTest, TakesEveryStrideth) {
  SystematicSampler sampler(7, Pcg64(2));
  for (Value v = 0; v < 700; ++v) sampler.Add(v);
  const uint64_t offset = sampler.offset();
  for (Value v = 0; v < 700; ++v) {
    const bool expected = (static_cast<uint64_t>(v) % 7) == offset;
    EXPECT_EQ(sampler.histogram().CountOf(v) == 1, expected) << v;
  }
}

TEST(SystematicSamplerTest, MarginalInclusionIsOneOverStride) {
  const uint64_t stride = 5;
  const uint64_t n = 50;
  std::vector<int> included(n, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    SystematicSampler sampler(stride, Pcg64(1000 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    sampler.histogram().ForEach(
        [&](Value v, uint64_t c) { included[v] += static_cast<int>(c); });
  }
  const double expected = trials / static_cast<double>(stride);
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], expected, 5.0 * std::sqrt(expected)) << v;
  }
}

TEST(SystematicSamplerTest, JointLawIsDegenerate) {
  // The reason systematic samples stay out of the uniform merge paths:
  // elements stride apart are perfectly correlated — only `stride`
  // distinct outcomes exist.
  const uint64_t stride = 4;
  for (int t = 0; t < 200; ++t) {
    SystematicSampler sampler(stride, Pcg64(2000 + t));
    for (Value v = 0; v < 16; ++v) sampler.Add(v);
    // If element 0 is in, element 4 must be too (and vice versa).
    EXPECT_EQ(sampler.histogram().CountOf(0), sampler.histogram().CountOf(4));
    EXPECT_EQ(sampler.histogram().CountOf(1), sampler.histogram().CountOf(9));
  }
}

}  // namespace
}  // namespace sampwh
