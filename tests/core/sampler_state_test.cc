// Mid-stream serialization of every sampler kind: a sampler saved at ANY
// split point and reloaded must continue bit-identically to one that was
// never serialized. Sweeping every split point of a stream that crosses
// the phase transitions covers, in particular, the states one element
// before and one element after the histogram->Bernoulli and
// Bernoulli->reservoir hand-offs (HB) and the histogram->reservoir
// hand-off (HR), where the most state is in flight.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/any_sampler.h"
#include "src/util/serialization.h"

namespace sampwh {
namespace {

std::string SerializedBytes(PartitionSample sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return std::move(writer).Release();
}

/// Runs `config` over 0..n-1 uninterrupted, then re-runs it with a
/// Save/Load round trip at every split point k, asserting the finalized
/// sample bytes never diverge.
void SweepAllSplitPoints(const SamplerConfig& config, uint64_t n,
                         uint64_t seed) {
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) values.push_back(static_cast<Value>(i));

  AnySampler reference(config, Pcg64(seed));
  reference.AddBatch(values);
  const std::string want = SerializedBytes(reference.Finalize());

  for (uint64_t k = 0; k <= n; ++k) {
    AnySampler before(config, Pcg64(seed));
    before.AddBatch(std::span<const Value>(values).first(k));
    const std::string state = before.SaveState();

    Result<AnySampler> after = AnySampler::LoadState(state);
    ASSERT_TRUE(after.ok()) << "split " << k << ": "
                            << after.status().ToString();
    EXPECT_EQ(after.value().elements_seen(), k) << "split " << k;
    after.value().AddBatch(std::span<const Value>(values).subspan(k));
    EXPECT_EQ(SerializedBytes(after.value().Finalize()), want)
        << "diverged after round trip at split " << k;
  }
}

// Small footprint so a 600-element stream walks HB through all three
// phases: exhaustive histogram, then Bern(q), then reservoir.
TEST(SamplerStateTest, HybridBernoulliResumesBitIdenticallyAtEverySplit) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridBernoulli;
  config.footprint_bound_bytes = 256;
  config.expected_partition_size = 600;
  SweepAllSplitPoints(config, 600, 0x48425f31ULL);
}

TEST(SamplerStateTest, HybridBernoulliExactRateResumesBitIdentically) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridBernoulli;
  config.footprint_bound_bytes = 256;
  config.expected_partition_size = 400;
  config.use_exact_rate = true;
  SweepAllSplitPoints(config, 400, 0x48425f32ULL);
}

TEST(SamplerStateTest, HybridReservoirResumesBitIdenticallyAtEverySplit) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 256;
  SweepAllSplitPoints(config, 600, 0x48525f31ULL);
}

TEST(SamplerStateTest, StratifiedBernoulliResumesBitIdenticallyAtEverySplit) {
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.07;
  SweepAllSplitPoints(config, 600, 0x53425f31ULL);
}

// A state saved from a RESUMED sampler must itself resume: chains of
// checkpoints, not just one hop.
TEST(SamplerStateTest, DoubleRoundTripStaysBitIdentical) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 256;
  std::vector<Value> values;
  for (Value v = 0; v < 900; ++v) values.push_back(v);

  AnySampler reference(config, Pcg64(7));
  reference.AddBatch(values);
  const std::string want = SerializedBytes(reference.Finalize());

  AnySampler first(config, Pcg64(7));
  first.AddBatch(std::span<const Value>(values).first(300));
  Result<AnySampler> second = AnySampler::LoadState(first.SaveState());
  ASSERT_TRUE(second.ok());
  second.value().AddBatch(std::span<const Value>(values).subspan(300, 300));
  Result<AnySampler> third =
      AnySampler::LoadState(second.value().SaveState());
  ASSERT_TRUE(third.ok());
  third.value().AddBatch(std::span<const Value>(values).subspan(600));
  EXPECT_EQ(SerializedBytes(third.value().Finalize()), want);
}

TEST(SamplerStateTest, LoadStateRejectsGarbage) {
  EXPECT_FALSE(AnySampler::LoadState("").ok());
  EXPECT_FALSE(AnySampler::LoadState("xyz").ok());
  EXPECT_FALSE(
      AnySampler::LoadState(std::string(64, '\x00')).ok());
}

TEST(SamplerStateTest, LoadStateRejectsTruncationAndTrailingBytes) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridBernoulli;
  config.footprint_bound_bytes = 256;
  config.expected_partition_size = 500;
  AnySampler sampler(config, Pcg64(11));
  for (Value v = 0; v < 500; ++v) sampler.Add(v);
  const std::string state = sampler.SaveState();
  ASSERT_TRUE(AnySampler::LoadState(state).ok());

  for (size_t len = 0; len < state.size(); ++len) {
    EXPECT_FALSE(AnySampler::LoadState(state.substr(0, len)).ok())
        << "accepted a state truncated to " << len << " bytes";
  }
  EXPECT_FALSE(AnySampler::LoadState(state + '\x00').ok());
}

TEST(SamplerStateTest, LoadStateRejectsCorruptKindTag) {
  SamplerConfig config;
  AnySampler sampler(config, Pcg64(13));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  std::string state = sampler.SaveState();
  // Byte layout: fixed32 magic, varint version (1), varint kind tag.
  state[5] = '\x09';  // no such kind
  EXPECT_FALSE(AnySampler::LoadState(state).ok());
}

}  // namespace
}  // namespace sampwh
