// The bitmask Bern(q) acceptance contract (batch_accept.h), in three
// layers of evidence:
//
//  1. Exact: every mask lane is bit-identical to Pcg64::Bernoulli(q) on
//     the same engine — the mask path and a per-element loop are
//     interchangeable mid-stream — and a bitmask-mode sampler's AddBatch
//     equals its element-wise Add loop under one seed at any chunking.
//  2. Statistical: bitmask-mode samples pass the subset-uniformity
//     chi-square gate (the same harness that verifies the skip path), and
//     both modes' sample-size distributions fit Binomial(n, q) — the
//     "same accepted count distribution" equivalence to geometric skips.
//  3. State: the acceptance mode rides in the serialized sampler state, so
//     a restored sampler continues in its original mode regardless of the
//     process-wide default.

#include "src/core/batch_accept.h"

#include <bit>
#include <cmath>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/any_sampler.h"
#include "src/core/bernoulli_sampler.h"
#include "src/stats/chi_square.h"
#include "src/stats/uniformity.h"
#include "src/util/serialization.h"

namespace sampwh {
namespace {

constexpr double kAlpha = 1e-4;

/// Restores the process-wide acceptance mode on scope exit, so tests in
/// this binary cannot leak a bitmask default into each other.
class ScopedAcceptMode {
 public:
  explicit ScopedAcceptMode(BernAcceptMode mode)
      : saved_(DefaultBernAcceptMode()) {
    SetDefaultBernAcceptMode(mode);
  }
  ~ScopedAcceptMode() { SetDefaultBernAcceptMode(saved_); }

 private:
  BernAcceptMode saved_;
};

TEST(BatchAcceptTest, MaskLanesAreBitIdenticalToBernoulli) {
  for (const double q : {0.01, 0.25, 0.5, 0.93}) {
    Pcg64 mask_rng(42, 7);
    Pcg64 scalar_rng(42, 7);
    for (int round = 0; round < 200; ++round) {
      const uint64_t mask = BernoulliAcceptMask(mask_rng, q, 64);
      for (size_t lane = 0; lane < 64; ++lane) {
        ASSERT_EQ((mask >> lane) & 1, scalar_rng.Bernoulli(q) ? 1u : 0u)
            << "q " << q << " round " << round << " lane " << lane;
      }
    }
    // Both engines consumed identical draw counts: they stay in lockstep.
    EXPECT_EQ(mask_rng.NextUint64(), scalar_rng.NextUint64());
  }
}

TEST(BatchAcceptTest, PartialLanesConsumeExactlyLanesDraws) {
  Pcg64 mask_rng(9);
  Pcg64 scalar_rng(9);
  const uint64_t mask = BernoulliAcceptMask(mask_rng, 0.4, 13);
  EXPECT_EQ(mask >> 13, 0u);  // lanes beyond the span stay clear
  for (size_t lane = 0; lane < 13; ++lane) {
    EXPECT_EQ((mask >> lane) & 1, scalar_rng.Bernoulli(0.4) ? 1u : 0u);
  }
  EXPECT_EQ(mask_rng.NextUint64(), scalar_rng.NextUint64());
}

TEST(BatchAcceptTest, DegenerateRatesConsumeNoDraws) {
  Pcg64 rng(5);
  Pcg64 untouched(5);
  EXPECT_EQ(BernoulliAcceptMask(rng, 0.0, 64), 0u);
  EXPECT_EQ(BernoulliAcceptMask(rng, -1.0, 64), 0u);
  EXPECT_EQ(BernoulliAcceptMask(rng, 1.0, 64), ~0ULL);
  EXPECT_EQ(BernoulliAcceptMask(rng, 1.0, 10), (1ULL << 10) - 1);
  EXPECT_EQ(BernoulliAcceptMask(rng, 0.5, 0), 0u);
  // Same early-outs as Bernoulli(): the engine never advanced.
  EXPECT_EQ(rng.NextUint64(), untouched.NextUint64());
}

TEST(BatchAcceptTest, CompressAcceptedSelectsMaskedValuesInOrder) {
  const std::vector<Value> values = {10, 20, 30, 40, 50, 60};
  Value out[64];
  // Bits 0, 2, 5 -> values 10, 30, 60, in lane order.
  EXPECT_EQ(CompressAccepted(values, 0b100101, out), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 30);
  EXPECT_EQ(out[2], 60);
  // Lanes past values.size() are ignored even when set in the mask.
  EXPECT_EQ(CompressAccepted(values, ~0ULL, out), 6u);
  EXPECT_EQ(out[5], 60);
  EXPECT_EQ(CompressAccepted(values, 0, out), 0u);
}

PartitionSample RunBitmaskBatched(double q, uint64_t seed,
                                  const std::vector<Value>& values,
                                  size_t chunk) {
  BernoulliSampler sampler(q, Pcg64(seed), BernAcceptMode::kBitmask);
  const std::span<const Value> all(values);
  for (size_t i = 0; i < all.size(); i += chunk) {
    sampler.AddBatch(all.subspan(i, std::min(chunk, all.size() - i)));
  }
  return sampler.Finalize();
}

TEST(BatchAcceptTest, BitmaskBatchIsExactlyElementwise) {
  std::vector<Value> values;
  for (Value v = 0; v < 20000; ++v) values.push_back(v);
  for (const uint64_t seed : {3u, 71u, 9001u}) {
    BernoulliSampler scalar(0.07, Pcg64(seed), BernAcceptMode::kBitmask);
    for (const Value v : values) scalar.Add(v);
    const PartitionSample want = scalar.Finalize();
    // Chunk sizes around the 64-lane boundary: sub-lane, misaligned prime,
    // exact lanes, and multi-lane blocks.
    for (const size_t chunk : {1u, 63u, 64u, 65u, 997u, 4096u}) {
      const PartitionSample got = RunBitmaskBatched(0.07, seed, values, chunk);
      EXPECT_EQ(want.parent_size(), got.parent_size());
      EXPECT_TRUE(want.histogram() == got.histogram())
          << "seed " << seed << " chunk " << chunk;
    }
  }
}

TEST(BatchAcceptTest, BitmaskSamplesAreUniform) {
  // The skip path's central property, asserted for the bitmask path with
  // the same harness: conditioned on the size, every subset equally likely.
  std::vector<Value> population;
  for (Value v = 0; v < 10; ++v) population.push_back(v);
  Pcg64 rng(17);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 60000,
      [&population](Pcg64& trial_rng) {
        BernoulliSampler sampler(0.4, trial_rng.Fork(0),
                                 BernAcceptMode::kBitmask);
        sampler.AddBatch(population);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 3u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

/// Tallies the sample-size distribution of `mode` over `trials` runs on a
/// distinct population of size n, then chi-squares it against
/// Binomial(n, q) with undersized tail cells pooled.
void ExpectBinomialSizeLaw(BernAcceptMode mode, uint64_t n, double q,
                           int trials, uint64_t seed) {
  std::vector<Value> population;
  for (Value v = 0; v < static_cast<Value>(n); ++v) population.push_back(v);
  std::vector<uint64_t> observed(n + 1, 0);
  for (int t = 0; t < trials; ++t) {
    BernoulliSampler sampler(q, Pcg64(seed + t), mode);
    sampler.AddBatch(population);
    ++observed[sampler.sample_size()];
  }
  // Binomial pmf via the log-gamma form, stable for all cells.
  std::vector<double> pmf(n + 1, 0.0);
  for (uint64_t k = 0; k <= n; ++k) {
    const double log_choose = std::lgamma(double(n + 1)) -
                              std::lgamma(double(k + 1)) -
                              std::lgamma(double(n - k + 1));
    pmf[k] = std::exp(log_choose + double(k) * std::log(q) +
                      double(n - k) * std::log1p(-q));
  }
  // Pool cells whose expected count is below the chi-square floor into
  // their neighbor toward the mode of the distribution.
  std::vector<uint64_t> pooled_obs;
  std::vector<double> pooled_pmf;
  uint64_t acc_obs = 0;
  double acc_pmf = 0.0;
  for (uint64_t k = 0; k <= n; ++k) {
    acc_obs += observed[k];
    acc_pmf += pmf[k];
    if (acc_pmf * trials >= 8.0) {
      pooled_obs.push_back(acc_obs);
      pooled_pmf.push_back(acc_pmf);
      acc_obs = 0;
      acc_pmf = 0.0;
    }
  }
  if (!pooled_obs.empty()) {
    pooled_obs.back() += acc_obs;
    pooled_pmf.back() += acc_pmf;
  }
  const ChiSquareResult result =
      ChiSquareGoodnessOfFit(pooled_obs, pooled_pmf);
  EXPECT_GT(result.p_value, kAlpha)
      << "mode " << static_cast<int>(mode) << " statistic "
      << result.statistic << " df " << result.degrees_of_freedom;
}

TEST(BatchAcceptTest, BothModesFollowTheBinomialCountLaw) {
  // "Same accepted count distribution": the skip path and the bitmask path
  // each fit Binomial(64, 0.3) — the law that defines Bern(q) acceptance.
  ExpectBinomialSizeLaw(BernAcceptMode::kGeometricSkip, 64, 0.3, 6000, 100);
  ExpectBinomialSizeLaw(BernAcceptMode::kBitmask, 64, 0.3, 6000, 5000000);
}

TEST(BatchAcceptTest, RuntimeDefaultSwitch) {
  ASSERT_EQ(DefaultBernAcceptMode(), BernAcceptMode::kAuto);
  {
    ScopedAcceptMode scoped(BernAcceptMode::kBitmask);
    EXPECT_EQ(DefaultBernAcceptMode(), BernAcceptMode::kBitmask);
    BernoulliSampler sampler(0.5, Pcg64(1));
    EXPECT_EQ(sampler.accept_mode(), BernAcceptMode::kBitmask);
  }
  EXPECT_EQ(DefaultBernAcceptMode(), BernAcceptMode::kAuto);
}

TEST(BatchAcceptTest, AutoResolvesByRateAtConstruction) {
  // Below the calibrated threshold acceptance is sparse: geometric skips
  // amortize the RNG cost. At or above it the branch-free mask wins.
  EXPECT_EQ(BernoulliSampler(0.01, Pcg64(1), BernAcceptMode::kAuto)
                .accept_mode(),
            BernAcceptMode::kGeometricSkip);
  EXPECT_EQ(BernoulliSampler(0.19, Pcg64(1), BernAcceptMode::kAuto)
                .accept_mode(),
            BernAcceptMode::kGeometricSkip);
  EXPECT_EQ(BernoulliSampler(kAutoBitmaskRateThreshold, Pcg64(1),
                             BernAcceptMode::kAuto)
                .accept_mode(),
            BernAcceptMode::kBitmask);
  EXPECT_EQ(
      BernoulliSampler(0.5, Pcg64(1), BernAcceptMode::kAuto).accept_mode(),
      BernAcceptMode::kBitmask);
}

void ExpectAutoBitIdenticalTo(double q, BernAcceptMode expected) {
  std::vector<Value> values;
  for (Value v = 0; v < 4096; ++v) values.push_back(v * 2654435761u);
  BernoulliSampler auto_mode(q, Pcg64(77), BernAcceptMode::kAuto);
  BernoulliSampler explicit_mode(q, Pcg64(77), expected);
  ASSERT_EQ(auto_mode.accept_mode(), expected);
  auto_mode.AddBatch(values);
  explicit_mode.AddBatch(values);
  const PartitionSample a = auto_mode.Finalize();
  const PartitionSample b = explicit_mode.Finalize();
  EXPECT_EQ(a.parent_size(), b.parent_size());
  EXPECT_TRUE(a.histogram() == b.histogram()) << "q=" << q;
}

TEST(BatchAcceptTest, AutoIsBitIdenticalToExplicitMode) {
  // kAuto resolves before the constructor's first draw, so the full RNG
  // stream — and therefore the sample — matches the explicit mode exactly.
  ExpectAutoBitIdenticalTo(0.05, BernAcceptMode::kGeometricSkip);
  ExpectAutoBitIdenticalTo(0.35, BernAcceptMode::kBitmask);
}

TEST(BatchAcceptTest, AutoNeverSerializes) {
  // Serialized state names the resolved concrete mode; restoring under a
  // different ambient default must not change the stream.
  BernoulliSampler sampler(0.5, Pcg64(9), BernAcceptMode::kAuto);
  ASSERT_EQ(sampler.accept_mode(), BernAcceptMode::kBitmask);
  BinaryWriter writer;
  sampler.SaveState(&writer);
  BinaryReader reader(writer.buffer());
  Result<BernoulliSampler> restored = BernoulliSampler::LoadState(&reader, 2);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().accept_mode(), BernAcceptMode::kBitmask);
}

TEST(BatchAcceptTest, AcceptanceModeSurvivesStateRoundTrip) {
  std::vector<Value> values;
  for (Value v = 0; v < 3000; ++v) values.push_back(v);
  const std::span<const Value> all(values);

  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.1;

  std::string state;
  PartitionSample uninterrupted;
  {
    ScopedAcceptMode scoped(BernAcceptMode::kBitmask);
    AnySampler reference(config, Pcg64(31));
    reference.AddBatch(all);
    uninterrupted = reference.Finalize();

    AnySampler first_half(config, Pcg64(31));
    first_half.AddBatch(all.first(1000));
    state = first_half.SaveState();
  }
  // The ambient default is back to geometric skip; the restored sampler
  // must nonetheless continue in bitmask mode and land bit-identically.
  Result<AnySampler> restored = AnySampler::LoadState(state);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  restored.value().AddBatch(all.subspan(1000));
  const PartitionSample resumed = restored.value().Finalize();
  EXPECT_EQ(uninterrupted.parent_size(), resumed.parent_size());
  EXPECT_TRUE(uninterrupted.histogram() == resumed.histogram());
}

}  // namespace
}  // namespace sampwh
