#include "src/core/any_sampler.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(AnySamplerTest, HbConfigProducesHbBehavior) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridBernoulli;
  config.footprint_bound_bytes = 1024;
  config.expected_partition_size = 50000;
  AnySampler sampler(config, Pcg64(1));
  for (Value v = 0; v < 50000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kBernoulli);
  EXPECT_LE(s.footprint_bytes(), 1024u);
}

TEST(AnySamplerTest, HrConfigProducesHrBehavior) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 1024;
  AnySampler sampler(config, Pcg64(2));
  for (Value v = 0; v < 50000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(s.size(), 128u);
}

TEST(AnySamplerTest, SbConfigProducesFixedRateBernoulli) {
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.05;
  AnySampler sampler(config, Pcg64(3));
  for (Value v = 0; v < 10000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kBernoulli);
  EXPECT_EQ(s.sampling_rate(), 0.05);
  EXPECT_EQ(s.footprint_bound_bytes(), 0u);
}

TEST(AnySamplerTest, TracksElementsSeen) {
  SamplerConfig config;
  AnySampler sampler(config, Pcg64(4));
  const std::vector<Value> values = {1, 2, 3, 4, 5};
  sampler.AddBatch(values);
  EXPECT_EQ(sampler.elements_seen(), 5u);
}

TEST(AnySamplerTest, KindNames) {
  EXPECT_EQ(SamplerKindToString(SamplerKind::kHybridBernoulli), "HB");
  EXPECT_EQ(SamplerKindToString(SamplerKind::kHybridReservoir), "HR");
  EXPECT_EQ(SamplerKindToString(SamplerKind::kStratifiedBernoulli), "SB");
}

}  // namespace
}  // namespace sampwh
