#include "src/core/multi_purge_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/hybrid_bernoulli.h"

namespace sampwh {
namespace {

MultiPurgeBernoulliSampler::Options Opts(uint64_t f, uint64_t n) {
  MultiPurgeBernoulliSampler::Options options;
  options.footprint_bound_bytes = f;
  options.expected_population_size = n;
  return options;
}

TEST(MultiPurgeSamplerTest, SmallStreamStaysExhaustive) {
  MultiPurgeBernoulliSampler sampler(Opts(4096, 100), Pcg64(1));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 100u);
}

TEST(MultiPurgeSamplerTest, FootprintBoundHolds) {
  const uint64_t f = 1024;
  MultiPurgeBernoulliSampler sampler(Opts(f, 20000), Pcg64(2));
  for (Value v = 0; v < 200000; ++v) {  // 10x the declared N
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), f);
    ASSERT_LT(sampler.sample_size(), 128u);
  }
  EXPECT_TRUE(sampler.Finalize().Validate().ok());
}

TEST(MultiPurgeSamplerTest, OverflowTriggersForcedPurges) {
  // Stream far longer than planned: the sampler must purge repeatedly
  // instead of switching to a reservoir.
  MultiPurgeBernoulliSampler sampler(Opts(512, 5000), Pcg64(3));
  for (Value v = 0; v < 200000; ++v) sampler.Add(v);
  EXPECT_GT(sampler.forced_purges(), 0u);
  EXPECT_EQ(sampler.phase(), SamplePhase::kBernoulli);
}

TEST(MultiPurgeSamplerTest, SamplesSmallerAndLessStableThanHb) {
  // §4.1's dominance claim, on the adversarial (longer-than-planned)
  // stream: the multi-purge variant's final sizes have larger dispersion
  // relative to HB's phase-3 fallback (which pins the size at n_F).
  const uint64_t f = 1024;
  const uint64_t planned = 10000;
  const uint64_t actual = 100000;
  double mp_sum = 0.0;
  double mp_sum_sq = 0.0;
  double hb_sum = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    MultiPurgeBernoulliSampler mp(Opts(f, planned), Pcg64(100 + t));
    HybridBernoulliSampler::Options hb_options;
    hb_options.footprint_bound_bytes = f;
    hb_options.expected_population_size = planned;
    HybridBernoulliSampler hb(hb_options, Pcg64(200 + t));
    for (Value v = 0; v < static_cast<Value>(actual); ++v) {
      mp.Add(v);
      hb.Add(v);
    }
    const double mp_size = static_cast<double>(mp.Finalize().size());
    const double hb_size = static_cast<double>(hb.Finalize().size());
    mp_sum += mp_size;
    mp_sum_sq += mp_size * mp_size;
    hb_sum += hb_size;
  }
  const double mp_mean = mp_sum / trials;
  const double hb_mean = hb_sum / trials;
  EXPECT_LT(mp_mean, hb_mean);  // smaller samples on average
  const double mp_var = mp_sum_sq / trials - mp_mean * mp_mean;
  EXPECT_GT(mp_var, 0.0);  // and genuinely dispersed (HB's is pinned at n_F)
}

TEST(MultiPurgeSamplerTest, MarginalInclusionUniform) {
  const uint64_t n = 400;
  const uint64_t f = 256;  // n_F = 32
  const int trials = 30000;
  std::vector<int> included(n, 0);
  for (int t = 0; t < trials; ++t) {
    MultiPurgeBernoulliSampler sampler(Opts(f, n), Pcg64(1000 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    const PartitionSample s = sampler.Finalize();
    s.histogram().ForEach(
        [&](Value v, uint64_t c) { included[v] += static_cast<int>(c); });
  }
  double mean = 0.0;
  for (const int c : included) mean += c;
  mean /= static_cast<double>(n);
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], mean, 5.0 * std::sqrt(mean) + 1) << v;
  }
}

}  // namespace
}  // namespace sampwh
