#include "src/core/hybrid_reservoir.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

HybridReservoirSampler::Options Opts(uint64_t f) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = f;
  return options;
}

TEST(HybridReservoirTest, SmallStreamStaysExhaustive) {
  HybridReservoirSampler sampler(Opts(4096), Pcg64(1));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 100u);
}

TEST(HybridReservoirTest, DuplicateHeavyStreamStaysExhaustive) {
  HybridReservoirSampler sampler(Opts(1024), Pcg64(2));
  for (int i = 0; i < 500000; ++i) sampler.Add(i % 16);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 500000u);
}

TEST(HybridReservoirTest, LongDistinctStreamYieldsExactNf) {
  const uint64_t f = 1024;  // n_F = 128
  HybridReservoirSampler sampler(Opts(f), Pcg64(3));
  for (Value v = 0; v < 100000; ++v) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), f);
  }
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
  EXPECT_EQ(s.size(), 128u);
  EXPECT_EQ(s.parent_size(), 100000u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(HybridReservoirTest, SampleSizeIsStableAcrossRuns) {
  // The paper's key contrast with HB: HR's terminal size is deterministic
  // (n_F) whenever the stream outgrows the footprint.
  for (int t = 0; t < 20; ++t) {
    HybridReservoirSampler sampler(Opts(512), Pcg64(100 + t));
    for (Value v = 0; v < 5000; ++v) sampler.Add(v);
    EXPECT_EQ(sampler.Finalize().size(), 64u);
  }
}

TEST(HybridReservoirTest, MarginalInclusionIsUniformAcrossPositions) {
  const uint64_t n = 500;
  const uint64_t f = 256;  // n_F = 32
  const int trials = 40000;
  std::vector<int> included(n, 0);
  for (int t = 0; t < trials; ++t) {
    HybridReservoirSampler sampler(Opts(f), Pcg64(1000 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    const PartitionSample s = sampler.Finalize();
    s.histogram().ForEach(
        [&](Value v, uint64_t c) { included[v] += static_cast<int>(c); });
  }
  const double expected = trials * 32.0 / n;  // 2560
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], expected, 5.0 * std::sqrt(expected)) << v;
  }
}

TEST(HybridReservoirTest, LazyPurgeNeverFiringStillFinalizesCorrectly) {
  // Cross into phase 2 but end the stream before any reservoir insertion
  // fires; Finalize must still cut the histogram to n_F.
  const uint64_t f = 256;  // n_F = 32; switch at the 32nd distinct value
  for (int t = 0; t < 50; ++t) {
    HybridReservoirSampler sampler(Opts(f), Pcg64(200 + t));
    for (Value v = 0; v < 33; ++v) sampler.Add(v);  // just past the switch
    if (sampler.phase() != SamplePhase::kReservoir) continue;
    const PartitionSample s = sampler.Finalize();
    EXPECT_EQ(s.phase(), SamplePhase::kReservoir);
    EXPECT_EQ(s.size(), 32u);
    EXPECT_TRUE(s.Validate().ok());
  }
}

TEST(HybridReservoirTest, ResumeFromExhaustive) {
  HybridReservoirSampler first(Opts(65536), Pcg64(4));
  for (Value v = 0; v < 40; ++v) first.Add(v);
  const PartitionSample base = first.Finalize();

  auto resumed = HybridReservoirSampler::Resume(base, Opts(65536), Pcg64(5));
  ASSERT_TRUE(resumed.ok());
  HybridReservoirSampler sampler = std::move(resumed).value();
  for (Value v = 40; v < 80; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.size(), 80u);
}

TEST(HybridReservoirTest, ResumeFromReservoirContinuesStream) {
  HybridReservoirSampler first(Opts(512), Pcg64(6));
  for (Value v = 0; v < 10000; ++v) first.Add(v);
  const PartitionSample base = first.Finalize();
  ASSERT_EQ(base.phase(), SamplePhase::kReservoir);

  auto resumed = HybridReservoirSampler::Resume(base, Opts(512), Pcg64(7));
  ASSERT_TRUE(resumed.ok());
  HybridReservoirSampler sampler = std::move(resumed).value();
  EXPECT_EQ(sampler.elements_seen(), 10000u);
  for (Value v = 10000; v < 20000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.size(), 64u);
  EXPECT_EQ(s.parent_size(), 20000u);
}

TEST(HybridReservoirTest, ResumeContinuationIncludesNewElementsAtKOverN) {
  // After resuming an SRS of size k over N0 elements and streaming N1 more,
  // each new element must appear with probability k / (N0 + N1).
  const uint64_t n0 = 2000;
  const uint64_t n1 = 2000;
  const uint64_t k = 16;  // f = 128
  int new_included = 0;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    HybridReservoirSampler first(Opts(128), Pcg64(300 + t));
    for (Value v = 0; v < static_cast<Value>(n0); ++v) first.Add(v);
    const PartitionSample base = first.Finalize();
    auto resumed =
        HybridReservoirSampler::Resume(base, Opts(128), Pcg64(90000 + t));
    ASSERT_TRUE(resumed.ok());
    HybridReservoirSampler sampler = std::move(resumed).value();
    for (Value v = 0; v < static_cast<Value>(n1); ++v) {
      sampler.Add(v + 1000000);
    }
    const PartitionSample s = sampler.Finalize();
    s.histogram().ForEach([&](Value v, uint64_t c) {
      if (v >= 1000000) new_included += static_cast<int>(c);
    });
  }
  // E[new per trial] = k * n1 / (n0 + n1) = 8.
  const double observed = new_included / static_cast<double>(trials);
  EXPECT_NEAR(observed, 8.0, 0.2);
}

TEST(HybridReservoirTest, ResumeRejectsEmptyNonExhaustive) {
  const PartitionSample empty =
      PartitionSample::MakeReservoir(CompactHistogram(), 100, 512);
  EXPECT_FALSE(
      HybridReservoirSampler::Resume(empty, Opts(512), Pcg64(8)).ok());
}

}  // namespace
}  // namespace sampwh
