// Edge and fallback paths of the merge layer that the mainline merge tests
// do not reach: rate-inversion fallback, bound mismatches, single-element
// populations, and degenerate inputs.

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bernoulli_sampler.h"
#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/merge.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

TEST(MergeEdgeTest, HbMergeFallsBackWhenCommonRateExceedsInputRates) {
  // Inputs were collected at a very low rate; a much looser merged bound
  // would ask for a HIGHER common rate, which Bernoulli thinning cannot
  // provide. HBMerge must detect this and fall back to the hypergeometric
  // merge instead of failing or producing a bogus rate.
  BernoulliSampler a(0.001, Pcg64(1));
  for (Value v = 0; v < 100000; ++v) a.Add(v);
  BernoulliSampler b(0.001, Pcg64(2));
  for (Value v = 100000; v < 200000; ++v) b.Add(v);
  const PartitionSample s1 = a.Finalize();
  const PartitionSample s2 = b.Finalize();
  MergeOptions options;
  options.footprint_bound_bytes = 1 << 20;  // n_F = 131072 >> N * q1
  Pcg64 rng(3);
  const auto merged = HBMerge(s1, s2, options, rng);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().phase(), SamplePhase::kReservoir);
  EXPECT_EQ(merged.value().parent_size(), 200000u);
  EXPECT_EQ(merged.value().size(), std::min(s1.size(), s2.size()));
}

TEST(MergeEdgeTest, MergeRejectsTinyFootprintBound) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}}), 10, 8);
  MergeOptions options;
  options.footprint_bound_bytes = 4;  // below one value
  Pcg64 rng(4);
  EXPECT_FALSE(HBMerge(s, s, options, rng).ok());
  EXPECT_FALSE(HRMerge(s, s, options, rng).ok());
}

TEST(MergeEdgeTest, MergeRejectsInvalidInputs) {
  const PartitionSample good = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}}), 10, 0);
  const PartitionSample bad = PartitionSample::MakeBernoulli(
      MakeHistogram({{1, 1}}), 10, 2.0, 0);  // invalid rate
  MergeOptions options;
  Pcg64 rng(5);
  EXPECT_FALSE(HRMerge(good, bad, options, rng).ok());
  EXPECT_FALSE(HBMerge(bad, good, options, rng).ok());
}

TEST(MergeEdgeTest, SingleElementPartitions) {
  HybridReservoirSampler::Options hr_options;
  hr_options.footprint_bound_bytes = 1024;
  HybridReservoirSampler a(hr_options, Pcg64(6));
  a.Add(7);
  HybridReservoirSampler b(hr_options, Pcg64(7));
  b.Add(8);
  const PartitionSample s1 = a.Finalize();
  const PartitionSample s2 = b.Finalize();
  MergeOptions options;
  options.footprint_bound_bytes = 1024;
  Pcg64 rng(8);
  const auto merged = HRMerge(s1, s2, options, rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 2u);
  EXPECT_EQ(merged.value().size(), 2u);  // both exhaustive -> exhaustive
  EXPECT_EQ(merged.value().histogram().CountOf(7), 1u);
  EXPECT_EQ(merged.value().histogram().CountOf(8), 1u);
}

TEST(MergeEdgeTest, TighterMergedBoundShrinksSample) {
  // Inputs collected under a loose bound, merged under a tight one: the
  // result must honor the tight bound.
  HybridReservoirSampler::Options loose;
  loose.footprint_bound_bytes = 4096;  // n_F = 512
  HybridReservoirSampler a(loose, Pcg64(9));
  for (Value v = 0; v < 10000; ++v) a.Add(v);
  HybridReservoirSampler b(loose, Pcg64(10));
  for (Value v = 10000; v < 20000; ++v) b.Add(v);
  const PartitionSample s1 = a.Finalize();
  const PartitionSample s2 = b.Finalize();
  ASSERT_EQ(s1.size(), 512u);
  MergeOptions options;
  options.footprint_bound_bytes = 256;  // n_F = 32
  Pcg64 rng(11);
  const auto merged = HRMerge(s1, s2, options, rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), 32u);
  EXPECT_LE(merged.value().footprint_bytes(), 256u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(MergeEdgeTest, HbMergeBothExhaustiveOverflowingTargetBound) {
  // Two exhaustive distinct-valued samples whose union cannot stay
  // exhaustive under the merged bound: the resume path must transition.
  const uint64_t f = 256;  // n_F = 32
  HybridBernoulliSampler::Options big;
  big.footprint_bound_bytes = 4096;
  big.expected_population_size = 30;
  HybridBernoulliSampler a(big, Pcg64(12));
  for (Value v = 0; v < 30; ++v) a.Add(v);
  HybridBernoulliSampler b(big, Pcg64(13));
  for (Value v = 30; v < 60; ++v) b.Add(v);
  const PartitionSample s1 = a.Finalize();
  const PartitionSample s2 = b.Finalize();
  ASSERT_EQ(s1.phase(), SamplePhase::kExhaustive);
  MergeOptions options;
  options.footprint_bound_bytes = f;
  Pcg64 rng(14);
  const auto merged = HBMerge(s1, s2, options, rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 60u);
  EXPECT_LE(merged.value().footprint_bytes(), f);
  EXPECT_NE(merged.value().phase(), SamplePhase::kExhaustive);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(MergeEdgeTest, UnionBernoulliOfExhaustiveInputsIsExhaustive) {
  const PartitionSample s1 = PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 2}}), 2, 0);
  const PartitionSample s2 = PartitionSample::MakeExhaustive(
      MakeHistogram({{2, 3}}), 3, 0);
  Pcg64 rng(15);
  const auto merged = UnionBernoulli({&s1, &s2}, rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(merged.value().size(), 5u);
}

TEST(MergeEdgeTest, MergeAllWithMixedPhases) {
  // One exhaustive, one Bernoulli, one reservoir partition in a single
  // MergeAll — the dispatch must navigate every pairwise combination.
  HybridReservoirSampler::Options hr_options;
  hr_options.footprint_bound_bytes = 256;
  HybridReservoirSampler r(hr_options, Pcg64(16));
  for (Value v = 0; v < 5000; ++v) r.Add(v);

  HybridBernoulliSampler::Options hb_options;
  hb_options.footprint_bound_bytes = 256;
  hb_options.expected_population_size = 5000;
  HybridBernoulliSampler bn(hb_options, Pcg64(17));
  for (Value v = 5000; v < 10000; ++v) bn.Add(v);

  HybridReservoirSampler ex(hr_options, Pcg64(18));
  for (Value v = 10000; v < 10020; ++v) ex.Add(v);

  const PartitionSample s1 = r.Finalize();
  const PartitionSample s2 = bn.Finalize();
  const PartitionSample s3 = ex.Finalize();
  ASSERT_EQ(s1.phase(), SamplePhase::kReservoir);
  ASSERT_EQ(s3.phase(), SamplePhase::kExhaustive);

  MergeOptions options;
  options.footprint_bound_bytes = 256;
  Pcg64 rng(19);
  for (const auto strategy :
       {MergeStrategy::kLeftFold, MergeStrategy::kBalancedTree}) {
    const auto merged = MergeAll({&s1, &s2, &s3}, options, rng, strategy);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged.value().parent_size(), 10020u);
    EXPECT_LE(merged.value().footprint_bytes(), 256u);
    EXPECT_TRUE(merged.value().Validate().ok());
  }
}

}  // namespace
}  // namespace sampwh
