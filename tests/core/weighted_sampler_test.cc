#include "src/core/weighted_sampler.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(WeightedSamplerTest, ShortStreamKeepsEverything) {
  WeightedReservoirSampler sampler(10, Pcg64(1));
  for (Value v = 0; v < 5; ++v) sampler.Add(v, 1.0 + v);
  EXPECT_EQ(sampler.sample_size(), 5u);
  EXPECT_EQ(sampler.elements_seen(), 5u);
  EXPECT_DOUBLE_EQ(sampler.total_weight_seen(), 1 + 2 + 3 + 4 + 5);
}

TEST(WeightedSamplerTest, CapacityRespected) {
  WeightedReservoirSampler sampler(16, Pcg64(2));
  for (Value v = 0; v < 10000; ++v) sampler.Add(v, 1.0);
  EXPECT_EQ(sampler.sample_size(), 16u);
}

TEST(WeightedSamplerTest, ItemsSortedByDescendingKey) {
  WeightedReservoirSampler sampler(32, Pcg64(3));
  for (Value v = 0; v < 1000; ++v) sampler.Add(v, 1.0 + (v % 7));
  const auto items = sampler.Items();
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].key, items[i].key);
  }
}

TEST(WeightedSamplerTest, EqualWeightsReduceToUniformSampling) {
  // With all weights equal, inclusion frequencies must match a plain SRS:
  // k/N per element.
  const uint64_t n = 50;
  const uint64_t k = 5;
  std::vector<int> included(n, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    WeightedReservoirSampler sampler(k, Pcg64(100 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v, 1.0);
    for (const WeightedItem& item : sampler.Items()) {
      ++included[item.value];
    }
  }
  const double expected = trials * static_cast<double>(k) / n;
  for (uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(included[v], expected, 5.0 * std::sqrt(expected)) << v;
  }
}

TEST(WeightedSamplerTest, FirstSelectionFollowsWeights) {
  // A-ES with k = 1: P{item i selected} = w_i / sum w (exactly).
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  std::vector<int> selected(weights.size(), 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    WeightedReservoirSampler sampler(1, Pcg64(500 + t));
    for (size_t i = 0; i < weights.size(); ++i) {
      sampler.Add(static_cast<Value>(i), weights[i]);
    }
    ++selected[sampler.Items()[0].value];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = trials * weights[i] / 10.0;
    EXPECT_NEAR(selected[i], expected, 5.0 * std::sqrt(expected)) << i;
  }
}

TEST(WeightedSamplerTest, HeavyWeightsDominate) {
  WeightedReservoirSampler sampler(8, Pcg64(4));
  // 992 light items, 8 items weighted 1000x heavier.
  for (Value v = 0; v < 992; ++v) sampler.Add(v, 1.0);
  for (Value v = 1000; v < 1008; ++v) sampler.Add(v, 1000.0);
  uint64_t heavy = 0;
  for (const WeightedItem& item : sampler.Items()) {
    if (item.value >= 1000) ++heavy;
  }
  EXPECT_GE(heavy, 6u);  // overwhelmingly the heavy items
}

TEST(WeightedSamplerTest, MergeMatchesSinglePassDistribution) {
  // Merging reservoirs over two disjoint halves must select items with
  // the same frequencies as one sampler over the concatenated stream.
  const uint64_t n = 40;
  const uint64_t k = 4;
  auto weight_of = [](Value v) { return 1.0 + (v % 5); };
  std::map<Value, int> merged_counts;
  std::map<Value, int> single_counts;
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    WeightedReservoirSampler a(k, Pcg64(1000 + t));
    WeightedReservoirSampler b(k, Pcg64(99000 + t));
    WeightedReservoirSampler single(k, Pcg64(777000 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) {
      if (v < static_cast<Value>(n / 2)) {
        a.Add(v, weight_of(v));
      } else {
        b.Add(v, weight_of(v));
      }
      single.Add(v, weight_of(v));
    }
    const auto merged = WeightedReservoirSampler::Merge(a, b);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().sample_size(), k);
    EXPECT_EQ(merged.value().elements_seen(), n);
    for (const WeightedItem& item : merged.value().Items()) {
      ++merged_counts[item.value];
    }
    for (const WeightedItem& item : single.Items()) {
      ++single_counts[item.value];
    }
  }
  for (Value v = 0; v < static_cast<Value>(n); ++v) {
    const double m = merged_counts[v];
    const double s = single_counts[v];
    EXPECT_NEAR(m, s, 5.0 * std::sqrt(std::max(m, s) + 1.0)) << v;
  }
}

TEST(WeightedSamplerTest, MergeCapacityIsMinimum) {
  WeightedReservoirSampler a(4, Pcg64(5));
  WeightedReservoirSampler b(8, Pcg64(6));
  for (Value v = 0; v < 100; ++v) {
    a.Add(v, 1.0);
    b.Add(v + 1000, 1.0);
  }
  const auto merged = WeightedReservoirSampler::Merge(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().capacity(), 4u);
  EXPECT_EQ(merged.value().sample_size(), 4u);
}

}  // namespace
}  // namespace sampwh
