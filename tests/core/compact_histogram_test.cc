#include "src/core/compact_histogram.h"

#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(CompactHistogramTest, StartsEmpty) {
  CompactHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.distinct_count(), 0u);
  EXPECT_EQ(h.footprint_bytes(), 0u);
}

TEST(CompactHistogramTest, SingletonFootprint) {
  CompactHistogram h;
  h.Insert(42);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.distinct_count(), 1u);
  EXPECT_EQ(h.footprint_bytes(), kSingletonFootprintBytes);
}

TEST(CompactHistogramTest, SingletonBecomesPair) {
  CompactHistogram h;
  h.Insert(42);
  h.Insert(42);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.distinct_count(), 1u);
  EXPECT_EQ(h.footprint_bytes(), kPairFootprintBytes);
  // Third copy of the same value costs no extra footprint.
  h.Insert(42);
  EXPECT_EQ(h.footprint_bytes(), kPairFootprintBytes);
}

TEST(CompactHistogramTest, BatchInsertFootprint) {
  CompactHistogram h;
  h.Insert(1, 5);  // directly a pair
  EXPECT_EQ(h.footprint_bytes(), kPairFootprintBytes);
  h.Insert(2, 1);  // singleton
  EXPECT_EQ(h.footprint_bytes(),
            kPairFootprintBytes + kSingletonFootprintBytes);
  h.Insert(2, 3);  // singleton upgraded
  EXPECT_EQ(h.footprint_bytes(), 2 * kPairFootprintBytes);
  EXPECT_EQ(h.total_count(), 9u);
}

TEST(CompactHistogramTest, InsertZeroIsNoop) {
  CompactHistogram h;
  h.Insert(7, 0);
  EXPECT_TRUE(h.empty());
}

TEST(CompactHistogramTest, RemoveDowngradesAndErases) {
  CompactHistogram h;
  h.Insert(1, 3);
  h.Remove(1, 1);
  EXPECT_EQ(h.CountOf(1), 2u);
  EXPECT_EQ(h.footprint_bytes(), kPairFootprintBytes);
  h.Remove(1, 1);
  EXPECT_EQ(h.CountOf(1), 1u);
  EXPECT_EQ(h.footprint_bytes(), kSingletonFootprintBytes);
  h.Remove(1, 1);
  EXPECT_EQ(h.CountOf(1), 0u);
  EXPECT_EQ(h.footprint_bytes(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(CompactHistogramTest, RemoveBatchFromPair) {
  CompactHistogram h;
  h.Insert(9, 10);
  h.Remove(9, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.footprint_bytes(), 0u);
}

TEST(CompactHistogramTest, CountOfAbsentValueIsZero) {
  CompactHistogram h;
  h.Insert(1);
  EXPECT_EQ(h.CountOf(2), 0u);
}

TEST(CompactHistogramTest, SortedEntriesAreSorted) {
  CompactHistogram h;
  h.Insert(30, 2);
  h.Insert(-5);
  h.Insert(10, 7);
  const auto entries = h.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<Value, uint64_t>{-5, 1}));
  EXPECT_EQ(entries[1], (std::pair<Value, uint64_t>{10, 7}));
  EXPECT_EQ(entries[2], (std::pair<Value, uint64_t>{30, 2}));
}

TEST(CompactHistogramTest, BagRoundTrip) {
  CompactHistogram h;
  h.Insert(3, 2);
  h.Insert(1);
  h.Insert(2, 3);
  const std::vector<Value> bag = h.ToBag();
  EXPECT_EQ(bag, (std::vector<Value>{1, 2, 2, 2, 3, 3}));
  EXPECT_TRUE(CompactHistogram::FromBag(bag) == h);
}

TEST(CompactHistogramTest, JoinSumsCounts) {
  CompactHistogram a;
  a.Insert(1, 2);
  a.Insert(2);
  CompactHistogram b;
  b.Insert(2, 3);
  b.Insert(3);
  a.Join(b);
  EXPECT_EQ(a.CountOf(1), 2u);
  EXPECT_EQ(a.CountOf(2), 4u);
  EXPECT_EQ(a.CountOf(3), 1u);
  EXPECT_EQ(a.total_count(), 7u);
}

TEST(CompactHistogramTest, JoinedFootprintMatchesActualJoin) {
  CompactHistogram a;
  a.Insert(1, 2);
  a.Insert(2);
  a.Insert(5);
  CompactHistogram b;
  b.Insert(2, 3);  // upgrades a's singleton
  b.Insert(3);     // new singleton
  b.Insert(1);     // existing pair, no change
  b.Insert(6, 4);  // new pair
  const uint64_t predicted = a.JoinedFootprintBytes(b);
  a.Join(b);
  EXPECT_EQ(predicted, a.footprint_bytes());
}

TEST(CompactHistogramTest, RemoveRandomVictimPreservesCounts) {
  CompactHistogram h;
  h.Insert(1, 5);
  h.Insert(2, 5);
  Pcg64 rng(1);
  for (int i = 0; i < 10; ++i) {
    const Value victim = h.RemoveRandomVictim(rng);
    EXPECT_TRUE(victim == 1 || victim == 2);
  }
  EXPECT_TRUE(h.empty());
}

TEST(CompactHistogramTest, RemoveRandomVictimIsUniformOverElements) {
  // Value 1 has 9 copies, value 2 has 1: the victim should be 1 about 90%
  // of the time.
  Pcg64 rng(2);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    CompactHistogram h;
    h.Insert(1, 9);
    h.Insert(2, 1);
    if (h.RemoveRandomVictim(rng) == 1) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.9, 0.01);
}

TEST(CompactHistogramTest, ClearResetsEverything) {
  CompactHistogram h;
  h.Insert(1, 3);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.footprint_bytes(), 0u);
  EXPECT_EQ(h.distinct_count(), 0u);
}

TEST(CompactHistogramTest, EqualityIgnoresInsertionOrder) {
  CompactHistogram a;
  a.Insert(1);
  a.Insert(2, 2);
  CompactHistogram b;
  b.Insert(2, 2);
  b.Insert(1);
  EXPECT_TRUE(a == b);
  b.Insert(3);
  EXPECT_FALSE(a == b);
}

TEST(CompactHistogramTest, FootprintInvariantUnderRandomOps) {
  // Property: footprint always equals 8*singletons + 12*pairs.
  Pcg64 rng(3);
  CompactHistogram h;
  for (int step = 0; step < 20000; ++step) {
    const Value v = static_cast<Value>(rng.UniformInt(50));
    if (rng.Bernoulli(0.7) || h.CountOf(v) == 0) {
      h.Insert(v, rng.UniformInt(3) + 1);
    } else {
      h.Remove(v, 1 + rng.UniformInt(h.CountOf(v)));
    }
    if (step % 500 == 0) {
      uint64_t expected = 0;
      uint64_t total = 0;
      h.ForEach([&](Value, uint64_t n) {
        expected += (n == 1) ? kSingletonFootprintBytes : kPairFootprintBytes;
        total += n;
      });
      ASSERT_EQ(h.footprint_bytes(), expected);
      ASSERT_EQ(h.total_count(), total);
    }
  }
}

}  // namespace
}  // namespace sampwh
