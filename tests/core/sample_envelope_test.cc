// Round-trips of the v2 sample envelope over every sampler phase, and a
// seeded bit-flip corpus proving that any single-bit damage to an enveloped
// sample is rejected by the CRC layer as Corruption — never decoded into a
// wrong sample, never a crash.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/any_sampler.h"
#include "src/core/sample.h"
#include "src/util/random.h"
#include "src/util/serialization.h"

namespace sampwh {
namespace {

std::string Enveloped(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return WrapSampleEnvelope(writer.buffer());
}

Result<PartitionSample> DecodeEnveloped(const std::string& file) {
  std::string_view payload;
  SAMPWH_RETURN_IF_ERROR(UnwrapSampleEnvelope(file, &payload));
  BinaryReader reader(payload);
  return PartitionSample::DeserializeFrom(&reader);
}

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

/// One representative sample per terminal phase (paper h_i), including the
/// post-purge state of each hybrid sampler: a sampler driven past its
/// footprint bound so at least one purge/subsampling step has run.
std::vector<PartitionSample> PhaseCorpus() {
  std::vector<PartitionSample> corpus;
  corpus.push_back(PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 3}, {9, 1}, {42, 6}}), 10, 4096));
  corpus.push_back(PartitionSample::MakeBernoulli(
      MakeHistogram({{2, 1}, {7, 2}}), 500, 0.01, 4096));
  corpus.push_back(PartitionSample::MakeReservoir(
      MakeHistogram({{11, 1}, {13, 1}, {17, 2}}), 1000, 4096));
  // Post-purge hybrid Bernoulli (phase 2 after at least one purge) and
  // post-purge hybrid reservoir (phase 3 after subsampling): 20k distinct
  // values against a 512-byte bound force repeated purges.
  for (SamplerKind kind :
       {SamplerKind::kHybridBernoulli, SamplerKind::kHybridReservoir}) {
    SamplerConfig config;
    config.kind = kind;
    config.footprint_bound_bytes = 512;
    config.expected_partition_size = 20000;
    AnySampler sampler(config, Pcg64(99, 7));
    for (Value v = 0; v < 20000; ++v) sampler.Add(v);
    corpus.push_back(sampler.Finalize());
  }
  return corpus;
}

TEST(SampleEnvelopeTest, EveryPhaseRoundTrips) {
  for (const PartitionSample& sample : PhaseCorpus()) {
    SCOPED_TRACE(SamplePhaseToString(sample.phase()));
    const std::string file = Enveloped(sample);
    EXPECT_TRUE(HasSampleEnvelope(file));
    const Result<PartitionSample> decoded = DecodeEnveloped(file);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().phase(), sample.phase());
    EXPECT_EQ(decoded.value().parent_size(), sample.parent_size());
    EXPECT_EQ(decoded.value().size(), sample.size());
    EXPECT_TRUE(decoded.value().histogram() == sample.histogram());
    EXPECT_TRUE(decoded.value().Validate().ok());
  }
}

TEST(SampleEnvelopeTest, EnvelopeIsByteDeterministic) {
  const PartitionSample sample = PhaseCorpus().front();
  EXPECT_EQ(Enveloped(sample), Enveloped(sample));
}

// Any single flipped bit anywhere in the enveloped file — header or
// payload — must yield Corruption, never a successful decode of damaged
// data. Exhaustive over every bit for a small sample, so header fields
// (magic, version, size, CRC) are covered too.
TEST(SampleEnvelopeTest, EverySingleBitFlipIsRejected) {
  const std::string file = Enveloped(PartitionSample::MakeReservoir(
      MakeHistogram({{5, 2}, {6, 1}}), 64, 4096));
  for (size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = file;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::string_view payload;
      const Status status = UnwrapSampleEnvelope(flipped, &payload);
      EXPECT_TRUE(status.IsCorruption())
          << "byte " << byte << " bit " << bit << ": "
          << status.ToString();
    }
  }
}

// Random multi-bit damage and truncation over the larger post-purge
// samples: seeded, so a failure reproduces.
TEST(SampleEnvelopeTest, SeededDamageCorpusNeverDecodes) {
  Pcg64 rng(0xB17F11B5ULL, 1);
  for (const PartitionSample& sample : PhaseCorpus()) {
    const std::string file = Enveloped(sample);
    for (int trial = 0; trial < 200; ++trial) {
      std::string damaged = file;
      const int flips = 1 + static_cast<int>(rng.NextUint64() % 8);
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.NextUint64() % damaged.size();
        damaged[pos] =
            static_cast<char>(damaged[pos] ^ (1u << (rng.NextUint64() % 8)));
      }
      std::string_view payload;
      EXPECT_TRUE(UnwrapSampleEnvelope(damaged, &payload).IsCorruption());
    }
    // Every proper truncation point (torn write) is rejected as well.
    for (size_t keep = 0; keep < file.size(); keep += 7) {
      std::string_view payload;
      EXPECT_TRUE(
          UnwrapSampleEnvelope(file.substr(0, keep), &payload)
              .IsCorruption());
    }
  }
}

TEST(SampleEnvelopeTest, AppendedTrailingBytesAreRejected) {
  const std::string file = Enveloped(PhaseCorpus().front());
  std::string_view payload;
  EXPECT_TRUE(
      UnwrapSampleEnvelope(file + "extra", &payload).IsCorruption());
}

}  // namespace
}  // namespace sampwh
