#include "src/core/bernoulli_sampler.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(BernoulliSamplerTest, RateOneKeepsEverything) {
  BernoulliSampler sampler(1.0, Pcg64(1));
  for (Value v = 0; v < 100; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.parent_size(), 100u);
  EXPECT_EQ(s.phase(), SamplePhase::kBernoulli);
}

TEST(BernoulliSamplerTest, SampleSizeIsBinomial) {
  const double q = 0.05;
  const uint64_t n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    BernoulliSampler sampler(q, Pcg64(100 + t));
    for (Value v = 0; v < static_cast<Value>(n); ++v) sampler.Add(v);
    const double size = static_cast<double>(sampler.sample_size());
    sum += size;
    sum_sq += size * size;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  const double expected_mean = n * q;                 // 1000
  const double expected_var = n * q * (1 - q);        // 950
  EXPECT_NEAR(mean, expected_mean,
              5.0 * std::sqrt(expected_var / trials));
  EXPECT_NEAR(var, expected_var, 0.25 * expected_var);
}

TEST(BernoulliSamplerTest, MetadataRecordsRateAndParent) {
  BernoulliSampler sampler(0.25, Pcg64(2));
  for (Value v = 0; v < 1000; ++v) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.sampling_rate(), 0.25);
  EXPECT_EQ(s.parent_size(), 1000u);
  EXPECT_EQ(s.footprint_bound_bytes(), 0u);  // SB is unbounded
  EXPECT_TRUE(s.Validate().ok());
}

TEST(BernoulliSamplerTest, DuplicatesStoredCompactly) {
  BernoulliSampler sampler(1.0, Pcg64(3));
  for (int i = 0; i < 50; ++i) sampler.Add(7);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.histogram().distinct_count(), 1u);
  EXPECT_EQ(s.histogram().CountOf(7), 50u);
  EXPECT_EQ(s.footprint_bytes(), kPairFootprintBytes);
}

TEST(BernoulliSamplerTest, EachElementIncludedIndependently) {
  // Inclusion indicator of a fixed position across repeated runs.
  const double q = 0.2;
  int included = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    BernoulliSampler sampler(q, Pcg64(1000 + t));
    for (Value v = 0; v < 10; ++v) sampler.Add(v);
    if (sampler.Finalize().histogram().CountOf(4) > 0) ++included;
  }
  EXPECT_NEAR(included / static_cast<double>(trials), q, 0.01);
}

}  // namespace
}  // namespace sampwh
