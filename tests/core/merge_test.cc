#include "src/core/merge.h"

#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/util/thread_pool.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

PartitionSample SampleHb(uint64_t f, const std::vector<Value>& data,
                         uint64_t seed) {
  HybridBernoulliSampler::Options options;
  options.footprint_bound_bytes = f;
  options.expected_population_size = data.size();
  HybridBernoulliSampler sampler(options, Pcg64(seed));
  for (const Value v : data) sampler.Add(v);
  return sampler.Finalize();
}

PartitionSample SampleHr(uint64_t f, const std::vector<Value>& data,
                         uint64_t seed) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = f;
  HybridReservoirSampler sampler(options, Pcg64(seed));
  for (const Value v : data) sampler.Add(v);
  return sampler.Finalize();
}

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

MergeOptions Opts(uint64_t f) {
  MergeOptions options;
  options.footprint_bound_bytes = f;
  return options;
}

TEST(HypergeometricSplitTest, WithinSupport) {
  Pcg64 rng(1);
  for (int t = 0; t < 1000; ++t) {
    const uint64_t l = SampleHypergeometricSplit(10, 20, 15, rng);
    EXPECT_GE(l, 0u);
    EXPECT_LE(l, 10u);
    EXPECT_GE(15 - l, 0u);
  }
}

TEST(AliasCacheTest, CachesAndSamplesCorrectMean) {
  AliasCache cache;
  Pcg64 rng(2);
  double sum = 0.0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    sum += static_cast<double>(cache.Sample(100, 300, 40, rng));
  }
  EXPECT_EQ(cache.size(), 1u);  // one distribution, built once
  EXPECT_NEAR(sum / trials, 10.0, 0.2);  // E[L] = 40 * 100/400
  cache.Sample(50, 50, 10, rng);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(HrMergeTest, BothExhaustiveStaysExhaustive) {
  const PartitionSample s1 = SampleHr(65536, Range(0, 100), 1);
  const PartitionSample s2 = SampleHr(65536, Range(100, 250), 2);
  Pcg64 rng(3);
  const auto merged = HRMerge(s1, s2, Opts(65536), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(merged.value().size(), 250u);
  EXPECT_EQ(merged.value().parent_size(), 250u);
}

TEST(HrMergeTest, BothReservoirGivesMinSize) {
  const PartitionSample s1 = SampleHr(512, Range(0, 5000), 4);
  const PartitionSample s2 = SampleHr(512, Range(5000, 30000), 5);
  ASSERT_EQ(s1.size(), 64u);
  ASSERT_EQ(s2.size(), 64u);
  Pcg64 rng(6);
  const auto merged = HRMerge(s1, s2, Opts(512), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kReservoir);
  EXPECT_EQ(merged.value().size(), 64u);
  EXPECT_EQ(merged.value().parent_size(), 30000u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(HrMergeTest, ExhaustivePlusReservoir) {
  const PartitionSample s1 = SampleHr(65536, Range(0, 500), 7);     // exact
  const PartitionSample s2 = SampleHr(512, Range(1000, 9000), 8);  // SRS 64
  Pcg64 rng(9);
  const auto merged = HRMerge(s1, s2, Opts(512), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 8500u);
  EXPECT_LE(merged.value().size(), 64u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(HrMergeTest, MergedShareFromEachSideIsHypergeometric) {
  // Theorem 1 corollary: the merged sample takes L ~ HG(|D1|,|D2|,k)
  // elements from D1. Verify the mean over repeated merges.
  const int trials = 3000;
  double from_d1 = 0.0;
  for (int t = 0; t < trials; ++t) {
    const PartitionSample s1 = SampleHr(256, Range(0, 1000), 100 + t);
    const PartitionSample s2 =
        SampleHr(256, Range(1000, 4000), 5000 + t);  // |D2| = 3000
    Pcg64 rng(90000 + t);
    const auto merged = HRMerge(s1, s2, Opts(256), rng);
    ASSERT_TRUE(merged.ok());
    merged.value().histogram().ForEach([&](Value v, uint64_t c) {
      if (v < 1000) from_d1 += static_cast<double>(c);
    });
  }
  // k = 32, E[L] = 32 * 1000/4000 = 8.
  EXPECT_NEAR(from_d1 / trials, 8.0, 0.25);
}

TEST(HrMergeTest, EmptyBernoulliInputYieldsEmptyUniformSample) {
  const PartitionSample empty =
      PartitionSample::MakeBernoulli(CompactHistogram(), 1000, 0.001, 512);
  const PartitionSample s2 = SampleHr(512, Range(0, 5000), 10);
  Pcg64 rng(11);
  const auto merged = HRMerge(empty, s2, Opts(512), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), 0u);
  EXPECT_EQ(merged.value().parent_size(), 6000u);
}

TEST(HbMergeTest, BothExhaustiveSmall) {
  const PartitionSample s1 = SampleHb(65536, Range(0, 80), 12);
  const PartitionSample s2 = SampleHb(65536, Range(80, 150), 13);
  Pcg64 rng(14);
  const auto merged = HBMerge(s1, s2, Opts(65536), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(merged.value().size(), 150u);
}

TEST(HbMergeTest, ExhaustiveStreamedIntoBernoulli) {
  const PartitionSample small = SampleHb(65536, Range(0, 200), 15);
  const PartitionSample big = SampleHb(8192, Range(1000, 101000), 16);
  ASSERT_EQ(big.phase(), SamplePhase::kBernoulli);
  Pcg64 rng(17);
  const auto merged = HBMerge(small, big, Opts(8192), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 100200u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(HbMergeTest, BothBernoulliCommonRate) {
  const PartitionSample s1 = SampleHb(8192, Range(0, 100000), 18);
  const PartitionSample s2 = SampleHb(8192, Range(100000, 200000), 19);
  ASSERT_EQ(s1.phase(), SamplePhase::kBernoulli);
  ASSERT_EQ(s2.phase(), SamplePhase::kBernoulli);
  Pcg64 rng(20);
  const auto merged = HBMerge(s1, s2, Opts(8192), rng);
  ASSERT_TRUE(merged.ok());
  const PartitionSample& m = merged.value();
  EXPECT_EQ(m.parent_size(), 200000u);
  EXPECT_LE(m.footprint_bytes(), 8192u);
  EXPECT_TRUE(m.Validate().ok());
  if (m.phase() == SamplePhase::kBernoulli) {
    // The merged rate must match q(|D1|+|D2|, p, n_F).
    EXPECT_LT(m.sampling_rate(), s1.sampling_rate());
  }
}

TEST(HbMergeTest, MergedSizeTracksCommonRate) {
  double sum = 0.0;
  const int trials = 40;
  double expected = 0.0;
  for (int t = 0; t < trials; ++t) {
    const PartitionSample s1 =
        SampleHb(8192, Range(0, 50000), 2000 + t);
    const PartitionSample s2 =
        SampleHb(8192, Range(50000, 150000), 3000 + t);
    Pcg64 rng(4000 + t);
    const auto merged = HBMerge(s1, s2, Opts(8192), rng);
    ASSERT_TRUE(merged.ok());
    sum += static_cast<double>(merged.value().size());
    expected = 150000.0 * merged.value().sampling_rate();
  }
  // Mean within 5% of N * q.
  EXPECT_NEAR(sum / trials, expected, 0.05 * expected);
}

TEST(HbMergeTest, ReservoirInputDelegatesToHrMerge) {
  // Force one HB sample into phase 3 via a stream 20x its declared size.
  HybridBernoulliSampler::Options options;
  options.footprint_bound_bytes = 512;
  options.expected_population_size = 2000;
  HybridBernoulliSampler sampler(options, Pcg64(21));
  for (Value v = 0; v < 40000; ++v) sampler.Add(v);
  const PartitionSample reservoir = sampler.Finalize();
  ASSERT_EQ(reservoir.phase(), SamplePhase::kReservoir);

  const PartitionSample bern = SampleHb(512, Range(100000, 140000), 22);
  Pcg64 rng(23);
  const auto merged = HBMerge(reservoir, bern, Opts(512), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kReservoir);
  EXPECT_EQ(merged.value().parent_size(), 80000u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(MergeSamplesTest, DispatchesByPhase) {
  const PartitionSample hb1 = SampleHb(8192, Range(0, 50000), 24);
  const PartitionSample hr1 = SampleHr(8192, Range(50000, 90000), 25);
  Pcg64 rng(26);
  const auto merged = MergeSamples(hb1, hr1, Opts(8192), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().phase(), SamplePhase::kReservoir);
}

TEST(UnionBernoulliTest, EqualRatesJustJoin) {
  const PartitionSample s1 = PartitionSample::MakeBernoulli(
      MakeHistogram({{1, 2}, {2, 1}}), 100, 0.1, 0);
  const PartitionSample s2 = PartitionSample::MakeBernoulli(
      MakeHistogram({{2, 2}, {3, 1}}), 200, 0.1, 0);
  Pcg64 rng(27);
  const auto merged = UnionBernoulli({&s1, &s2}, rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), 6u);
  EXPECT_EQ(merged.value().parent_size(), 300u);
  EXPECT_EQ(merged.value().sampling_rate(), 0.1);
  EXPECT_EQ(merged.value().histogram().CountOf(2), 3u);
}

TEST(UnionBernoulliTest, UnequalRatesAreEqualized) {
  Pcg64 rng(28);
  double kept = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const PartitionSample s1 = PartitionSample::MakeBernoulli(
        MakeHistogram({{1, 100}}), 1000, 0.2, 0);
    const PartitionSample s2 = PartitionSample::MakeBernoulli(
        MakeHistogram({{2, 100}}), 1000, 0.1, 0);
    const auto merged = UnionBernoulli({&s1, &s2}, rng);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().sampling_rate(), 0.1);
    kept += static_cast<double>(merged.value().histogram().CountOf(1));
  }
  // s1's elements survive the 0.1/0.2 thinning half the time.
  EXPECT_NEAR(kept / trials, 50.0, 1.0);
}

TEST(UnionBernoulliTest, RejectsReservoirInput) {
  const PartitionSample r = SampleHr(512, Range(0, 5000), 29);
  Pcg64 rng(30);
  EXPECT_FALSE(UnionBernoulli({&r}, rng).ok());
}

TEST(MergeAllTest, SingleInputPassesThrough) {
  const PartitionSample s = SampleHr(512, Range(0, 5000), 31);
  Pcg64 rng(32);
  const auto merged = MergeAll({&s}, Opts(512), rng);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), s.size());
}

TEST(MergeAllTest, EmptyInputIsError) {
  Pcg64 rng(33);
  EXPECT_FALSE(MergeAll({}, Opts(512), rng).ok());
}

TEST(MergeAllTest, FoldAndTreeBothCoverAllPartitions) {
  std::vector<PartitionSample> samples;
  for (int p = 0; p < 8; ++p) {
    samples.push_back(
        SampleHr(512, Range(p * 1000, (p + 1) * 1000), 40 + p));
  }
  std::vector<const PartitionSample*> pointers;
  for (const auto& s : samples) pointers.push_back(&s);
  for (const auto strategy :
       {MergeStrategy::kLeftFold, MergeStrategy::kBalancedTree}) {
    Pcg64 rng(50);
    const auto merged = MergeAll(pointers, Opts(512), rng, strategy);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().parent_size(), 8000u);
    EXPECT_EQ(merged.value().size(), 64u);
    EXPECT_TRUE(merged.value().Validate().ok());
  }
}

TEST(MergeAllParallelTest, CoversAllPartitionsAndValidates) {
  std::vector<PartitionSample> samples;
  for (int p = 0; p < 7; ++p) {  // odd count exercises the carry-up path
    samples.push_back(
        SampleHr(512, Range(p * 1000, (p + 1) * 1000), 400 + p));
  }
  std::vector<const PartitionSample*> pointers;
  for (const auto& s : samples) pointers.push_back(&s);
  ThreadPool pool(4);
  Pcg64 rng(410);
  const auto merged = MergeAllParallel(pointers, Opts(512), rng, &pool);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 7000u);
  EXPECT_EQ(merged.value().size(), 64u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(MergeAllParallelTest, DeterministicAcrossPoolSizes) {
  std::vector<PartitionSample> samples;
  for (int p = 0; p < 8; ++p) {
    samples.push_back(
        SampleHr(512, Range(p * 1000, (p + 1) * 1000), 420 + p));
  }
  std::vector<const PartitionSample*> pointers;
  for (const auto& s : samples) pointers.push_back(&s);
  std::optional<PartitionSample> reference;
  for (const size_t pool_size : {1u, 2u, 4u}) {
    ThreadPool pool(pool_size);
    Pcg64 rng(430);  // same seed every round
    const auto merged = MergeAllParallel(pointers, Opts(512), rng, &pool);
    ASSERT_TRUE(merged.ok());
    if (!reference.has_value()) {
      reference = merged.value();
    } else {
      EXPECT_TRUE(merged.value().histogram() == reference->histogram());
      EXPECT_EQ(merged.value().parent_size(), reference->parent_size());
      EXPECT_EQ(merged.value().phase(), reference->phase());
    }
  }
}

TEST(MergeAllParallelTest, NullPoolFallsBackToSerialTree) {
  std::vector<PartitionSample> samples;
  for (int p = 0; p < 4; ++p) {
    samples.push_back(
        SampleHr(512, Range(p * 1000, (p + 1) * 1000), 440 + p));
  }
  std::vector<const PartitionSample*> pointers;
  for (const auto& s : samples) pointers.push_back(&s);
  Pcg64 rng(450);
  const auto merged = MergeAllParallel(pointers, Opts(512), rng, nullptr);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 4000u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(MergeAllParallelTest, EmptyInputIsErrorAndSingleInputPassesThrough) {
  ThreadPool pool(2);
  Pcg64 rng(460);
  EXPECT_FALSE(MergeAllParallel({}, Opts(512), rng, &pool).ok());
  const PartitionSample s = SampleHr(512, Range(0, 3000), 461);
  const auto merged = MergeAllParallel({&s}, Opts(512), rng, &pool);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), s.size());
}

TEST(MergeAllTest, AliasCacheReusedAcrossSymmetricTree) {
  // 8 equal-size partitions, balanced tree: 3 levels -> 3 distinct split
  // distributions.
  std::vector<PartitionSample> samples;
  for (int p = 0; p < 8; ++p) {
    samples.push_back(
        SampleHr(256, Range(p * 1000, (p + 1) * 1000), 60 + p));
  }
  std::vector<const PartitionSample*> pointers;
  for (const auto& s : samples) pointers.push_back(&s);
  AliasCache cache;
  MergeOptions options = Opts(256);
  options.alias_cache = &cache;
  Pcg64 rng(70);
  const auto merged =
      MergeAll(pointers, options, rng, MergeStrategy::kBalancedTree);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(cache.size(), 3u);
}

TEST(MergeDisjointValueCoverage, MergedValuesComeFromBothParents) {
  int saw_left = 0;
  int saw_right = 0;
  for (int t = 0; t < 50; ++t) {
    const PartitionSample s1 = SampleHr(256, Range(0, 2000), 80 + t);
    const PartitionSample s2 = SampleHr(256, Range(2000, 4000), 180 + t);
    Pcg64 rng(280 + t);
    const auto merged = HRMerge(s1, s2, Opts(256), rng);
    ASSERT_TRUE(merged.ok());
    merged.value().histogram().ForEach([&](Value v, uint64_t) {
      if (v < 2000) {
        ++saw_left;
      } else {
        ++saw_right;
      }
    });
  }
  EXPECT_GT(saw_left, 0);
  EXPECT_GT(saw_right, 0);
}

}  // namespace
}  // namespace sampwh
