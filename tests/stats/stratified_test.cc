#include "src/stats/stratified.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/hybrid_reservoir.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

TEST(StratifiedSampleTest, EmptyIsError) {
  StratifiedSample s;
  EXPECT_FALSE(s.EstimateMean().ok());
  EXPECT_FALSE(s.EstimateSum().ok());
}

TEST(StratifiedSampleTest, RejectsEmptyStratum) {
  StratifiedSample s;
  EXPECT_FALSE(
      s.AddStratum(PartitionSample::MakeReservoir(CompactHistogram(), 10, 0))
          .ok());
}

TEST(StratifiedSampleTest, ExhaustiveStrataGiveExactAnswers) {
  StratifiedSample s;
  // Stratum 1: {1,1,2} (mean 4/3); stratum 2: {10,10} (mean 10).
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{1, 2}, {2, 1}}), 3, 0))
                  .ok());
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{10, 2}}), 2, 0))
                  .ok());
  EXPECT_EQ(s.num_strata(), 2u);
  EXPECT_EQ(s.total_parent_size(), 5u);
  const auto mean = s.EstimateMean();
  ASSERT_TRUE(mean.ok());
  EXPECT_TRUE(mean.value().exact);
  EXPECT_NEAR(mean.value().value, 24.0 / 5.0, 1e-12);  // (1+1+2+10+10)/5
  const auto sum = s.EstimateSum();
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(sum.value().value, 24.0, 1e-9);
}

TEST(StratifiedSampleTest, WeightsByStratumSize) {
  StratifiedSample s;
  // Small stratum of 10 with value 100; huge stratum of 990 with value 0.
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{100, 10}}), 10, 0))
                  .ok());
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{0, 990}}), 990, 0))
                  .ok());
  const auto mean = s.EstimateMean();
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(mean.value().value, 1.0, 1e-12);  // 1000/1000
}

TEST(StratifiedSampleTest, StratifiedBeatsPooledOnHomogeneousStrata) {
  // Classic result: when strata are internally homogeneous, the stratified
  // estimator's standard error is much smaller than a pooled SRS of the
  // same total size would give. Stratum h holds values near 1000 * h.
  StratifiedSample strat;
  Pcg64 seeder(1);
  for (int h = 0; h < 4; ++h) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = 512;  // 64 values per stratum
    HybridReservoirSampler sampler(options, seeder.Fork(h));
    Pcg64 noise(100 + h);
    for (int i = 0; i < 10000; ++i) {
      sampler.Add(1000 * h + static_cast<Value>(noise.UniformInt(10)));
    }
    ASSERT_TRUE(strat.AddStratum(sampler.Finalize()).ok());
  }
  const auto mean = strat.EstimateMean();
  ASSERT_TRUE(mean.ok());
  // True mean: average of strata means ~ (4.5 + 1004.5 + 2004.5 + 3004.5)/4.
  EXPECT_NEAR(mean.value().value, 1504.5, 5.0);
  // Within-stratum spread is ~10, so the stratified SE is tiny compared to
  // the between-strata spread (~1100) a pooled estimator would suffer.
  EXPECT_LT(mean.value().standard_error, 2.0);
}

TEST(StratifiedSampleTest, SelectivityAggregatesAcrossStrata) {
  StratifiedSample s;
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{1, 50}, {2, 50}}), 100, 0))
                  .ok());
  ASSERT_TRUE(s.AddStratum(PartitionSample::MakeExhaustive(
                               MakeHistogram({{2, 300}}), 300, 0))
                  .ok());
  const auto sel = s.EstimateSelectivity([](Value v) { return v == 2; });
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(sel.value().value, 350.0 / 400.0, 1e-12);
}

TEST(StratifiedSampleTest, ToUniformSampleBridgesToMergeLayer) {
  StratifiedSample strat;
  Pcg64 seeder(2);
  for (int h = 0; h < 3; ++h) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = 256;
    HybridReservoirSampler sampler(options, seeder.Fork(h));
    for (Value v = h * 1000; v < h * 1000 + 500; ++v) sampler.Add(v);
    ASSERT_TRUE(strat.AddStratum(sampler.Finalize()).ok());
  }
  MergeOptions options;
  options.footprint_bound_bytes = 256;
  Pcg64 rng(3);
  const auto uniform = strat.ToUniformSample(options, rng);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform.value().parent_size(), 1500u);
  EXPECT_EQ(uniform.value().size(), 32u);
  EXPECT_TRUE(uniform.value().Validate().ok());
}

}  // namespace
}  // namespace sampwh
