#include "src/stats/estimators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/hybrid_reservoir.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

PartitionSample ExhaustiveSample() {
  // Parent = {1, 1, 2, 3, 3, 3} (sum 13, mean 13/6).
  return PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 2}, {2, 1}, {3, 3}}), 6, 0);
}

TEST(EstimatorsTest, ExhaustiveSumIsExact) {
  const auto e = EstimateSum(ExhaustiveSample());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().exact);
  EXPECT_DOUBLE_EQ(e.value().value, 13.0);
  EXPECT_DOUBLE_EQ(e.value().standard_error, 0.0);
}

TEST(EstimatorsTest, ExhaustiveMeanIsExact) {
  const auto e = EstimateMean(ExhaustiveSample());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().exact);
  EXPECT_NEAR(e.value().value, 13.0 / 6.0, 1e-12);
}

TEST(EstimatorsTest, ExhaustiveCountIsExact) {
  const auto e =
      EstimateCount(ExhaustiveSample(), [](Value v) { return v >= 2; });
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e.value().value, 4.0);
}

TEST(EstimatorsTest, ExhaustiveDistinctIsExact) {
  const auto e = EstimateDistinctCount(ExhaustiveSample());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().exact);
  EXPECT_DOUBLE_EQ(e.value().value, 3.0);
}

TEST(EstimatorsTest, EmptySampleIsError) {
  const PartitionSample empty =
      PartitionSample::MakeReservoir(CompactHistogram(), 100, 0);
  EXPECT_FALSE(EstimateMean(empty).ok());
  EXPECT_FALSE(EstimateSum(empty).ok());
}

TEST(EstimatorsTest, ReservoirSumIsUnbiasedAndWithinError) {
  // Parent: 0..9999, true sum 49995000, true mean 4999.5.
  std::vector<Value> parent;
  for (Value v = 0; v < 10000; ++v) parent.push_back(v);
  double total = 0.0;
  const int trials = 200;
  int within_3se = 0;
  for (int t = 0; t < trials; ++t) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = 2048;  // n_F = 256
    HybridReservoirSampler sampler(options, Pcg64(100 + t));
    for (const Value v : parent) sampler.Add(v);
    const PartitionSample s = sampler.Finalize();
    const auto e = EstimateSum(s);
    ASSERT_TRUE(e.ok());
    total += e.value().value;
    if (std::fabs(e.value().value - 49995000.0) <=
        3.0 * e.value().standard_error) {
      ++within_3se;
    }
  }
  EXPECT_NEAR(total / trials, 49995000.0, 0.02 * 49995000.0);
  // 3 SE covers ~99.7%; demand at least 90% to keep the test robust.
  EXPECT_GE(within_3se, trials * 9 / 10);
}

TEST(EstimatorsTest, SelectivityEstimatesFraction) {
  std::vector<Value> parent;
  for (Value v = 0; v < 20000; ++v) parent.push_back(v % 100);
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 4096;  // n_F = 512
  HybridReservoirSampler sampler(options, Pcg64(7));
  for (const Value v : parent) sampler.Add(v);
  const PartitionSample s = sampler.Finalize();
  // True selectivity of v < 25 is 0.25.
  const auto e = EstimateSelectivity(s, [](Value v) { return v < 25; });
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().value, 0.25, 5.0 * e.value().standard_error + 0.01);
}

TEST(EstimatorsTest, FrequencyEstimate) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{7, 25}, {8, 75}}), 10000, 0);
  const auto e = EstimateFrequency(s, 7);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().value, 2500.0, 1e-9);
}

TEST(EstimatorsTest, ChaoDistinctCorrectionDirection) {
  // A sample full of singletons implies many unseen values: the estimate
  // must exceed the observed distinct count.
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 2}, {6, 2}}),
      100000, 0);
  const auto e = EstimateDistinctCount(s);
  ASSERT_TRUE(e.ok());
  EXPECT_GT(e.value().value, 6.0);
}

TEST(EstimatorsTest, DistinctCappedByParentSize) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}, {2, 1}, {3, 1}, {4, 1}}), 5, 0);
  const auto e = EstimateDistinctCount(s);
  ASSERT_TRUE(e.ok());
  EXPECT_LE(e.value().value, 5.0);
}

TEST(EstimatorsTest, GeeExactForExhaustive) {
  const auto e = EstimateDistinctCountGee(ExhaustiveSample());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().exact);
  EXPECT_DOUBLE_EQ(e.value().value, 3.0);
}

TEST(EstimatorsTest, GeeScalesSingletons) {
  // n = 100 of N = 10000, all singletons: GEE = sqrt(100) * 100 = 1000.
  CompactHistogram h;
  for (Value v = 0; v < 100; ++v) h.Insert(v);
  const PartitionSample s =
      PartitionSample::MakeReservoir(std::move(h), 10000, 0);
  const auto e = EstimateDistinctCountGee(s);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().value, 1000.0, 1e-9);
}

TEST(EstimatorsTest, GeeCountsRepeatedValuesOnce) {
  // 50 singletons + 25 doubletons from N = 40000, n = 100:
  // GEE = 20 * 50 + 25 = 1025.
  CompactHistogram h;
  for (Value v = 0; v < 50; ++v) h.Insert(v);
  for (Value v = 100; v < 125; ++v) h.Insert(v, 2);
  const PartitionSample s =
      PartitionSample::MakeReservoir(std::move(h), 40000, 0);
  const auto e = EstimateDistinctCountGee(s);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e.value().value, 20.0 * 50 + 25, 1e-9);
}

TEST(EstimatorsTest, GeeVersusChaoOnRealSamples) {
  // Parent: 100K elements over 5000 distinct values (uniformly): both
  // estimators must land within a factor ~3 of the truth from a 512-value
  // sample; GEE should not collapse to the naive lower bound.
  Pcg64 data_rng(1);
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 4096;  // n_F = 512
  HybridReservoirSampler sampler(options, Pcg64(2));
  for (int i = 0; i < 100000; ++i) {
    sampler.Add(static_cast<Value>(data_rng.UniformInt(5000)));
  }
  const PartitionSample s = sampler.Finalize();
  const auto gee = EstimateDistinctCountGee(s);
  const auto chao = EstimateDistinctCount(s);
  ASSERT_TRUE(gee.ok() && chao.ok());
  EXPECT_GT(gee.value().value, 1700.0);
  EXPECT_LT(gee.value().value, 15000.0);
  EXPECT_GT(chao.value().value,
            static_cast<double>(s.histogram().distinct_count()));
}

TEST(EstimatorsTest, MeanStandardErrorShrinksWithSampleSize) {
  std::vector<Value> parent;
  for (Value v = 0; v < 50000; ++v) parent.push_back(v);
  double se_small = 0.0;
  double se_large = 0.0;
  for (const auto& [f, out] :
       std::vector<std::pair<uint64_t, double*>>{{1024, &se_small},
                                                 {16384, &se_large}}) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = f;
    HybridReservoirSampler sampler(options, Pcg64(9));
    for (const Value v : parent) sampler.Add(v);
    const auto e = EstimateMean(sampler.Finalize());
    ASSERT_TRUE(e.ok());
    *out = e.value().standard_error;
  }
  EXPECT_LT(se_large, se_small);
}

}  // namespace
}  // namespace sampwh
