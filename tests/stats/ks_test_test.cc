#include "src/stats/ks_test.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace sampwh {
namespace {

TEST(KolmogorovQTest, KnownValues) {
  EXPECT_EQ(KolmogorovQ(0.0), 1.0);
  // Q(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovQ(1.36), 0.049, 0.002);
  EXPECT_LT(KolmogorovQ(2.0), 0.001);
}

TEST(KsUniformTest, UniformDataPasses) {
  Pcg64 rng(1);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.NextDouble());
  const KsResult r = KsTestUniform(values, 0.0, 1.0);
  EXPECT_GT(r.p_value, 0.001);
  EXPECT_LT(r.statistic, 0.05);
}

TEST(KsUniformTest, ShiftedDataFails) {
  Pcg64 rng(2);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.NextDouble() * 0.8);  // squeezed into [0, 0.8)
  }
  const KsResult r = KsTestUniform(values, 0.0, 1.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsDiscreteUniformTest, UniformIntegersPass) {
  Pcg64 rng(3);
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<Value>(rng.UniformInt(1000)) + 1);
  }
  const KsResult r = KsTestDiscreteUniform(values, 1, 1000);
  EXPECT_GT(r.p_value, 0.001);
}

TEST(KsDiscreteUniformTest, SkewedIntegersFail) {
  Pcg64 rng(4);
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) {
    // Half the mass in the bottom decile.
    if (rng.Bernoulli(0.5)) {
      values.push_back(static_cast<Value>(rng.UniformInt(100)) + 1);
    } else {
      values.push_back(static_cast<Value>(rng.UniformInt(1000)) + 1);
    }
  }
  EXPECT_LT(KsTestDiscreteUniform(values, 1, 1000).p_value, 1e-6);
}

TEST(KsTwoSampleTest, SameDistributionPasses) {
  Pcg64 rng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble());
  }
  EXPECT_GT(KsTestTwoSample(a, b).p_value, 0.001);
}

TEST(KsTwoSampleTest, DifferentDistributionsFail) {
  Pcg64 rng(6);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(rng.NextDouble());
    b.push_back(rng.NextDouble() * rng.NextDouble());  // Beta-ish, skewed
  }
  EXPECT_LT(KsTestTwoSample(a, b).p_value, 1e-6);
}

}  // namespace
}  // namespace sampwh
