#include "src/stats/chi_square.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace sampwh {
namespace {

TEST(ChiSquareTest, PerfectFitHasZeroStatistic) {
  const ChiSquareResult r = ChiSquareUniformFit({100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
  EXPECT_EQ(r.degrees_of_freedom, 3.0);
  EXPECT_EQ(r.total, 400u);
}

TEST(ChiSquareTest, GrossMisfitHasTinyPValue) {
  const ChiSquareResult r = ChiSquareUniformFit({1000, 10, 10, 10});
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquareTest, KnownStatisticValue) {
  // observed {10, 20, 30}, expected uniform 20 each: chi2 = 5+0+5 = 10.
  const ChiSquareResult r = ChiSquareUniformFit({10, 20, 30});
  EXPECT_NEAR(r.statistic, 10.0, 1e-12);
  EXPECT_EQ(r.degrees_of_freedom, 2.0);
  // P{chi2(2) >= 10} = exp(-5) ~ 0.0067.
  EXPECT_NEAR(r.p_value, 0.006737946999085467, 1e-9);
}

TEST(ChiSquareTest, NonUniformExpectedProbabilities) {
  const ChiSquareResult r =
      ChiSquareGoodnessOfFit({50, 150}, {0.25, 0.75});
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
}

TEST(ChiSquareTest, MinExpectedReported) {
  const ChiSquareResult r =
      ChiSquareGoodnessOfFit({90, 10}, {0.9, 0.1});
  EXPECT_NEAR(r.min_expected, 10.0, 1e-12);
}

TEST(ChiSquareTest, UniformDataPassesAtReasonableAlpha) {
  // Calibration: genuinely uniform multinomial data should usually pass.
  Pcg64 rng(1);
  int rejections = 0;
  const int experiments = 200;
  for (int e = 0; e < experiments; ++e) {
    std::vector<uint64_t> counts(10, 0);
    for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(10)];
    if (ChiSquareUniformFit(counts).p_value < 0.01) ++rejections;
  }
  // ~1% expected; 10/200 would be a wild outlier.
  EXPECT_LE(rejections, 10);
}

TEST(ChiSquareTest, DetectsMildSkew) {
  // 20% excess mass on one of ten cells, n = 20000: power ~ 1.
  Pcg64 rng(2);
  std::vector<uint64_t> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.12)) {
      ++counts[0];
    } else {
      ++counts[1 + rng.UniformInt(9)];
    }
  }
  EXPECT_LT(ChiSquareUniformFit(counts).p_value, 1e-3);
}

}  // namespace
}  // namespace sampwh
