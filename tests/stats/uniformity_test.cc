#include "src/stats/uniformity.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SubsetRankerTest, ChooseTable) {
  SubsetRanker ranker(10);
  EXPECT_EQ(ranker.Choose(10, 0), 1u);
  EXPECT_EQ(ranker.Choose(10, 3), 120u);
  EXPECT_EQ(ranker.Choose(10, 10), 1u);
  EXPECT_EQ(ranker.Choose(5, 7), 0u);
}

TEST(SubsetRankerTest, RankIsBijectiveOverAllSubsets) {
  SubsetRanker ranker(8);
  for (uint32_t k = 1; k <= 8; ++k) {
    const uint64_t total = ranker.Choose(8, k);
    std::vector<bool> seen(total, false);
    // Enumerate subsets via Unrank and verify Rank inverts it.
    for (uint64_t r = 0; r < total; ++r) {
      const std::vector<uint32_t> subset = ranker.Unrank(r, k);
      EXPECT_EQ(subset.size(), k);
      EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
      const uint64_t back = ranker.Rank(subset);
      EXPECT_EQ(back, r);
      EXPECT_FALSE(seen[r]);
      seen[r] = true;
    }
  }
}

TEST(SubsetRankerTest, EmptySubsetRanksZero) {
  SubsetRanker ranker(5);
  EXPECT_EQ(ranker.Rank({}), 0u);
}

TEST(UniformityExperimentTest, TrueSrsPasses) {
  // Sampling 3 of 7 elements uniformly must pass the chi-square.
  const std::vector<Value> population = {10, 20, 30, 40, 50, 60, 70};
  Pcg64 rng(1);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 20000,
      [&population](Pcg64& trial_rng) {
        // Floyd's algorithm for a size-3 SRS.
        std::vector<Value> pool = population;
        std::vector<Value> out;
        for (int i = 0; i < 3; ++i) {
          const size_t j = static_cast<size_t>(
              trial_rng.UniformInt(pool.size()));
          out.push_back(pool[j]);
          pool.erase(pool.begin() + static_cast<long>(j));
        }
        return out;
      },
      rng);
  ASSERT_EQ(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), 1e-4);
  EXPECT_EQ(report.by_size.at(3).num_subsets, 35u);
}

TEST(UniformityExperimentTest, BiasedSamplerFails) {
  // A sampler that never picks the first element is detectably non-uniform.
  const std::vector<Value> population = {1, 2, 3, 4, 5, 6};
  Pcg64 rng(2);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 20000,
      [&population](Pcg64& trial_rng) {
        std::vector<Value> pool(population.begin() + 1, population.end());
        std::vector<Value> out;
        for (int i = 0; i < 2; ++i) {
          const size_t j = static_cast<size_t>(
              trial_rng.UniformInt(pool.size()));
          out.push_back(pool[j]);
          pool.erase(pool.begin() + static_cast<long>(j));
        }
        return out;
      },
      rng);
  EXPECT_LT(report.MinPValue(), 1e-10);
}

TEST(UniformityExperimentTest, SkipsUnderpopulatedSizeClasses) {
  const std::vector<Value> population = {1, 2, 3, 4, 5, 6, 7, 8};
  Pcg64 rng(3);
  // 40 trials cannot populate C(8,4) = 70 cells at 5 expected each.
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 40,
      [&population](Pcg64& trial_rng) {
        std::vector<Value> pool = population;
        std::vector<Value> out;
        for (int i = 0; i < 4; ++i) {
          const size_t j = static_cast<size_t>(
              trial_rng.UniformInt(pool.size()));
          out.push_back(pool[j]);
          pool.erase(pool.begin() + static_cast<long>(j));
        }
        return out;
      },
      rng);
  EXPECT_EQ(report.TestedClasses(), 0u);
  EXPECT_EQ(report.MinPValue(), 1.0);
  EXPECT_EQ(report.by_size.at(4).trials, 40u);
}

TEST(TallyHistogramOutcomesTest, GroupsByHistogram) {
  Pcg64 rng(4);
  int flip = 0;
  const auto tally = TallyHistogramOutcomes(
      10,
      [&flip](Pcg64&) {
        ++flip;
        return (flip % 2 == 0) ? std::vector<Value>{1, 1, 2}
                               : std::vector<Value>{2, 1, 1};
      },
      rng);
  // Both orderings collapse to the same histogram {(1,2),(2,1)}.
  ASSERT_EQ(tally.size(), 1u);
  const HistogramOutcome expected = {{1, 2}, {2, 1}};
  EXPECT_EQ(tally.begin()->first, expected);
  EXPECT_EQ(tally.begin()->second, 10u);
}

}  // namespace
}  // namespace sampwh
