#include "src/stats/profile.h"

#include <gtest/gtest.h>

#include "src/core/hybrid_reservoir.h"
#include "src/util/random.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

TEST(ProfileTest, EmptySampleIsError) {
  const PartitionSample empty =
      PartitionSample::MakeReservoir(CompactHistogram(), 100, 0);
  EXPECT_FALSE(ProfileColumn(empty).ok());
}

TEST(ProfileTest, ExhaustiveProfileIsExact) {
  const PartitionSample s = PartitionSample::MakeExhaustive(
      MakeHistogram({{-5, 1}, {3, 2}, {10, 1}}), 4, 0);
  const auto profile = ProfileColumn(s);
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE(profile.value().exact);
  EXPECT_EQ(profile.value().min_value, -5);
  EXPECT_EQ(profile.value().max_value, 10);
  EXPECT_NEAR(profile.value().mean, (-5 + 3 + 3 + 10) / 4.0, 1e-12);
  EXPECT_EQ(profile.value().distinct_in_sample, 3u);
  EXPECT_DOUBLE_EQ(profile.value().estimated_distinct, 3.0);
}

TEST(ProfileTest, HeavyHittersSortedAndCapped) {
  const PartitionSample s = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 50}, {2, 30}, {3, 15}, {4, 5}}), 10000, 0);
  const auto profile = ProfileColumn(s, /*max_heavy_hitters=*/2);
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile.value().heavy_hitters.size(), 2u);
  EXPECT_EQ(profile.value().heavy_hitters[0].value, 1);
  EXPECT_EQ(profile.value().heavy_hitters[1].value, 2);
  // Expansion estimate: 50/100 of 10000.
  EXPECT_NEAR(profile.value().heavy_hitters[0].estimated_frequency, 5000.0,
              1e-9);
}

TEST(ProfileTest, KeyColumnFlaggedByLikelihood) {
  // All-distinct sample over an all-distinct parent.
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 2048;
  HybridReservoirSampler sampler(options, Pcg64(1));
  for (Value v = 0; v < 50000; ++v) sampler.Add(v);
  const auto profile = ProfileColumn(sampler.Finalize());
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().singleton_fraction, 1.0);
  EXPECT_GT(profile.value().key_likelihood, 0.5);
}

TEST(ProfileTest, CategoricalColumnHasLowSingletonFraction) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 2048;
  HybridReservoirSampler sampler(options, Pcg64(2));
  for (int i = 0; i < 50000; ++i) sampler.Add(i % 10);
  const auto profile = ProfileColumn(sampler.Finalize());
  ASSERT_TRUE(profile.ok());
  EXPECT_LT(profile.value().singleton_fraction, 0.2);
  EXPECT_LT(profile.value().key_likelihood, 0.01);
}

TEST(ProfileTest, DomainOverlapAndContainment) {
  const PartitionSample keys = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 1}, {2, 1}, {3, 1}, {4, 1}}), 100, 0);
  const PartitionSample fks = PartitionSample::MakeReservoir(
      MakeHistogram({{1, 5}, {2, 5}}), 100, 0);
  const PartitionSample other = PartitionSample::MakeReservoir(
      MakeHistogram({{99, 3}}), 100, 0);
  // fks ⊂ keys: containment of fks in keys is 1, of keys in fks is 0.5.
  EXPECT_DOUBLE_EQ(SampleDomainContainment(fks, keys), 1.0);
  EXPECT_DOUBLE_EQ(SampleDomainContainment(keys, fks), 0.5);
  EXPECT_DOUBLE_EQ(SampleDomainOverlap(keys, fks), 0.5);
  EXPECT_DOUBLE_EQ(SampleDomainOverlap(keys, other), 0.0);
  EXPECT_DOUBLE_EQ(SampleDomainOverlap(keys, keys), 1.0);
}

}  // namespace
}  // namespace sampwh
