#include "src/workload/arrival.h"

#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

ArrivalSimulator::Options Opts(ArrivalPattern pattern) {
  ArrivalSimulator::Options options;
  options.pattern = pattern;
  options.base_gap = 2;
  options.slow_factor = 10;
  options.phase_length = 100;
  return options;
}

TEST(ArrivalTest, SteadyGapsAreConstant) {
  ArrivalSimulator sim(DataGenerator::Unique(50, 1),
                       Opts(ArrivalPattern::kSteady));
  uint64_t prev = 0;
  for (int i = 0; i < 50; ++i) {
    const TimedValue tv = sim.Next();
    EXPECT_EQ(tv.timestamp - prev, 2u);
    prev = tv.timestamp;
  }
  EXPECT_FALSE(sim.HasNext());
}

TEST(ArrivalTest, TimestampsStrictlyIncrease) {
  for (const auto pattern : {ArrivalPattern::kSteady, ArrivalPattern::kBursty,
                             ArrivalPattern::kPoisson}) {
    ArrivalSimulator sim(DataGenerator::Unique(500, 1), Opts(pattern));
    uint64_t prev = 0;
    while (sim.HasNext()) {
      const TimedValue tv = sim.Next();
      EXPECT_GT(tv.timestamp, prev);
      prev = tv.timestamp;
    }
  }
}

TEST(ArrivalTest, BurstyAlternatesRates) {
  ArrivalSimulator sim(DataGenerator::Unique(200, 1),
                       Opts(ArrivalPattern::kBursty));
  std::vector<uint64_t> gaps;
  uint64_t prev = 0;
  for (int i = 0; i < 200; ++i) {
    const TimedValue tv = sim.Next();
    gaps.push_back(tv.timestamp - prev);
    prev = tv.timestamp;
  }
  // First 100 elements fast (gap 2), next 100 slow (gap 20).
  EXPECT_EQ(gaps[50], 2u);
  EXPECT_EQ(gaps[150], 20u);
}

TEST(ArrivalTest, PoissonMeanGapNearBase) {
  ArrivalSimulator::Options options = Opts(ArrivalPattern::kPoisson);
  ArrivalSimulator sim(DataGenerator::Unique(20000, 1), options);
  uint64_t prev = 0;
  double total_gap = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const TimedValue tv = sim.Next();
    total_gap += static_cast<double>(tv.timestamp - prev);
    prev = tv.timestamp;
  }
  // Geometric with success prob 1/(base+1): mean gap = base + 1 = 3.
  EXPECT_NEAR(total_gap / 20000.0, 3.0, 0.1);
}

TEST(ArrivalTest, ValuesPassThroughUnchanged) {
  ArrivalSimulator sim(DataGenerator::Unique(10, 100),
                       Opts(ArrivalPattern::kSteady));
  for (Value expected = 100; expected < 110; ++expected) {
    EXPECT_EQ(sim.Next().value, expected);
  }
}

}  // namespace
}  // namespace sampwh
