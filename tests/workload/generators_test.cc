#include "src/workload/generators.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/ks_test.h"

namespace sampwh {
namespace {

TEST(GeneratorsTest, UniqueProducesSequentialDistinctValues) {
  DataGenerator gen = DataGenerator::Unique(100, 501);
  const std::vector<Value> values = gen.TakeAll();
  ASSERT_EQ(values.size(), 100u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<Value>(501 + i));
  }
  EXPECT_FALSE(gen.HasNext());
}

TEST(GeneratorsTest, UniquePartitionsAreDisjoint) {
  DataGenerator a = DataGenerator::Make(DataKind::kUnique, 1000, 0, 1);
  DataGenerator b = DataGenerator::Make(DataKind::kUnique, 1000, 1, 1);
  std::set<Value> seen;
  for (const Value v : a.TakeAll()) EXPECT_TRUE(seen.insert(v).second);
  for (const Value v : b.TakeAll()) EXPECT_TRUE(seen.insert(v).second);
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(GeneratorsTest, UniformRespectsRangeAndIsUniform) {
  DataGenerator gen = DataGenerator::Uniform(20000, 1000, 42);
  std::vector<Value> values = gen.TakeAll();
  for (const Value v : values) {
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
  }
  EXPECT_GT(KsTestDiscreteUniform(values, 1, 1000).p_value, 1e-3);
}

TEST(GeneratorsTest, UniformIsSeedDeterministic) {
  DataGenerator a = DataGenerator::Uniform(100, 1000, 7);
  DataGenerator b = DataGenerator::Uniform(100, 1000, 7);
  EXPECT_EQ(a.TakeAll(), b.TakeAll());
  DataGenerator c = DataGenerator::Uniform(100, 1000, 8);
  DataGenerator d = DataGenerator::Uniform(100, 1000, 7);
  EXPECT_NE(c.TakeAll(), d.TakeAll());
}

TEST(GeneratorsTest, ZipfRespectsRangeAndSkews) {
  DataGenerator gen =
      DataGenerator::Zipf(50000, kPaperZipfRange, 1.0, 11);
  std::vector<uint64_t> counts(kPaperZipfRange + 1, 0);
  while (gen.HasNext()) {
    const Value v = gen.Next();
    ASSERT_GE(v, 1);
    ASSERT_LE(v, static_cast<Value>(kPaperZipfRange));
    ++counts[static_cast<size_t>(v)];
  }
  // Rank 1 must dominate rank 10 roughly 10:1.
  EXPECT_GT(counts[1], 5 * counts[10]);
  EXPECT_GT(counts[1], 0u);
}

TEST(GeneratorsTest, TakeRespectsCount) {
  DataGenerator gen = DataGenerator::Unique(10, 1);
  EXPECT_EQ(gen.Take(4).size(), 4u);
  EXPECT_EQ(gen.Take(100).size(), 6u);  // only 6 left
  EXPECT_FALSE(gen.HasNext());
}

TEST(GeneratorsTest, MakeDispatchesPartitionSeeds) {
  // Different partitions of a uniform dataset must produce different data.
  DataGenerator a = DataGenerator::Make(DataKind::kUniform, 100, 0, 5);
  DataGenerator b = DataGenerator::Make(DataKind::kUniform, 100, 1, 5);
  EXPECT_NE(a.TakeAll(), b.TakeAll());
}

TEST(GeneratorsTest, KindNames) {
  EXPECT_EQ(DataKindToString(DataKind::kUnique), "unique");
  EXPECT_EQ(DataKindToString(DataKind::kUniform), "uniform");
  EXPECT_EQ(DataKindToString(DataKind::kZipf), "zipfian");
}

}  // namespace
}  // namespace sampwh
