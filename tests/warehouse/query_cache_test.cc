// Tests of the warehouse read-path caches: the deserialized-sample cache
// in front of the store and the memoized merge tree. The invariants under
// test are the ones DESIGN.md promises — caches change latency, never
// results: strict eviction on roll-out / retention / drop, and (with
// memoization) bit-identical warm, cold and post-eviction query results.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/serialization.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

WarehouseOptions CachedOptions(uint64_t f = 512) {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = f;
  options.sample_cache_bytes = 8ull << 20;
  options.merge_memo_bytes = 8ull << 20;
  return options;
}

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

std::string Bytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

PartitionSample HandmadeSample(uint64_t parent) {
  CompactHistogram hist;
  hist.Insert(1, 2);
  hist.Insert(5, 3);
  return PartitionSample::MakeReservoir(std::move(hist), parent, 4096);
}

TEST(QueryCacheTest, GetSampleHitsAfterWriteThroughRollIn) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 4000), 4);
  ASSERT_TRUE(ids.ok());
  // Roll-in writes through, so the first read is already a hit.
  ASSERT_TRUE(wh.GetSample("ds", ids.value()[0]).ok());
  WarehouseCacheStats stats = wh.GetCacheStats();
  EXPECT_EQ(stats.sample_cache.insertions, 4u);
  EXPECT_EQ(stats.sample_cache.hits, 1u);
  EXPECT_EQ(stats.sample_cache.misses, 0u);

  // After a wholesale invalidation the first read misses and refills.
  wh.InvalidateCaches();
  ASSERT_TRUE(wh.GetSample("ds", ids.value()[0]).ok());
  ASSERT_TRUE(wh.GetSample("ds", ids.value()[0]).ok());
  stats = wh.GetCacheStats();
  EXPECT_EQ(stats.sample_cache.misses, 1u);
  EXPECT_EQ(stats.sample_cache.hits, 2u);
  EXPECT_EQ(stats.sample_cache.entries, 1u);
}

TEST(QueryCacheTest, CachedGetSampleMatchesStoreRead) {
  Warehouse cached(CachedOptions());
  WarehouseOptions uncached_options = CachedOptions();
  uncached_options.sample_cache_bytes = 0;
  uncached_options.merge_memo_bytes = 0;
  Warehouse uncached(uncached_options);
  for (Warehouse* wh : {&cached, &uncached}) {
    ASSERT_TRUE(wh->CreateDataset("ds").ok());
    ASSERT_TRUE(wh->IngestBatch("ds", Range(0, 4000), 4).ok());
  }
  for (PartitionId id = 0; id < 4; ++id) {
    const auto a = cached.GetSample("ds", id);
    const auto b = uncached.GetSample("ds", id);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Bytes(a.value()), Bytes(b.value()));
    // Same warehouse, warm read: identical to the first.
    EXPECT_EQ(Bytes(cached.GetSample("ds", id).value()), Bytes(a.value()));
  }
}

TEST(QueryCacheTest, MergeMemoNodesAccumulateAndHit) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 4000), 4);
  ASSERT_TRUE(ids.ok());
  const auto first = wh.MergedSampleAll("ds");
  ASSERT_TRUE(first.ok());
  // Balanced tree over [0,1,2,3] memoizes (01), (23) and the root.
  WarehouseCacheStats stats = wh.GetCacheStats();
  EXPECT_EQ(stats.merge_memo.entries, 3u);
  EXPECT_EQ(stats.merge_memo.insertions, 3u);

  const auto second = wh.MergedSampleAll("ds");
  ASSERT_TRUE(second.ok());
  stats = wh.GetCacheStats();
  EXPECT_EQ(stats.merge_memo.hits, 1u);  // root shortcut, no new nodes
  EXPECT_EQ(stats.merge_memo.entries, 3u);
  EXPECT_EQ(Bytes(first.value()), Bytes(second.value()));

  // A sub-union reuses its memoized interior node.
  const auto sub = wh.MergedSample("ds", {ids.value()[2], ids.value()[3]});
  ASSERT_TRUE(sub.ok());
  stats = wh.GetCacheStats();
  EXPECT_EQ(stats.merge_memo.hits, 2u);
}

TEST(QueryCacheTest, RollOutEvictsSampleAndEveryContainingMergeNode) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 4000), 4);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(wh.MergedSampleAll("ds").ok());  // nodes (01), (23), (0123)
  WarehouseCacheStats stats = wh.GetCacheStats();
  ASSERT_EQ(stats.merge_memo.entries, 3u);
  ASSERT_EQ(stats.sample_cache.entries, 4u);

  ASSERT_TRUE(wh.RollOut("ds", ids.value()[0]).ok());
  stats = wh.GetCacheStats();
  // p0's cached sample and both nodes containing p0 are gone; (23) stays.
  EXPECT_EQ(stats.sample_cache.entries, 3u);
  EXPECT_EQ(stats.merge_memo.entries, 1u);
  EXPECT_GE(stats.merge_memo.invalidations, 2u);

  // The surviving partitions still merge, bit-identical to a cold query.
  const auto after = wh.MergedSampleAll("ds");
  ASSERT_TRUE(after.ok());
  wh.InvalidateCaches();
  const auto cold = wh.MergedSampleAll("ds");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Bytes(after.value()), Bytes(cold.value()));
}

TEST(QueryCacheTest, RetentionExpiryEvictsLikeRollOut) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  // Partitions with event-time ranges 0-10, 10-20, 20-30, 30-40.
  for (uint64_t p = 0; p < 4; ++p) {
    const auto id =
        wh.RollIn("ds", HandmadeSample(100 + p), p * 10, (p + 1) * 10);
    ASSERT_TRUE(id.ok());
  }
  ASSERT_TRUE(wh.MergedSampleAll("ds").ok());
  ASSERT_EQ(wh.GetCacheStats().merge_memo.entries, 3u);

  // now=35, keep 20 ticks: partitions 0 (max 10) expires, 1 (max 20) does
  // not (20 >= 35 - 20).
  RetentionPolicy policy;
  policy.keep_window_ticks = 20;
  const auto expired = wh.ApplyRetention("ds", policy, 35);
  ASSERT_TRUE(expired.ok());
  ASSERT_EQ(expired.value(), (std::vector<PartitionId>{0}));

  const WarehouseCacheStats stats = wh.GetCacheStats();
  EXPECT_EQ(stats.sample_cache.entries, 3u);
  EXPECT_EQ(stats.merge_memo.entries, 1u);

  const auto warm = wh.MergedSampleAll("ds");
  ASSERT_TRUE(warm.ok());
  wh.InvalidateCaches();
  const auto cold = wh.MergedSampleAll("ds");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Bytes(warm.value()), Bytes(cold.value()));
}

TEST(QueryCacheTest, DropAndRecreateNeverServesStaleEpoch) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.RollIn("ds", HandmadeSample(111)).ok());
  ASSERT_TRUE(wh.GetSample("ds", 0).ok());  // warm the cache with epoch-0 p0

  ASSERT_TRUE(wh.DropDataset("ds").ok());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  // The recreated dataset allocates partition ids from 0 again.
  const auto id = wh.RollIn("ds", HandmadeSample(222));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(id.value(), 0u);
  const auto sample = wh.GetSample("ds", 0);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample.value().parent_size(), 222u);
}

TEST(QueryCacheTest, DisableMemoizationRestoresFreshRandomness) {
  WarehouseOptions options = CachedOptions();
  options.merge.disable_memoization = true;
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 40000), 4).ok());
  const auto first = wh.MergedSampleAll("ds");
  const auto second = wh.MergedSampleAll("ds");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The legacy path forks the warehouse RNG per query: two identical
  // queries are independent draws (equal realizations are astronomically
  // unlikely at this sample size), and nothing is memoized.
  EXPECT_NE(Bytes(first.value()), Bytes(second.value()));
  EXPECT_EQ(wh.GetCacheStats().merge_memo.entries, 0u);
}

TEST(QueryCacheTest, CompactionInvalidatesInputsAndServesMergedResult) {
  Warehouse wh(CachedOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 4000), 4);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(wh.MergedSampleAll("ds").ok());
  const auto compacted =
      wh.CompactPartitions("ds", {ids.value()[0], ids.value()[1]});
  ASSERT_TRUE(compacted.ok());
  // All memo nodes touched p0 or p1, so compaction leaves only (23) alive.
  EXPECT_EQ(wh.GetCacheStats().merge_memo.entries, 1u);
  const auto warm = wh.MergedSampleAll("ds");
  ASSERT_TRUE(warm.ok());
  wh.InvalidateCaches();
  const auto cold = wh.MergedSampleAll("ds");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Bytes(warm.value()), Bytes(cold.value()));
}

}  // namespace
}  // namespace sampwh
