#include "src/warehouse/catalog.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

PartitionInfo Info(PartitionId id, uint64_t parent = 100,
                   uint64_t sample = 10, uint64_t min_ts = 0,
                   uint64_t max_ts = 0) {
  PartitionInfo info;
  info.id = id;
  info.parent_size = parent;
  info.sample_size = sample;
  info.phase = SamplePhase::kReservoir;
  info.min_timestamp = min_ts;
  info.max_timestamp = max_ts;
  return info;
}

TEST(CatalogTest, CreateAndDropDataset) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateDataset("ds").ok());
  EXPECT_TRUE(catalog.HasDataset("ds"));
  EXPECT_TRUE(catalog.CreateDataset("ds").IsAlreadyExists());
  EXPECT_TRUE(catalog.DropDataset("ds").ok());
  EXPECT_FALSE(catalog.HasDataset("ds"));
  EXPECT_TRUE(catalog.DropDataset("ds").IsNotFound());
}

TEST(CatalogTest, CreateValidatesId) {
  Catalog catalog;
  EXPECT_TRUE(catalog.CreateDataset("bad id").IsInvalidArgument());
}

TEST(CatalogTest, AllocatePartitionIdsAreSequential) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  EXPECT_EQ(catalog.AllocatePartitionId("ds").value(), 0u);
  EXPECT_EQ(catalog.AllocatePartitionId("ds").value(), 1u);
  EXPECT_TRUE(catalog.AllocatePartitionId("ghost").status().IsNotFound());
}

TEST(CatalogTest, AddAndRemovePartition) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  EXPECT_TRUE(catalog.AddPartition("ds", Info(0)).ok());
  EXPECT_TRUE(catalog.AddPartition("ds", Info(0)).IsAlreadyExists());
  EXPECT_TRUE(catalog.GetPartition("ds", 0).ok());
  EXPECT_TRUE(catalog.RemovePartition("ds", 0).ok());
  EXPECT_TRUE(catalog.GetPartition("ds", 0).status().IsNotFound());
  EXPECT_TRUE(catalog.RemovePartition("ds", 0).IsNotFound());
}

TEST(CatalogTest, ExternalIdsAdvanceAllocator) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(41)).ok());
  EXPECT_EQ(catalog.AllocatePartitionId("ds").value(), 42u);
}

TEST(CatalogTest, DatasetInfoAggregates) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(0, 100, 10)).ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(1, 250, 25)).ok());
  const auto info = catalog.GetDatasetInfo("ds");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_partitions, 2u);
  EXPECT_EQ(info.value().total_parent_size, 350u);
  EXPECT_EQ(info.value().total_sample_size, 35u);
}

TEST(CatalogTest, ListPartitionsSortedById) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(7)).ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(3)).ok());
  const auto parts = catalog.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 2u);
  EXPECT_EQ(parts.value()[0].id, 3u);
  EXPECT_EQ(parts.value()[1].id, 7u);
}

TEST(CatalogTest, TimeRangeQuery) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("ds").ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(0, 100, 10, 0, 9)).ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(1, 100, 10, 10, 19)).ok());
  ASSERT_TRUE(catalog.AddPartition("ds", Info(2, 100, 10, 20, 29)).ok());
  const auto middle = catalog.PartitionsInTimeRange("ds", 10, 19);
  ASSERT_TRUE(middle.ok());
  EXPECT_EQ(middle.value(), (std::vector<PartitionId>{1}));
  const auto spanning = catalog.PartitionsInTimeRange("ds", 5, 25);
  ASSERT_TRUE(spanning.ok());
  EXPECT_EQ(spanning.value(), (std::vector<PartitionId>{0, 1, 2}));
  const auto none = catalog.PartitionsInTimeRange("ds", 100, 200);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST(CatalogTest, ListDatasets) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("b").ok());
  ASSERT_TRUE(catalog.CreateDataset("a").ok());
  EXPECT_EQ(catalog.ListDatasets(), (std::vector<DatasetId>{"a", "b"}));
}

}  // namespace
}  // namespace sampwh
