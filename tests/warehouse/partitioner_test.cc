#include "src/warehouse/partitioner.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(CountPartitionerTest, ClosesAtMaxElements) {
  CountPartitioner p(3);
  PartitionProgress progress;
  progress.elements = 2;
  EXPECT_FALSE(p.ShouldCloseBefore(progress, 0));
  progress.elements = 3;
  EXPECT_TRUE(p.ShouldCloseBefore(progress, 0));
  EXPECT_FALSE(p.ShouldCloseAfter(progress));  // count policy is before-only
}

TEST(TemporalPartitionerTest, ClosesWhenWindowElapses) {
  TemporalPartitioner p(10);
  PartitionProgress progress;
  progress.elements = 5;
  progress.first_timestamp = 100;
  EXPECT_FALSE(p.ShouldCloseBefore(progress, 109));
  EXPECT_TRUE(p.ShouldCloseBefore(progress, 110));
  EXPECT_TRUE(p.ShouldCloseBefore(progress, 500));
}

TEST(TemporalPartitionerTest, EmptyPartitionNeverCloses) {
  TemporalPartitioner p(10);
  PartitionProgress progress;  // elements = 0
  EXPECT_FALSE(p.ShouldCloseBefore(progress, 99999));
}

TEST(RatioTriggerPartitionerTest, ClosesWhenFractionDropsToBound) {
  RatioTriggerPartitioner p(0.1, /*min_elements=*/10);
  PartitionProgress progress;
  progress.elements = 50;
  progress.sample_size = 10;  // fraction 0.2 > 0.1
  EXPECT_FALSE(p.ShouldCloseAfter(progress));
  progress.elements = 100;    // fraction 0.1 <= 0.1
  EXPECT_TRUE(p.ShouldCloseAfter(progress));
}

TEST(RatioTriggerPartitionerTest, RespectsMinElements) {
  RatioTriggerPartitioner p(0.5, /*min_elements=*/100);
  PartitionProgress progress;
  progress.elements = 50;
  progress.sample_size = 1;  // fraction well below the bound
  EXPECT_FALSE(p.ShouldCloseAfter(progress));  // too few elements yet
  progress.elements = 100;
  EXPECT_TRUE(p.ShouldCloseAfter(progress));
}

TEST(PartitionerFactoryTest, FactoriesProduceWorkingPolicies) {
  auto count = MakeCountPartitioner(2);
  auto temporal = MakeTemporalPartitioner(5);
  auto ratio = MakeRatioTriggerPartitioner(0.5);
  PartitionProgress progress;
  progress.elements = 2;
  progress.sample_size = 1;
  progress.first_timestamp = 0;
  EXPECT_TRUE(count->ShouldCloseBefore(progress, 0));
  EXPECT_TRUE(temporal->ShouldCloseBefore(progress, 5));
  EXPECT_TRUE(ratio->ShouldCloseAfter(progress));
}

}  // namespace
}  // namespace sampwh
