// ParallelIngestor: shard-per-core ingestion over lock-free rings. The
// load-bearing property is the determinism contract — for a fixed
// assignment of elements to stripes, the rolled-in sample BYTES are a pure
// function of (seed, dataset, stripe), independent of producer
// interleaving, shard count, producer count, and crash/resume — plus the
// basics (drain accounting, per-stripe exactly-once replay, checkpoint
// cleanup on drop).

#include "src/warehouse/parallel_ingestor.h"

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/serialization.h"

namespace sampwh {
namespace {

constexpr uint64_t kStripes = 12;
constexpr uint64_t kPerStripe = 5000;

WarehouseOptions SmallOptions() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kStratifiedBernoulli;
  options.sampler.bernoulli_rate = 0.05;
  options.seed = 0xBEEF;
  return options;
}

std::vector<Value> StripeData(uint64_t stripe) {
  // Distinct values per stripe so cross-stripe mixups would be visible.
  std::vector<Value> values;
  values.reserve(kPerStripe);
  for (uint64_t i = 0; i < kPerStripe; ++i) {
    values.push_back(static_cast<Value>(stripe * 1000000 + i));
  }
  return values;
}

/// The multiset of rolled-in sample bytes — the interleaving-independent
/// footprint of an ingest run (partition IDS are arrival-ordered and may
/// legitimately differ between runs).
std::vector<std::string> SortedSampleBytes(Warehouse& wh,
                                           const std::string& dataset) {
  auto parts = wh.ListPartitions(dataset);
  EXPECT_TRUE(parts.ok());
  std::vector<std::string> bytes;
  for (const PartitionInfo& p : parts.value()) {
    auto sample = wh.GetSample(dataset, p.id);
    EXPECT_TRUE(sample.ok());
    BinaryWriter writer;
    sample.value().SerializeTo(&writer);
    bytes.push_back(std::move(writer).Release());
  }
  std::sort(bytes.begin(), bytes.end());
  return bytes;
}

ParallelIngestor::PartitionerFactory CountFactory(uint64_t max_elements) {
  return [max_elements](uint64_t) { return MakeCountPartitioner(max_elements); };
}

TEST(ParallelIngestorTest, IngestsAllStripesAndRollsIn) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ParallelIngestOptions options;
  options.shards = 3;
  ParallelIngestor ingestor(&wh, "ds", CountFactory(2000), options);
  ParallelIngestor::Producer* producer = ingestor.AddProducer();
  for (uint64_t stripe = 0; stripe < kStripes; ++stripe) {
    const std::vector<Value> data = StripeData(stripe);
    const std::span<const Value> all(data);
    for (size_t i = 0; i < all.size(); i += 512) {
      ASSERT_TRUE(producer
                      ->Append(stripe, all.subspan(i, std::min<size_t>(
                                                          512, all.size() - i)))
                      .ok());
    }
  }
  ASSERT_TRUE(ingestor.Finish().ok());

  // Every stripe closes ceil(5000/2000) = 3 partitions.
  EXPECT_EQ(ingestor.rolled_in().size(), kStripes * 3);
  auto parts = wh.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts.value().size(), kStripes * 3);
  uint64_t parent_total = 0;
  for (const PartitionInfo& p : parts.value()) parent_total += p.parent_size;
  EXPECT_EQ(parent_total, kStripes * kPerStripe);

  // Work accounting: all shards together saw every batch and element.
  uint64_t elements = 0;
  uint64_t busy_shards = 0;
  for (const ShardIngestStats& s : ingestor.shard_stats()) {
    elements += s.elements;
    busy_shards += s.batches > 0 ? 1 : 0;
  }
  EXPECT_EQ(elements, kStripes * kPerStripe);
  EXPECT_EQ(busy_shards, 3u);  // 12 stripes spread over all 3 shards
}

/// Runs a full parallel ingest of kStripes stripes into a fresh warehouse
/// and returns the sorted sample-bytes multiset.
std::vector<std::string> RunParallel(size_t shards, size_t producers,
                                     bool reverse_stripe_order) {
  Warehouse wh(SmallOptions());
  EXPECT_TRUE(wh.CreateDataset("ds").ok());
  ParallelIngestOptions options;
  options.shards = shards;
  options.ring_capacity = 8;  // small: force backpressure interleavings
  ParallelIngestor ingestor(&wh, "ds", CountFactory(2000), options);

  std::vector<ParallelIngestor::Producer*> handles;
  for (size_t p = 0; p < producers; ++p) {
    handles.push_back(ingestor.AddProducer());
  }
  // Producers own disjoint stripe sets (stripe % producers) and run as real
  // threads, so shard-side arrival interleaving is genuinely nondeterministic.
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kStripes; ++i) {
        const uint64_t stripe = reverse_stripe_order ? kStripes - 1 - i : i;
        if (stripe % producers != p) continue;
        const std::vector<Value> data = StripeData(stripe);
        const std::span<const Value> all(data);
        for (size_t off = 0; off < all.size(); off += 512) {
          ASSERT_TRUE(handles[p]
                          ->Append(stripe,
                                   all.subspan(off, std::min<size_t>(
                                                        512, all.size() - off)))
                          .ok());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ingestor.Finish().ok());
  return SortedSampleBytes(wh, "ds");
}

TEST(ParallelIngestorTest, SampleBytesAreInterleavingIndependent) {
  const std::vector<std::string> reference = RunParallel(1, 1, false);
  ASSERT_FALSE(reference.empty());
  // Same seed, same stripe assignment: shard count, producer count, feed
  // order and thread scheduling must all be invisible in the sample bytes.
  EXPECT_EQ(RunParallel(3, 2, false), reference);
  EXPECT_EQ(RunParallel(4, 3, true), reference);
  EXPECT_EQ(RunParallel(8, 4, false), reference);
}

TEST(ParallelIngestorTest, DrainWaitsForAllPushedBatches) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ParallelIngestOptions options;
  options.shards = 2;
  ParallelIngestor ingestor(&wh, "ds", CountFactory(100000), options);
  ParallelIngestor::Producer* producer = ingestor.AddProducer();
  const std::vector<Value> data = StripeData(0);
  for (uint64_t stripe = 0; stripe < 6; ++stripe) {
    ASSERT_TRUE(producer->Append(stripe, data).ok());
  }
  ASSERT_TRUE(ingestor.Drain().ok());
  uint64_t applied = 0;
  for (const ShardIngestStats& s : ingestor.shard_stats()) {
    applied += s.elements;
  }
  EXPECT_EQ(applied, 6 * kPerStripe);  // nothing in flight after Drain
  const std::map<uint64_t, uint64_t> watermarks = ingestor.next_sequences();
  EXPECT_EQ(watermarks.size(), 6u);
  for (const auto& [stripe, next] : watermarks) {
    EXPECT_EQ(next, kPerStripe) << "stripe " << stripe;
  }
  ASSERT_TRUE(ingestor.Finish().ok());
}

TEST(ParallelIngestorTest, CrashAndResumeMatchesUninterruptedRun) {
  // Reference: one uninterrupted checkpointed parallel run.
  Warehouse reference_wh(SmallOptions());
  ASSERT_TRUE(reference_wh.CreateDataset("ds").ok());
  ParallelIngestOptions options;
  options.shards = 3;
  options.enable_checkpoints = true;
  options.checkpoint_policy.every_n_elements = 700;
  {
    ParallelIngestor ingestor(&reference_wh, "ds", CountFactory(2000),
                              options);
    ParallelIngestor::Producer* producer = ingestor.AddProducer();
    for (uint64_t stripe = 0; stripe < 6; ++stripe) {
      ASSERT_TRUE(producer->AppendAt(stripe, 0, StripeData(stripe)).ok());
    }
    ASSERT_TRUE(ingestor.Finish().ok());
  }
  const std::vector<std::string> want =
      SortedSampleBytes(reference_wh, "ds");

  // Crashed run: ingest a prefix, drain so checkpoints are written, then
  // destroy without Finish (crash semantics: open stripes not flushed).
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  {
    ParallelIngestor ingestor(&wh, "ds", CountFactory(2000), options);
    ParallelIngestor::Producer* producer = ingestor.AddProducer();
    for (uint64_t stripe = 0; stripe < 6; ++stripe) {
      const std::vector<Value> data = StripeData(stripe);
      ASSERT_TRUE(
          producer
              ->AppendAt(stripe, 0, std::span<const Value>(data).first(3100))
              .ok());
    }
    ASSERT_TRUE(ingestor.Drain().ok());
  }

  // Resume with a DIFFERENT shard count and replay each stripe from its
  // watermark (sources may replay earlier; duplicates are acknowledged).
  auto resumed =
      ParallelIngestor::Resume(&wh, "ds", CountFactory(2000), [] {
        ParallelIngestOptions o;
        o.shards = 2;
        o.enable_checkpoints = true;
        o.checkpoint_policy.every_n_elements = 700;
        return o;
      }());
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ParallelIngestor::Producer* producer = resumed.value()->AddProducer();
  const std::map<uint64_t, uint64_t> watermarks =
      resumed.value()->next_sequences();
  ASSERT_EQ(watermarks.size(), 6u);
  for (const auto& [stripe, next] : watermarks) {
    const std::vector<Value> data = StripeData(stripe);
    // Replay from BEFORE the watermark: the straddling batch must be
    // deduplicated per stripe, giving exactly-once application.
    const uint64_t replay_from = next > 500 ? next - 500 : 0;
    ASSERT_TRUE(producer
                    ->AppendAt(stripe, replay_from,
                               std::span<const Value>(data).subspan(
                                   replay_from))
                    .ok());
  }
  ASSERT_TRUE(resumed.value()->Finish().ok());
  EXPECT_EQ(SortedSampleBytes(wh, "ds"), want);
}

TEST(ParallelIngestorTest, ResumeWithoutCheckpointsIsNotFound) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  auto resumed = ParallelIngestor::Resume(&wh, "ds", CountFactory(100), {});
  EXPECT_FALSE(resumed.ok());
}

TEST(ParallelIngestorTest, DropDatasetRemovesStripeCheckpoints) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ParallelIngestOptions options;
  options.shards = 2;
  options.enable_checkpoints = true;
  options.checkpoint_policy.every_n_elements = 100;
  {
    ParallelIngestor ingestor(&wh, "ds", CountFactory(1000), options);
    ParallelIngestor::Producer* producer = ingestor.AddProducer();
    for (uint64_t stripe = 0; stripe < 4; ++stripe) {
      ASSERT_TRUE(producer->Append(stripe, StripeData(stripe)).ok());
    }
    ASSERT_TRUE(ingestor.Finish().ok());
  }
  auto keys = wh.ListIngestCheckpoints();
  ASSERT_TRUE(keys.ok());
  EXPECT_FALSE(keys.value().empty());
  ASSERT_TRUE(wh.DropDataset("ds").ok());
  keys = wh.ListIngestCheckpoints();
  ASSERT_TRUE(keys.ok());
  for (const std::string& key : keys.value()) {
    EXPECT_NE(key.substr(0, 3), "ds#") << "leaked stripe checkpoint " << key;
    EXPECT_NE(key, "ds");
  }
}

}  // namespace
}  // namespace sampwh
