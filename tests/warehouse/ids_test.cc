#include "src/warehouse/ids.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(IdsTest, ValidIdsPass) {
  EXPECT_TRUE(ValidateDatasetId("orders").ok());
  EXPECT_TRUE(ValidateDatasetId("orders.line_item-2026").ok());
  EXPECT_TRUE(ValidateDatasetId("A_b.C-9").ok());
}

TEST(IdsTest, EmptyIdRejected) {
  EXPECT_TRUE(ValidateDatasetId("").IsInvalidArgument());
}

TEST(IdsTest, IllegalCharactersRejected) {
  EXPECT_FALSE(ValidateDatasetId("with space").ok());
  EXPECT_FALSE(ValidateDatasetId("path/traversal").ok());
  EXPECT_FALSE(ValidateDatasetId(std::string("null\0byte", 9)).ok());
  EXPECT_FALSE(ValidateDatasetId("unicode\xc3\xa9").ok());
}

TEST(IdsTest, OverlongIdRejected) {
  EXPECT_FALSE(ValidateDatasetId(std::string(201, 'a')).ok());
  EXPECT_TRUE(ValidateDatasetId(std::string(200, 'a')).ok());
}

TEST(IdsTest, PartitionKeyOrdering) {
  const PartitionKey a{"ds1", 5};
  const PartitionKey b{"ds1", 6};
  const PartitionKey c{"ds2", 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (PartitionKey{"ds1", 5}));
}

}  // namespace
}  // namespace sampwh
