#include "src/warehouse/dictionary.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(DictionaryTest, EncodeAssignsDenseCodes) {
  ValueDictionary dict;
  EXPECT_EQ(dict.Encode("apple"), 0);
  EXPECT_EQ(dict.Encode("banana"), 1);
  EXPECT_EQ(dict.Encode("apple"), 0);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, DecodeInvertsEncode) {
  ValueDictionary dict;
  const Value a = dict.Encode("alpha");
  const Value b = dict.Encode("beta");
  EXPECT_EQ(dict.Decode(a).value(), "alpha");
  EXPECT_EQ(dict.Decode(b).value(), "beta");
}

TEST(DictionaryTest, LookupDoesNotInsert) {
  ValueDictionary dict;
  EXPECT_TRUE(dict.Lookup("ghost").status().IsNotFound());
  EXPECT_EQ(dict.size(), 0u);
  dict.Encode("real");
  EXPECT_EQ(dict.Lookup("real").value(), 0);
}

TEST(DictionaryTest, DecodeUnknownCodeFails) {
  ValueDictionary dict;
  dict.Encode("x");
  EXPECT_TRUE(dict.Decode(5).status().IsOutOfRange());
  EXPECT_TRUE(dict.Decode(-1).status().IsOutOfRange());
}

TEST(DictionaryTest, EmptyTokenIsValid) {
  ValueDictionary dict;
  const Value code = dict.Encode("");
  EXPECT_EQ(dict.Decode(code).value(), "");
}

TEST(DictionaryTest, SerializationRoundTrip) {
  ValueDictionary dict;
  dict.Encode("one");
  dict.Encode("two");
  dict.Encode("three");
  BinaryWriter w;
  dict.SerializeTo(&w);
  BinaryReader r(w.buffer());
  const auto decoded = ValueDictionary::DeserializeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 3u);
  EXPECT_EQ(decoded.value().Lookup("two").value(), 1);
  EXPECT_EQ(decoded.value().Decode(2).value(), "three");
}

TEST(DictionaryTest, DeserializeRejectsDuplicates) {
  BinaryWriter w;
  w.PutVarint64(2);
  w.PutString("dup");
  w.PutString("dup");
  BinaryReader r(w.buffer());
  EXPECT_TRUE(
      ValueDictionary::DeserializeFrom(&r).status().IsCorruption());
}

TEST(DictionaryTest, ManyTokensKeepStableCodes) {
  ValueDictionary dict;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.Encode("token_" + std::to_string(i)),
              static_cast<Value>(i));
  }
  // Re-encode after heavy growth (vector reallocation) stays stable.
  EXPECT_EQ(dict.Encode("token_123"), 123);
  EXPECT_EQ(dict.Decode(4999).value(), "token_4999");
}

}  // namespace
}  // namespace sampwh
