#include "src/warehouse/warehouse.h"

#include <atomic>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

WarehouseOptions HrOptions(uint64_t f = 512) {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = f;
  return options;
}

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

TEST(WarehouseTest, DatasetLifecycle) {
  Warehouse wh(HrOptions());
  EXPECT_TRUE(wh.CreateDataset("orders").ok());
  EXPECT_TRUE(wh.HasDataset("orders"));
  EXPECT_TRUE(wh.CreateDataset("orders").IsAlreadyExists());
  EXPECT_TRUE(wh.DropDataset("orders").ok());
  EXPECT_FALSE(wh.HasDataset("orders"));
}

TEST(WarehouseTest, IngestBatchCreatesPartitionsAndSamples) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 10000), 4);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 4u);
  const auto parts = wh.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 4u);
  for (const PartitionInfo& p : parts.value()) {
    EXPECT_EQ(p.parent_size, 2500u);
    EXPECT_EQ(p.sample_size, 64u);  // n_F for 512 bytes
    EXPECT_EQ(p.phase, SamplePhase::kReservoir);
  }
}

TEST(WarehouseTest, IngestBatchParallelMatchesStructure) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ThreadPool pool(4);
  const auto ids = wh.IngestBatch("ds", Range(0, 10000), 8, &pool);
  ASSERT_TRUE(ids.ok());
  const auto info = wh.GetDatasetInfo("ds");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_partitions, 8u);
  EXPECT_EQ(info.value().total_parent_size, 10000u);
}

TEST(WarehouseTest, IngestBatchUnevenSplit) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 10), 3);
  ASSERT_TRUE(ids.ok());
  const auto parts = wh.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  uint64_t total = 0;
  for (const PartitionInfo& p : parts.value()) total += p.parent_size;
  EXPECT_EQ(total, 10u);
}

TEST(WarehouseTest, IngestIntoMissingDatasetFails) {
  Warehouse wh(HrOptions());
  EXPECT_TRUE(wh.IngestBatch("ghost", Range(0, 10), 1).status().IsNotFound());
}

TEST(WarehouseTest, RollInRollOut) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  CompactHistogram h;
  for (Value v = 0; v < 10; ++v) h.Insert(v);
  const PartitionSample s = PartitionSample::MakeExhaustive(h, 10, 512);
  const auto id = wh.RollIn("ds", s, 100, 199);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(wh.GetSample("ds", id.value()).ok());
  ASSERT_TRUE(wh.RollOut("ds", id.value()).ok());
  EXPECT_TRUE(wh.GetSample("ds", id.value()).status().IsNotFound());
  EXPECT_TRUE(wh.RollOut("ds", id.value()).IsNotFound());
}

TEST(WarehouseTest, RollInAtPlacesExplicitIdsAndGuardsCollisions) {
  // The shard coordinator allocates partition ids globally and places them
  // via RollInAt; the warehouse must honor the explicit id, reject an
  // occupied one without clobbering the stored sample, and keep its own
  // allocator ahead of coordinator-placed ids.
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  CompactHistogram h;
  for (Value v = 0; v < 10; ++v) h.Insert(v);
  const PartitionSample s = PartitionSample::MakeExhaustive(h, 10, 512);

  const auto placed = wh.RollInAt("ds", 42, s, 7, 9);
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed.value(), 42u);
  const auto parts = wh.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 1u);
  EXPECT_EQ(parts.value()[0].id, 42u);
  EXPECT_EQ(parts.value()[0].min_timestamp, 7u);
  EXPECT_EQ(parts.value()[0].max_timestamp, 9u);

  // Occupied id: rejected before the store is touched.
  CompactHistogram other;
  other.Insert(99);
  EXPECT_TRUE(wh.RollInAt("ds", 42,
                          PartitionSample::MakeExhaustive(other, 1, 512))
                  .status()
                  .IsAlreadyExists());
  EXPECT_EQ(wh.GetSample("ds", 42).value().parent_size(), 10u);

  // The local allocator stays ahead of the explicit id.
  const auto allocated = wh.RollIn("ds", s);
  ASSERT_TRUE(allocated.ok());
  EXPECT_EQ(allocated.value(), 43u);

  EXPECT_TRUE(wh.RollInAt("ghost", 0, s).status().IsNotFound());
}

TEST(WarehouseTest, MergedSampleAllIsUniformSizeAndParent) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 20000), 8).ok());
  const auto merged = wh.MergedSampleAll("ds");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().parent_size(), 20000u);
  EXPECT_EQ(merged.value().size(), 64u);
  EXPECT_TRUE(merged.value().Validate().ok());
  // All sampled values must come from the ingested domain.
  merged.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20000);
  });
}

TEST(WarehouseTest, MergedSampleSubsetOnlyCoversRequestedPartitions) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 8000), 4);
  ASSERT_TRUE(ids.ok());
  // Partitions are contiguous chunks of 2000; merge the first two.
  const auto merged =
      wh.MergedSample("ds", {ids.value()[0], ids.value()[1]});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 4000u);
  merged.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_LT(v, 4000);
  });
}

TEST(WarehouseTest, MergedSampleRejectsUnknownPartition) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 100), 1).ok());
  EXPECT_TRUE(wh.MergedSample("ds", {99}).status().IsNotFound());
}

TEST(WarehouseTest, TimeRangeQueryMergesMatchingWindows) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("daily").ok());
  // Roll in 7 "days" of 1000 elements each.
  Pcg64 rng = wh.ForkRng();
  for (int day = 0; day < 7; ++day) {
    SamplerConfig config = HrOptions().sampler;
    AnySampler sampler(config, rng.Fork(day));
    for (Value v = 0; v < 1000; ++v) {
      sampler.Add(day * 1000 + v);
    }
    ASSERT_TRUE(
        wh.RollIn("daily", sampler.Finalize(), day * 24, day * 24 + 23)
            .ok());
  }
  // "Week so far": days 0-2.
  const auto merged = wh.MergedSampleInTimeRange("daily", 0, 71);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 3000u);
  merged.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_LT(v, 3000);
  });
}

TEST(WarehouseTest, RolledOutPartitionExcludedFromMerge) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 6000), 3);
  ASSERT_TRUE(ids.ok());
  ASSERT_TRUE(wh.RollOut("ds", ids.value()[2]).ok());
  const auto merged = wh.MergedSampleAll("ds");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 4000u);
  merged.value().histogram().ForEach([](Value v, uint64_t) {
    EXPECT_LT(v, 4000);  // third chunk [4000, 6000) is gone
  });
}

TEST(WarehouseTest, HbConfiguredWarehouseMergesBernoulliSamples) {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridBernoulli;
  options.sampler.footprint_bound_bytes = 8192;
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 100000), 4).ok());
  const auto merged = wh.MergedSampleAll("ds");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 100000u);
  EXPECT_LE(merged.value().footprint_bytes(), 8192u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(WarehouseTest, FileBackedWarehouseSurvivesOperations) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_wh_test").string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  Warehouse wh(HrOptions(), std::move(store).value());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 5000), 2).ok());
  const auto merged = wh.MergedSampleAll("ds");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 5000u);
  std::filesystem::remove_all(dir);
}

TEST(WarehouseTest, DropDatasetDeletesStoredSamples) {
  WarehouseOptions options = HrOptions();
  auto store = std::make_unique<InMemorySampleStore>();
  InMemorySampleStore* raw = store.get();
  Warehouse wh(options, std::move(store));
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 1000), 2).ok());
  EXPECT_GT(raw->TotalStoredBytes(), 0u);
  ASSERT_TRUE(wh.DropDataset("ds").ok());
  EXPECT_EQ(raw->TotalStoredBytes(), 0u);
}

TEST(WarehouseTest, CompactPartitionsConsolidates) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("daily").ok());
  // Seven "daily" partitions with time ranges.
  std::vector<PartitionId> days;
  Pcg64 rng = wh.ForkRng();
  for (int day = 0; day < 7; ++day) {
    AnySampler sampler(HrOptions().sampler, rng.Fork(day));
    for (Value v = 0; v < 1000; ++v) sampler.Add(day * 1000 + v);
    const auto id =
        wh.RollIn("daily", sampler.Finalize(), day * 24, day * 24 + 23);
    ASSERT_TRUE(id.ok());
    days.push_back(id.value());
  }
  const auto week = wh.CompactPartitions("daily", days);
  ASSERT_TRUE(week.ok()) << week.status().ToString();
  // The dailies are gone; one weekly partition remains.
  const auto parts = wh.ListPartitions("daily");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 1u);
  EXPECT_EQ(parts.value()[0].id, week.value());
  EXPECT_EQ(parts.value()[0].parent_size, 7000u);
  EXPECT_EQ(parts.value()[0].min_timestamp, 0u);
  EXPECT_EQ(parts.value()[0].max_timestamp, 6 * 24 + 23u);
  // Queries keep working against the consolidated sample.
  const auto merged = wh.MergedSampleAll("daily");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 7000u);
  EXPECT_EQ(merged.value().size(), 64u);
}

TEST(WarehouseTest, CompactPartitionsRejectsBadInput) {
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 2000), 2);
  ASSERT_TRUE(ids.ok());
  EXPECT_FALSE(wh.CompactPartitions("ds", {ids.value()[0]}).ok());
  EXPECT_FALSE(
      wh.CompactPartitions("ds", {ids.value()[0], 999}).ok());
  // Failed compaction must not have rolled anything out.
  EXPECT_EQ(wh.ListPartitions("ds").value().size(), 2u);
}

TEST(WarehouseTest, ConcurrentIngestAndQuery) {
  // Thread-safety smoke test: parallel RollIn/Query/ListPartitions from
  // many threads must neither crash nor corrupt the catalog.
  Warehouse wh(HrOptions());
  ASSERT_TRUE(wh.CreateDataset("hot").ok());
  ASSERT_TRUE(wh.IngestBatch("hot", Range(0, 1000), 1).ok());  // seed data
  ThreadPool pool(8);
  std::atomic<int> failures{0};
  for (int t = 0; t < 32; ++t) {
    pool.Submit([&wh, &failures, t] {
      SamplerConfig config;
      config.kind = SamplerKind::kHybridReservoir;
      config.footprint_bound_bytes = 512;
      Pcg64 rng(5000 + t);
      AnySampler sampler(config, std::move(rng));
      for (Value v = 0; v < 2000; ++v) sampler.Add(t * 2000 + v);
      if (!wh.RollIn("hot", sampler.Finalize()).ok()) failures.fetch_add(1);
      if (!wh.MergedSampleAll("hot").ok()) failures.fetch_add(1);
      if (!wh.ListPartitions("hot").ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  const auto info = wh.GetDatasetInfo("hot");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().num_partitions, 33u);
  EXPECT_EQ(info.value().total_parent_size, 1000u + 32u * 2000u);
}

TEST(WarehouseTest, PerDatasetSamplerOverride) {
  // The warehouse default is a tiny HR budget; the "hot" dataset overrides
  // with a 4x larger bound and must get correspondingly larger samples.
  Warehouse wh(HrOptions(512));  // default n_F = 64
  ASSERT_TRUE(wh.CreateDataset("cold").ok());
  SamplerConfig hot_config;
  hot_config.kind = SamplerKind::kHybridReservoir;
  hot_config.footprint_bound_bytes = 2048;  // n_F = 256
  ASSERT_TRUE(wh.CreateDataset("hot", hot_config).ok());
  EXPECT_EQ(wh.SamplerConfigFor("cold").footprint_bound_bytes, 512u);
  EXPECT_EQ(wh.SamplerConfigFor("hot").footprint_bound_bytes, 2048u);

  ASSERT_TRUE(wh.IngestBatch("cold", Range(0, 10000), 1).ok());
  ASSERT_TRUE(wh.IngestBatch("hot", Range(0, 10000), 1).ok());
  const auto cold = wh.ListPartitions("cold");
  const auto hot = wh.ListPartitions("hot");
  ASSERT_TRUE(cold.ok() && hot.ok());
  EXPECT_EQ(cold.value()[0].sample_size, 64u);
  EXPECT_EQ(hot.value()[0].sample_size, 256u);
  // Dropping the dataset clears the override.
  ASSERT_TRUE(wh.DropDataset("hot").ok());
  EXPECT_EQ(wh.SamplerConfigFor("hot").footprint_bound_bytes, 512u);
}

TEST(WarehouseTest, BalancedTreeStrategyWithAliasCache) {
  WarehouseOptions options = HrOptions(256);
  options.merge_strategy = MergeStrategy::kBalancedTree;
  options.cache_alias_tables = true;
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 16000), 8).ok());
  // Repeated queries reuse cached alias tables; results stay valid.
  for (int i = 0; i < 3; ++i) {
    const auto merged = wh.MergedSampleAll("ds");
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().size(), 32u);
    EXPECT_TRUE(merged.value().Validate().ok());
  }
}

TEST(WarehouseTest, ParallelTreeStrategyMatchesSerialValidity) {
  WarehouseOptions options = HrOptions(256);
  options.merge_strategy = MergeStrategy::kParallelTree;
  options.worker_threads = 4;  // warehouse-owned pool drives the merges
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 16000), 8).ok());
  for (int i = 0; i < 3; ++i) {
    const auto merged = wh.MergedSampleAll("ds");
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().parent_size(), 16000u);
    EXPECT_EQ(merged.value().size(), 32u);
    EXPECT_TRUE(merged.value().Validate().ok());
  }
}

TEST(WarehouseTest, ParallelTreeWithoutPoolDegradesGracefully) {
  WarehouseOptions options = HrOptions(256);
  options.merge_strategy = MergeStrategy::kParallelTree;
  // worker_threads left 0: merges fall back to the serial balanced tree.
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 8000), 4).ok());
  const auto merged = wh.MergedSampleAll("ds");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 8000u);
  EXPECT_TRUE(merged.value().Validate().ok());
}

TEST(WarehouseTest, OwnedPoolUsedForIngestBatch) {
  WarehouseOptions options = HrOptions(512);
  options.worker_threads = 4;
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  const auto ids = wh.IngestBatch("ds", Range(0, 8000), 8);  // no pool arg
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().size(), 8u);
  const auto info = wh.GetDatasetInfo("ds");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().total_parent_size, 8000u);
}

TEST(WarehouseTest, ConcurrentIngestAcrossDatasets) {
  // Per-dataset locking: ingest into 4 datasets from 8 threads while
  // querying them; no crashes, every partition accounted for.
  Warehouse wh(HrOptions());
  const std::vector<DatasetId> datasets = {"a", "b", "c", "d"};
  for (const auto& ds : datasets) ASSERT_TRUE(wh.CreateDataset(ds).ok());
  ThreadPool pool(8);
  std::atomic<int> failures{0};
  for (int t = 0; t < 32; ++t) {
    const DatasetId ds = datasets[t % datasets.size()];
    pool.Submit([&wh, &failures, ds, t] {
      SamplerConfig config;
      config.kind = SamplerKind::kHybridReservoir;
      config.footprint_bound_bytes = 512;
      AnySampler sampler(config, Pcg64(9000 + t));
      const std::vector<Value> values = Range(t * 1000, (t + 1) * 1000);
      sampler.AddBatch(values);
      if (!wh.RollIn(ds, sampler.Finalize()).ok()) failures.fetch_add(1);
      if (!wh.ListPartitions(ds).ok()) failures.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(failures.load(), 0);
  for (const auto& ds : datasets) {
    const auto info = wh.GetDatasetInfo(ds);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().num_partitions, 8u);
    EXPECT_EQ(info.value().total_parent_size, 8000u);
  }
}

}  // namespace
}  // namespace sampwh
