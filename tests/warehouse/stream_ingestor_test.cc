#include "src/warehouse/stream_ingestor.h"

#include <algorithm>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/arrival.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

WarehouseOptions SmallOptions() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;  // n_F = 64
  return options;
}

TEST(StreamIngestorTest, CountPartitionerCutsFixedSizePartitions) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  StreamIngestor ingestor(&wh, "ds", MakeCountPartitioner(1000));
  for (Value v = 0; v < 3500; ++v) {
    ASSERT_TRUE(ingestor.Append(v).ok());
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  EXPECT_EQ(ingestor.rolled_in().size(), 4u);  // 1000+1000+1000+500
  const auto parts = wh.ListPartitions("ds");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 4u);
  EXPECT_EQ(parts.value()[0].parent_size, 1000u);
  EXPECT_EQ(parts.value()[3].parent_size, 500u);
}

TEST(StreamIngestorTest, FlushOnEmptyIsNoop) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  StreamIngestor ingestor(&wh, "ds", MakeCountPartitioner(10));
  EXPECT_TRUE(ingestor.Flush().ok());
  EXPECT_TRUE(ingestor.rolled_in().empty());
}

TEST(StreamIngestorTest, TemporalPartitionerSplitsByWindow) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("days").ok());
  // One element per tick; 24-tick "days".
  StreamIngestor ingestor(&wh, "days", MakeTemporalPartitioner(24));
  for (uint64_t t = 0; t < 72; ++t) {
    ASSERT_TRUE(ingestor.Append(static_cast<Value>(t), t).ok());
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  const auto parts = wh.ListPartitions("days");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 3u);
  EXPECT_EQ(parts.value()[0].min_timestamp, 0u);
  EXPECT_EQ(parts.value()[0].max_timestamp, 23u);
  EXPECT_EQ(parts.value()[1].min_timestamp, 24u);
  EXPECT_EQ(parts.value()[2].max_timestamp, 71u);
}

TEST(StreamIngestorTest, RatioTriggerFinalizesUnderPressure) {
  // §2's scenario: fixed-size samples with a minimum sampling fraction.
  // With n_F = 64 and a 1/16 minimum fraction, partitions close around
  // 1024 elements.
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("stream").ok());
  StreamIngestor ingestor(&wh, "stream",
                          MakeRatioTriggerPartitioner(1.0 / 16.0, 128));
  for (Value v = 0; v < 10000; ++v) {
    ASSERT_TRUE(ingestor.Append(v).ok());
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  const auto parts = wh.ListPartitions("stream");
  ASSERT_TRUE(parts.ok());
  EXPECT_GE(parts.value().size(), 5u);
  for (const PartitionInfo& p : parts.value()) {
    // Every closed partition met the minimum sampling fraction.
    EXPECT_GE(static_cast<double>(p.sample_size) /
                  static_cast<double>(p.parent_size),
              1.0 / 16.0 - 1e-9)
        << "partition " << p.id;
  }
}

TEST(StreamIngestorTest, NullPartitionerMeansSinglePartition) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  StreamIngestor ingestor(&wh, "ds", nullptr);
  for (Value v = 0; v < 5000; ++v) {
    ASSERT_TRUE(ingestor.Append(v).ok());
  }
  EXPECT_EQ(ingestor.open_elements(), 5000u);
  ASSERT_TRUE(ingestor.Flush().ok());
  EXPECT_EQ(ingestor.rolled_in().size(), 1u);
}

TEST(StreamIngestorTest, AppendBatchCountBoundariesMatchScalar) {
  // Count partitioner: batch ingestion must cut exactly the partitions an
  // element-wise loop would, at every chunking of the stream.
  const std::vector<Value> values = DataGenerator::Unique(3500).TakeAll();
  for (const size_t chunk : {1u, 7u, 1000u, 3500u}) {
    Warehouse wh(SmallOptions());
    ASSERT_TRUE(wh.CreateDataset("ds").ok());
    StreamIngestor ingestor(&wh, "ds", MakeCountPartitioner(1000));
    const std::span<const Value> all(values);
    for (size_t i = 0; i < all.size(); i += chunk) {
      ASSERT_TRUE(
          ingestor.AppendBatch(all.subspan(i, std::min(chunk, all.size() - i)))
              .ok());
    }
    ASSERT_TRUE(ingestor.Flush().ok());
    const auto parts = wh.ListPartitions("ds");
    ASSERT_TRUE(parts.ok());
    ASSERT_EQ(parts.value().size(), 4u) << "chunk " << chunk;
    EXPECT_EQ(parts.value()[0].parent_size, 1000u);
    EXPECT_EQ(parts.value()[1].parent_size, 1000u);
    EXPECT_EQ(parts.value()[2].parent_size, 1000u);
    EXPECT_EQ(parts.value()[3].parent_size, 500u);
  }
}

TEST(StreamIngestorTest, AppendBatchProducesScalarIdenticalSamples) {
  // Same warehouse seed, same partition boundaries, same RNG consumption
  // order: the rolled-in samples must be identical element for element.
  const std::vector<Value> values = DataGenerator::Unique(3000).TakeAll();

  Warehouse scalar_wh(SmallOptions());
  ASSERT_TRUE(scalar_wh.CreateDataset("ds").ok());
  StreamIngestor scalar_ingestor(&scalar_wh, "ds", MakeCountPartitioner(1000));
  for (const Value v : values) ASSERT_TRUE(scalar_ingestor.Append(v).ok());
  ASSERT_TRUE(scalar_ingestor.Flush().ok());

  Warehouse batch_wh(SmallOptions());
  ASSERT_TRUE(batch_wh.CreateDataset("ds").ok());
  StreamIngestor batch_ingestor(&batch_wh, "ds", MakeCountPartitioner(1000));
  const std::span<const Value> all(values);
  for (size_t i = 0; i < all.size(); i += 128) {
    ASSERT_TRUE(
        batch_ingestor.AppendBatch(all.subspan(i, std::min<size_t>(128, all.size() - i)))
            .ok());
  }
  ASSERT_TRUE(batch_ingestor.Flush().ok());

  ASSERT_EQ(scalar_ingestor.rolled_in().size(),
            batch_ingestor.rolled_in().size());
  for (size_t p = 0; p < scalar_ingestor.rolled_in().size(); ++p) {
    const auto s = scalar_wh.GetSample("ds", scalar_ingestor.rolled_in()[p]);
    const auto b = batch_wh.GetSample("ds", batch_ingestor.rolled_in()[p]);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(s.value().histogram() == b.value().histogram())
        << "partition " << p;
  }
}

TEST(StreamIngestorTest, AppendBatchTemporalBoundariesMatchScalar) {
  // Batches carry one timestamp each; feeding one batch per window tick
  // must split exactly like the element-wise temporal loop.
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("days").ok());
  StreamIngestor ingestor(&wh, "days", MakeTemporalPartitioner(24));
  for (uint64_t t = 0; t < 72; ++t) {
    const std::vector<Value> batch = {static_cast<Value>(2 * t),
                                      static_cast<Value>(2 * t + 1)};
    ASSERT_TRUE(ingestor.AppendBatch(batch, t).ok());
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  const auto parts = wh.ListPartitions("days");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 3u);
  EXPECT_EQ(parts.value()[0].min_timestamp, 0u);
  EXPECT_EQ(parts.value()[0].max_timestamp, 23u);
  EXPECT_EQ(parts.value()[1].min_timestamp, 24u);
  EXPECT_EQ(parts.value()[2].max_timestamp, 71u);
  for (const PartitionInfo& p : parts.value()) {
    EXPECT_EQ(p.parent_size, 48u);
  }
}

TEST(StreamIngestorTest, AppendBatchRatioTriggerStillMeetsFraction) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("stream").ok());
  StreamIngestor ingestor(&wh, "stream",
                          MakeRatioTriggerPartitioner(1.0 / 16.0, 128));
  const std::vector<Value> values = DataGenerator::Unique(10000).TakeAll();
  ASSERT_TRUE(ingestor.AppendBatch(values).ok());
  ASSERT_TRUE(ingestor.Flush().ok());
  const auto parts = wh.ListPartitions("stream");
  ASSERT_TRUE(parts.ok());
  EXPECT_GE(parts.value().size(), 5u);
  uint64_t total = 0;
  for (const PartitionInfo& p : parts.value()) {
    total += p.parent_size;
    // The check granule lets a partition run at most kBatchCheckGranule
    // elements past the element-wise trigger point; the minimum fraction
    // contract must still hold within that slack.
    EXPECT_GE(static_cast<double>(p.sample_size) /
                  static_cast<double>(p.parent_size),
              1.0 / 16.0 * 0.8)
        << "partition " << p.id;
  }
  EXPECT_EQ(total, 10000u);
}

TEST(StreamIngestorTest, WorksWithArrivalSimulator) {
  Warehouse wh(SmallOptions());
  ASSERT_TRUE(wh.CreateDataset("bursty").ok());
  StreamIngestor ingestor(&wh, "bursty", MakeTemporalPartitioner(512));
  ArrivalSimulator::Options arrival_options;
  arrival_options.pattern = ArrivalPattern::kBursty;
  arrival_options.base_gap = 1;
  arrival_options.slow_factor = 8;
  arrival_options.phase_length = 256;
  ArrivalSimulator sim(DataGenerator::Unique(4096, 1), arrival_options);
  while (sim.HasNext()) {
    const TimedValue tv = sim.Next();
    ASSERT_TRUE(ingestor.Append(tv.value, tv.timestamp).ok());
  }
  ASSERT_TRUE(ingestor.Flush().ok());
  // Bursty arrivals: fast phases pack many elements into a window, slow
  // phases few — partition parent sizes must vary.
  const auto parts = wh.ListPartitions("bursty");
  ASSERT_TRUE(parts.ok());
  ASSERT_GE(parts.value().size(), 3u);
  uint64_t min_size = UINT64_MAX;
  uint64_t max_size = 0;
  uint64_t total = 0;
  for (const PartitionInfo& p : parts.value()) {
    min_size = std::min(min_size, p.parent_size);
    max_size = std::max(max_size, p.parent_size);
    total += p.parent_size;
  }
  EXPECT_EQ(total, 4096u);
  EXPECT_GT(max_size, min_size);
}

}  // namespace
}  // namespace sampwh
