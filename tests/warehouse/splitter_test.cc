#include "src/warehouse/splitter.h"

#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SplitterTest, RoundRobinCycles) {
  StreamSplitter splitter(3, SplitPolicy::kRoundRobin);
  EXPECT_EQ(splitter.Route(10), 0u);
  EXPECT_EQ(splitter.Route(10), 1u);
  EXPECT_EQ(splitter.Route(10), 2u);
  EXPECT_EQ(splitter.Route(10), 0u);
}

TEST(SplitterTest, RoundRobinBalancesExactly) {
  StreamSplitter splitter(4, SplitPolicy::kRoundRobin);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) ++counts[splitter.Route(i)];
  for (const int c : counts) EXPECT_EQ(c, 1000);
}

TEST(SplitterTest, HashIsDeterministicPerValue) {
  StreamSplitter splitter(8, SplitPolicy::kHash);
  const size_t route = splitter.Route(12345);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitter.Route(12345), route);
}

TEST(SplitterTest, HashSpreadsDistinctValues) {
  StreamSplitter splitter(8, SplitPolicy::kHash);
  std::vector<int> counts(8, 0);
  for (Value v = 0; v < 8000; ++v) ++counts[splitter.Route(v)];
  for (const int c : counts) {
    EXPECT_GT(c, 800);   // within 20% of fair share
    EXPECT_LT(c, 1200);
  }
}

TEST(SplitterTest, SingleWorkerRoutesEverythingToZero) {
  for (const auto policy : {SplitPolicy::kRoundRobin, SplitPolicy::kHash}) {
    StreamSplitter splitter(1, policy);
    for (Value v = 0; v < 100; ++v) EXPECT_EQ(splitter.Route(v), 0u);
  }
}

}  // namespace
}  // namespace sampwh
