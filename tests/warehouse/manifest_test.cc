#include <filesystem>

#include <gtest/gtest.h>

#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

WarehouseOptions Options() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  return options;
}

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

TEST(CatalogSerializationTest, RoundTripsFullState) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDataset("a").ok());
  ASSERT_TRUE(catalog.CreateDataset("b").ok());
  ASSERT_TRUE(catalog.AllocatePartitionId("a").ok());  // advance allocator
  PartitionInfo info;
  info.id = 0;
  info.parent_size = 1000;
  info.sample_size = 64;
  info.phase = SamplePhase::kReservoir;
  info.min_timestamp = 5;
  info.max_timestamp = 29;
  ASSERT_TRUE(catalog.AddPartition("a", info).ok());

  BinaryWriter writer;
  catalog.SerializeTo(&writer);
  BinaryReader reader(writer.buffer());
  const auto decoded = Catalog::DeserializeFrom(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded.value().HasDataset("a"));
  EXPECT_TRUE(decoded.value().HasDataset("b"));
  const auto p = decoded.value().GetPartition("a", 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().parent_size, 1000u);
  EXPECT_EQ(p.value().sample_size, 64u);
  EXPECT_EQ(p.value().phase, SamplePhase::kReservoir);
  EXPECT_EQ(p.value().min_timestamp, 5u);
  EXPECT_EQ(p.value().max_timestamp, 29u);
  // The allocator must not hand out ids that collide with restored ones.
  Catalog restored = std::move(decoded).value();
  EXPECT_EQ(restored.AllocatePartitionId("a").value(), 1u);
}

TEST(CatalogSerializationTest, RejectsGarbage) {
  BinaryReader reader("not a manifest");
  EXPECT_FALSE(Catalog::DeserializeFrom(&reader).ok());
}

TEST(ManifestTest, WarehouseSurvivesRestart) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_manifest").string();
  const std::string manifest = dir + "/MANIFEST";
  std::filesystem::remove_all(dir);

  std::vector<PartitionId> original_ids;
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Warehouse wh(Options(), std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("events").ok());
    auto ids = wh.IngestBatch("events", Range(0, 6000), 3);
    ASSERT_TRUE(ids.ok());
    original_ids = ids.value();
    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
  }
  // Reopen: catalog and samples all come back; queries work immediately.
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    auto restored =
        Warehouse::Restore(Options(), std::move(store).value(), manifest);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    Warehouse& wh = *restored.value();
    EXPECT_TRUE(wh.HasDataset("events"));
    const auto parts = wh.ListPartitions("events");
    ASSERT_TRUE(parts.ok());
    EXPECT_EQ(parts.value().size(), 3u);
    const auto merged = wh.MergedSampleAll("events");
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.value().parent_size(), 6000u);
    // New ingests must not collide with restored partition ids.
    const auto new_ids = wh.IngestBatch("events", Range(6000, 7000), 1);
    ASSERT_TRUE(new_ids.ok());
    for (const PartitionId old_id : original_ids) {
      EXPECT_NE(new_ids.value()[0], old_id);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, RestoreDetectsMissingSample) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_manifest_missing")
          .string();
  const std::string manifest = dir + "/MANIFEST";
  std::filesystem::remove_all(dir);
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Warehouse wh(Options(), std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("ds").ok());
    ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 2000), 2).ok());
    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
  }
  // Delete one sample file behind the manifest's back.
  std::filesystem::remove(dir + "/ds.0.sample");
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(
      Warehouse::Restore(Options(), std::move(store).value(), manifest)
          .ok());
  std::filesystem::remove_all(dir);
}

TEST(ManifestTest, RestoreDetectsMetadataMismatch) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_manifest_mismatch")
          .string();
  const std::string manifest = dir + "/MANIFEST";
  std::filesystem::remove_all(dir);
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    Warehouse wh(Options(), std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("ds").ok());
    ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 2000), 1).ok());
    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
    // Overwrite the stored sample with one of a different parent size.
    CompactHistogram h;
    h.Insert(1);
    ASSERT_TRUE(
        wh.RollOut("ds", 0).ok());  // catalog forgets, store cleared
  }
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    CompactHistogram h;
    h.Insert(1);
    ASSERT_TRUE(store.value()
                    ->Put({"ds", 0},
                          PartitionSample::MakeReservoir(h, 99, 512))
                    .ok());
    EXPECT_FALSE(
        Warehouse::Restore(Options(), std::move(store).value(), manifest)
            .ok());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sampwh
