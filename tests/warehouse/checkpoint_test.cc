// The crash-safe resumable-ingestion protocol end to end: the checkpoint
// record round-trips, both store backends keep generational checkpoints
// that survive torn writes, and a StreamIngestor killed at an arbitrary
// point — including inside the two-phase close protocol — resumes from its
// checkpoint and, fed an at-least-once replay of the source stream,
// produces rolled-in samples bit-identical to an uninterrupted run.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/fault_injector.h"
#include "src/util/serialization.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/partitioner.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

WarehouseOptions TestOptions() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  options.seed = 0x434b505431ULL;
  return options;
}

/// A structurally valid checkpoint payload (deep-verifiable: no open
/// partition, no pending roll-in).
std::string MinimalCheckpointPayload(uint64_t next_sequence) {
  IngestCheckpoint ckpt;
  ckpt.next_sequence = next_sequence;
  ckpt.rng = Pcg64(next_sequence).SaveState();
  return ckpt.Serialize();
}

/// Serialized bytes of every stored sample of `dataset`, ascending by
/// partition id — the bit-identity yardstick.
std::vector<std::string> SampleBytes(Warehouse& warehouse,
                                     const DatasetId& dataset) {
  std::vector<std::string> out;
  auto parts = warehouse.ListPartitions(dataset);
  EXPECT_TRUE(parts.ok());
  if (!parts.ok()) return out;
  for (const PartitionInfo& p : parts.value()) {
    auto sample = warehouse.GetSample(dataset, p.id);
    EXPECT_TRUE(sample.ok());
    if (!sample.ok()) return out;
    BinaryWriter writer;
    sample.value().SerializeTo(&writer);
    out.push_back(std::move(writer).Release());
  }
  return out;
}

// --- IngestCheckpoint record ----------------------------------------------

TEST(IngestCheckpointTest, SerializeDeserializeRoundTrip) {
  IngestCheckpoint ckpt;
  ckpt.next_sequence = 123456789;
  ckpt.partitions_started = 7;
  ckpt.created_unix_micros = 1754550000000000ULL;
  ckpt.rng = Pcg64(42).SaveState();
  ckpt.rolled_in = {3, 5, 8};
  ckpt.progress.elements = 0;  // no open partition: sampler_state empty
  ckpt.progress.first_timestamp = 100;
  ckpt.progress.last_timestamp = 900;
  PendingRollIn pending;
  pending.sample_payload = "opaque sample bytes";
  pending.min_timestamp = 100;
  pending.max_timestamp = 900;
  pending.id_lower_bound = 9;
  ckpt.pending = pending;

  auto round = IngestCheckpoint::Deserialize(ckpt.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const IngestCheckpoint& got = round.value();
  EXPECT_EQ(got.next_sequence, ckpt.next_sequence);
  EXPECT_EQ(got.partitions_started, ckpt.partitions_started);
  EXPECT_EQ(got.created_unix_micros, ckpt.created_unix_micros);
  EXPECT_EQ(got.rng.state_hi, ckpt.rng.state_hi);
  EXPECT_EQ(got.rng.state_lo, ckpt.rng.state_lo);
  EXPECT_EQ(got.rng.inc_hi, ckpt.rng.inc_hi);
  EXPECT_EQ(got.rng.inc_lo, ckpt.rng.inc_lo);
  EXPECT_EQ(got.rolled_in, ckpt.rolled_in);
  EXPECT_EQ(got.progress.elements, ckpt.progress.elements);
  EXPECT_EQ(got.progress.first_timestamp, ckpt.progress.first_timestamp);
  EXPECT_EQ(got.progress.last_timestamp, ckpt.progress.last_timestamp);
  ASSERT_TRUE(got.pending.has_value());
  EXPECT_EQ(got.pending->sample_payload, pending.sample_payload);
  EXPECT_EQ(got.pending->min_timestamp, pending.min_timestamp);
  EXPECT_EQ(got.pending->max_timestamp, pending.max_timestamp);
  EXPECT_EQ(got.pending->id_lower_bound, pending.id_lower_bound);
}

TEST(IngestCheckpointTest, DeserializeRejectsDamage) {
  const std::string good = MinimalCheckpointPayload(42);
  ASSERT_TRUE(IngestCheckpoint::Deserialize(good).ok());
  EXPECT_FALSE(IngestCheckpoint::Deserialize("").ok());
  EXPECT_FALSE(IngestCheckpoint::Deserialize("not a checkpoint").ok());
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(IngestCheckpoint::Deserialize(good.substr(0, len)).ok())
        << "accepted a record truncated to " << len << " bytes";
  }
  EXPECT_FALSE(IngestCheckpoint::Deserialize(good + '\x01').ok());
}

TEST(IngestCheckpointTest, OpenPartitionRequiresSamplerState) {
  IngestCheckpoint ckpt;
  ckpt.progress.elements = 10;  // claims an open partition...
  ckpt.sampler_state.clear();   // ...but carries no sampler to resume it
  EXPECT_TRUE(
      IngestCheckpoint::Deserialize(ckpt.Serialize()).status().IsCorruption());
}

TEST(IngestCheckpointTest, VerifyRejectsUndedecodableEmbeddedRecords) {
  IngestCheckpoint ckpt;
  ckpt.rng = Pcg64(1).SaveState();
  ASSERT_TRUE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
  ckpt.progress.elements = 5;
  ckpt.sampler_state = "junk that is not a sampler-state record";
  EXPECT_FALSE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
  ckpt.progress.elements = 0;
  ckpt.sampler_state.clear();
  PendingRollIn pending;
  pending.sample_payload = "junk that is not a sample";
  ckpt.pending = pending;
  EXPECT_FALSE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
}

// --- Store-level checkpoint persistence -----------------------------------

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per process AND per test: parallel ctest may run other processes'
    // WAL/snapshot cases concurrently, and a shared directory would be
    // remove_all'd mid-test.
    dir_ = (std::filesystem::temp_directory_path() /
            ("sampwh_ckpt_" + std::to_string(::getpid()) + "_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    manifest_ = dir_ + "/manifest";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<FileSampleStore> OpenStore() {
    auto store = FileSampleStore::Open(dir_);
    EXPECT_TRUE(store.ok());
    return std::move(store).value();
  }

  std::string dir_;
  std::string manifest_;
};

void ExerciseCheckpointCrud(SampleStore& store) {
  EXPECT_TRUE(store.GetCheckpoint("events").status().IsNotFound());
  EXPECT_TRUE(store.DeleteCheckpoint("events").IsNotFound());
  EXPECT_TRUE(store.ListCheckpoints().value().empty());

  const std::string first = MinimalCheckpointPayload(100);
  const std::string second = MinimalCheckpointPayload(200);
  ASSERT_TRUE(store.PutCheckpoint("events", first).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), first);
  ASSERT_TRUE(store.PutCheckpoint("events", second).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), second);
  ASSERT_TRUE(store.PutCheckpoint("orders", first).ok());

  const auto datasets = store.ListCheckpoints();
  ASSERT_TRUE(datasets.ok());
  EXPECT_EQ(datasets.value(),
            (std::vector<DatasetId>{"events", "orders"}));

  EXPECT_TRUE(store.DeleteCheckpoint("events").ok());
  EXPECT_TRUE(store.GetCheckpoint("events").status().IsNotFound());
  EXPECT_EQ(store.ListCheckpoints().value(),
            (std::vector<DatasetId>{"orders"}));

  const StoreStats stats = store.GetStoreStats();
  EXPECT_EQ(stats.checkpoints_written, 3u);
  EXPECT_GE(stats.checkpoints_restored, 2u);
}

TEST_F(CheckpointStoreTest, CrudOnFileBackend) {
  auto store = OpenStore();
  ExerciseCheckpointCrud(*store);
}

TEST(CheckpointStoreInMemoryTest, CrudOnInMemoryBackend) {
  InMemorySampleStore store;
  ExerciseCheckpointCrud(store);
}

void ExerciseTornWriteFallback(SampleStore& store) {
  const std::string good = MinimalCheckpointPayload(100);
  const std::string newer = MinimalCheckpointPayload(200);
  ASSERT_TRUE(store.PutCheckpoint("events", good).ok());

  auto injector = std::make_shared<FaultInjector>(17);
  injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kTornWrite);
  store.SetFaultInjector(injector);
  EXPECT_TRUE(store.PutCheckpoint("events", newer).IsIOError());
  store.SetFaultInjector(nullptr);

  // The torn newest generation must not mask the previous good one.
  const auto got = store.GetCheckpoint("events");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), good);
  EXPECT_GE(store.GetStoreStats().quarantines, 1u);

  // And a subsequent write supersedes everything.
  ASSERT_TRUE(store.PutCheckpoint("events", newer).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), newer);
}

TEST_F(CheckpointStoreTest, TornWriteFallsBackToPreviousGeneration) {
  auto store = OpenStore();
  ExerciseTornWriteFallback(*store);
}

TEST(CheckpointStoreInMemoryTest, TornWriteFallsBackToPreviousGeneration) {
  InMemorySampleStore store;
  ExerciseTornWriteFallback(store);
}

TEST_F(CheckpointStoreTest, TransientWriteFaultIsRetried) {
  auto store = OpenStore();
  auto injector = std::make_shared<FaultInjector>(19);
  injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kIOError, 1);
  store->SetFaultInjector(injector);
  ASSERT_TRUE(store->PutCheckpoint("events",
                                   MinimalCheckpointPayload(1)).ok());
  const StoreStats stats = store->GetStoreStats();
  EXPECT_GE(stats.retries_attempted, 1u);
  EXPECT_EQ(stats.retries_exhausted, 0u);
}

TEST_F(CheckpointStoreTest, RecoverQuarantinesCorruptCheckpointFile) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(
        store->PutCheckpoint("events", MinimalCheckpointPayload(7)).ok());
  }
  // Bit-rot the only checkpoint generation on disk.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".ckpt") path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }

  auto store = OpenStore();
  auto report = store->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().quarantined_checkpoints.size(), 1u);
  EXPECT_TRUE(store->GetCheckpoint("events").status().IsNotFound());
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  EXPECT_GE(store->GetStoreStats().quarantines, 1u);
}

// --- Delta records, WAL framing and chains --------------------------------

CheckpointDeltaRecord ProgressDelta(uint64_t sequence) {
  CheckpointDeltaRecord rec;
  rec.kind = CheckpointDeltaKind::kProgress;
  rec.next_sequence = sequence;
  rec.partitions_started = 1;
  rec.rng = Pcg64(sequence).SaveState();
  rec.progress.elements = sequence % 97;
  return rec;
}

std::string CloseDeltaPayload(uint64_t sequence) {
  CheckpointDeltaRecord rec;
  rec.kind = CheckpointDeltaKind::kClosePending;
  rec.checkpoint_payload = MinimalCheckpointPayload(sequence);
  return rec.Serialize();
}

TEST(CheckpointDeltaTest, RecordRoundTripAndDamageRejection) {
  const CheckpointDeltaRecord progress = ProgressDelta(4242);
  const std::string bytes = progress.Serialize();
  auto round = CheckpointDeltaRecord::Deserialize(bytes);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().kind, CheckpointDeltaKind::kProgress);
  EXPECT_EQ(round.value().next_sequence, 4242u);
  EXPECT_EQ(round.value().partitions_started, 1u);
  EXPECT_EQ(round.value().rng.state_lo, progress.rng.state_lo);
  EXPECT_EQ(round.value().progress.elements, progress.progress.elements);
  EXPECT_TRUE(VerifyCheckpointDeltaPayload(bytes).ok());

  const std::string close = CloseDeltaPayload(77);
  auto close_round = CheckpointDeltaRecord::Deserialize(close);
  ASSERT_TRUE(close_round.ok());
  EXPECT_EQ(close_round.value().kind, CheckpointDeltaKind::kClosePending);
  EXPECT_TRUE(VerifyCheckpointDeltaPayload(close).ok());

  EXPECT_FALSE(CheckpointDeltaRecord::Deserialize("").ok());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(CheckpointDeltaRecord::Deserialize(bytes.substr(0, len)).ok())
        << "accepted a record truncated to " << len << " bytes";
  }
  // A close record whose embedded checkpoint is garbage passes the shallow
  // decode only; deep verification must reject it.
  CheckpointDeltaRecord bad_close;
  bad_close.kind = CheckpointDeltaKind::kClosePending;
  bad_close.checkpoint_payload = "junk that is not a checkpoint";
  EXPECT_FALSE(VerifyCheckpointDeltaPayload(bad_close.Serialize()).ok());
}

TEST(CheckpointDeltaTest, WalParseStopsAtTearOrBitRot) {
  std::string wal;
  const std::vector<std::string> payloads = {ProgressDelta(10).Serialize(),
                                             CloseDeltaPayload(20),
                                             ProgressDelta(30).Serialize()};
  for (const std::string& p : payloads) AppendCheckpointWalFrame(&wal, p);

  CheckpointWalParse whole = ParseCheckpointWal(wal);
  EXPECT_EQ(whole.records, payloads);
  EXPECT_EQ(whole.valid_bytes, wal.size());
  EXPECT_FALSE(whole.torn_tail);

  // A tear anywhere inside the last frame keeps the first two records.
  CheckpointWalParse torn = ParseCheckpointWal(
      std::string_view(wal).substr(0, wal.size() - 3));
  EXPECT_EQ(torn.records.size(), 2u);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.valid_bytes,
            2 * kCheckpointWalFrameBytes + payloads[0].size() +
                payloads[1].size());

  // Bit rot in the middle record: CRC stops the scan at record one.
  std::string rotted = wal;
  rotted[kCheckpointWalFrameBytes + payloads[0].size() +
         kCheckpointWalFrameBytes + 2] ^= 0x40;
  CheckpointWalParse bit = ParseCheckpointWal(rotted);
  EXPECT_EQ(bit.records.size(), 1u);
  EXPECT_TRUE(bit.torn_tail);
}

TEST(CheckpointDeltaTest, ResolveChainPrefersNewestStateCompleteRecord) {
  CheckpointChain chain;
  chain.generation = 3;
  chain.snapshot = MinimalCheckpointPayload(100);

  auto snapshot_only = ResolveCheckpointChain(chain);
  ASSERT_TRUE(snapshot_only.ok());
  EXPECT_EQ(snapshot_only.value().next_sequence, 100u);

  // Progress deltas are liveness only: they never advance the resume point
  // (the sampler state at their watermark was never persisted).
  chain.deltas.push_back(ProgressDelta(150).Serialize());
  auto with_progress = ResolveCheckpointChain(chain);
  ASSERT_TRUE(with_progress.ok());
  EXPECT_EQ(with_progress.value().next_sequence, 100u);

  // A close record is state-complete and overrides the snapshot.
  chain.deltas.push_back(CloseDeltaPayload(180));
  auto with_close = ResolveCheckpointChain(chain);
  ASSERT_TRUE(with_close.ok());
  EXPECT_EQ(with_close.value().next_sequence, 180u);

  // A trailing progress record after the close still does not advance it.
  chain.deltas.push_back(ProgressDelta(200).Serialize());
  auto trailing = ResolveCheckpointChain(chain);
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing.value().next_sequence, 180u);
}

void ExerciseWalAppendAndChain(SampleStore& store) {
  // No snapshot generation yet: nothing to own the WAL.
  EXPECT_TRUE(store
                  .AppendCheckpointDeltas("events",
                                          {ProgressDelta(1).Serialize()})
                  .IsFailedPrecondition());

  const std::string snap = MinimalCheckpointPayload(100);
  ASSERT_TRUE(store.PutCheckpoint("events", snap).ok());
  const std::vector<std::string> batch = {ProgressDelta(150).Serialize(),
                                          CloseDeltaPayload(180)};
  ASSERT_TRUE(store.AppendCheckpointDeltas("events", batch).ok());

  auto chain = store.GetCheckpointChain("events");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain.value().snapshot, snap);
  EXPECT_EQ(chain.value().deltas, batch);
  EXPECT_FALSE(chain.value().torn_tail);
  auto resolved = ResolveCheckpointChain(chain.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().next_sequence, 180u);

  // Rotation: a new snapshot generation starts a fresh, empty WAL.
  const std::string snap2 = MinimalCheckpointPayload(300);
  ASSERT_TRUE(store.PutCheckpoint("events", snap2).ok());
  auto rotated = store.GetCheckpointChain("events");
  ASSERT_TRUE(rotated.ok());
  EXPECT_GT(rotated.value().generation, chain.value().generation);
  EXPECT_EQ(rotated.value().snapshot, snap2);
  EXPECT_TRUE(rotated.value().deltas.empty());

  const StoreStats stats = store.GetStoreStats();
  EXPECT_EQ(stats.wal_appends, 1u);
  EXPECT_EQ(stats.wal_records_appended, 2u);
}

TEST_F(CheckpointStoreTest, WalAppendAndChainOnFileBackend) {
  auto store = OpenStore();
  ExerciseWalAppendAndChain(*store);
}

TEST(CheckpointStoreInMemoryTest, WalAppendAndChainOnInMemoryBackend) {
  InMemorySampleStore store;
  ExerciseWalAppendAndChain(store);
}

void ExerciseTornWalAppendRecovery(SampleStore& store) {
  ASSERT_TRUE(
      store.PutCheckpoint("events", MinimalCheckpointPayload(100)).ok());
  const std::vector<std::string> good = {ProgressDelta(150).Serialize()};
  ASSERT_TRUE(store.AppendCheckpointDeltas("events", good).ok());

  // A single-record batch torn mid-append always cuts inside the frame.
  auto injector = std::make_shared<FaultInjector>(23);
  injector->Arm(kFaultSiteWalAppend, FaultKind::kTornWrite);
  store.SetFaultInjector(injector);
  EXPECT_TRUE(store.AppendCheckpointDeltas("events", {CloseDeltaPayload(180)})
                  .IsIOError());
  store.SetFaultInjector(nullptr);

  // Reads already skip the torn tail...
  auto chain = store.GetCheckpointChain("events");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value().deltas, good);
  EXPECT_TRUE(chain.value().torn_tail);

  // ...and Recover() truncates it to the last whole CRC-verified record.
  auto report = store.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().truncated_wal_tails.size(), 1u);
  EXPECT_GE(store.GetStoreStats().wal_tails_truncated, 1u);
  auto truncated = store.GetCheckpointChain("events");
  ASSERT_TRUE(truncated.ok());
  EXPECT_EQ(truncated.value().deltas, good);
  EXPECT_FALSE(truncated.value().torn_tail);

  // The truncated WAL is clean: appends extend it again.
  ASSERT_TRUE(
      store.AppendCheckpointDeltas("events", {CloseDeltaPayload(200)}).ok());
  auto extended = store.GetCheckpointChain("events");
  ASSERT_TRUE(extended.ok());
  auto resolved = ResolveCheckpointChain(extended.value());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value().next_sequence, 200u);
}

TEST_F(CheckpointStoreTest, TornWalAppendIsTruncatedOnRecover) {
  auto store = OpenStore();
  ExerciseTornWalAppendRecovery(*store);
}

TEST(CheckpointStoreInMemoryTest, TornWalAppendIsTruncatedOnRecover) {
  InMemorySampleStore store;
  ExerciseTornWalAppendRecovery(store);
}

TEST_F(CheckpointStoreTest, RecoverQuarantinesOrphanedWal) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(
        store->PutCheckpoint("events", MinimalCheckpointPayload(7)).ok());
    ASSERT_TRUE(store
                    ->AppendCheckpointDeltas(
                        "events", {ProgressDelta(9).Serialize()})
                    .ok());
  }
  // A WAL whose generation has no snapshot: the crash artifact of a torn
  // PutCheckpoint that already lost its .ckpt file.
  const std::string orphan = dir_ + "/events.999.wal";
  {
    std::ofstream f(orphan, std::ios::binary);
    std::string wal;
    AppendCheckpointWalFrame(&wal, ProgressDelta(11).Serialize());
    f.write(wal.data(), static_cast<std::streamsize>(wal.size()));
  }

  auto store = OpenStore();
  auto report = store->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report.value().orphaned_wals.size(), 1u);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(orphan + ".quarantine"));

  // The live generation's WAL survived untouched.
  auto chain = store->GetCheckpointChain("events");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value().deltas.size(), 1u);
}

TEST_F(CheckpointStoreTest, CorruptSnapshotQuarantinesItsWal) {
  auto store = OpenStore();
  const std::string old_snap = MinimalCheckpointPayload(100);
  const std::string new_snap = MinimalCheckpointPayload(200);
  ASSERT_TRUE(store->PutCheckpoint("events", old_snap).ok());
  ASSERT_TRUE(store->PutCheckpoint("events", new_snap).ok());
  ASSERT_TRUE(store
                  ->AppendCheckpointDeltas("events",
                                           {ProgressDelta(250).Serialize()})
                  .ok());
  // Bit-rot the newest snapshot; its WAL must fall with it — the deltas
  // extend a state we can no longer read, not the older generation.
  std::string newest_ckpt;
  uint64_t newest_gen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".ckpt") continue;
    const std::string stem = entry.path().stem().string();
    const uint64_t gen =
        std::stoull(stem.substr(stem.find_last_of('.') + 1));
    if (gen > newest_gen) {
      newest_gen = gen;
      newest_ckpt = entry.path().string();
    }
  }
  ASSERT_FALSE(newest_ckpt.empty());
  {
    std::fstream f(newest_ckpt,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }

  auto chain = store->GetCheckpointChain("events");
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(chain.value().snapshot, old_snap);
  EXPECT_TRUE(chain.value().deltas.empty());
  EXPECT_GE(store->GetStoreStats().quarantines, 1u);
}

// --- Ingestor resume: exactly-once replay ---------------------------------

class ResumableIngestTest : public CheckpointStoreTest {
 protected:
  WarehouseOptions DurableOptions() {
    WarehouseOptions options = TestOptions();
    options.manifest_path = manifest_;
    return options;
  }

  /// The uninterrupted reference: same seed, same stream, no crash.
  std::vector<std::string> ReferenceRun(const std::vector<Value>& values,
                                        uint64_t partition_elements) {
    Warehouse reference(TestOptions());
    EXPECT_TRUE(reference.CreateDataset("events").ok());
    StreamIngestor ingestor(&reference, "events",
                            MakeCountPartitioner(partition_elements));
    EXPECT_TRUE(ingestor.AppendBatch(values).ok());
    EXPECT_TRUE(ingestor.Flush().ok());
    return SampleBytes(reference, "events");
  }
};

TEST_F(ResumableIngestTest, KillMidStreamResumeReplayBitIdentical) {
  const std::vector<Value> values = Range(0, 800);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 4u);

  // Run 1: ingest 520 elements with cadence checkpoints, then "crash" (all
  // in-memory state destroyed, no Flush).
  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({.every_n_elements = 64});
    for (uint64_t i = 0; i < 520; i += 40) {
      ASSERT_TRUE(
          ingestor
              .AppendBatchAt(i, std::span<const Value>(values).subspan(i, 40))
              .ok());
    }
    ASSERT_EQ(ingestor.next_sequence(), 520u);
  }

  // Restart: recover the warehouse, resume the ingestor, and replay the
  // WHOLE stream from sequence 0 — an at-least-once source. Every batch
  // below the watermark must be acknowledged and skipped.
  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250),
                                        {.every_n_elements = 64});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  StreamIngestor& ingestor = *resumed.value();
  EXPECT_GT(ingestor.next_sequence(), 0u);
  EXPECT_LE(ingestor.next_sequence(), 520u);

  for (uint64_t i = 0; i < values.size(); i += 40) {
    ASSERT_TRUE(
        ingestor
            .AppendBatchAt(i, std::span<const Value>(values).subspan(i, 40))
            .ok())
        << "replay batch at " << i;
  }
  EXPECT_EQ(ingestor.next_sequence(), values.size());
  ASSERT_TRUE(ingestor.Flush().ok());

  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

TEST_F(ResumableIngestTest, DuplicatesAckedGapsRejected) {
  Warehouse warehouse(DurableOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  StreamIngestor ingestor(&warehouse, "events", nullptr);
  const std::vector<Value> values = Range(0, 100);

  // A gap is refused outright.
  EXPECT_TRUE(ingestor.AppendBatchAt(10, values).IsFailedPrecondition());
  EXPECT_EQ(ingestor.next_sequence(), 0u);

  ASSERT_TRUE(ingestor.AppendBatchAt(0, values).ok());
  EXPECT_EQ(ingestor.next_sequence(), 100u);
  EXPECT_EQ(ingestor.open_elements(), 100u);

  // A full redelivery is acknowledged without touching the sampler.
  ASSERT_TRUE(ingestor.AppendBatchAt(0, values).ok());
  EXPECT_EQ(ingestor.next_sequence(), 100u);
  EXPECT_EQ(ingestor.open_elements(), 100u);

  // A straddling batch applies only its unapplied suffix.
  const std::vector<Value> straddle = Range(60, 140);
  ASSERT_TRUE(ingestor.AppendBatchAt(60, straddle).ok());
  EXPECT_EQ(ingestor.next_sequence(), 140u);
  EXPECT_EQ(ingestor.open_elements(), 140u);
}

TEST_F(ResumableIngestTest, ResumeWithoutCheckpointIsNotFound) {
  Warehouse warehouse(DurableOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  EXPECT_TRUE(StreamIngestor::Resume(&warehouse, "events", nullptr)
                  .status()
                  .IsNotFound());
}

// Crash INSIDE the close protocol, after checkpoint A but before the
// roll-in persisted: resume must roll the pending partition in (once).
TEST_F(ResumableIngestTest, CrashBeforeRollInReplaysPendingPartition) {
  const std::vector<Value> values = Range(0, 400);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 2u);

  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({});
    ASSERT_TRUE(
        ingestor.AppendBatchAt(0, std::span<const Value>(values).first(250))
            .ok());
    // The next element triggers the close; its RollIn dies on exhausted
    // IO retries, leaving checkpoint A as the only durable trace.
    auto injector = std::make_shared<FaultInjector>(23);
    injector->Arm(kFaultSitePutWrite, FaultKind::kIOError, 100);
    warehouse.store_for_testing()->SetFaultInjector(injector);
    EXPECT_TRUE(ingestor
                    .AppendBatchAt(250, std::span<const Value>(values)
                                            .subspan(250, 1))
                    .IsIOError());
    EXPECT_TRUE(ingestor.rolled_in().empty());
  }

  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Resume completed the interrupted roll-in exactly once.
  ASSERT_EQ(resumed.value()->rolled_in().size(), 1u);
  ASSERT_EQ(warehouse.ListPartitions("events").value().size(), 1u);

  for (uint64_t i = 0; i < values.size(); i += 80) {
    ASSERT_TRUE(
        resumed.value()
            ->AppendBatchAt(i, std::span<const Value>(values).subspan(i, 80))
            .ok());
  }
  ASSERT_TRUE(resumed.value()->Flush().ok());
  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

// Crash between the roll-in and checkpoint B: the catalog already holds
// the partition, so resume must ADOPT it, not roll it in twice.
TEST_F(ResumableIngestTest, CheckpointBLossAdoptsCompletedRollIn) {
  const std::vector<Value> values = Range(0, 400);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 2u);

  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    warehouse.store_for_testing()->SetRetryPolicy(
        {.max_attempts = 1, .initial_backoff = std::chrono::microseconds(1)});
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({});
    ASSERT_TRUE(
        ingestor.AppendBatchAt(0, std::span<const Value>(values).first(250))
            .ok());
    // Let checkpoint A through (skip 1), then fail checkpoint B. B is best
    // effort, so the append itself succeeds and the roll-in completes.
    auto injector = std::make_shared<FaultInjector>(29);
    injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kIOError, 100, 1);
    warehouse.store_for_testing()->SetFaultInjector(injector);
    ASSERT_TRUE(ingestor
                    .AppendBatchAt(250, std::span<const Value>(values)
                                            .subspan(250, 1))
                    .ok());
    ASSERT_EQ(ingestor.rolled_in().size(), 1u);
  }

  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Adopted, not duplicated: still exactly one partition in the catalog.
  ASSERT_EQ(resumed.value()->rolled_in().size(), 1u);
  ASSERT_EQ(warehouse.ListPartitions("events").value().size(), 1u);

  for (uint64_t i = 0; i < values.size(); i += 80) {
    ASSERT_TRUE(
        resumed.value()
            ->AppendBatchAt(i, std::span<const Value>(values).subspan(i, 80))
            .ok());
  }
  ASSERT_TRUE(resumed.value()->Flush().ok());
  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

// --- Warehouse-level reconciliation ---------------------------------------

TEST_F(CheckpointStoreTest, RestoreWithRecoveryDropsStaleCheckpoints) {
  {
    Warehouse warehouse(TestOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    ASSERT_TRUE(warehouse.IngestBatch("events", Range(0, 1000), 2).ok());
    ASSERT_TRUE(warehouse.SaveManifest(manifest_).ok());
    // A checkpoint for a dataset the catalog does not know (e.g. dropped
    // after the checkpoint was written, or a foreign leftover).
    ASSERT_TRUE(warehouse.store_for_testing()
                    ->PutCheckpoint("ghost", MinimalCheckpointPayload(9))
                    .ok());
  }

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().report.stale_checkpoints,
            (std::vector<DatasetId>{"ghost"}));
  EXPECT_TRUE(restored.value()
                  .warehouse->ListIngestCheckpoints()
                  .value()
                  .empty());
}

TEST_F(CheckpointStoreTest, DropDatasetRemovesItsCheckpoint) {
  Warehouse warehouse(TestOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  ASSERT_TRUE(
      warehouse.PutIngestCheckpoint("events", MinimalCheckpointPayload(1))
          .ok());
  ASSERT_EQ(warehouse.ListIngestCheckpoints().value().size(), 1u);
  ASSERT_TRUE(warehouse.DropDataset("events").ok());
  EXPECT_TRUE(warehouse.ListIngestCheckpoints().value().empty());
}

TEST_F(CheckpointStoreTest, PutCheckpointForUnknownDatasetIsNotFound) {
  Warehouse warehouse(TestOptions(), OpenStore());
  EXPECT_TRUE(
      warehouse.PutIngestCheckpoint("nope", MinimalCheckpointPayload(1))
          .IsNotFound());
}

}  // namespace
}  // namespace sampwh
