// The crash-safe resumable-ingestion protocol end to end: the checkpoint
// record round-trips, both store backends keep generational checkpoints
// that survive torn writes, and a StreamIngestor killed at an arbitrary
// point — including inside the two-phase close protocol — resumes from its
// checkpoint and, fed an at-least-once replay of the source stream,
// produces rolled-in samples bit-identical to an uninterrupted run.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/fault_injector.h"
#include "src/util/serialization.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/partitioner.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

WarehouseOptions TestOptions() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  options.seed = 0x434b505431ULL;
  return options;
}

/// A structurally valid checkpoint payload (deep-verifiable: no open
/// partition, no pending roll-in).
std::string MinimalCheckpointPayload(uint64_t next_sequence) {
  IngestCheckpoint ckpt;
  ckpt.next_sequence = next_sequence;
  ckpt.rng = Pcg64(next_sequence).SaveState();
  return ckpt.Serialize();
}

/// Serialized bytes of every stored sample of `dataset`, ascending by
/// partition id — the bit-identity yardstick.
std::vector<std::string> SampleBytes(Warehouse& warehouse,
                                     const DatasetId& dataset) {
  std::vector<std::string> out;
  auto parts = warehouse.ListPartitions(dataset);
  EXPECT_TRUE(parts.ok());
  if (!parts.ok()) return out;
  for (const PartitionInfo& p : parts.value()) {
    auto sample = warehouse.GetSample(dataset, p.id);
    EXPECT_TRUE(sample.ok());
    if (!sample.ok()) return out;
    BinaryWriter writer;
    sample.value().SerializeTo(&writer);
    out.push_back(std::move(writer).Release());
  }
  return out;
}

// --- IngestCheckpoint record ----------------------------------------------

TEST(IngestCheckpointTest, SerializeDeserializeRoundTrip) {
  IngestCheckpoint ckpt;
  ckpt.next_sequence = 123456789;
  ckpt.partitions_started = 7;
  ckpt.created_unix_micros = 1754550000000000ULL;
  ckpt.rng = Pcg64(42).SaveState();
  ckpt.rolled_in = {3, 5, 8};
  ckpt.progress.elements = 0;  // no open partition: sampler_state empty
  ckpt.progress.first_timestamp = 100;
  ckpt.progress.last_timestamp = 900;
  PendingRollIn pending;
  pending.sample_payload = "opaque sample bytes";
  pending.min_timestamp = 100;
  pending.max_timestamp = 900;
  pending.id_lower_bound = 9;
  ckpt.pending = pending;

  auto round = IngestCheckpoint::Deserialize(ckpt.Serialize());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const IngestCheckpoint& got = round.value();
  EXPECT_EQ(got.next_sequence, ckpt.next_sequence);
  EXPECT_EQ(got.partitions_started, ckpt.partitions_started);
  EXPECT_EQ(got.created_unix_micros, ckpt.created_unix_micros);
  EXPECT_EQ(got.rng.state_hi, ckpt.rng.state_hi);
  EXPECT_EQ(got.rng.state_lo, ckpt.rng.state_lo);
  EXPECT_EQ(got.rng.inc_hi, ckpt.rng.inc_hi);
  EXPECT_EQ(got.rng.inc_lo, ckpt.rng.inc_lo);
  EXPECT_EQ(got.rolled_in, ckpt.rolled_in);
  EXPECT_EQ(got.progress.elements, ckpt.progress.elements);
  EXPECT_EQ(got.progress.first_timestamp, ckpt.progress.first_timestamp);
  EXPECT_EQ(got.progress.last_timestamp, ckpt.progress.last_timestamp);
  ASSERT_TRUE(got.pending.has_value());
  EXPECT_EQ(got.pending->sample_payload, pending.sample_payload);
  EXPECT_EQ(got.pending->min_timestamp, pending.min_timestamp);
  EXPECT_EQ(got.pending->max_timestamp, pending.max_timestamp);
  EXPECT_EQ(got.pending->id_lower_bound, pending.id_lower_bound);
}

TEST(IngestCheckpointTest, DeserializeRejectsDamage) {
  const std::string good = MinimalCheckpointPayload(42);
  ASSERT_TRUE(IngestCheckpoint::Deserialize(good).ok());
  EXPECT_FALSE(IngestCheckpoint::Deserialize("").ok());
  EXPECT_FALSE(IngestCheckpoint::Deserialize("not a checkpoint").ok());
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(IngestCheckpoint::Deserialize(good.substr(0, len)).ok())
        << "accepted a record truncated to " << len << " bytes";
  }
  EXPECT_FALSE(IngestCheckpoint::Deserialize(good + '\x01').ok());
}

TEST(IngestCheckpointTest, OpenPartitionRequiresSamplerState) {
  IngestCheckpoint ckpt;
  ckpt.progress.elements = 10;  // claims an open partition...
  ckpt.sampler_state.clear();   // ...but carries no sampler to resume it
  EXPECT_TRUE(
      IngestCheckpoint::Deserialize(ckpt.Serialize()).status().IsCorruption());
}

TEST(IngestCheckpointTest, VerifyRejectsUndedecodableEmbeddedRecords) {
  IngestCheckpoint ckpt;
  ckpt.rng = Pcg64(1).SaveState();
  ASSERT_TRUE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
  ckpt.progress.elements = 5;
  ckpt.sampler_state = "junk that is not a sampler-state record";
  EXPECT_FALSE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
  ckpt.progress.elements = 0;
  ckpt.sampler_state.clear();
  PendingRollIn pending;
  pending.sample_payload = "junk that is not a sample";
  ckpt.pending = pending;
  EXPECT_FALSE(VerifyCheckpointPayload(ckpt.Serialize()).ok());
}

// --- Store-level checkpoint persistence -----------------------------------

class CheckpointStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sampwh_ckpt_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    manifest_ = dir_ + "/manifest";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<FileSampleStore> OpenStore() {
    auto store = FileSampleStore::Open(dir_);
    EXPECT_TRUE(store.ok());
    return std::move(store).value();
  }

  std::string dir_;
  std::string manifest_;
};

void ExerciseCheckpointCrud(SampleStore& store) {
  EXPECT_TRUE(store.GetCheckpoint("events").status().IsNotFound());
  EXPECT_TRUE(store.DeleteCheckpoint("events").IsNotFound());
  EXPECT_TRUE(store.ListCheckpoints().value().empty());

  const std::string first = MinimalCheckpointPayload(100);
  const std::string second = MinimalCheckpointPayload(200);
  ASSERT_TRUE(store.PutCheckpoint("events", first).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), first);
  ASSERT_TRUE(store.PutCheckpoint("events", second).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), second);
  ASSERT_TRUE(store.PutCheckpoint("orders", first).ok());

  const auto datasets = store.ListCheckpoints();
  ASSERT_TRUE(datasets.ok());
  EXPECT_EQ(datasets.value(),
            (std::vector<DatasetId>{"events", "orders"}));

  EXPECT_TRUE(store.DeleteCheckpoint("events").ok());
  EXPECT_TRUE(store.GetCheckpoint("events").status().IsNotFound());
  EXPECT_EQ(store.ListCheckpoints().value(),
            (std::vector<DatasetId>{"orders"}));

  const StoreStats stats = store.GetStoreStats();
  EXPECT_EQ(stats.checkpoints_written, 3u);
  EXPECT_GE(stats.checkpoints_restored, 2u);
}

TEST_F(CheckpointStoreTest, CrudOnFileBackend) {
  auto store = OpenStore();
  ExerciseCheckpointCrud(*store);
}

TEST(CheckpointStoreInMemoryTest, CrudOnInMemoryBackend) {
  InMemorySampleStore store;
  ExerciseCheckpointCrud(store);
}

void ExerciseTornWriteFallback(SampleStore& store) {
  const std::string good = MinimalCheckpointPayload(100);
  const std::string newer = MinimalCheckpointPayload(200);
  ASSERT_TRUE(store.PutCheckpoint("events", good).ok());

  auto injector = std::make_shared<FaultInjector>(17);
  injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kTornWrite);
  store.SetFaultInjector(injector);
  EXPECT_TRUE(store.PutCheckpoint("events", newer).IsIOError());
  store.SetFaultInjector(nullptr);

  // The torn newest generation must not mask the previous good one.
  const auto got = store.GetCheckpoint("events");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), good);
  EXPECT_GE(store.GetStoreStats().quarantines, 1u);

  // And a subsequent write supersedes everything.
  ASSERT_TRUE(store.PutCheckpoint("events", newer).ok());
  EXPECT_EQ(store.GetCheckpoint("events").value(), newer);
}

TEST_F(CheckpointStoreTest, TornWriteFallsBackToPreviousGeneration) {
  auto store = OpenStore();
  ExerciseTornWriteFallback(*store);
}

TEST(CheckpointStoreInMemoryTest, TornWriteFallsBackToPreviousGeneration) {
  InMemorySampleStore store;
  ExerciseTornWriteFallback(store);
}

TEST_F(CheckpointStoreTest, TransientWriteFaultIsRetried) {
  auto store = OpenStore();
  auto injector = std::make_shared<FaultInjector>(19);
  injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kIOError, 1);
  store->SetFaultInjector(injector);
  ASSERT_TRUE(store->PutCheckpoint("events",
                                   MinimalCheckpointPayload(1)).ok());
  const StoreStats stats = store->GetStoreStats();
  EXPECT_GE(stats.retries_attempted, 1u);
  EXPECT_EQ(stats.retries_exhausted, 0u);
}

TEST_F(CheckpointStoreTest, RecoverQuarantinesCorruptCheckpointFile) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(
        store->PutCheckpoint("events", MinimalCheckpointPayload(7)).ok());
  }
  // Bit-rot the only checkpoint generation on disk.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".ckpt") path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }

  auto store = OpenStore();
  auto report = store->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report.value().quarantined_checkpoints.size(), 1u);
  EXPECT_TRUE(store->GetCheckpoint("events").status().IsNotFound());
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  EXPECT_GE(store->GetStoreStats().quarantines, 1u);
}

// --- Ingestor resume: exactly-once replay ---------------------------------

class ResumableIngestTest : public CheckpointStoreTest {
 protected:
  WarehouseOptions DurableOptions() {
    WarehouseOptions options = TestOptions();
    options.manifest_path = manifest_;
    return options;
  }

  /// The uninterrupted reference: same seed, same stream, no crash.
  std::vector<std::string> ReferenceRun(const std::vector<Value>& values,
                                        uint64_t partition_elements) {
    Warehouse reference(TestOptions());
    EXPECT_TRUE(reference.CreateDataset("events").ok());
    StreamIngestor ingestor(&reference, "events",
                            MakeCountPartitioner(partition_elements));
    EXPECT_TRUE(ingestor.AppendBatch(values).ok());
    EXPECT_TRUE(ingestor.Flush().ok());
    return SampleBytes(reference, "events");
  }
};

TEST_F(ResumableIngestTest, KillMidStreamResumeReplayBitIdentical) {
  const std::vector<Value> values = Range(0, 800);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 4u);

  // Run 1: ingest 520 elements with cadence checkpoints, then "crash" (all
  // in-memory state destroyed, no Flush).
  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({.every_n_elements = 64});
    for (uint64_t i = 0; i < 520; i += 40) {
      ASSERT_TRUE(
          ingestor
              .AppendBatchAt(i, std::span<const Value>(values).subspan(i, 40))
              .ok());
    }
    ASSERT_EQ(ingestor.next_sequence(), 520u);
  }

  // Restart: recover the warehouse, resume the ingestor, and replay the
  // WHOLE stream from sequence 0 — an at-least-once source. Every batch
  // below the watermark must be acknowledged and skipped.
  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250),
                                        {.every_n_elements = 64});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  StreamIngestor& ingestor = *resumed.value();
  EXPECT_GT(ingestor.next_sequence(), 0u);
  EXPECT_LE(ingestor.next_sequence(), 520u);

  for (uint64_t i = 0; i < values.size(); i += 40) {
    ASSERT_TRUE(
        ingestor
            .AppendBatchAt(i, std::span<const Value>(values).subspan(i, 40))
            .ok())
        << "replay batch at " << i;
  }
  EXPECT_EQ(ingestor.next_sequence(), values.size());
  ASSERT_TRUE(ingestor.Flush().ok());

  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

TEST_F(ResumableIngestTest, DuplicatesAckedGapsRejected) {
  Warehouse warehouse(DurableOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  StreamIngestor ingestor(&warehouse, "events", nullptr);
  const std::vector<Value> values = Range(0, 100);

  // A gap is refused outright.
  EXPECT_TRUE(ingestor.AppendBatchAt(10, values).IsFailedPrecondition());
  EXPECT_EQ(ingestor.next_sequence(), 0u);

  ASSERT_TRUE(ingestor.AppendBatchAt(0, values).ok());
  EXPECT_EQ(ingestor.next_sequence(), 100u);
  EXPECT_EQ(ingestor.open_elements(), 100u);

  // A full redelivery is acknowledged without touching the sampler.
  ASSERT_TRUE(ingestor.AppendBatchAt(0, values).ok());
  EXPECT_EQ(ingestor.next_sequence(), 100u);
  EXPECT_EQ(ingestor.open_elements(), 100u);

  // A straddling batch applies only its unapplied suffix.
  const std::vector<Value> straddle = Range(60, 140);
  ASSERT_TRUE(ingestor.AppendBatchAt(60, straddle).ok());
  EXPECT_EQ(ingestor.next_sequence(), 140u);
  EXPECT_EQ(ingestor.open_elements(), 140u);
}

TEST_F(ResumableIngestTest, ResumeWithoutCheckpointIsNotFound) {
  Warehouse warehouse(DurableOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  EXPECT_TRUE(StreamIngestor::Resume(&warehouse, "events", nullptr)
                  .status()
                  .IsNotFound());
}

// Crash INSIDE the close protocol, after checkpoint A but before the
// roll-in persisted: resume must roll the pending partition in (once).
TEST_F(ResumableIngestTest, CrashBeforeRollInReplaysPendingPartition) {
  const std::vector<Value> values = Range(0, 400);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 2u);

  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({});
    ASSERT_TRUE(
        ingestor.AppendBatchAt(0, std::span<const Value>(values).first(250))
            .ok());
    // The next element triggers the close; its RollIn dies on exhausted
    // IO retries, leaving checkpoint A as the only durable trace.
    auto injector = std::make_shared<FaultInjector>(23);
    injector->Arm(kFaultSitePutWrite, FaultKind::kIOError, 100);
    warehouse.store_for_testing()->SetFaultInjector(injector);
    EXPECT_TRUE(ingestor
                    .AppendBatchAt(250, std::span<const Value>(values)
                                            .subspan(250, 1))
                    .IsIOError());
    EXPECT_TRUE(ingestor.rolled_in().empty());
  }

  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Resume completed the interrupted roll-in exactly once.
  ASSERT_EQ(resumed.value()->rolled_in().size(), 1u);
  ASSERT_EQ(warehouse.ListPartitions("events").value().size(), 1u);

  for (uint64_t i = 0; i < values.size(); i += 80) {
    ASSERT_TRUE(
        resumed.value()
            ->AppendBatchAt(i, std::span<const Value>(values).subspan(i, 80))
            .ok());
  }
  ASSERT_TRUE(resumed.value()->Flush().ok());
  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

// Crash between the roll-in and checkpoint B: the catalog already holds
// the partition, so resume must ADOPT it, not roll it in twice.
TEST_F(ResumableIngestTest, CheckpointBLossAdoptsCompletedRollIn) {
  const std::vector<Value> values = Range(0, 400);
  const std::vector<std::string> want = ReferenceRun(values, 250);
  ASSERT_EQ(want.size(), 2u);

  {
    Warehouse warehouse(DurableOptions(), OpenStore());
    warehouse.store_for_testing()->SetRetryPolicy(
        {.max_attempts = 1, .initial_backoff = std::chrono::microseconds(1)});
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    StreamIngestor ingestor(&warehouse, "events", MakeCountPartitioner(250));
    ingestor.EnableCheckpoints({});
    ASSERT_TRUE(
        ingestor.AppendBatchAt(0, std::span<const Value>(values).first(250))
            .ok());
    // Let checkpoint A through (skip 1), then fail checkpoint B. B is best
    // effort, so the append itself succeeds and the roll-in completes.
    auto injector = std::make_shared<FaultInjector>(29);
    injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kIOError, 100, 1);
    warehouse.store_for_testing()->SetFaultInjector(injector);
    ASSERT_TRUE(ingestor
                    .AppendBatchAt(250, std::span<const Value>(values)
                                            .subspan(250, 1))
                    .ok());
    ASSERT_EQ(ingestor.rolled_in().size(), 1u);
  }

  auto restored = Warehouse::RestoreWithRecovery(DurableOptions(),
                                                 OpenStore(), manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Warehouse& warehouse = *restored.value().warehouse;
  auto resumed = StreamIngestor::Resume(&warehouse, "events",
                                        MakeCountPartitioner(250));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Adopted, not duplicated: still exactly one partition in the catalog.
  ASSERT_EQ(resumed.value()->rolled_in().size(), 1u);
  ASSERT_EQ(warehouse.ListPartitions("events").value().size(), 1u);

  for (uint64_t i = 0; i < values.size(); i += 80) {
    ASSERT_TRUE(
        resumed.value()
            ->AppendBatchAt(i, std::span<const Value>(values).subspan(i, 80))
            .ok());
  }
  ASSERT_TRUE(resumed.value()->Flush().ok());
  EXPECT_EQ(SampleBytes(warehouse, "events"), want);
}

// --- Warehouse-level reconciliation ---------------------------------------

TEST_F(CheckpointStoreTest, RestoreWithRecoveryDropsStaleCheckpoints) {
  {
    Warehouse warehouse(TestOptions(), OpenStore());
    ASSERT_TRUE(warehouse.CreateDataset("events").ok());
    ASSERT_TRUE(warehouse.IngestBatch("events", Range(0, 1000), 2).ok());
    ASSERT_TRUE(warehouse.SaveManifest(manifest_).ok());
    // A checkpoint for a dataset the catalog does not know (e.g. dropped
    // after the checkpoint was written, or a foreign leftover).
    ASSERT_TRUE(warehouse.store_for_testing()
                    ->PutCheckpoint("ghost", MinimalCheckpointPayload(9))
                    .ok());
  }

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().report.stale_checkpoints,
            (std::vector<DatasetId>{"ghost"}));
  EXPECT_TRUE(restored.value()
                  .warehouse->ListIngestCheckpoints()
                  .value()
                  .empty());
}

TEST_F(CheckpointStoreTest, DropDatasetRemovesItsCheckpoint) {
  Warehouse warehouse(TestOptions(), OpenStore());
  ASSERT_TRUE(warehouse.CreateDataset("events").ok());
  ASSERT_TRUE(
      warehouse.PutIngestCheckpoint("events", MinimalCheckpointPayload(1))
          .ok());
  ASSERT_EQ(warehouse.ListIngestCheckpoints().value().size(), 1u);
  ASSERT_TRUE(warehouse.DropDataset("events").ok());
  EXPECT_TRUE(warehouse.ListIngestCheckpoints().value().empty());
}

TEST_F(CheckpointStoreTest, PutCheckpointForUnknownDatasetIsNotFound) {
  Warehouse warehouse(TestOptions(), OpenStore());
  EXPECT_TRUE(
      warehouse.PutIngestCheckpoint("nope", MinimalCheckpointPayload(1))
          .IsNotFound());
}

}  // namespace
}  // namespace sampwh
