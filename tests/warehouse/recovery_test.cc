// Crash-recovery tests of the warehouse restore path: a manifest plus a
// file store that a crash left damaged (torn destination files, orphan
// temps, missing samples) must reopen through RestoreWithRecovery into a
// warehouse whose catalog and store agree and whose surviving partitions
// answer queries. The strict Restore() keeps its fail-fast contract.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/fault_injector.h"
#include "src/util/serialization.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

WarehouseOptions TestOptions() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  options.seed = 0x4443543EULL;
  return options;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sampwh_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    manifest_ = dir_ + "/manifest";
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<FileSampleStore> OpenStore() {
    auto store = FileSampleStore::Open(dir_);
    EXPECT_TRUE(store.ok());
    return std::move(store).value();
  }

  /// A warehouse with 4 partitions in dataset "events", manifest saved.
  std::unique_ptr<Warehouse> BuildPopulated() {
    auto warehouse =
        std::make_unique<Warehouse>(TestOptions(), OpenStore());
    EXPECT_TRUE(warehouse->CreateDataset("events").ok());
    EXPECT_TRUE(
        warehouse->IngestBatch("events", Range(0, 4000), 4).ok());
    EXPECT_TRUE(warehouse->SaveManifest(manifest_).ok());
    return warehouse;
  }

  std::string dir_;
  std::string manifest_;
};

// The ISSUE acceptance scenario: a Put crashes mid-write (torn file), the
// process restarts, and recovery quarantines the torn sample, reconciles
// the catalog with the store, and keeps the survivors queryable.
TEST_F(RecoveryTest, TornWriteThenRestartRecovers) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().front().id;
  const PartitionSample sample =
      warehouse->GetSample("events", victim).value();

  // Crash a rewrite of the victim's sample: the destination file holds a
  // prefix of the intended bytes.
  auto injector = std::make_shared<FaultInjector>(3);
  injector->Arm(kFaultSitePutWrite, FaultKind::kTornWrite);
  warehouse->store_for_testing()->SetFaultInjector(injector);
  EXPECT_TRUE(warehouse->store_for_testing()
                  ->Put({"events", victim}, sample)
                  .IsIOError());
  warehouse.reset();  // the "crash": all in-memory state is gone

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().report.quarantined.size(), 1u);
  ASSERT_EQ(restored.value().dropped_partitions.size(), 1u);
  EXPECT_EQ(restored.value().dropped_partitions[0].partition, victim);

  // Catalog and store agree: the victim is gone from both, each surviving
  // partition is cataloged AND readable, and union queries work.
  Warehouse& recovered = *restored.value().warehouse;
  const auto partitions = recovered.ListPartitions("events");
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(partitions.value().size(), 3u);
  for (const PartitionInfo& p : partitions.value()) {
    EXPECT_NE(p.id, victim);
    EXPECT_TRUE(recovered.GetSample("events", p.id).ok());
  }
  const auto merged = recovered.MergedSampleAll("events");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(merged.value().Validate().ok());
  // The torn file is preserved aside for inspection.
  EXPECT_TRUE(std::filesystem::exists(
      dir_ + "/events." + std::to_string(victim) + ".sample.quarantine"));
}

TEST_F(RecoveryTest, StrictRestoreStillFailsOnTornFile) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().front().id;
  const PartitionSample sample =
      warehouse->GetSample("events", victim).value();
  auto injector = std::make_shared<FaultInjector>(3);
  injector->Arm(kFaultSitePutWrite, FaultKind::kTornWrite);
  warehouse->store_for_testing()->SetFaultInjector(injector);
  EXPECT_FALSE(
      warehouse->store_for_testing()->Put({"events", victim}, sample).ok());
  warehouse.reset();

  EXPECT_FALSE(
      Warehouse::Restore(TestOptions(), OpenStore(), manifest_).ok());
}

TEST_F(RecoveryTest, CrashBeforeRenameLeavesDataIntact) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().front().id;
  const PartitionSample sample =
      warehouse->GetSample("events", victim).value();
  // Crash BEFORE the rename: the previous version of the sample survives;
  // recovery only has to sweep the orphan temp.
  auto injector = std::make_shared<FaultInjector>(3);
  injector->Arm(kFaultSitePutWrite, FaultKind::kCrashBeforeRename);
  warehouse->store_for_testing()->SetFaultInjector(injector);
  EXPECT_TRUE(warehouse->store_for_testing()
                  ->Put({"events", victim}, sample)
                  .IsIOError());
  warehouse.reset();

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().report.removed_temps.size(), 1u);
  EXPECT_TRUE(restored.value().report.quarantined.empty());
  EXPECT_TRUE(restored.value().dropped_partitions.empty());
  EXPECT_EQ(
      restored.value().warehouse->ListPartitions("events").value().size(),
      4u);
  EXPECT_TRUE(restored.value().warehouse->GetSample("events", victim).ok());
}

TEST_F(RecoveryTest, MissingSampleFileIsDroppedFromCatalog) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().back().id;
  warehouse.reset();
  ASSERT_TRUE(std::filesystem::remove(dir_ + "/events." +
                                      std::to_string(victim) + ".sample"));

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().report.missing_partitions.size(), 1u);
  EXPECT_EQ(restored.value().report.missing_partitions[0].partition, victim);
  ASSERT_EQ(restored.value().dropped_partitions.size(), 1u);
  EXPECT_EQ(restored.value().dropped_partitions[0].partition, victim);
  EXPECT_EQ(
      restored.value().warehouse->ListPartitions("events").value().size(),
      3u);
  EXPECT_TRUE(
      restored.value().warehouse->MergedSampleAll("events").ok());
}

TEST_F(RecoveryTest, MetadataMismatchIsDroppedFromCatalog) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().front().id;
  warehouse.reset();
  // Overwrite the victim with a decodable sample whose metadata disagrees
  // with the manifest (different parent size): recovery must not serve it.
  {
    std::unique_ptr<FileSampleStore> store = OpenStore();
    Warehouse scratch(TestOptions(), std::move(store));
    ASSERT_TRUE(scratch.CreateDataset("scratch").ok());
    ASSERT_TRUE(scratch.IngestBatch("scratch", Range(0, 17), 1).ok());
    const PartitionSample other = scratch.GetSample("scratch", 0).value();
    ASSERT_TRUE(
        scratch.store_for_testing()->Put({"events", victim}, other).ok());
    ASSERT_TRUE(scratch.store_for_testing()->Delete({"scratch", 0}).ok());
  }

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().dropped_partitions.size(), 1u);
  EXPECT_EQ(restored.value().dropped_partitions[0].partition, victim);
  // The impostor's bytes were deleted too: catalog and store agree.
  EXPECT_TRUE(restored.value()
                  .warehouse->store_for_testing()
                  ->Get({"events", victim})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(restored.value().warehouse->MergedSampleAll("events").ok());
}

// A second recovery pass over a file whose ".quarantine" name is already
// taken (the same partition went bad twice across restarts) must preserve
// BOTH pieces of evidence, not overwrite the first.
TEST_F(RecoveryTest, RepeatedQuarantineNeverOverwritesEvidence) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionId victim =
      warehouse->ListPartitions("events").value().front().id;
  warehouse.reset();
  const std::string path =
      dir_ + "/events." + std::to_string(victim) + ".sample";

  const auto corrupt_and_recover = [&](const std::string& bytes) {
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f << bytes;
    }
    std::unique_ptr<FileSampleStore> store = OpenStore();
    auto report = store->Recover();
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.value().quarantined.size(), 1u);
  };

  corrupt_and_recover("first corruption");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  corrupt_and_recover("second corruption");
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine.1"));

  // QuarantineDestination keeps climbing past every claimed suffix.
  EXPECT_EQ(QuarantineDestination(path), path + ".quarantine.2");
}

TEST_F(RecoveryTest, CleanStoreRecoversToIdenticalWarehouse) {
  std::unique_ptr<Warehouse> warehouse = BuildPopulated();
  const PartitionSample before =
      warehouse->MergedSampleAll("events").value();
  warehouse.reset();

  auto restored = Warehouse::RestoreWithRecovery(TestOptions(), OpenStore(),
                                                 manifest_);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value().report.quarantined.empty());
  EXPECT_TRUE(restored.value().report.removed_temps.empty());
  EXPECT_TRUE(restored.value().report.missing_partitions.empty());
  EXPECT_TRUE(restored.value().dropped_partitions.empty());
  EXPECT_EQ(restored.value().report.scanned, 4u);
  EXPECT_EQ(
      restored.value().warehouse->ListPartitions("events").value().size(),
      4u);
}

}  // namespace
}  // namespace sampwh
