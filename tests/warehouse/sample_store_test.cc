#include "src/warehouse/sample_store.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

PartitionSample TestSample(uint64_t parent = 100) {
  return PartitionSample::MakeReservoir(MakeHistogram({{1, 2}, {5, 3}}),
                                        parent, 4096);
}

template <typename T>
class SampleStoreTest : public ::testing::Test {
 public:
  void SetUp() override {
    if constexpr (std::is_same_v<T, FileSampleStore>) {
      dir_ = (std::filesystem::temp_directory_path() /
              ("sampwh_store_test_" +
               std::to_string(::testing::UnitTest::GetInstance()
                                  ->random_seed())))
                 .string();
      std::filesystem::remove_all(dir_);
      auto opened = FileSampleStore::Open(dir_);
      ASSERT_TRUE(opened.ok());
      store_ = std::move(opened).value();
    } else {
      store_ = std::make_unique<InMemorySampleStore>();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<SampleStore> store_;
  std::string dir_;
};

using StoreTypes = ::testing::Types<InMemorySampleStore, FileSampleStore>;
TYPED_TEST_SUITE(SampleStoreTest, StoreTypes);

TYPED_TEST(SampleStoreTest, PutGetRoundTrip) {
  const PartitionSample s = TestSample();
  ASSERT_TRUE(this->store_->Put({"ds", 0}, s).ok());
  const auto loaded = this->store_->Get({"ds", 0});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().parent_size(), 100u);
  EXPECT_TRUE(loaded.value().histogram() == s.histogram());
}

TYPED_TEST(SampleStoreTest, GetMissingIsNotFound) {
  EXPECT_TRUE(this->store_->Get({"ds", 99}).status().IsNotFound());
}

TYPED_TEST(SampleStoreTest, PutReplacesExisting) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(100)).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(555)).ok());
  EXPECT_EQ(this->store_->Get({"ds", 0}).value().parent_size(), 555u);
}

TYPED_TEST(SampleStoreTest, DeleteRemoves) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  EXPECT_TRUE(this->store_->Delete({"ds", 0}).ok());
  EXPECT_TRUE(this->store_->Get({"ds", 0}).status().IsNotFound());
  EXPECT_TRUE(this->store_->Delete({"ds", 0}).IsNotFound());
}

TYPED_TEST(SampleStoreTest, ListIsPerDatasetAndSorted) {
  ASSERT_TRUE(this->store_->Put({"ds", 5}, TestSample()).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 1}, TestSample()).ok());
  ASSERT_TRUE(this->store_->Put({"other", 3}, TestSample()).ok());
  const auto ids = this->store_->List("ds");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value(), (std::vector<PartitionId>{1, 5}));
}

TYPED_TEST(SampleStoreTest, RejectsInvalidSamples) {
  const PartitionSample bogus = PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 1}}), 99, 4096);  // claims parent 99, holds 1
  EXPECT_FALSE(this->store_->Put({"ds", 0}, bogus).ok());
}

TEST(InMemorySampleStoreTest, TracksStoredBytes) {
  InMemorySampleStore store;
  EXPECT_EQ(store.TotalStoredBytes(), 0u);
  ASSERT_TRUE(store.Put({"ds", 0}, TestSample()).ok());
  const uint64_t one = store.TotalStoredBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(store.Put({"ds", 1}, TestSample()).ok());
  EXPECT_EQ(store.TotalStoredBytes(), 2 * one);
  ASSERT_TRUE(store.Delete({"ds", 0}).ok());
  EXPECT_EQ(store.TotalStoredBytes(), one);
}

TEST(FileSampleStoreTest, SamplesPersistAcrossReopen) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_reopen")
          .string();
  std::filesystem::remove_all(dir);
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put({"ds", 7}, TestSample(123)).ok());
  }
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    const auto loaded = store.value()->Get({"ds", 7});
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().parent_size(), 123u);
    EXPECT_EQ(store.value()->List("ds").value(),
              (std::vector<PartitionId>{7}));
  }
  std::filesystem::remove_all(dir);
}

TEST(FileSampleStoreTest, CorruptFileSurfacesError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_corrupt")
          .string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put({"ds", 0}, TestSample()).ok());
  // Clobber the file.
  ASSERT_TRUE(WriteFileAtomic(dir + "/ds.0.sample", "garbage").ok());
  EXPECT_FALSE(store.value()->Get({"ds", 0}).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sampwh
