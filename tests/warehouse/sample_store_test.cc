#include "src/warehouse/sample_store.h"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "src/util/serialization.h"
#include "src/util/thread_pool.h"

namespace sampwh {
namespace {

CompactHistogram MakeHistogram(
    const std::vector<std::pair<Value, uint64_t>>& entries) {
  CompactHistogram h;
  for (const auto& [v, n] : entries) h.Insert(v, n);
  return h;
}

PartitionSample TestSample(uint64_t parent = 100) {
  return PartitionSample::MakeReservoir(MakeHistogram({{1, 2}, {5, 3}}),
                                        parent, 4096);
}

template <typename T>
class SampleStoreTest : public ::testing::Test {
 public:
  void SetUp() override {
    if constexpr (std::is_same_v<T, FileSampleStore>) {
      // Unique per process: parallel ctest runs each case in its own
      // process, and a shared directory would be remove_all'd from under
      // concurrently running sibling cases.
      dir_ = (std::filesystem::temp_directory_path() /
              ("sampwh_store_test_" + std::to_string(::getpid())))
                 .string();
      std::filesystem::remove_all(dir_);
      auto opened = FileSampleStore::Open(dir_);
      ASSERT_TRUE(opened.ok());
      store_ = std::move(opened).value();
    } else {
      store_ = std::make_unique<InMemorySampleStore>();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<SampleStore> store_;
  std::string dir_;
};

using StoreTypes = ::testing::Types<InMemorySampleStore, FileSampleStore>;
TYPED_TEST_SUITE(SampleStoreTest, StoreTypes);

TYPED_TEST(SampleStoreTest, PutGetRoundTrip) {
  const PartitionSample s = TestSample();
  ASSERT_TRUE(this->store_->Put({"ds", 0}, s).ok());
  const auto loaded = this->store_->Get({"ds", 0});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().parent_size(), 100u);
  EXPECT_TRUE(loaded.value().histogram() == s.histogram());
}

TYPED_TEST(SampleStoreTest, GetMissingIsNotFound) {
  EXPECT_TRUE(this->store_->Get({"ds", 99}).status().IsNotFound());
}

TYPED_TEST(SampleStoreTest, PutReplacesExisting) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(100)).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(555)).ok());
  EXPECT_EQ(this->store_->Get({"ds", 0}).value().parent_size(), 555u);
}

TYPED_TEST(SampleStoreTest, TenantNamespacedKeysNeverCollide) {
  // The warehouse server maps (tenant, dataset) onto "<tenant>.<dataset>";
  // both backends must keep two tenants' same-named datasets fully
  // separate — same partition id, same dataset stem, different prefix.
  ASSERT_TRUE(this->store_->Put({"acme.sales", 0}, TestSample(111)).ok());
  ASSERT_TRUE(this->store_->Put({"beta.sales", 0}, TestSample(222)).ok());
  EXPECT_EQ(this->store_->Get({"acme.sales", 0}).value().parent_size(), 111u);
  EXPECT_EQ(this->store_->Get({"beta.sales", 0}).value().parent_size(), 222u);
  // The bare stem is a third, unrelated dataset.
  EXPECT_TRUE(this->store_->Get({"sales", 0}).status().IsNotFound());

  // Listing and deletion stay inside one tenant's key.
  EXPECT_EQ(this->store_->List("acme.sales").value().size(), 1u);
  ASSERT_TRUE(this->store_->Delete({"acme.sales", 0}).ok());
  EXPECT_TRUE(this->store_->Get({"acme.sales", 0}).status().IsNotFound());
  EXPECT_EQ(this->store_->Get({"beta.sales", 0}).value().parent_size(), 222u);
}

TYPED_TEST(SampleStoreTest, DeleteRemoves) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  EXPECT_TRUE(this->store_->Delete({"ds", 0}).ok());
  EXPECT_TRUE(this->store_->Get({"ds", 0}).status().IsNotFound());
  EXPECT_TRUE(this->store_->Delete({"ds", 0}).IsNotFound());
}

TYPED_TEST(SampleStoreTest, ListIsPerDatasetAndSorted) {
  ASSERT_TRUE(this->store_->Put({"ds", 5}, TestSample()).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 1}, TestSample()).ok());
  ASSERT_TRUE(this->store_->Put({"other", 3}, TestSample()).ok());
  const auto ids = this->store_->List("ds");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value(), (std::vector<PartitionId>{1, 5}));
}

TYPED_TEST(SampleStoreTest, RejectsInvalidSamples) {
  const PartitionSample bogus = PartitionSample::MakeExhaustive(
      MakeHistogram({{1, 1}}), 99, 4096);  // claims parent 99, holds 1
  EXPECT_FALSE(this->store_->Put({"ds", 0}, bogus).ok());
}

TYPED_TEST(SampleStoreTest, GetManyReturnsInKeyOrder) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(100)).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 1}, TestSample(200)).ok());
  ASSERT_TRUE(this->store_->Put({"ds", 2}, TestSample(300)).ok());
  const auto loaded =
      this->store_->GetMany({{"ds", 2}, {"ds", 0}, {"ds", 1}});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[0].parent_size(), 300u);
  EXPECT_EQ(loaded.value()[1].parent_size(), 100u);
  EXPECT_EQ(loaded.value()[2].parent_size(), 200u);
}

TYPED_TEST(SampleStoreTest, GetManyParallelMatchesSerial) {
  constexpr uint64_t kCount = 24;
  std::vector<PartitionKey> keys;
  for (uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(this->store_->Put({"ds", i}, TestSample(100 + i)).ok());
    keys.push_back({"ds", i});
  }
  ThreadPool pool(4);
  const auto parallel = this->store_->GetMany(keys, &pool);
  const auto serial = this->store_->GetMany(keys);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(parallel.value().size(), kCount);
  for (uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(parallel.value()[i].parent_size(), 100 + i);
    EXPECT_TRUE(parallel.value()[i].histogram() ==
                serial.value()[i].histogram());
  }
}

TYPED_TEST(SampleStoreTest, GetManyFailsOnAnyMissingKey) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  EXPECT_TRUE(
      this->store_->GetMany({{"ds", 0}, {"ds", 9}}).status().IsNotFound());
  ThreadPool pool(2);
  EXPECT_TRUE(this->store_->GetMany({{"ds", 0}, {"ds", 9}}, &pool)
                  .status()
                  .IsNotFound());
}

TYPED_TEST(SampleStoreTest, GetManyEmptyIsOk) {
  const auto loaded = this->store_->GetMany({});
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TYPED_TEST(SampleStoreTest, TotalStoredBytesTracksContent) {
  EXPECT_EQ(this->store_->TotalStoredBytes(), 0u);
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  const uint64_t one = this->store_->TotalStoredBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(this->store_->Put({"ds", 1}, TestSample()).ok());
  EXPECT_EQ(this->store_->TotalStoredBytes(), 2 * one);
  ASSERT_TRUE(this->store_->Delete({"ds", 0}).ok());
  EXPECT_EQ(this->store_->TotalStoredBytes(), one);
}

// --- Fault-path conformance ------------------------------------------------
// Both backends must surface the SAME Status category for each failure
// class: NotFound for absent keys (covered above), Corruption for damaged
// payloads, IOError for transient faults that outlive the retry budget.
// Callers (warehouse, recovery, harness) branch on these categories, so a
// backend that reports a different code changes recovery behavior.

TYPED_TEST(SampleStoreTest, InjectedCorruptReadIsCorruption) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  injector->Arm(kFaultSiteGetRead, FaultKind::kCorruptRead);
  EXPECT_TRUE(this->store_->Get({"ds", 0}).status().IsCorruption());
}

TYPED_TEST(SampleStoreTest, TransientReadFaultIsRetriedThenSucceeds) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(321)).ok());
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  SampleStore::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1);
  this->store_->SetRetryPolicy(policy);
  // Two injected faults, three attempts allowed: the last retry lands.
  injector->Arm(kFaultSiteGetRead, FaultKind::kIOError, /*count=*/2);
  const auto loaded = this->store_->Get({"ds", 0});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().parent_size(), 321u);
  EXPECT_EQ(injector->FiredCount(kFaultSiteGetRead), 2u);
}

TYPED_TEST(SampleStoreTest, ExhaustedReadRetriesSurfaceIOError) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  SampleStore::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1);
  this->store_->SetRetryPolicy(policy);
  injector->Arm(kFaultSiteGetRead, FaultKind::kIOError, /*count=*/3);
  EXPECT_TRUE(this->store_->Get({"ds", 0}).status().IsIOError());
  // The fault cleared after three firings; the store heals on the next Get.
  EXPECT_TRUE(this->store_->Get({"ds", 0}).ok());
}

TYPED_TEST(SampleStoreTest, TransientWriteFaultIsRetriedThenSucceeds) {
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  SampleStore::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1);
  this->store_->SetRetryPolicy(policy);
  injector->Arm(kFaultSitePutWrite, FaultKind::kIOError, /*count=*/2);
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(99)).ok());
  EXPECT_EQ(this->store_->Get({"ds", 0}).value().parent_size(), 99u);
}

TYPED_TEST(SampleStoreTest, TornWriteIsIOErrorThenCorruptionOnRead) {
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  injector->Arm(kFaultSitePutWrite, FaultKind::kTornWrite);
  // The tear is a simulated crash, not a transient fault: no retry, the
  // damaged bytes stay persisted.
  EXPECT_TRUE(this->store_->Put({"ds", 0}, TestSample()).IsIOError());
  EXPECT_TRUE(this->store_->Get({"ds", 0}).status().IsCorruption());
}

TYPED_TEST(SampleStoreTest, RecoverQuarantinesTornSample) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample(111)).ok());
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  injector->Arm(kFaultSitePutWrite, FaultKind::kTornWrite);
  EXPECT_TRUE(this->store_->Put({"ds", 1}, TestSample(222)).IsIOError());
  this->store_->SetFaultInjector(nullptr);

  const auto report = this->store_->Recover({{"ds", 0}, {"ds", 1}});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().quarantined.size(), 1u);
  ASSERT_EQ(report.value().missing_partitions.size(), 1u);
  EXPECT_EQ(report.value().missing_partitions[0].partition, 1u);
  // Post-recovery state is clean: the survivor reads, the torn key is a
  // plain miss (never Corruption).
  EXPECT_EQ(this->store_->Get({"ds", 0}).value().parent_size(), 111u);
  EXPECT_TRUE(this->store_->Get({"ds", 1}).status().IsNotFound());
}

TYPED_TEST(SampleStoreTest, GetManyInjectedTaskFaultFailsWholeCall) {
  std::vector<PartitionKey> keys;
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(this->store_->Put({"ds", i}, TestSample(100 + i)).ok());
    keys.push_back({"ds", i});
  }
  auto injector = std::make_shared<FaultInjector>(7);
  this->store_->SetFaultInjector(injector);
  // One fault among four fetch tasks: the whole prefetch must fail, never
  // return a partial vector.
  injector->Arm(kFaultSiteGetManyTask, FaultKind::kIOError, /*count=*/1,
                /*skip=*/2);
  EXPECT_TRUE(this->store_->GetMany(keys).status().IsIOError());
  ThreadPool pool(3);
  injector->Arm(kFaultSiteGetManyTask, FaultKind::kIOError, /*count=*/1,
                /*skip=*/2);
  EXPECT_TRUE(this->store_->GetMany(keys, &pool).status().IsIOError());
  // Disarmed, the same call succeeds in full.
  injector->Disarm(kFaultSiteGetManyTask);
  const auto loaded = this->store_->GetMany(keys, &pool);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 4u);
}

TYPED_TEST(SampleStoreTest, RecoverReportsMissingExpectedPartitions) {
  ASSERT_TRUE(this->store_->Put({"ds", 0}, TestSample()).ok());
  const auto report = this->store_->Recover({{"ds", 0}, {"ds", 5}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().quarantined.empty());
  ASSERT_EQ(report.value().missing_partitions.size(), 1u);
  EXPECT_EQ(report.value().missing_partitions[0].partition, 5u);
}

// Backend conformance: both stores must report the identical footprint for
// identical content, so capacity accounting is backend-agnostic.
TEST(SampleStoreConformanceTest, TotalStoredBytesAgreesAcrossBackends) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_parity")
          .string();
  std::filesystem::remove_all(dir);
  auto file_store = FileSampleStore::Open(dir);
  ASSERT_TRUE(file_store.ok());
  InMemorySampleStore mem_store;
  for (uint64_t i = 0; i < 8; ++i) {
    const PartitionSample s = TestSample(50 + 37 * i);
    ASSERT_TRUE(mem_store.Put({"ds", i}, s).ok());
    ASSERT_TRUE(file_store.value()->Put({"ds", i}, s).ok());
  }
  EXPECT_EQ(mem_store.TotalStoredBytes(),
            file_store.value()->TotalStoredBytes());
  ASSERT_TRUE(mem_store.Delete({"ds", 3}).ok());
  ASSERT_TRUE(file_store.value()->Delete({"ds", 3}).ok());
  EXPECT_EQ(mem_store.TotalStoredBytes(),
            file_store.value()->TotalStoredBytes());
  std::filesystem::remove_all(dir);
}

// Regression test for the striped read locking: two Gets of keys on
// different stripes must be in the store simultaneously. A rendezvous hook
// (runs while the key's stripe lock is held) blocks each reader until both
// have arrived — under the old store-wide mutex this deadlocks, with
// striped locks both pass through. The generous timeout only bounds the
// failure mode; the passing path does not sleep.
TEST(FileSampleStoreTest, GetsOfDifferentStripesRunConcurrently) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_stripes")
          .string();
  std::filesystem::remove_all(dir);
  auto opened = FileSampleStore::Open(dir);
  ASSERT_TRUE(opened.ok());
  FileSampleStore& store = *opened.value();

  // Two keys guaranteed to hash to distinct lock stripes.
  const PartitionKey a{"ds", 0};
  PartitionKey b{"ds", 1};
  while (FileSampleStore::StripeIndexForTesting(b) ==
         FileSampleStore::StripeIndexForTesting(a)) {
    ++b.partition;
  }
  ASSERT_TRUE(store.Put(a, TestSample(100)).ok());
  ASSERT_TRUE(store.Put(b, TestSample(200)).ok());

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool timed_out = false;
  store.SetReadHookForTesting([&](const PartitionKey&) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    // Wait (bounded) for the other reader to also be inside Get. Progress
    // here requires both stripe locks to be held at once.
    if (!cv.wait_for(lock, std::chrono::seconds(10),
                     [&] { return arrived >= 2; })) {
      timed_out = true;
    }
  });

  std::thread t1([&] { EXPECT_TRUE(store.Get(a).ok()); });
  std::thread t2([&] { EXPECT_TRUE(store.Get(b).ok()); });
  t1.join();
  t2.join();
  store.SetReadHookForTesting(nullptr);
  EXPECT_FALSE(timed_out)
      << "readers of different stripes did not overlap: striped locking "
         "regressed to a store-wide mutex";
  EXPECT_EQ(arrived, 2);
  std::filesystem::remove_all(dir);
}

TEST(InMemorySampleStoreTest, TracksStoredBytes) {
  InMemorySampleStore store;
  EXPECT_EQ(store.TotalStoredBytes(), 0u);
  ASSERT_TRUE(store.Put({"ds", 0}, TestSample()).ok());
  const uint64_t one = store.TotalStoredBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(store.Put({"ds", 1}, TestSample()).ok());
  EXPECT_EQ(store.TotalStoredBytes(), 2 * one);
  ASSERT_TRUE(store.Delete({"ds", 0}).ok());
  EXPECT_EQ(store.TotalStoredBytes(), one);
}

TEST(FileSampleStoreTest, SamplesPersistAcrossReopen) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_reopen")
          .string();
  std::filesystem::remove_all(dir);
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.value()->Put({"ds", 7}, TestSample(123)).ok());
  }
  {
    auto store = FileSampleStore::Open(dir);
    ASSERT_TRUE(store.ok());
    const auto loaded = store.value()->Get({"ds", 7});
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().parent_size(), 123u);
    EXPECT_EQ(store.value()->List("ds").value(),
              (std::vector<PartitionId>{7}));
  }
  std::filesystem::remove_all(dir);
}

TEST(FileSampleStoreTest, CorruptFileSurfacesError) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_corrupt")
          .string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put({"ds", 0}, TestSample()).ok());
  // Clobber the file.
  ASSERT_TRUE(WriteFileAtomic(dir + "/ds.0.sample", "garbage").ok());
  EXPECT_FALSE(store.value()->Get({"ds", 0}).ok());
  std::filesystem::remove_all(dir);
}

TEST(FileSampleStoreTest, CorruptFileIsQuarantinedNotReServed) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_quarantine")
          .string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put({"ds", 0}, TestSample()).ok());
  // Truncate mid-payload: a realistic torn write. The envelope's size/CRC
  // framing must catch it.
  std::string bytes;
  ASSERT_TRUE(ReadFile(dir + "/ds.0.sample", &bytes).ok());
  ASSERT_TRUE(
      WriteFileAtomic(dir + "/ds.0.sample",
                      std::string_view(bytes).substr(0, bytes.size() / 2))
          .ok());
  EXPECT_TRUE(store.value()->Get({"ds", 0}).status().IsCorruption());
  // The damaged file was moved aside: later reads are a clean miss, the
  // partition no longer lists or counts, and the evidence is preserved.
  EXPECT_TRUE(store.value()->Get({"ds", 0}).status().IsNotFound());
  EXPECT_TRUE(store.value()->List("ds").value().empty());
  EXPECT_EQ(store.value()->TotalStoredBytes(), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/ds.0.sample.quarantine"));
  std::filesystem::remove_all(dir);
}

TEST(FileSampleStoreTest, ReadsBareV1PayloadFiles) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_v1compat")
          .string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  // A pre-envelope store wrote the serialized sample directly; those files
  // must stay readable after the format bump.
  const PartitionSample sample = TestSample(777);
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  ASSERT_TRUE(WriteFileAtomic(dir + "/ds.0.sample", writer.buffer()).ok());
  const auto loaded = store.value()->Get({"ds", 0});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().parent_size(), 777u);
  // A rewrite upgrades the file in place to the enveloped format.
  ASSERT_TRUE(store.value()->Put({"ds", 0}, sample).ok());
  std::string bytes;
  ASSERT_TRUE(ReadFile(dir + "/ds.0.sample", &bytes).ok());
  EXPECT_TRUE(HasSampleEnvelope(bytes));
  std::filesystem::remove_all(dir);
}

TEST(FileSampleStoreTest, RecoverRemovesOrphanTempsAndKeepsSurvivors) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sampwh_store_recover")
          .string();
  std::filesystem::remove_all(dir);
  auto store = FileSampleStore::Open(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.value()->Put({"ds", 0}, TestSample(100)).ok());

  auto injector = std::make_shared<FaultInjector>(11);
  store.value()->SetFaultInjector(injector);
  // A write that crashes before its rename leaves an orphan temp file and
  // an untouched (absent) destination.
  injector->Arm(kFaultSitePutWrite, FaultKind::kCrashBeforeRename);
  EXPECT_TRUE(store.value()->Put({"ds", 1}, TestSample(200)).IsIOError());
  EXPECT_TRUE(store.value()->Get({"ds", 1}).status().IsNotFound());
  store.value()->SetFaultInjector(nullptr);

  const auto report = store.value()->Recover({{"ds", 0}, {"ds", 1}});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().removed_temps.size(), 1u);
  EXPECT_TRUE(report.value().quarantined.empty());
  ASSERT_EQ(report.value().missing_partitions.size(), 1u);
  EXPECT_EQ(report.value().missing_partitions[0].partition, 1u);
  // No stray temp remains; the survivor is intact.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
  EXPECT_EQ(store.value()->Get({"ds", 0}).value().parent_size(), 100u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sampwh
