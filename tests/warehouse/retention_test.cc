#include "src/warehouse/retention.h"

#include <gtest/gtest.h>

#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

PartitionInfo Info(PartitionId id, uint64_t min_ts, uint64_t max_ts) {
  PartitionInfo info;
  info.id = id;
  info.parent_size = 100;
  info.sample_size = 10;
  info.min_timestamp = min_ts;
  info.max_timestamp = max_ts;
  return info;
}

TEST(RetentionTest, DisabledPolicyExpiresNothing) {
  const std::vector<PartitionInfo> parts = {Info(0, 0, 9), Info(1, 10, 19)};
  EXPECT_TRUE(RetentionCandidates(parts, RetentionPolicy{}, 1000).empty());
}

TEST(RetentionTest, TimeWindowExpiresOldPartitions) {
  const std::vector<PartitionInfo> parts = {
      Info(0, 0, 9), Info(1, 10, 19), Info(2, 20, 29)};
  RetentionPolicy policy;
  policy.keep_window_ticks = 15;
  // now = 30: cutoff 15; partitions with max_ts < 15 expire.
  EXPECT_EQ(RetentionCandidates(parts, policy, 30),
            (std::vector<PartitionId>{0}));
  // now = 40: cutoff 25.
  EXPECT_EQ(RetentionCandidates(parts, policy, 40),
            (std::vector<PartitionId>{0, 1}));
}

TEST(RetentionTest, WindowLargerThanNowExpiresNothing) {
  const std::vector<PartitionInfo> parts = {Info(0, 0, 9)};
  RetentionPolicy policy;
  policy.keep_window_ticks = 100;
  EXPECT_TRUE(RetentionCandidates(parts, policy, 50).empty());
}

TEST(RetentionTest, KeepLastPartitionsDropsOldestIds) {
  const std::vector<PartitionInfo> parts = {
      Info(3, 0, 0), Info(1, 0, 0), Info(2, 0, 0), Info(0, 0, 0)};
  RetentionPolicy policy;
  policy.keep_last_partitions = 2;
  EXPECT_EQ(RetentionCandidates(parts, policy, 0),
            (std::vector<PartitionId>{0, 1}));
}

TEST(RetentionTest, CriteriaUnionWithoutDuplicates) {
  const std::vector<PartitionInfo> parts = {
      Info(0, 0, 9), Info(1, 10, 19), Info(2, 20, 29), Info(3, 30, 39)};
  RetentionPolicy policy;
  policy.keep_window_ticks = 15;    // at now = 40 expires ids 0, 1
  policy.keep_last_partitions = 3;  // expires id 0
  EXPECT_EQ(RetentionCandidates(parts, policy, 40),
            (std::vector<PartitionId>{0, 1}));
}

TEST(RetentionTest, WarehouseApplyRetentionRollsOut) {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  Warehouse wh(options);
  ASSERT_TRUE(wh.CreateDataset("days").ok());
  // Roll in 5 daily samples at 24-tick days.
  Pcg64 rng = wh.ForkRng();
  for (int day = 0; day < 5; ++day) {
    SamplerConfig config = options.sampler;
    AnySampler sampler(config, rng.Fork(day));
    for (Value v = 0; v < 100; ++v) sampler.Add(day * 100 + v);
    ASSERT_TRUE(
        wh.RollIn("days", sampler.Finalize(), day * 24, day * 24 + 23)
            .ok());
  }
  RetentionPolicy policy;
  policy.keep_window_ticks = 3 * 24;
  const auto expired = wh.ApplyRetention("days", policy, 5 * 24);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value().size(), 2u);  // days 0 and 1
  const auto remaining = wh.ListPartitions("days");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining.value().size(), 3u);
  // Idempotent: nothing further expires at the same `now`.
  const auto again = wh.ApplyRetention("days", policy, 5 * 24);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().empty());
}

}  // namespace
}  // namespace sampwh
