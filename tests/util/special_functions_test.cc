#include "src/util/special_functions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Gamma(n+1) = n!.
  double factorial = 1.0;
  for (int n = 1; n <= 20; ++n) {
    factorial *= n;
    EXPECT_NEAR(LogGamma(n + 1.0), std::log(factorial), 1e-10) << n;
  }
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi), Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGammaTest, AgreesWithStdLgammaOverWideRange) {
  for (double x : {0.1, 0.7, 1.0, 2.5, 10.0, 123.4, 1e4, 1e8}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x),
                1e-9 * std::max(1.0, std::fabs(std::lgamma(x))))
        << x;
  }
}

TEST(LogFactorialTest, TableAndLgammaAgreeAtBoundary) {
  EXPECT_NEAR(LogFactorial(255), LogGamma(256.0), 1e-9);
  EXPECT_NEAR(LogFactorial(256), LogGamma(257.0), 1e-9);
  EXPECT_EQ(LogFactorial(0), 0.0);
  EXPECT_EQ(LogFactorial(1), 0.0);
}

TEST(LogBinomialCoefficientTest, SmallCases) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 5), std::log(252.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(52, 5), std::log(2598960.0), 1e-9);
  EXPECT_EQ(LogBinomialCoefficient(3, 7),
            -std::numeric_limits<double>::infinity());
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryRelation) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 4.0, x),
                1.0 - RegularizedIncompleteBeta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.05, 0.25, 0.75, 0.95}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, IntegerCaseMatchesBinomialSum) {
  // I_q(k, n-k+1) = P{Bin(n, q) >= k}.
  const int n = 12;
  const int k = 5;
  const double q = 0.37;
  double tail = 0.0;
  for (int j = k; j <= n; ++j) tail += BinomialPmf(n, q, j);
  EXPECT_NEAR(RegularizedIncompleteBeta(k, n - k + 1, q), tail, 1e-12);
}

TEST(IncompleteGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedLowerIncompleteGamma(1.0, x), 1.0 - std::exp(-x),
                1e-12);
  }
}

TEST(IncompleteGammaTest, LowerPlusUpperIsOne) {
  for (double a : {0.5, 2.0, 7.5}) {
    for (double x : {0.2, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedLowerIncompleteGamma(a, x) +
                      RegularizedUpperIncompleteGamma(a, x),
                  1.0, 1e-12);
    }
  }
}

TEST(ErfTest, MatchesStdErf) {
  for (double x : {-3.0, -1.0, -0.1, 0.0, 0.5, 1.0, 2.5}) {
    EXPECT_NEAR(Erf(x), std::erf(x), 1e-10) << x;
    EXPECT_NEAR(Erfc(x), std::erfc(x), 1e-10) << x;
  }
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-10);
}

TEST(NormalQuantileTest, InvertsTheCdf) {
  for (double p : {1e-6, 1e-3, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1 - 1e-6}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << p;
  }
}

TEST(NormalQuantileTest, KnownQuantiles) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.999), 3.090232306167813, 1e-8);
}

TEST(BinomialTailTest, MatchesDirectSummation) {
  const uint64_t n = 40;
  const double q = 0.2;
  for (uint64_t m : {0ULL, 5ULL, 8ULL, 15ULL, 39ULL}) {
    double direct = 0.0;
    for (uint64_t j = m + 1; j <= n; ++j) direct += BinomialPmf(n, q, j);
    EXPECT_NEAR(BinomialTailProbability(n, q, m), direct, 1e-12) << m;
  }
}

TEST(BinomialTailTest, EdgeCases) {
  EXPECT_EQ(BinomialTailProbability(10, 0.5, 10), 0.0);
  EXPECT_EQ(BinomialTailProbability(10, 0.0, 5), 0.0);
  EXPECT_EQ(BinomialTailProbability(10, 1.0, 5), 1.0);
}

TEST(BinomialPmfTest, SumsToOne) {
  const uint64_t n = 25;
  const double q = 0.43;
  double total = 0.0;
  for (uint64_t k = 0; k <= n; ++k) total += BinomialPmf(n, q, k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ChiSquareCdfTest, KnownValues) {
  // chi2(1): P{X <= 3.841} ~ 0.95; chi2(10): P{X <= 18.307} ~ 0.95.
  EXPECT_NEAR(ChiSquareCdf(3.841458820694124, 1.0), 0.95, 1e-9);
  EXPECT_NEAR(ChiSquareCdf(18.307038053275146, 10.0), 0.95, 1e-9);
  EXPECT_EQ(ChiSquareCdf(0.0, 5.0), 0.0);
}

}  // namespace
}  // namespace sampwh
