#include "src/util/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Corruption("bad bytes").ToString(),
            "Corruption: bad bytes");
  // The quota-rejection code the warehouse server's tenant catalog returns.
  EXPECT_EQ(Status::ResourceExhausted("quota full").ToString(),
            "ResourceExhausted: quota full");
}

TEST(StatusTest, ErrorsAreNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(99), 7);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(99), 99);
}

TEST(ResultTest, SupportsMoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, SupportsNonDefaultConstructibleValues) {
  struct NoDefault {
    explicit NoDefault(int x) : x(x) {}
    int x;
  };
  Result<NoDefault> ok(NoDefault(3));
  EXPECT_EQ(ok.value().x, 3);
  Result<NoDefault> bad(Status::Internal("x"));
  EXPECT_FALSE(bad.ok());
}

Status FailingHelper() { return Status::IOError("disk on fire"); }

Status UsesReturnIfError() {
  SAMPWH_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsIOError());
}

Result<int> ProducesInt(bool fail) {
  if (fail) return Status::OutOfRange("too big");
  return 41;
}

Status UsesAssignOrReturn(bool fail, int* out) {
  SAMPWH_ASSIGN_OR_RETURN(int v, ProducesInt(fail));
  SAMPWH_ASSIGN_OR_RETURN(int w, ProducesInt(fail));
  *out = v + w - 41;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnAssignsAndPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 41);
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).IsOutOfRange());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

}  // namespace
}  // namespace sampwh
