#include "src/util/timer.h"

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double a = timer.ElapsedSeconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(CpuTimerTest, BusyWorkConsumesCpuTime) {
  CpuTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 5000000; ++i) sink = sink + static_cast<double>(i) * 1.0001;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace sampwh
