#include "src/util/alias_table.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/distributions.h"

namespace sampwh {
namespace {

TEST(AliasTableTest, SingleColumnAlwaysSampled) {
  AliasTable table({1.0});
  Pcg64 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 2.0});
  Pcg64 rng(2);
  for (int i = 0; i < 10000; ++i) {
    const size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, InvariantHolds) {
  // Vose invariant: r_l + sum_{j: a_j = l} (1 - r_j) = n * P(l).
  const std::vector<double> weights = {0.1, 0.4, 0.15, 0.05, 0.3};
  AliasTable table(weights);
  const size_t n = weights.size();
  for (size_t l = 0; l < n; ++l) {
    double mass = table.probability(l);
    for (size_t j = 0; j < n; ++j) {
      if (j != l && table.alias(j) == l) mass += 1.0 - table.probability(j);
      if (j == l && table.alias(j) == l) {
        // self-alias contributes its own leftover
        mass += 1.0 - table.probability(j);
      }
    }
    EXPECT_NEAR(mass, n * weights[l], 1e-9) << l;
  }
}

TEST(AliasTableTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {5.0, 1.0, 3.0, 1.0};
  AliasTable table(weights);
  Pcg64 rng(3);
  const int trials = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < trials; ++i) ++counts[table.Sample(rng)];
  const double total = 10.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = trials * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected)) << i;
  }
}

TEST(AliasTableTest, MatchesHypergeometricPmf) {
  // The paper's use case: alias table over a hypergeometric pmf vector.
  HypergeometricDistribution d(20, 15, 10);
  AliasTable table(d.PmfVector());
  Pcg64 rng(4);
  const int trials = 100000;
  std::vector<int> counts(table.size(), 0);
  for (int i = 0; i < trials; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < table.size(); ++i) {
    const double expected =
        trials * d.Pmf(d.support_min() + i);
    if (expected < 5.0) continue;
    EXPECT_NEAR(counts[i], expected, 6.0 * std::sqrt(expected)) << i;
  }
}

TEST(AliasTableTest, UniformWeights) {
  AliasTable table(std::vector<double>(8, 1.0));
  Pcg64 rng(5);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 8.0, 5.0 * std::sqrt(trials / 8.0));
}

}  // namespace
}  // namespace sampwh
