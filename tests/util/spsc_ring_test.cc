// Property tests for the lock-free SPSC ring: capacity rounding, full/empty
// boundary behavior, FIFO ordering across wraparound, move semantics, and
// ordered delivery under a real concurrent producer/consumer pair.

#include "src/util/spsc_ring.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRingTest, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.Empty());
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));

  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v)) << "push " << i;
  }
  EXPECT_EQ(ring.SizeApprox(), 4u);
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // rejected pushes leave the item untouched

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, FifoOrderAcrossManyWraparounds) {
  SpscRing<uint64_t> ring(8);
  uint64_t pushed = 0;
  uint64_t popped = 0;
  // Alternate bursts so head/tail wrap the 8-slot buffer many times and the
  // ring passes through every fill level.
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % 8;
    for (int i = 0; i < burst; ++i) {
      uint64_t v = pushed;
      if (!ring.TryPush(v)) break;
      ++pushed;
    }
    uint64_t out = 0;
    const int drain = round % 2 == 0 ? burst : burst / 2;
    for (int i = 0; i < drain && ring.TryPop(&out); ++i) {
      ASSERT_EQ(out, popped);
      ++popped;
    }
  }
  uint64_t out = 0;
  while (ring.TryPop(&out)) {
    ASSERT_EQ(out, popped);
    ++popped;
  }
  EXPECT_EQ(popped, pushed);
  EXPECT_GT(pushed, 1000u);  // wrapped the 8-slot buffer many times over
}

TEST(SpscRingTest, MovesElementsThrough) {
  SpscRing<std::unique_ptr<int>> ring(2);
  auto item = std::make_unique<int>(7);
  ASSERT_TRUE(ring.TryPush(item));
  EXPECT_EQ(item, nullptr);  // moved out on success
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRingTest, OrderedDeliveryUnderConcurrentConsumer) {
  // A tiny ring maximizes full/empty contention: the producer must spin on
  // a full ring and the consumer on an empty one, crossing the cached-index
  // refresh paths constantly. The consumer asserts strict FIFO order.
  constexpr uint64_t kItems = 200000;
  SpscRing<uint64_t> ring(4);
  std::thread consumer([&ring] {
    uint64_t expected = 0;
    uint64_t out = 0;
    while (expected < kItems) {
      if (ring.TryPop(&out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 0; i < kItems;) {
    uint64_t v = i;
    if (ring.TryPush(v)) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_TRUE(ring.Empty());
}

}  // namespace
}  // namespace sampwh
