// The striped router's contract: pure-function stability, range safety,
// and enough balance that shard-per-core ingest scales.

#include "src/util/shard_router.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(ShardRouterTest, PureFunctionOfDatasetAndShardCount) {
  const ShardRouter a("events", 8);
  const ShardRouter b("events", 8);
  const ShardRouter other("clicks", 8);
  bool any_differs = false;
  for (uint64_t stripe = 0; stripe < 512; ++stripe) {
    EXPECT_EQ(a.ShardFor(stripe), b.ShardFor(stripe));
    EXPECT_LT(a.ShardFor(stripe), 8u);
    any_differs |= a.ShardFor(stripe) != other.ShardFor(stripe);
  }
  // Different datasets route differently somewhere (they hash apart).
  EXPECT_TRUE(any_differs);
}

TEST(ShardRouterTest, ZeroShardsClampsToOne) {
  const ShardRouter router("d", 0);
  EXPECT_EQ(router.num_shards(), 1u);
  EXPECT_EQ(router.ShardFor(123), 0u);
}

TEST(ShardRouterTest, StripesSpreadAcrossShards) {
  // 256 stripes on 8 shards: expected load 32 per shard. The SplitMix64
  // finalizer should keep the max load well under 2x expected — the slack
  // the scaling bench's speedup budget relies on.
  const ShardRouter router("events", 8);
  std::vector<uint64_t> load(8, 0);
  for (uint64_t stripe = 0; stripe < 256; ++stripe) {
    ++load[router.ShardFor(stripe)];
  }
  uint64_t max_load = 0;
  uint64_t total = 0;
  for (const uint64_t l : load) {
    max_load = std::max(max_load, l);
    total += l;
  }
  EXPECT_EQ(total, 256u);
  EXPECT_LT(max_load, 64u);
}

}  // namespace
}  // namespace sampwh
