#include "src/util/fenwick_tree.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace sampwh {
namespace {

TEST(FenwickTreeTest, EmptyTreeHasZeroTotal) {
  FenwickTree tree(10);
  EXPECT_EQ(tree.Total(), 0u);
  EXPECT_EQ(tree.PrefixSum(9), 0u);
}

TEST(FenwickTreeTest, VectorConstructionMatchesAdds) {
  const std::vector<uint64_t> weights = {3, 0, 7, 1, 0, 4, 9, 2};
  FenwickTree from_vector(weights);
  FenwickTree from_adds(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    from_adds.Add(i, static_cast<int64_t>(weights[i]));
  }
  EXPECT_EQ(from_vector.Total(), from_adds.Total());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(from_vector.PrefixSum(i), from_adds.PrefixSum(i)) << i;
    EXPECT_EQ(from_vector.Get(i), weights[i]) << i;
  }
}

TEST(FenwickTreeTest, PrefixSumsMatchNaive) {
  const std::vector<uint64_t> weights = {5, 2, 0, 8, 1, 1, 0, 0, 3, 6};
  FenwickTree tree(weights);
  uint64_t running = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    running += weights[i];
    EXPECT_EQ(tree.PrefixSum(i), running) << i;
  }
  EXPECT_EQ(tree.Total(), running);
}

TEST(FenwickTreeTest, NegativeDeltasWork) {
  FenwickTree tree(std::vector<uint64_t>{4, 4, 4});
  tree.Add(1, -3);
  EXPECT_EQ(tree.Get(1), 1u);
  EXPECT_EQ(tree.Total(), 9u);
  EXPECT_EQ(tree.PrefixSum(2), 9u);
}

TEST(FenwickTreeTest, FindByPrefixSumSelectsCorrectSlot) {
  // Weights 2, 0, 3, 1: targets 1-2 -> slot 0, 3-5 -> slot 2, 6 -> slot 3.
  FenwickTree tree(std::vector<uint64_t>{2, 0, 3, 1});
  EXPECT_EQ(tree.FindByPrefixSum(1), 0u);
  EXPECT_EQ(tree.FindByPrefixSum(2), 0u);
  EXPECT_EQ(tree.FindByPrefixSum(3), 2u);
  EXPECT_EQ(tree.FindByPrefixSum(5), 2u);
  EXPECT_EQ(tree.FindByPrefixSum(6), 3u);
}

TEST(FenwickTreeTest, FindByPrefixSumNeverReturnsZeroWeightSlot) {
  FenwickTree tree(std::vector<uint64_t>{0, 5, 0, 0, 7, 0});
  for (uint64_t target = 1; target <= 12; ++target) {
    const size_t slot = tree.FindByPrefixSum(target);
    EXPECT_TRUE(slot == 1 || slot == 4) << target;
  }
}

TEST(FenwickTreeTest, RandomizedAgainstNaiveModel) {
  Pcg64 rng(42);
  const size_t n = 64;
  std::vector<uint64_t> model(n, 0);
  FenwickTree tree(n);
  for (int step = 0; step < 5000; ++step) {
    const size_t i = static_cast<size_t>(rng.UniformInt(n));
    if (rng.Bernoulli(0.7) || model[i] == 0) {
      const int64_t delta = static_cast<int64_t>(rng.UniformInt(5)) + 1;
      model[i] += static_cast<uint64_t>(delta);
      tree.Add(i, delta);
    } else {
      model[i] -= 1;
      tree.Add(i, -1);
    }
    if (step % 97 == 0) {
      uint64_t running = 0;
      for (size_t j = 0; j < n; ++j) {
        running += model[j];
        ASSERT_EQ(tree.PrefixSum(j), running) << step << " " << j;
      }
    }
  }
  // Exhaustive FindByPrefixSum validation against the final model.
  uint64_t running = 0;
  for (size_t j = 0; j < n; ++j) {
    for (uint64_t t = running + 1; t <= running + model[j]; ++t) {
      ASSERT_EQ(tree.FindByPrefixSum(t), j);
    }
    running += model[j];
  }
}

TEST(FenwickTreeTest, WeightedSelectionIsProportional) {
  const std::vector<uint64_t> weights = {1, 9, 0, 10};
  FenwickTree tree(weights);
  Pcg64 rng(7);
  std::vector<int> counts(weights.size(), 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t target = rng.UniformInt(tree.Total()) + 1;
    ++counts[tree.FindByPrefixSum(target)];
  }
  EXPECT_NEAR(counts[0], trials * 0.05, 400);
  EXPECT_NEAR(counts[1], trials * 0.45, 900);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], trials * 0.50, 900);
}

}  // namespace
}  // namespace sampwh
