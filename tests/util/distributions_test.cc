#include "src/util/distributions.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/special_functions.h"

namespace sampwh {
namespace {

TEST(BinomialSamplerTest, EdgeCases) {
  Pcg64 rng(1);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(SampleBinomial(rng, 100, 1.0), 100u);
}

TEST(BinomialSamplerTest, AlwaysWithinSupport) {
  Pcg64 rng(2);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(SampleBinomial(rng, 50, 0.3), 50u);
    EXPECT_LE(SampleBinomial(rng, 100000, 0.7), 100000u);
  }
}

// Parameterized moment check across the inversion/BTRS boundary.
struct BinomialCase {
  uint64_t n;
  double p;
};

class BinomialMomentsTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Pcg64 rng(1234 + n);
  const int trials = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double x = static_cast<double>(SampleBinomial(rng, n, p));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  const double expected_mean = static_cast<double>(n) * p;
  const double expected_var = static_cast<double>(n) * p * (1.0 - p);
  // 5-sigma tolerance on the sample mean.
  EXPECT_NEAR(mean, expected_mean,
              5.0 * std::sqrt(expected_var / trials) + 1e-9);
  EXPECT_NEAR(var, expected_var, 0.08 * expected_var + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossAlgorithms, BinomialMomentsTest,
    ::testing::Values(BinomialCase{10, 0.5},      // inversion
                      BinomialCase{100, 0.05},    // inversion (np = 5)
                      BinomialCase{60, 0.4},      // inversion (np = 24)
                      BinomialCase{1000, 0.2},    // BTRS
                      BinomialCase{100000, 0.01}, // BTRS
                      BinomialCase{500, 0.9},     // symmetry + BTRS
                      BinomialCase{4096, 0.5}));  // BTRS

TEST(BinomialSamplerTest, ChiSquareAgainstExactPmf) {
  // Distributional check on a small case (inversion path).
  Pcg64 rng(77);
  const uint64_t n = 8;
  const double p = 0.35;
  const int trials = 80000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < trials; ++i) ++counts[SampleBinomial(rng, n, p)];
  double chi2 = 0.0;
  for (uint64_t k = 0; k <= n; ++k) {
    const double expected = trials * BinomialPmf(n, p, k);
    chi2 += (counts[k] - expected) * (counts[k] - expected) / expected;
  }
  // df = 8; P{chi2 > 30} < 2e-4.
  EXPECT_LT(chi2, 30.0);
}

TEST(GeometricSkipTest, ZeroSkipWhenCertain) {
  Pcg64 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleGeometricSkip(rng, 1.0), 0u);
}

TEST(GeometricSkipTest, MeanMatchesGeometricLaw) {
  Pcg64 rng(4);
  const double p = 0.02;
  const int trials = 100000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(SampleGeometricSkip(rng, p));
  }
  const double expected_mean = (1.0 - p) / p;  // failures before success
  EXPECT_NEAR(sum / trials, expected_mean, 0.05 * expected_mean);
}

TEST(GeometricSkipTest, ImpliesCorrectInclusionRate) {
  // A Bernoulli stream sampler driven by skips must include each element
  // with probability p.
  Pcg64 rng(5);
  const double p = 0.1;
  const uint64_t stream_length = 500000;
  uint64_t included = 0;
  uint64_t gap = SampleGeometricSkip(rng, p);
  for (uint64_t i = 0; i < stream_length; ++i) {
    if (gap == 0) {
      ++included;
      gap = SampleGeometricSkip(rng, p);
    } else {
      --gap;
    }
  }
  EXPECT_NEAR(included / static_cast<double>(stream_length), p, 0.005);
}

TEST(HypergeometricTest, SupportBounds) {
  HypergeometricDistribution d(5, 3, 6);
  EXPECT_EQ(d.support_min(), 3u);  // k - n2 = 6 - 3
  EXPECT_EQ(d.support_max(), 5u);  // min(k, n1)
  EXPECT_EQ(d.Pmf(2), 0.0);
  EXPECT_EQ(d.Pmf(6), 0.0);
}

TEST(HypergeometricTest, PmfSumsToOne) {
  for (const auto& [n1, n2, k] :
       std::vector<std::tuple<uint64_t, uint64_t, uint64_t>>{
           {5, 7, 4}, {100, 50, 30}, {3, 3, 6}, {1000, 1, 2}}) {
    HypergeometricDistribution d(n1, n2, k);
    double total = 0.0;
    for (uint64_t l = d.support_min(); l <= d.support_max(); ++l) {
      total += d.Pmf(l);
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << n1 << " " << n2 << " " << k;
  }
}

TEST(HypergeometricTest, PmfVectorMatchesDirectPmf) {
  HypergeometricDistribution d(40, 25, 20);
  const std::vector<double> pmf = d.PmfVector();
  ASSERT_EQ(pmf.size(), d.support_max() - d.support_min() + 1);
  for (uint64_t l = d.support_min(); l <= d.support_max(); ++l) {
    EXPECT_NEAR(pmf[l - d.support_min()], d.Pmf(l), 1e-12) << l;
  }
}

TEST(HypergeometricTest, RecurrenceEq3Holds) {
  // P(l+1) = (k-l)(n1-l) / ((l+1)(n2-k+l+1)) * P(l).
  HypergeometricDistribution d(30, 20, 15);
  for (uint64_t l = d.support_min(); l < d.support_max(); ++l) {
    const double ratio =
        static_cast<double>((15 - l) * (30 - l)) /
        static_cast<double>((l + 1) * (20 - 15 + l + 1));
    EXPECT_NEAR(d.Pmf(l + 1), ratio * d.Pmf(l), 1e-12) << l;
  }
}

TEST(HypergeometricTest, DegenerateCases) {
  Pcg64 rng(2);
  // All from D1.
  HypergeometricDistribution all(5, 0, 3);
  EXPECT_EQ(all.Sample(rng), 3u);
  // Whole population.
  HypergeometricDistribution whole(4, 6, 10);
  EXPECT_EQ(whole.Sample(rng), 4u);
}

TEST(HypergeometricTest, SampleMatchesPmfChiSquare) {
  HypergeometricDistribution d(12, 10, 8);
  Pcg64 rng(99);
  const int trials = 60000;
  std::vector<int> counts(d.support_max() + 1, 0);
  for (int i = 0; i < trials; ++i) ++counts[d.Sample(rng)];
  double chi2 = 0.0;
  int cells = 0;
  for (uint64_t l = d.support_min(); l <= d.support_max(); ++l) {
    const double expected = trials * d.Pmf(l);
    if (expected < 5.0) continue;
    chi2 += (counts[l] - expected) * (counts[l] - expected) / expected;
    ++cells;
  }
  // Very generous bound: with <= 9 cells, P{chi2 > 35} is ~1e-5.
  EXPECT_LT(chi2, 35.0) << "cells: " << cells;
}

TEST(HypergeometricTest, SampleMeanMatches) {
  HypergeometricDistribution d(1000, 3000, 400);
  Pcg64 rng(123);
  const int trials = 20000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(d.Sample(rng));
  // E[L] = k * n1 / (n1 + n2) = 100.
  EXPECT_NEAR(sum / trials, 100.0, 1.0);
}

TEST(ZipfGeneratorTest, RangeRespected) {
  ZipfGenerator zipf(100, 1.0);
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfGeneratorTest, FrequenciesFollowPowerLaw) {
  const uint64_t n = 50;
  ZipfGenerator zipf(n, 1.0);
  Pcg64 rng(8);
  const int trials = 200000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(rng)];
  double harmonic = 0.0;
  for (uint64_t v = 1; v <= n; ++v) harmonic += 1.0 / static_cast<double>(v);
  for (uint64_t v : {1ULL, 2ULL, 5ULL, 10ULL}) {
    const double expected =
        trials / (static_cast<double>(v) * harmonic);
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected) + 1.0) << v;
  }
}

TEST(ZipfGeneratorTest, ZeroExponentIsUniform) {
  const uint64_t n = 10;
  ZipfGenerator zipf(n, 0.0);
  Pcg64 rng(9);
  const int trials = 100000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < trials; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t v = 1; v <= n; ++v) {
    EXPECT_NEAR(counts[v], trials / static_cast<double>(n),
                5.0 * std::sqrt(trials / static_cast<double>(n)));
  }
}

}  // namespace
}  // namespace sampwh
