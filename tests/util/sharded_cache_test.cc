#include "src/util/sharded_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

using Cache = ShardedLruCache<std::string, int>;

std::shared_ptr<const int> Val(int v) { return std::make_shared<const int>(v); }

TEST(ShardedCacheTest, LookupMissThenHit) {
  Cache cache(4, 1 << 20);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", Val(1), 10);
  const auto got = cache.Lookup("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 1);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 10u);
}

TEST(ShardedCacheTest, InsertReplacesAndAdjustsBytes) {
  Cache cache(1, 1 << 20);
  cache.Insert("a", Val(1), 100);
  cache.Insert("a", Val(2), 30);
  EXPECT_EQ(*cache.Lookup("a"), 2);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 30u);
}

TEST(ShardedCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  // One shard so the LRU order is global and the budget exact.
  Cache cache(1, 100);
  cache.Insert("a", Val(1), 40);
  cache.Insert("b", Val(2), 40);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // freshen "a"; "b" is now LRU
  cache.Insert("c", Val(3), 40);          // 120 > 100: evict "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_LE(cache.Stats().bytes, 100u);
}

TEST(ShardedCacheTest, OversizedEntryDoesNotStick) {
  Cache cache(1, 50);
  cache.Insert("huge", Val(1), 500);
  EXPECT_EQ(cache.Lookup("huge"), nullptr);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ShardedCacheTest, ValueSurvivesEviction) {
  // shared_ptr semantics: a reader keeps its value alive across eviction.
  Cache cache(1, 100);
  cache.Insert("a", Val(7), 60);
  const auto held = cache.Lookup("a");
  cache.Insert("b", Val(8), 60);  // evicts "a"
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*held, 7);
}

TEST(ShardedCacheTest, EraseAndEraseIf) {
  Cache cache(4, 1 << 20);
  cache.Insert("keep", Val(1), 1);
  cache.Insert("drop1", Val(2), 1);
  cache.Insert("drop2", Val(3), 1);
  EXPECT_TRUE(cache.Erase("drop1"));
  EXPECT_FALSE(cache.Erase("drop1"));
  const size_t erased = cache.EraseIf(
      [](const std::string& key, const int&) { return key[0] == 'd'; });
  EXPECT_EQ(erased, 1u);
  EXPECT_NE(cache.Lookup("keep"), nullptr);
  EXPECT_EQ(cache.Lookup("drop2"), nullptr);
  EXPECT_EQ(cache.Stats().invalidations, 2u);
}

TEST(ShardedCacheTest, ClearKeepsCumulativeCounters) {
  Cache cache(4, 1 << 20);
  cache.Insert("a", Val(1), 5);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);        // survives Clear
  EXPECT_EQ(stats.insertions, 1u);  // survives Clear
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(ShardedCacheTest, ShardCountNormalization) {
  EXPECT_EQ(cache_internal::NormalizeShardCount(0), 1u);
  EXPECT_EQ(cache_internal::NormalizeShardCount(1), 1u);
  EXPECT_EQ(cache_internal::NormalizeShardCount(3), 4u);
  EXPECT_EQ(cache_internal::NormalizeShardCount(16), 16u);
  EXPECT_EQ(cache_internal::NormalizeShardCount(17), 32u);
  EXPECT_EQ(cache_internal::NormalizeShardCount(100000), 256u);
}

TEST(ShardedCacheTest, ConcurrentMixedOperationsStayConsistent) {
  Cache cache(8, 1 << 16);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 64);
        switch (i % 4) {
          case 0:
            cache.Insert(key, Val(i), 16);
            break;
          case 1:
          case 2:
            cache.Lookup(key);
            break;
          default:
            cache.Erase(key);
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kOpsPerThread / 2);
  EXPECT_LE(stats.bytes, uint64_t{1} << 16);
}

}  // namespace
}  // namespace sampwh
