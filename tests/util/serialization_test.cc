#include "src/util/serialization.h"

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SerializationTest, FixedIntsRoundTrip) {
  BinaryWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  BinaryReader r(w.buffer());
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(r.GetFixed32(&a).ok());
  ASSERT_TRUE(r.GetFixed64(&b).ok());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, VarintRoundTripAcrossMagnitudes) {
  BinaryWriter w;
  const uint64_t values[] = {0,     1,        127,        128,
                             16383, 16384,    (1ULL << 32) - 1,
                             1ULL << 32,      UINT64_MAX};
  for (const uint64_t v : values) w.PutVarint64(v);
  BinaryReader r(w.buffer());
  for (const uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(r.GetVarint64(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, VarintEncodingIsCompact) {
  BinaryWriter w;
  w.PutVarint64(5);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint64(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(SerializationTest, SignedVarintRoundTrip) {
  BinaryWriter w;
  const int64_t values[] = {0,  -1, 1, -64, 64, -1000000, 1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (const int64_t v : values) w.PutVarintSigned64(v);
  BinaryReader r(w.buffer());
  for (const int64_t v : values) {
    int64_t decoded;
    ASSERT_TRUE(r.GetVarintSigned64(&decoded).ok());
    EXPECT_EQ(decoded, v) << v;
  }
}

TEST(SerializationTest, ZigZagKeepsSmallMagnitudesShort) {
  BinaryWriter w;
  w.PutVarintSigned64(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SerializationTest, DoubleRoundTrip) {
  BinaryWriter w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 1e-300,
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) w.PutDouble(v);
  BinaryReader r(w.buffer());
  for (const double v : values) {
    double decoded;
    ASSERT_TRUE(r.GetDouble(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(SerializationTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  std::string with_nul("a\0b", 3);
  w.PutString(with_nul);
  BinaryReader r(w.buffer());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, std::string(1000, 'x'));
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, with_nul);
}

TEST(SerializationTest, TruncatedReadsFailCleanly) {
  BinaryWriter w;
  w.PutFixed64(12345);
  const std::string truncated = w.buffer().substr(0, 3);
  BinaryReader r(truncated);
  uint64_t v;
  EXPECT_TRUE(r.GetFixed64(&v).IsOutOfRange());
}

TEST(SerializationTest, TruncatedVarintFails) {
  BinaryWriter w;
  w.PutVarint64(UINT64_MAX);
  const std::string truncated = w.buffer().substr(0, 4);
  BinaryReader r(truncated);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsOutOfRange());
}

TEST(SerializationTest, MalformedVarintIsCorruption) {
  // 11 continuation bytes: longer than any valid varint64.
  const std::string bad(11, '\x80');
  BinaryReader r(bad);
  uint64_t v;
  const Status s = r.GetVarint64(&v);
  EXPECT_TRUE(s.IsCorruption() || s.IsOutOfRange());
}

TEST(SerializationTest, StringWithOversizedLengthFails) {
  BinaryWriter w;
  w.PutVarint64(1000);  // claims 1000 bytes
  w.PutRaw("abc", 3);   // provides 3
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsOutOfRange());
}

TEST(FileIoTest, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sampwh_serial_test.bin")
          .string();
  const std::string payload("some\0binary\xff payload", 20);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  std::string contents;
  ASSERT_TRUE(ReadFile(path, &contents).ok());
  EXPECT_EQ(contents, payload);
  std::filesystem::remove(path);
}

TEST(FileIoTest, ReadMissingFileIsNotFound) {
  std::string contents;
  EXPECT_TRUE(ReadFile("/nonexistent/dir/file.bin", &contents).IsNotFound());
}

TEST(FileIoTest, AtomicWriteReplacesExisting) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sampwh_replace_test.bin")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new contents").ok());
  std::string contents;
  ASSERT_TRUE(ReadFile(path, &contents).ok());
  EXPECT_EQ(contents, "new contents");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sampwh
