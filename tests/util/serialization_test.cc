#include "src/util/serialization.h"

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SerializationTest, FixedIntsRoundTrip) {
  BinaryWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  BinaryReader r(w.buffer());
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(r.GetFixed32(&a).ok());
  ASSERT_TRUE(r.GetFixed64(&b).ok());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, VarintRoundTripAcrossMagnitudes) {
  BinaryWriter w;
  const uint64_t values[] = {0,     1,        127,        128,
                             16383, 16384,    (1ULL << 32) - 1,
                             1ULL << 32,      UINT64_MAX};
  for (const uint64_t v : values) w.PutVarint64(v);
  BinaryReader r(w.buffer());
  for (const uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(r.GetVarint64(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, VarintEncodingIsCompact) {
  BinaryWriter w;
  w.PutVarint64(5);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint64(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(SerializationTest, SignedVarintRoundTrip) {
  BinaryWriter w;
  const int64_t values[] = {0,  -1, 1, -64, 64, -1000000, 1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (const int64_t v : values) w.PutVarintSigned64(v);
  BinaryReader r(w.buffer());
  for (const int64_t v : values) {
    int64_t decoded;
    ASSERT_TRUE(r.GetVarintSigned64(&decoded).ok());
    EXPECT_EQ(decoded, v) << v;
  }
}

TEST(SerializationTest, ZigZagKeepsSmallMagnitudesShort) {
  BinaryWriter w;
  w.PutVarintSigned64(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SerializationTest, DoubleRoundTrip) {
  BinaryWriter w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 1e-300,
                           std::numeric_limits<double>::infinity()};
  for (const double v : values) w.PutDouble(v);
  BinaryReader r(w.buffer());
  for (const double v : values) {
    double decoded;
    ASSERT_TRUE(r.GetDouble(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(SerializationTest, StringRoundTrip) {
  BinaryWriter w;
  w.PutString("");
  w.PutString("hello");
  w.PutString(std::string(1000, 'x'));
  std::string with_nul("a\0b", 3);
  w.PutString(with_nul);
  BinaryReader r(w.buffer());
  std::string s;
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, std::string(1000, 'x'));
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(s, with_nul);
}

TEST(SerializationTest, TruncatedReadsFailCleanly) {
  BinaryWriter w;
  w.PutFixed64(12345);
  const std::string truncated = w.buffer().substr(0, 3);
  BinaryReader r(truncated);
  uint64_t v;
  EXPECT_TRUE(r.GetFixed64(&v).IsOutOfRange());
}

TEST(SerializationTest, TruncatedVarintFails) {
  BinaryWriter w;
  w.PutVarint64(UINT64_MAX);
  const std::string truncated = w.buffer().substr(0, 4);
  BinaryReader r(truncated);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint64(&v).IsOutOfRange());
}

TEST(SerializationTest, MalformedVarintIsCorruption) {
  // 11 continuation bytes: longer than any valid varint64.
  const std::string bad(11, '\x80');
  BinaryReader r(bad);
  uint64_t v;
  const Status s = r.GetVarint64(&v);
  EXPECT_TRUE(s.IsCorruption() || s.IsOutOfRange());
}

TEST(SerializationTest, StringWithOversizedLengthFails) {
  BinaryWriter w;
  w.PutVarint64(1000);  // claims 1000 bytes
  w.PutRaw("abc", 3);   // provides 3
  BinaryReader r(w.buffer());
  std::string s;
  EXPECT_TRUE(r.GetString(&s).IsOutOfRange());
}

TEST(FileIoTest, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sampwh_serial_test.bin")
          .string();
  const std::string payload("some\0binary\xff payload", 20);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  std::string contents;
  ASSERT_TRUE(ReadFile(path, &contents).ok());
  EXPECT_EQ(contents, payload);
  std::filesystem::remove(path);
}

TEST(FileIoTest, ReadMissingFileIsNotFound) {
  std::string contents;
  EXPECT_TRUE(ReadFile("/nonexistent/dir/file.bin", &contents).IsNotFound());
}

TEST(FileIoTest, AtomicWriteReplacesExisting) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sampwh_replace_test.bin")
          .string();
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new contents").ok());
  std::string contents;
  ASSERT_TRUE(ReadFile(path, &contents).ok());
  EXPECT_EQ(contents, "new contents");
  std::filesystem::remove(path);
}

TEST(Crc32Test, MatchesKnownAnswers) {
  // Reference values of the standard reflected CRC-32 (the zlib/IEEE
  // polynomial), so the checksum stays interoperable across releases.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, DetectsAnyChange) {
  const uint32_t base = Crc32("warehouse sample payload");
  EXPECT_NE(base, Crc32("warehouse sample payloae"));
  EXPECT_NE(base, Crc32("warehouse sample payloa"));
  EXPECT_NE(base, Crc32("Warehouse sample payload"));
}

TEST(SampleEnvelopeTest, WrapUnwrapRoundTrips) {
  const std::string payload = "arbitrary sample bytes \x00\x01\xff";
  const std::string file = WrapSampleEnvelope(payload);
  EXPECT_EQ(file.size(), kSampleEnvelopeHeaderBytes + payload.size());
  EXPECT_TRUE(HasSampleEnvelope(file));
  std::string_view unwrapped;
  ASSERT_TRUE(UnwrapSampleEnvelope(file, &unwrapped).ok());
  EXPECT_EQ(unwrapped, payload);
}

TEST(SampleEnvelopeTest, EmptyPayloadRoundTrips) {
  const std::string file = WrapSampleEnvelope("");
  std::string_view unwrapped;
  ASSERT_TRUE(UnwrapSampleEnvelope(file, &unwrapped).ok());
  EXPECT_TRUE(unwrapped.empty());
}

TEST(SampleEnvelopeTest, HeaderLayoutIsStable) {
  // On-disk layout contract: fixed32 magic | fixed32 version |
  // fixed64 payload size | fixed32 payload CRC | payload. A change here is
  // a format break and needs a version bump plus read-compat fallback.
  const std::string file = WrapSampleEnvelope("xy");
  BinaryReader reader(file);
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t size = 0;
  ASSERT_TRUE(reader.GetFixed32(&magic).ok());
  ASSERT_TRUE(reader.GetFixed32(&version).ok());
  ASSERT_TRUE(reader.GetFixed64(&size).ok());
  ASSERT_TRUE(reader.GetFixed32(&crc).ok());
  EXPECT_EQ(magic, kSampleEnvelopeMagic);
  EXPECT_EQ(version, kSampleEnvelopeVersion);
  EXPECT_EQ(size, 2u);
  EXPECT_EQ(crc, Crc32("xy"));
}

TEST(SampleEnvelopeTest, RejectsForeignAndDamagedInputs) {
  std::string_view payload;
  EXPECT_TRUE(UnwrapSampleEnvelope("", &payload).IsCorruption());
  EXPECT_TRUE(UnwrapSampleEnvelope("not an envelope", &payload)
                  .IsCorruption());
  const std::string file = WrapSampleEnvelope("payload");
  // Truncated file (torn write).
  EXPECT_TRUE(UnwrapSampleEnvelope(file.substr(0, file.size() - 1), &payload)
                  .IsCorruption());
  // Future format version.
  std::string future = file;
  future[4] = static_cast<char>(future[4] + 1);
  EXPECT_TRUE(UnwrapSampleEnvelope(future, &payload).IsCorruption());
  // Flipped payload bit.
  std::string flipped = file;
  flipped.back() = static_cast<char>(flipped.back() ^ 0x10);
  EXPECT_TRUE(UnwrapSampleEnvelope(flipped, &payload).IsCorruption());
}

TEST(SampleEnvelopeTest, DetectionDoesNotMisfireOnV1Payloads) {
  // A bare v1 sample payload begins with the sample magic, not the
  // envelope magic, so the read-compat fallback can tell them apart.
  BinaryWriter writer;
  writer.PutFixed32(0x53575331);  // v1 sample magic
  writer.PutFixed32(7);
  EXPECT_FALSE(HasSampleEnvelope(writer.buffer()));
}

}  // namespace
}  // namespace sampwh
