#include "src/util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Pcg64Test, IsDeterministic) {
  Pcg64 a(42);
  Pcg64 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Pcg64Test, StreamsAreIndependent) {
  Pcg64 a(42, 0);
  Pcg64 b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg64Test, NextDoubleInUnitInterval) {
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg64Test, NextDoubleOpenNeverZero) {
  Pcg64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg64Test, NextDoubleMeanIsHalf) {
  Pcg64 rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Pcg64Test, UniformIntRespectsBound) {
  Pcg64 rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Pcg64Test, UniformIntCoversAllResidues) {
  Pcg64 rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg64Test, UniformIntIsUnbiased) {
  // Frequency check over a bound that is not a power of two.
  Pcg64 rng(19);
  const uint64_t bound = 6;
  const int n = 120000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<double>(bound),
                5.0 * std::sqrt(n / static_cast<double>(bound)));
  }
}

TEST(Pcg64Test, UniformRangeInclusive) {
  Pcg64 rng(23);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg64Test, BernoulliEdgeCases) {
  Pcg64 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Pcg64Test, BernoulliMatchesRate) {
  Pcg64 rng(31);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Pcg64Test, ForkProducesIndependentStream) {
  Pcg64 parent(37);
  Pcg64 child = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Pcg64Test, BitBalance) {
  // Each output bit should be set about half the time.
  Pcg64 rng(41);
  const int n = 50000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t x = rng.NextUint64();
    for (int b = 0; b < 64; ++b) {
      ones[b] += static_cast<int>((x >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], n / 2.0, 5.0 * std::sqrt(n / 4.0))
        << "bit " << b;
  }
}

}  // namespace
}  // namespace sampwh
