#include "src/util/thread_pool.h"

#include <atomic>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

namespace sampwh {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksSeeDistinctIndices) {
  ThreadPool pool(3);
  std::vector<int> results(50, 0);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SubmitBatchRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.SubmitBatch(std::move(tasks));
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitBatchEmptyIsNoOp) {
  ThreadPool pool(2);
  pool.SubmitBatch({});
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitBatchInterleavesWithSubmit) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 4; ++wave) {
    pool.Submit([&counter] { counter.fetch_add(1); });
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 25; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.SubmitBatch(std::move(tasks));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 4 * 26);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still let queued tasks finish.
  }
  EXPECT_EQ(counter.load(), 30);
}

}  // namespace
}  // namespace sampwh
