// Statistical gate for the warm query path: merged samples served through
// the memoized merge tree and the sample cache — including after partial
// cache warm-up from overlapping sliding-window queries and a roll-out
// eviction mid-sequence — must pass the same chi-square uniformity test as
// fresh cold merges. Caching may only change WHERE bytes come from, never
// the distribution of the sampling result.
//
// Design: each trial builds a fresh seeded warehouse holding 8 reservoir
// partitions of three values each (sample == parent, so Theorem 1's
// hypergeometric split over parent sizes is a split over the observable
// values and the merged result is EXACTLY uniform — testable, not just
// asymptotically so). It warms overlapping union windows, rolls the two
// oldest partitions out (evicting their cache/memo entries), then queries
// the window {2..7} twice. Under the merge footprint bound of 3 singletons
// (and HR merge's k = min rule) every window query is an SRS of size 3
// from the window's 18 distinct values, so across trials the returned
// subsets must be uniform over C(18, 3) = 816 possibilities. The repeated
// query must additionally be bit-identical to its predecessor on the
// memoized path.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/stats/uniformity.h"
#include "src/util/serialization.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

constexpr double kAlpha = 1e-4;
constexpr uint64_t kNumPartitions = 8;
constexpr uint64_t kValuesPerPartition = 3;
constexpr uint64_t kWindowBegin = 2;  // final query window: ids {2..7}
constexpr uint64_t kTrials = 20000;

std::string Bytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

/// Partition `id` holds the values {3*id, 3*id+1, 3*id+2} as a reservoir
/// sample covering its whole parent. Reservoir phase keeps every pairwise
/// merge on the HR path (exhaustive inputs would route to the Bernoulli
/// merge, whose output size is random); full coverage makes the merged
/// subset distribution exactly uniform over the stored values.
PartitionSample PartitionContents(uint64_t id) {
  CompactHistogram h;
  for (uint64_t i = 0; i < kValuesPerPartition; ++i) {
    h.Insert(kValuesPerPartition * id + i, 1);
  }
  return PartitionSample::MakeReservoir(
      h, kValuesPerPartition, kValuesPerPartition * kSingletonFootprintBytes);
}

/// One trial: a fresh warehouse (seeded from the trial RNG), a warmed and
/// partially evicted cache, then the measured window query. Returns the
/// values of the merged sample. `memoized` selects the warm (memo +
/// sample-cache) path or the fresh-randomness path; both must be uniform.
std::vector<Value> RunTrial(Pcg64& trial_rng, bool memoized) {
  WarehouseOptions options;
  // Merge bound of 3 singletons: every union query is an SRS of size 3.
  options.merge.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
  options.merge.disable_memoization = !memoized;
  options.sample_cache_bytes = 1 << 20;
  options.merge_memo_bytes = 1 << 20;
  options.seed = trial_rng.NextUint64();
  Warehouse warehouse(options);
  EXPECT_TRUE(warehouse.CreateDataset("w").ok());
  for (uint64_t id = 0; id < kNumPartitions; ++id) {
    auto rolled = warehouse.RollIn("w", PartitionContents(id));
    EXPECT_TRUE(rolled.ok());
    EXPECT_EQ(rolled.value(), id);
  }
  // Warm overlapping sliding windows, as a rolling report would: the memo
  // now holds subtrees that the final window partially shares.
  EXPECT_TRUE(warehouse.MergedSample("w", {0, 1, 2, 3, 4, 5}).ok());
  EXPECT_TRUE(warehouse.MergedSample("w", {1, 2, 3, 4, 5, 6}).ok());
  // Slide the window: roll the oldest partitions out, evicting their cache
  // and memo entries while the shared subtrees stay warm.
  EXPECT_TRUE(warehouse.RollOut("w", 0).ok());
  EXPECT_TRUE(warehouse.RollOut("w", 1).ok());

  std::vector<PartitionId> window;
  for (uint64_t id = kWindowBegin; id < kNumPartitions; ++id) {
    window.push_back(id);
  }
  auto first = warehouse.MergedSample("w", window);
  EXPECT_TRUE(first.ok());
  auto warm = warehouse.MergedSample("w", window);
  EXPECT_TRUE(warm.ok());
  if (memoized) {
    // The repeat is served warm and must be bit-identical — uniformity of
    // the warm path must not come from hidden re-randomization.
    EXPECT_EQ(Bytes(first.value()), Bytes(warm.value()));
  }
  return warm.value().histogram().ToBag();
}

void ExpectWindowUniform(bool memoized, uint64_t seed) {
  std::vector<Value> window_values;
  for (uint64_t v = kWindowBegin * kValuesPerPartition;
       v < kNumPartitions * kValuesPerPartition; ++v) {
    window_values.push_back(v);
  }
  Pcg64 rng(seed);
  const UniformityReport report = RunSubsetUniformityExperiment(
      window_values, kTrials,
      [memoized](Pcg64& trial_rng) { return RunTrial(trial_rng, memoized); },
      rng);
  // The merge bound and HR's k = min rule pin the result at size 3: one
  // tested class over C(18, 3) = 816 subsets.
  ASSERT_GE(report.TestedClasses(), 1u);
  const SizeClassResult& pinned = report.by_size.at(3);
  EXPECT_EQ(pinned.trials, kTrials);
  EXPECT_EQ(pinned.num_subsets, 816u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(WarmUniformityProperty, MemoizedWindowQueriesAreUniform) {
  ExpectWindowUniform(/*memoized=*/true, /*seed=*/0x5EEDAA01ULL);
}

TEST(WarmUniformityProperty, FreshMergesRemainUniform) {
  ExpectWindowUniform(/*memoized=*/false, /*seed=*/0x5EEDAA02ULL);
}

}  // namespace
}  // namespace sampwh
