// Value-distribution checks at realistic scale. The subset-enumeration
// harness verifies exact uniformity on tiny populations; these tests
// complement it with Kolmogorov-Smirnov checks that large merged samples
// track the parent's value distribution — catching any bias a sampler or
// merge could introduce along the value axis (e.g. under-representing one
// partition's range).

#include <vector>

#include <gtest/gtest.h>

#include "src/stats/ks_test.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

std::vector<Value> SampleValues(const PartitionSample& s) {
  return s.histogram().ToBag();
}

WarehouseOptions Options(SamplerKind kind) {
  WarehouseOptions options;
  options.sampler.kind = kind;
  options.sampler.footprint_bound_bytes = 16384;  // n_F = 2048
  return options;
}

class MergedDistributionTest
    : public ::testing::TestWithParam<std::tuple<SamplerKind, int>> {};

TEST_P(MergedDistributionTest, MergedSampleTracksUniformParent) {
  const auto [kind, partitions] = GetParam();
  Warehouse wh(Options(kind));
  ASSERT_TRUE(wh.CreateDataset("d").ok());
  // Parent: 200K values uniform on [1, 10^6].
  DataGenerator gen = DataGenerator::Uniform(200000, 1000000, 99);
  ASSERT_TRUE(
      wh.IngestBatch("d", gen.TakeAll(), static_cast<size_t>(partitions))
          .ok());
  const auto merged = wh.MergedSampleAll("d");
  ASSERT_TRUE(merged.ok());
  const std::vector<Value> values = SampleValues(merged.value());
  ASSERT_GT(values.size(), 500u);
  const KsResult ks = KsTestDiscreteUniform(values, 1, 1000000);
  EXPECT_GT(ks.p_value, 1e-4)
      << "D = " << ks.statistic << " n = " << ks.n;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPartitions, MergedDistributionTest,
    ::testing::Combine(::testing::Values(SamplerKind::kHybridBernoulli,
                                         SamplerKind::kHybridReservoir),
                       ::testing::Values(1, 4, 16, 64)));

TEST(MergedDistributionTest, UniquePartitionRangesEquallyRepresented) {
  // Unique data split into contiguous chunks: after merging, the sampled
  // values must be uniform over the WHOLE range — any per-partition bias
  // in the merge would show up as a KS failure here.
  Warehouse wh(Options(SamplerKind::kHybridReservoir));
  ASSERT_TRUE(wh.CreateDataset("u").ok());
  std::vector<Value> values;
  for (Value v = 0; v < 262144; ++v) values.push_back(v);
  ASSERT_TRUE(wh.IngestBatch("u", values, 32).ok());
  const auto merged = wh.MergedSampleAll("u");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().size(), 2048u);
  const KsResult ks =
      KsTestDiscreteUniform(SampleValues(merged.value()), 0, 262143);
  EXPECT_GT(ks.p_value, 1e-4) << "D = " << ks.statistic;
}

TEST(MergedDistributionTest, ZipfShapePreservedThroughSampling) {
  // Zipf data sampled and merged: compare the sampled values against a
  // direct Zipf stream with a two-sample KS test.
  Warehouse wh(Options(SamplerKind::kHybridReservoir));
  ASSERT_TRUE(wh.CreateDataset("z").ok());
  DataGenerator gen =
      DataGenerator::Zipf(200000, kPaperZipfRange, 1.0, 123);
  ASSERT_TRUE(wh.IngestBatch("z", gen.TakeAll(), 8).ok());
  const auto merged = wh.MergedSampleAll("z");
  ASSERT_TRUE(merged.ok());

  std::vector<double> sampled;
  for (const Value v : SampleValues(merged.value())) {
    sampled.push_back(static_cast<double>(v));
  }
  // Zipf partitions stay exhaustive, so the merged sample may be large —
  // cap the reference stream accordingly.
  DataGenerator ref_gen =
      DataGenerator::Zipf(sampled.size(), kPaperZipfRange, 1.0, 456);
  std::vector<double> reference;
  for (const Value v : ref_gen.TakeAll()) {
    reference.push_back(static_cast<double>(v));
  }
  const KsResult ks = KsTestTwoSample(sampled, reference);
  EXPECT_GT(ks.p_value, 1e-4) << "D = " << ks.statistic;
}

}  // namespace
}  // namespace sampwh
