// Property tests of the query-path caching contract: caches must be
// semantically invisible. With memoization enabled, every query result is a
// pure function of (warehouse seed, dataset content, partition-id set,
// merge options) — so cold, warm and post-invalidation runs are
// byte-for-byte identical, across backends and across independently built
// warehouses. With memoization disabled (legacy fresh-randomness path), the
// sample cache must not perturb the RNG sequence: a cached and an uncached
// warehouse driven through the identical call sequence return identical
// per-call results.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/serialization.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

std::vector<Value> Range(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

std::string Bytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

WarehouseOptions MemoOptions(uint64_t seed) {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 512;
  options.sample_cache_bytes = 8ull << 20;
  options.merge_memo_bytes = 8ull << 20;
  options.seed = seed;
  return options;
}

/// A warehouse over either backend, with the file backend rooted in a
/// per-instance temp directory that dies with the fixture.
class BackedWarehouse {
 public:
  BackedWarehouse(const WarehouseOptions& options, bool file_backend,
                  const std::string& tag) {
    if (file_backend) {
      dir_ = (std::filesystem::temp_directory_path() /
              ("sampwh_qcache_prop_" + tag))
                 .string();
      std::filesystem::remove_all(dir_);
      auto store = FileSampleStore::Open(dir_);
      EXPECT_TRUE(store.ok());
      warehouse_ =
          std::make_unique<Warehouse>(options, std::move(store).value());
    } else {
      warehouse_ = std::make_unique<Warehouse>(options);
    }
  }

  ~BackedWarehouse() {
    warehouse_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  Warehouse& operator*() { return *warehouse_; }
  Warehouse* operator->() { return warehouse_.get(); }

 private:
  std::unique_ptr<Warehouse> warehouse_;
  std::string dir_;
};

constexpr uint64_t kPartitions = 12;

void Ingest(Warehouse& wh) {
  ASSERT_TRUE(wh.CreateDataset("ds").ok());
  ASSERT_TRUE(wh.IngestBatch("ds", Range(0, 24000), kPartitions).ok());
}

TEST(QueryCachePropertyTest, MemoizedQueriesAreBitIdenticalColdWarmAndReCold) {
  for (const bool file_backend : {false, true}) {
    for (const uint64_t seed : {7u, 20060403u}) {
      BackedWarehouse wh(MemoOptions(seed), file_backend,
                         "identity_" + std::to_string(seed));
      Ingest(*wh);
      const std::vector<PartitionId> subset = {2, 3, 5, 8};

      const auto cold_all = wh->MergedSampleAll("ds");
      const auto cold_sub = wh->MergedSample("ds", subset);
      ASSERT_TRUE(cold_all.ok());
      ASSERT_TRUE(cold_sub.ok());

      // Warm: served from the memo.
      const auto warm_all = wh->MergedSampleAll("ds");
      const auto warm_sub = wh->MergedSample("ds", subset);
      ASSERT_TRUE(warm_all.ok());
      ASSERT_TRUE(warm_sub.ok());
      EXPECT_EQ(Bytes(warm_all.value()), Bytes(cold_all.value()));
      EXPECT_EQ(Bytes(warm_sub.value()), Bytes(cold_sub.value()));

      // Re-cold: recomputed from the store after dropping every cache.
      wh->InvalidateCaches();
      const auto recold_all = wh->MergedSampleAll("ds");
      const auto recold_sub = wh->MergedSample("ds", subset);
      ASSERT_TRUE(recold_all.ok());
      ASSERT_TRUE(recold_sub.ok());
      EXPECT_EQ(Bytes(recold_all.value()), Bytes(cold_all.value()))
          << "backend=" << (file_backend ? "file" : "mem") << " seed=" << seed;
      EXPECT_EQ(Bytes(recold_sub.value()), Bytes(cold_sub.value()));

      // Permuted id list: canonicalization makes it the same query.
      const auto permuted = wh->MergedSample("ds", {8, 2, 5, 3});
      ASSERT_TRUE(permuted.ok());
      EXPECT_EQ(Bytes(permuted.value()), Bytes(cold_sub.value()));
    }
  }
}

TEST(QueryCachePropertyTest, MemoizedQueriesAgreeAcrossReplaysAndBackends) {
  // Two independently constructed warehouses — different backend, no
  // shared cache state — produce the same bytes for the same query,
  // because node RNG streams derive from query identity alone.
  BackedWarehouse mem(MemoOptions(42), false, "replay_mem");
  BackedWarehouse file(MemoOptions(42), true, "replay_file");
  Ingest(*mem);
  Ingest(*file);
  const auto from_mem = mem->MergedSampleAll("ds");
  const auto from_file = file->MergedSampleAll("ds");
  ASSERT_TRUE(from_mem.ok());
  ASSERT_TRUE(from_file.ok());
  EXPECT_EQ(Bytes(from_mem.value()), Bytes(from_file.value()));

  // ...and warm-vs-fresh: a warehouse that has served the query before
  // agrees with one that never has.
  const auto warm = mem->MergedSample("ds", {0, 1, 2});
  const auto fresh = file->MergedSample("ds", {0, 1, 2});
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(Bytes(warm.value()), Bytes(fresh.value()));
}

TEST(QueryCachePropertyTest, SampleCacheIsInvisibleOnTheLegacyMergePath) {
  // Memoization off: queries draw fresh randomness from the warehouse RNG.
  // The sample cache must not change what those draws see — two
  // warehouses differing only in sample_cache_bytes, driven through the
  // identical call sequence, match call for call.
  for (const uint64_t seed : {3u, 99u}) {
    WarehouseOptions cached_options = MemoOptions(seed);
    cached_options.merge_memo_bytes = 0;
    WarehouseOptions uncached_options = cached_options;
    uncached_options.sample_cache_bytes = 0;
    BackedWarehouse cached(cached_options, false,
                           "legacy_c_" + std::to_string(seed));
    BackedWarehouse uncached(uncached_options, false,
                             "legacy_u_" + std::to_string(seed));
    Ingest(*cached);
    Ingest(*uncached);
    const std::vector<std::vector<PartitionId>> queries = {
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
        {1, 4, 7},
        {1, 4, 7},  // repeat: both sides advance their RNG identically
        {0, 11},
    };
    for (const auto& query : queries) {
      const auto a = cached->MergedSample("ds", query);
      const auto b = uncached->MergedSample("ds", query);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(Bytes(a.value()), Bytes(b.value())) << "seed=" << seed;
    }
  }
}

TEST(QueryCachePropertyTest, GetSampleIsBitIdenticalThroughTheCache) {
  for (const bool file_backend : {false, true}) {
    BackedWarehouse cached(MemoOptions(5), file_backend, "get_cached");
    WarehouseOptions raw_options = MemoOptions(5);
    raw_options.sample_cache_bytes = 0;
    raw_options.merge_memo_bytes = 0;
    BackedWarehouse raw(raw_options, file_backend, "get_raw");
    Ingest(*cached);
    Ingest(*raw);
    for (PartitionId id = 0; id < kPartitions; ++id) {
      const auto a = cached->GetSample("ds", id);  // warm (write-through)
      const auto b = raw->GetSample("ds", id);     // straight store read
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(Bytes(a.value()), Bytes(b.value()));
    }
    cached->InvalidateCaches();
    for (PartitionId id = 0; id < kPartitions; ++id) {
      const auto a = cached->GetSample("ds", id);  // cold: store + refill
      const auto b = raw->GetSample("ds", id);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(Bytes(a.value()), Bytes(b.value()));
    }
  }
}

}  // namespace
}  // namespace sampwh
