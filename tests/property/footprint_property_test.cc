// §2 requirement 3 (a priori bounded footprint), exercised adversarially:
// for every bounded sampler and every stream shape — distinct, heavily
// duplicated, sorted, Zipf-skewed, alternating — the in-memory footprint
// must respect the bound after EVERY arrival, and the finalized sample must
// validate, serialize and deserialize.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/concise_sampler.h"
#include "src/core/counting_sampler.h"
#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/merge.h"
#include "src/core/multi_purge_sampler.h"
#include "src/util/distributions.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

enum class StreamShape {
  kDistinct,
  kFourValues,
  kSortedWithRuns,
  kZipf,
  kAlternating,
};

std::vector<Value> MakeStream(StreamShape shape, uint64_t n, uint64_t seed) {
  std::vector<Value> out;
  out.reserve(n);
  Pcg64 rng(seed);
  switch (shape) {
    case StreamShape::kDistinct:
      for (uint64_t i = 0; i < n; ++i) out.push_back(static_cast<Value>(i));
      break;
    case StreamShape::kFourValues:
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(static_cast<Value>(rng.UniformInt(4)));
      }
      break;
    case StreamShape::kSortedWithRuns:
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(static_cast<Value>(i / 7));
      }
      break;
    case StreamShape::kZipf: {
      ZipfGenerator zipf(500, 1.2);
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(static_cast<Value>(zipf.Sample(rng)));
      }
      break;
    }
    case StreamShape::kAlternating:
      for (uint64_t i = 0; i < n; ++i) {
        // Long duplicate runs interleaved with fresh values.
        out.push_back(i % 3 == 0 ? static_cast<Value>(i)
                                 : static_cast<Value>(-7));
      }
      break;
  }
  return out;
}

class FootprintPropertyTest : public ::testing::TestWithParam<StreamShape> {};

TEST_P(FootprintPropertyTest, HybridBernoulliRespectsBoundAlways) {
  const std::vector<Value> stream = MakeStream(GetParam(), 30000, 1);
  for (const uint64_t f : {128ULL, 1024ULL, 16384ULL}) {
    HybridBernoulliSampler::Options options;
    options.footprint_bound_bytes = f;
    options.expected_population_size = stream.size();
    HybridBernoulliSampler sampler(options, Pcg64(2));
    for (const Value v : stream) {
      sampler.Add(v);
      ASSERT_LE(sampler.footprint_bytes(), f);
    }
    const PartitionSample s = sampler.Finalize();
    ASSERT_TRUE(s.Validate().ok()) << s.Validate().ToString();
    BinaryWriter w;
    s.SerializeTo(&w);
    BinaryReader r(w.buffer());
    ASSERT_TRUE(PartitionSample::DeserializeFrom(&r).ok());
  }
}

TEST_P(FootprintPropertyTest, HybridReservoirRespectsBoundAlways) {
  const std::vector<Value> stream = MakeStream(GetParam(), 30000, 3);
  for (const uint64_t f : {128ULL, 1024ULL, 16384ULL}) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = f;
    HybridReservoirSampler sampler(options, Pcg64(4));
    for (const Value v : stream) {
      sampler.Add(v);
      ASSERT_LE(sampler.footprint_bytes(), f);
    }
    const PartitionSample s = sampler.Finalize();
    ASSERT_TRUE(s.Validate().ok()) << s.Validate().ToString();
  }
}

TEST_P(FootprintPropertyTest, MultiPurgeRespectsBoundAlways) {
  const std::vector<Value> stream = MakeStream(GetParam(), 30000, 5);
  MultiPurgeBernoulliSampler::Options options;
  options.footprint_bound_bytes = 512;
  options.expected_population_size = 1000;  // deliberately wrong: 30x less
  MultiPurgeBernoulliSampler sampler(options, Pcg64(6));
  for (const Value v : stream) {
    sampler.Add(v);
    ASSERT_LE(sampler.footprint_bytes(), 512u);
  }
  EXPECT_TRUE(sampler.Finalize().Validate().ok());
}

TEST_P(FootprintPropertyTest, ConciseAndCountingRespectBound) {
  const std::vector<Value> stream = MakeStream(GetParam(), 30000, 7);
  ConciseSampler::Options concise_options;
  concise_options.footprint_bound_bytes = 256;
  ConciseSampler concise(concise_options, Pcg64(8));
  CountingSampler::Options counting_options;
  counting_options.footprint_bound_bytes = 256;
  CountingSampler counting(counting_options, Pcg64(9));
  for (const Value v : stream) {
    concise.Add(v);
    counting.Add(v);
    ASSERT_LE(concise.footprint_bytes(), 256u);
    ASSERT_LE(counting.footprint_bytes(), 256u);
  }
}

TEST_P(FootprintPropertyTest, MergedSamplesRespectTargetBound) {
  const std::vector<Value> stream = MakeStream(GetParam(), 20000, 10);
  const size_t half = stream.size() / 2;
  for (const bool use_hr : {false, true}) {
    Pcg64 rng(11);
    PartitionSample s1, s2;
    if (use_hr) {
      HybridReservoirSampler::Options options;
      options.footprint_bound_bytes = 1024;
      HybridReservoirSampler a(options, rng.Fork(1));
      for (size_t i = 0; i < half; ++i) a.Add(stream[i]);
      HybridReservoirSampler b(options, rng.Fork(2));
      for (size_t i = half; i < stream.size(); ++i) b.Add(stream[i]);
      s1 = a.Finalize();
      s2 = b.Finalize();
    } else {
      HybridBernoulliSampler::Options options;
      options.footprint_bound_bytes = 1024;
      options.expected_population_size = half;
      HybridBernoulliSampler a(options, rng.Fork(1));
      for (size_t i = 0; i < half; ++i) a.Add(stream[i]);
      HybridBernoulliSampler b(options, rng.Fork(2));
      for (size_t i = half; i < stream.size(); ++i) b.Add(stream[i]);
      s1 = a.Finalize();
      s2 = b.Finalize();
    }
    MergeOptions merge_options;
    merge_options.footprint_bound_bytes = 1024;
    const auto merged = use_hr ? HRMerge(s1, s2, merge_options, rng)
                               : HBMerge(s1, s2, merge_options, rng);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_LE(merged.value().footprint_bytes(), 1024u);
    EXPECT_TRUE(merged.value().Validate().ok());
    EXPECT_EQ(merged.value().parent_size(), stream.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, FootprintPropertyTest,
                         ::testing::Values(StreamShape::kDistinct,
                                           StreamShape::kFourValues,
                                           StreamShape::kSortedWithRuns,
                                           StreamShape::kZipf,
                                           StreamShape::kAlternating));

TEST(FootprintEdgeCases, MinimalBoundOfOneValue) {
  // F = 8 bytes: n_F = 1. Both samplers must cope with a single-slot
  // reservoir.
  HybridReservoirSampler::Options hr_options;
  hr_options.footprint_bound_bytes = kSingletonFootprintBytes;
  HybridReservoirSampler hr(hr_options, Pcg64(1));
  for (Value v = 0; v < 1000; ++v) {
    hr.Add(v);
    ASSERT_LE(hr.footprint_bytes(), kSingletonFootprintBytes + 4);
  }
  const PartitionSample s = hr.Finalize();
  EXPECT_EQ(s.size(), 1u);
}

TEST(FootprintEdgeCases, EmptyStreamFinalizes) {
  HybridBernoulliSampler::Options options;
  options.footprint_bound_bytes = 1024;
  options.expected_population_size = 0;
  HybridBernoulliSampler sampler(options, Pcg64(2));
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.parent_size(), 0u);
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(FootprintEdgeCases, SingleElementStream) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 1024;
  HybridReservoirSampler sampler(options, Pcg64(3));
  sampler.Add(42);
  const PartitionSample s = sampler.Finalize();
  EXPECT_EQ(s.phase(), SamplePhase::kExhaustive);
  EXPECT_EQ(s.histogram().CountOf(42), 1u);
}

}  // namespace
}  // namespace sampwh
