// Distributional properties of the merge layer beyond subset uniformity:
// Theorem 1's hypergeometric left-share law, the Bernoulli union laws of
// §3.1/§4.1, and structural invariants of multiway merges over randomized
// partition layouts.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bernoulli_sampler.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/merge.h"
#include "src/stats/chi_square.h"
#include "src/util/distributions.h"

namespace sampwh {
namespace {

PartitionSample HrSample(Value begin, Value end, uint64_t f, uint64_t seed) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = f;
  HybridReservoirSampler sampler(options, Pcg64(seed));
  for (Value v = begin; v < end; ++v) sampler.Add(v);
  return sampler.Finalize();
}

TEST(MergePropertyTest, LeftShareFollowsHypergeometricLaw) {
  // Merge SRS(4) of |D1| = 30 with SRS(4) of |D2| = 50 and chi-square the
  // count L of merged elements drawn from D1 against Eq. (2).
  const uint64_t n1 = 30;
  const uint64_t n2 = 50;
  const uint64_t k = 4;
  const HypergeometricDistribution law(n1, n2, k);
  std::vector<uint64_t> observed(k + 1, 0);
  const int trials = 40000;
  Pcg64 rng(1);
  for (int t = 0; t < trials; ++t) {
    const PartitionSample s1 =
        HrSample(0, static_cast<Value>(n1), 4 * 8, 100 + t);
    const PartitionSample s2 = HrSample(
        static_cast<Value>(n1), static_cast<Value>(n1 + n2), 4 * 8, 5000 + t);
    MergeOptions options;
    options.footprint_bound_bytes = 4 * 8;
    const auto merged = HRMerge(s1, s2, options, rng);
    ASSERT_TRUE(merged.ok());
    uint64_t from_d1 = 0;
    merged.value().histogram().ForEach([&](Value v, uint64_t c) {
      if (v < static_cast<Value>(n1)) from_d1 += c;
    });
    ++observed[from_d1];
  }
  std::vector<double> expected;
  for (uint64_t l = 0; l <= k; ++l) expected.push_back(law.Pmf(l));
  const ChiSquareResult result =
      ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_GT(result.p_value, 1e-4) << "chi2 = " << result.statistic;
}

TEST(MergePropertyTest, UnionOfEqualRateBernoulliIsBernoulli) {
  // §3.1: union of Bern(q) samples of disjoint partitions is Bern(q) of the
  // union — so the union size must be Binomial(N1 + N2, q).
  const double q = 0.2;
  const uint64_t n1 = 300;
  const uint64_t n2 = 500;
  double sum = 0.0;
  double sum_sq = 0.0;
  const int trials = 4000;
  Pcg64 rng(2);
  for (int t = 0; t < trials; ++t) {
    BernoulliSampler a(q, Pcg64(10 + t));
    for (Value v = 0; v < static_cast<Value>(n1); ++v) a.Add(v);
    BernoulliSampler b(q, Pcg64(99000 + t));
    for (Value v = 0; v < static_cast<Value>(n2); ++v) b.Add(v + 1000);
    const PartitionSample s1 = a.Finalize();
    const PartitionSample s2 = b.Finalize();
    const auto merged = UnionBernoulli({&s1, &s2}, rng);
    ASSERT_TRUE(merged.ok());
    const double size = static_cast<double>(merged.value().size());
    sum += size;
    sum_sq += size * size;
  }
  const double mean = sum / trials;
  const double var = sum_sq / trials - mean * mean;
  const double n = static_cast<double>(n1 + n2);
  EXPECT_NEAR(mean, n * q, 5.0 * std::sqrt(n * q * (1 - q) / trials));
  EXPECT_NEAR(var, n * q * (1 - q), 0.15 * n * q * (1 - q));
}

TEST(MergePropertyTest, MergedParentSizesAdditive) {
  Pcg64 layout_rng(3);
  Pcg64 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t num_parts = 2 + layout_rng.UniformInt(6);
    std::vector<PartitionSample> samples;
    uint64_t total = 0;
    Value next = 0;
    for (size_t p = 0; p < num_parts; ++p) {
      const uint64_t size = 50 + layout_rng.UniformInt(3000);
      samples.push_back(HrSample(next, next + static_cast<Value>(size), 256,
                                 1000 + trial * 10 + p));
      next += static_cast<Value>(size);
      total += size;
    }
    std::vector<const PartitionSample*> pointers;
    for (const auto& s : samples) pointers.push_back(&s);
    MergeOptions options;
    options.footprint_bound_bytes = 256;
    for (const auto strategy :
         {MergeStrategy::kLeftFold, MergeStrategy::kBalancedTree}) {
      const auto merged = MergeAll(pointers, options, rng, strategy);
      ASSERT_TRUE(merged.ok());
      EXPECT_EQ(merged.value().parent_size(), total);
      EXPECT_TRUE(merged.value().Validate().ok());
      EXPECT_LE(merged.value().footprint_bytes(), 256u);
    }
  }
}

TEST(MergePropertyTest, MergeOrderInvariantMarginals) {
  // Element-level inclusion probability k/N must hold regardless of fold
  // direction. Merge 4 partitions of very different sizes both left-to-
  // right and right-to-left and compare per-partition representation.
  const std::vector<uint64_t> sizes = {200, 2000, 400, 4000};
  const uint64_t total =
      std::accumulate(sizes.begin(), sizes.end(), uint64_t{0});
  const uint64_t k = 32;  // F = 256
  const int trials = 4000;
  std::vector<double> share_fwd(4, 0.0);
  std::vector<double> share_rev(4, 0.0);
  Pcg64 rng(5);
  for (int t = 0; t < trials; ++t) {
    std::vector<PartitionSample> samples;
    Value next = 0;
    std::vector<Value> boundaries = {0};
    for (size_t p = 0; p < sizes.size(); ++p) {
      samples.push_back(
          HrSample(next, next + static_cast<Value>(sizes[p]), 256,
                   7000 + t * 10 + p));
      next += static_cast<Value>(sizes[p]);
      boundaries.push_back(next);
    }
    std::vector<const PartitionSample*> fwd;
    for (const auto& s : samples) fwd.push_back(&s);
    std::vector<const PartitionSample*> rev(fwd.rbegin(), fwd.rend());
    MergeOptions options;
    options.footprint_bound_bytes = 256;
    const auto m_fwd = MergeAll(fwd, options, rng);
    const auto m_rev = MergeAll(rev, options, rng);
    ASSERT_TRUE(m_fwd.ok() && m_rev.ok());
    auto tally = [&](const PartitionSample& s, std::vector<double>* share) {
      s.histogram().ForEach([&](Value v, uint64_t c) {
        for (size_t p = 0; p < sizes.size(); ++p) {
          if (v >= boundaries[p] && v < boundaries[p + 1]) {
            (*share)[p] += static_cast<double>(c);
          }
        }
      });
    };
    tally(m_fwd.value(), &share_fwd);
    tally(m_rev.value(), &share_rev);
  }
  for (size_t p = 0; p < sizes.size(); ++p) {
    const double expected = trials * static_cast<double>(k) *
                            static_cast<double>(sizes[p]) /
                            static_cast<double>(total);
    EXPECT_NEAR(share_fwd[p], expected, 6.0 * std::sqrt(expected)) << p;
    EXPECT_NEAR(share_rev[p], expected, 6.0 * std::sqrt(expected)) << p;
  }
}

TEST(MergePropertyTest, RepeatedPairwiseMergeKeepsSizeStable) {
  // The paper's Fig. 16 observation: HR sample sizes stay pinned at n_F
  // through arbitrarily long merge chains.
  MergeOptions options;
  options.footprint_bound_bytes = 256;  // n_F = 32
  Pcg64 rng(6);
  PartitionSample acc = HrSample(0, 5000, 256, 1);
  Value next = 5000;
  for (int step = 0; step < 16; ++step) {
    const PartitionSample s =
        HrSample(next, next + 5000, 256, 100 + step);
    next += 5000;
    auto merged = HRMerge(acc, s, options, rng);
    ASSERT_TRUE(merged.ok());
    acc = std::move(merged).value();
    EXPECT_EQ(acc.size(), 32u) << step;
  }
  EXPECT_EQ(acc.parent_size(), 17u * 5000u);
}

}  // namespace
}  // namespace sampwh
