// Statistical and exact equivalence of the skip-based AddBatch fast paths
// with the element-wise Add loops. Two layers of evidence:
//
//  1. Exact: every batch path consumes the RNG in the same order as the
//     scalar path, so under one seed Add and AddBatch must produce
//     bit-identical samples — for every algorithm, at every chunking.
//  2. Statistical: per-value inclusion frequencies of batch-built samples
//     are chi-square-consistent with the uniform inclusion law each
//     algorithm guarantees (each value of a distinct-valued population is
//     included equally often).
//
// Seeds are fixed; thresholds are chosen so the suite is deterministic.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/any_sampler.h"
#include "src/core/bernoulli_sampler.h"
#include "src/stats/chi_square.h"
#include "src/workload/generators.h"

namespace sampwh {
namespace {

constexpr double kAlpha = 1e-4;

std::vector<Value> Population(uint64_t n) {
  return DataGenerator::Unique(n).TakeAll();
}

PartitionSample RunScalar(const SamplerConfig& config, uint64_t seed,
                          const std::vector<Value>& values) {
  AnySampler sampler(config, Pcg64(seed));
  for (const Value v : values) sampler.Add(v);
  return sampler.Finalize();
}

PartitionSample RunBatched(const SamplerConfig& config, uint64_t seed,
                           const std::vector<Value>& values, size_t chunk) {
  AnySampler sampler(config, Pcg64(seed));
  const std::span<const Value> all(values);
  for (size_t i = 0; i < all.size(); i += chunk) {
    sampler.AddBatch(all.subspan(i, std::min(chunk, all.size() - i)));
  }
  return sampler.Finalize();
}

void ExpectSameSample(const PartitionSample& a, const PartitionSample& b) {
  EXPECT_EQ(a.phase(), b.phase());
  EXPECT_EQ(a.parent_size(), b.parent_size());
  EXPECT_DOUBLE_EQ(a.sampling_rate(), b.sampling_rate());
  EXPECT_TRUE(a.histogram() == b.histogram());
}

// Chunk sizes crossing every interesting boundary: single elements, a
// prime that misaligns with phase transitions, a large power of two, and
// the whole stream in one call.
const size_t kChunkSizes[] = {1, 7, 1024, 1u << 20};

void ExpectBatchMatchesScalarExactly(const SamplerConfig& config,
                                     uint64_t population) {
  const std::vector<Value> values = Population(population);
  for (uint64_t seed : {1u, 17u, 123456u}) {
    const PartitionSample scalar = RunScalar(config, seed, values);
    for (const size_t chunk : kChunkSizes) {
      SCOPED_TRACE(testing::Message()
                   << "seed " << seed << " chunk " << chunk);
      ExpectSameSample(scalar, RunBatched(config, seed, values, chunk));
    }
  }
}

TEST(BatchEquivalenceProperty, BernoulliBatchIsExactlyScalar) {
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.05;
  ExpectBatchMatchesScalarExactly(config, 50000);
}

TEST(BatchEquivalenceProperty, HybridBernoulliBatchIsExactlyScalar) {
  // F = 1 KiB: the 50K-element stream crosses exhaustive -> Bernoulli and
  // (after enough Bernoulli purges or a bag overflow) Bernoulli ->
  // reservoir mid-stream, so every phase's batch loop is exercised,
  // including transitions that land inside a chunk.
  SamplerConfig config;
  config.kind = SamplerKind::kHybridBernoulli;
  config.footprint_bound_bytes = 1024;
  config.expected_partition_size = 50000;
  ExpectBatchMatchesScalarExactly(config, 50000);
}

TEST(BatchEquivalenceProperty, HybridReservoirBatchIsExactlyScalar) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 1024;
  ExpectBatchMatchesScalarExactly(config, 50000);
}

TEST(BatchEquivalenceProperty, TinyAndEmptyBatches) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 256;
  AnySampler sampler(config, Pcg64(9));
  sampler.AddBatch({});  // no-op
  EXPECT_EQ(sampler.elements_seen(), 0u);
  const std::vector<Value> one = {42};
  sampler.AddBatch(one);
  EXPECT_EQ(sampler.elements_seen(), 1u);
  EXPECT_EQ(sampler.sample_size(), 1u);
}

// Inclusion frequencies of batch-built samples follow the algorithm's
// uniform inclusion law: over a distinct-valued population every value is
// included with the same probability, so per-value inclusion counts across
// many independent batch runs must pass a uniform chi-square fit.
void ExpectUniformInclusion(const SamplerConfig& config, uint64_t population,
                            int trials) {
  const std::vector<Value> values = Population(population);
  std::vector<uint64_t> inclusions(population, 0);
  for (int t = 0; t < trials; ++t) {
    AnySampler sampler(config, Pcg64(1000 + t));
    sampler.AddBatch(values);
    const PartitionSample s = sampler.Finalize();
    s.histogram().ForEach([&](Value v, uint64_t count) {
      inclusions[static_cast<size_t>(v - 1)] += count;
    });
  }
  const ChiSquareResult result = ChiSquareUniformFit(inclusions);
  EXPECT_GT(result.min_expected, 5.0);
  EXPECT_GT(result.p_value, kAlpha)
      << "statistic " << result.statistic << " df "
      << result.degrees_of_freedom;
}

TEST(BatchEquivalenceProperty, BernoulliBatchInclusionIsUniform) {
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.2;
  ExpectUniformInclusion(config, 200, 400);
}

TEST(BatchEquivalenceProperty, ReservoirBatchInclusionIsUniform) {
  SamplerConfig config;
  config.kind = SamplerKind::kHybridReservoir;
  config.footprint_bound_bytes = 32 * 8;  // n_F = 32 of 200
  ExpectUniformInclusion(config, 200, 400);
}

TEST(BatchEquivalenceProperty, SkipBasedBernoulliPhaseIsDeterministic) {
  // The geometric-skip Bernoulli path must be a pure function of (seed,
  // stream): identical runs give identical samples, and the draw sequence
  // does not depend on how the stream is chunked.
  const std::vector<Value> values = Population(30000);
  SamplerConfig config;
  config.kind = SamplerKind::kStratifiedBernoulli;
  config.bernoulli_rate = 0.01;
  const PartitionSample first = RunBatched(config, 77, values, 4096);
  const PartitionSample second = RunBatched(config, 77, values, 4096);
  ExpectSameSample(first, second);
  const PartitionSample rechunked = RunBatched(config, 77, values, 997);
  ExpectSameSample(first, rechunked);
}

}  // namespace
}  // namespace sampwh
