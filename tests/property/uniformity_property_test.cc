// The library's central statistical property (§2 requirement 1): every
// sampler and every merge path produces samples that are UNIFORM — for each
// size k, all size-k subsets of the population are equally likely. These
// tests enumerate all subsets of small distinct-valued populations, run
// tens of thousands of independent sampling experiments, and chi-square
// every adequately populated size class. Seeds are fixed; thresholds are
// set so the suite is deterministic.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bernoulli_sampler.h"
#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/merge.h"
#include "src/core/multi_purge_sampler.h"
#include "src/stats/uniformity.h"

namespace sampwh {
namespace {

constexpr double kAlpha = 1e-4;  // per-class rejection threshold

std::vector<Value> Population(Value begin, Value end) {
  std::vector<Value> out;
  for (Value v = begin; v < end; ++v) out.push_back(v);
  return out;
}

// Asserts uniformity for every tested size class strictly below
// `size_limit` and returns how many such classes were tested. Algorithm
// HB's phase-2 size classes (k < n_F) are exactly uniform; the class at
// exactly n_F is the documented fallback-path exception (see
// HybridBernoulliOverflowFallbackIsBiased and hybrid_bernoulli.h).
uint64_t ExpectUniformBelow(const UniformityReport& report,
                            uint64_t size_limit) {
  uint64_t tested = 0;
  for (const auto& [k, result] : report.by_size) {
    if (k >= size_limit || !result.tested) continue;
    EXPECT_GT(result.chi_square.p_value, kAlpha) << "size class " << k;
    ++tested;
  }
  return tested;
}

TEST(UniformityProperty, HybridReservoirIsUniform) {
  // 8 distinct values, n_F = 4: HR switches to reservoir mode at the 4th
  // value and finishes with a size-4 SRS over C(8,4) = 70 subsets.
  const std::vector<Value> population = Population(0, 8);
  Pcg64 rng(1);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 50000,
      [&population](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        HybridReservoirSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
  EXPECT_EQ(report.by_size.at(4).trials, 50000u);  // size pinned at n_F
}

TEST(UniformityProperty, HybridBernoulliIsUniform) {
  // 10 distinct values, n_F = 4, and the paper's operating regime of a
  // small exceedance probability (p = 1e-3). Every phase-2 size class
  // (k < n_F) must be exactly uniform. The class at exactly n_F is the
  // fallback path, whose intrinsic bias is documented by
  // HybridBernoulliOverflowFallbackIsBiased below — at toy population
  // sizes P{|S| reaches n_F} is dominated by P{|S| = n_F}, which no choice
  // of p makes negligible, so that class is asserted separately.
  const std::vector<Value> population = Population(0, 10);
  Pcg64 rng(2);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 120000,
      [&population](Pcg64& trial_rng) {
        HybridBernoulliSampler::Options options;
        options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        options.expected_population_size = population.size();
        options.exceedance_probability = 1e-3;
        HybridBernoulliSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  EXPECT_GE(ExpectUniformBelow(report, 4), 2u);
}

TEST(UniformityProperty, HybridBernoulliExactRateIsUniform) {
  const std::vector<Value> population = Population(0, 9);
  Pcg64 rng(3);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 80000,
      [&population](Pcg64& trial_rng) {
        HybridBernoulliSampler::Options options;
        options.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
        options.expected_population_size = population.size();
        options.exceedance_probability = 1e-3;
        options.use_exact_rate = true;
        HybridBernoulliSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  EXPECT_GE(ExpectUniformBelow(report, 3), 1u);
}

TEST(UniformityProperty, HybridBernoulliOverflowFallbackIsBiased) {
  // Documents the reproduction finding discussed in hybrid_bernoulli.h:
  // Fig. 2's phase-2 -> 3 fallback freezes the Bernoulli sample at the
  // moment it reaches n_F values, conditioning the reservoir's initial
  // state on the triggering element being included. Forcing the fallback
  // (p = 0.3, so ~30-40%% of runs overflow) makes the size-n_F class
  // measurably non-uniform — later stream positions are over-represented —
  // while every phase-2 size class stays exactly uniform. The effect is
  // bounded by p, hence negligible at the paper's p <= 1e-3.
  const std::vector<Value> population = Population(0, 10);
  Pcg64 rng(13);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 120000,
      [&population](Pcg64& trial_rng) {
        HybridBernoulliSampler::Options options;
        options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        options.expected_population_size = population.size();
        options.exceedance_probability = 0.3;
        HybridBernoulliSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  // Phase-2 classes (sizes 1..3) are uniform...
  for (const uint64_t k : {1ULL, 2ULL, 3ULL}) {
    const auto it = report.by_size.find(k);
    ASSERT_NE(it, report.by_size.end());
    if (it->second.tested) {
      EXPECT_GT(it->second.chi_square.p_value, kAlpha) << "size " << k;
    }
  }
  // ...while the fallback class at n_F = 4 is demonstrably not.
  const auto fallback = report.by_size.find(4);
  ASSERT_NE(fallback, report.by_size.end());
  ASSERT_TRUE(fallback->second.tested);
  EXPECT_LT(fallback->second.chi_square.p_value, 1e-6);
}

TEST(UniformityProperty, MultiPurgeVariantIsUniform) {
  const std::vector<Value> population = Population(0, 9);
  Pcg64 rng(4);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 80000,
      [&population](Pcg64& trial_rng) {
        MultiPurgeBernoulliSampler::Options options;
        options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        options.expected_population_size = population.size();
        options.exceedance_probability = 0.3;
        MultiPurgeBernoulliSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, PlainBernoulliIsUniform) {
  const std::vector<Value> population = Population(0, 9);
  Pcg64 rng(5);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 80000,
      [&population](Pcg64& trial_rng) {
        BernoulliSampler sampler(0.35, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 3u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, HrMergeIsUniform) {
  // Theorem 1, empirically: HR samples of D1 = {0..4}, D2 = {5..11}
  // (n_F = 3 each) merged into a size-3 SRS of all 12 elements; all
  // C(12,3) = 220 subsets equally likely.
  const std::vector<Value> population = Population(0, 12);
  Pcg64 rng(6);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 120000,
      [](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
        HybridReservoirSampler sa(options, trial_rng.Fork(1));
        for (Value v = 0; v < 5; ++v) sa.Add(v);
        HybridReservoirSampler sb(options, trial_rng.Fork(2));
        for (Value v = 5; v < 12; ++v) sb.Add(v);
        const PartitionSample s1 = sa.Finalize();
        const PartitionSample s2 = sb.Finalize();
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            3 * kSingletonFootprintBytes;
        auto merged = HRMerge(s1, s2, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  ASSERT_EQ(report.TestedClasses(), 1u);
  EXPECT_EQ(report.by_size.at(3).num_subsets, 220u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, HrMergeWithAliasCacheIsUniform) {
  const std::vector<Value> population = Population(0, 10);
  AliasCache cache;
  Pcg64 rng(7);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 80000,
      [&cache](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
        HybridReservoirSampler sa(options, trial_rng.Fork(1));
        for (Value v = 0; v < 5; ++v) sa.Add(v);
        HybridReservoirSampler sb(options, trial_rng.Fork(2));
        for (Value v = 5; v < 10; ++v) sb.Add(v);
        const PartitionSample s1 = sa.Finalize();
        const PartitionSample s2 = sb.Finalize();
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            3 * kSingletonFootprintBytes;
        merge_options.alias_cache = &cache;
        auto merged = HRMerge(s1, s2, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  ASSERT_EQ(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, HbMergeOfBernoulliSamplesIsUniform) {
  // Two Bern(0.5) samples of disjoint 6-element partitions, HB-merged
  // under n_F = 4 (common rate ~0.33 plus occasional reservoir fallback):
  // the merged sample must be uniform over the 12-element union.
  const std::vector<Value> population = Population(0, 12);
  Pcg64 rng(8);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 120000,
      [](Pcg64& trial_rng) {
        BernoulliSampler sa(0.5, trial_rng.Fork(1));
        for (Value v = 0; v < 6; ++v) sa.Add(v);
        BernoulliSampler sb(0.5, trial_rng.Fork(2));
        for (Value v = 6; v < 12; ++v) sb.Add(v);
        const PartitionSample s1 = sa.Finalize();
        const PartitionSample s2 = sb.Finalize();
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            4 * kSingletonFootprintBytes;
        merge_options.exceedance_probability = 0.3;
        auto merged = HBMerge(s1, s2, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 2u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, HbMergeExhaustiveCaseIsUniform) {
  // Exhaustive sample streamed into a resumed HB sampler (Fig. 6 lines
  // 1-4): uniform over the union.
  const std::vector<Value> population = Population(0, 10);
  Pcg64 rng(9);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 100000,
      [](Pcg64& trial_rng) {
        // D1 = {0..3} exhaustive (big footprint); D2 = {4..9} HB-sampled
        // under n_F = 4.
        HybridBernoulliSampler::Options big;
        big.footprint_bound_bytes = 1024;
        big.expected_population_size = 4;
        HybridBernoulliSampler sa(big, trial_rng.Fork(1));
        for (Value v = 0; v < 4; ++v) sa.Add(v);
        HybridBernoulliSampler::Options small;
        small.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        small.expected_population_size = 6;
        small.exceedance_probability = 1e-3;
        HybridBernoulliSampler sb(small, trial_rng.Fork(2));
        for (Value v = 4; v < 10; ++v) sb.Add(v);
        const PartitionSample s1 = sa.Finalize();
        const PartitionSample s2 = sb.Finalize();
        EXPECT_EQ(s1.phase(), SamplePhase::kExhaustive);
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            4 * kSingletonFootprintBytes;
        merge_options.exceedance_probability = 1e-3;
        auto merged = HBMerge(s1, s2, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  // Classes below n_F are exact; the n_F class carries the documented
  // fallback-path bias (resume + overflow), so it is excluded here too.
  EXPECT_GE(ExpectUniformBelow(report, 4), 1u);
}

TEST(UniformityProperty, HrMergeExhaustiveCaseIsUniform) {
  const std::vector<Value> population = Population(0, 10);
  Pcg64 rng(10);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 80000,
      [](Pcg64& trial_rng) {
        HybridReservoirSampler::Options big;
        big.footprint_bound_bytes = 1024;
        HybridReservoirSampler sa(big, trial_rng.Fork(1));
        for (Value v = 0; v < 4; ++v) sa.Add(v);  // exhaustive
        HybridReservoirSampler::Options small;
        small.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
        HybridReservoirSampler sb(small, trial_rng.Fork(2));
        for (Value v = 4; v < 10; ++v) sb.Add(v);  // SRS of size 3
        const PartitionSample s1 = sa.Finalize();
        const PartitionSample s2 = sb.Finalize();
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            3 * kSingletonFootprintBytes;
        auto merged = HRMerge(s1, s2, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

TEST(UniformityProperty, ThreeWayMergeAllIsUniform) {
  // Serial pairwise merges across three partitions (the paper's
  // experimental merge pattern) remain uniform end to end.
  const std::vector<Value> population = Population(0, 12);
  Pcg64 rng(11);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 120000,
      [](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes = 3 * kSingletonFootprintBytes;
        std::vector<PartitionSample> samples;
        for (int p = 0; p < 3; ++p) {
          HybridReservoirSampler sampler(options, trial_rng.Fork(p + 1));
          for (Value v = p * 4; v < (p + 1) * 4; ++v) sampler.Add(v);
          samples.push_back(sampler.Finalize());
        }
        std::vector<const PartitionSample*> pointers;
        for (const auto& s : samples) pointers.push_back(&s);
        MergeOptions merge_options;
        merge_options.footprint_bound_bytes =
            3 * kSingletonFootprintBytes;
        auto merged = MergeAll(pointers, merge_options, trial_rng);
        EXPECT_TRUE(merged.ok());
        return merged.value().histogram().ToBag();
      },
      rng);
  ASSERT_EQ(report.TestedClasses(), 1u);
  EXPECT_EQ(report.by_size.at(3).num_subsets, 220u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

// Parameterized sweep: HR uniformity across (population size, n_F)
// geometries, covering reservoirs that fill early, late, and barely.
class HrUniformitySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HrUniformitySweep, UniformForThisGeometry) {
  const auto [population_size, n_f] = GetParam();
  const std::vector<Value> population = Population(0, population_size);
  Pcg64 rng(777 + population_size * 31 + n_f);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 60000,
      [&population, n_f = n_f](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes =
            static_cast<uint64_t>(n_f) * kSingletonFootprintBytes;
        HybridReservoirSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : population) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_EQ(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

INSTANTIATE_TEST_SUITE_P(Geometries, HrUniformitySweep,
                         ::testing::Values(std::make_tuple(6, 2),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(9, 3),
                                           std::make_tuple(10, 5),
                                           std::make_tuple(12, 2),
                                           std::make_tuple(7, 6)));

TEST(UniformityProperty, StreamOrderDoesNotMatter) {
  // Feed the same population in reversed order: uniformity must persist
  // (inclusion decisions are position-based, not value-based).
  const std::vector<Value> population = Population(0, 8);
  std::vector<Value> reversed(population.rbegin(), population.rend());
  Pcg64 rng(12);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, 50000,
      [&reversed](Pcg64& trial_rng) {
        HybridReservoirSampler::Options options;
        options.footprint_bound_bytes = 4 * kSingletonFootprintBytes;
        HybridReservoirSampler sampler(options, trial_rng.Fork(0));
        for (const Value v : reversed) sampler.Add(v);
        return sampler.Finalize().histogram().ToBag();
      },
      rng);
  ASSERT_GE(report.TestedClasses(), 1u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

}  // namespace
}  // namespace sampwh
