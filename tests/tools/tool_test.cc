// End-to-end checks for the sampwh_tool CLI: generate artifacts with the
// library, drive the real binary through its subcommands, and verify exit
// codes and on-disk effects.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/core/hybrid_reservoir.h"
#include "src/util/serialization.h"
#include "src/warehouse/checkpoint.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

#ifndef SAMPWH_TOOL_PATH
#error "SAMPWH_TOOL_PATH must be defined by the build"
#endif

std::string ToolPath() { return SAMPWH_TOOL_PATH; }

int RunTool(const std::string& args) {
  const std::string command = ToolPath() + " " + args + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: parallel ctest runs cases concurrently, and a
    // shared directory would be remove_all'd mid-test by a sibling case.
    dir_ = (std::filesystem::temp_directory_path() /
            ("sampwh_tool_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteSample(const std::string& name, Value begin, Value end) {
    HybridReservoirSampler::Options options;
    options.footprint_bound_bytes = 512;
    HybridReservoirSampler sampler(options, Pcg64(7));
    for (Value v = begin; v < end; ++v) sampler.Add(v);
    BinaryWriter writer;
    sampler.Finalize().SerializeTo(&writer);
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(WriteFileAtomic(path, writer.buffer()).ok());
    return path;
  }

  std::string dir_;
};

TEST_F(ToolTest, NoArgumentsPrintsUsage) { EXPECT_EQ(RunTool(""), 2); }

TEST_F(ToolTest, UnknownCommandPrintsUsage) {
  EXPECT_EQ(RunTool("frobnicate x"), 2);
}

TEST_F(ToolTest, DumpSucceedsOnValidSample) {
  const std::string path = WriteSample("a.sample", 0, 5000);
  EXPECT_EQ(RunTool("dump " + path), 0);
}

TEST_F(ToolTest, DumpFailsOnMissingFile) {
  EXPECT_EQ(RunTool("dump " + dir_ + "/nope.sample"), 1);
}

TEST_F(ToolTest, DumpFailsOnGarbage) {
  const std::string path = dir_ + "/garbage.sample";
  ASSERT_TRUE(WriteFileAtomic(path, "not a sample").ok());
  EXPECT_EQ(RunTool("dump " + path), 1);
}

TEST_F(ToolTest, ProfileAndEstimateSucceed) {
  const std::string path = WriteSample("b.sample", 0, 5000);
  EXPECT_EQ(RunTool("profile " + path), 0);
  EXPECT_EQ(RunTool("estimate " + path + " mean"), 0);
  EXPECT_EQ(RunTool("estimate " + path + " sum"), 0);
  EXPECT_EQ(RunTool("estimate " + path + " distinct"), 0);
  EXPECT_EQ(RunTool("estimate " + path + " bogus"), 1);
}

TEST_F(ToolTest, MergeProducesLoadableEnvelopedSample) {
  const std::string a = WriteSample("a.sample", 0, 4000);
  const std::string b = WriteSample("b.sample", 4000, 8000);
  const std::string out = dir_ + "/merged.sample";
  EXPECT_EQ(RunTool("merge " + out + " " + a + " " + b), 0);
  std::string bytes;
  ASSERT_TRUE(ReadFile(out, &bytes).ok());
  // Merge output carries the checksummed v2 envelope.
  ASSERT_TRUE(HasSampleEnvelope(bytes));
  std::string_view payload;
  ASSERT_TRUE(UnwrapSampleEnvelope(bytes, &payload).ok());
  BinaryReader reader(payload);
  const auto merged = PartitionSample::DeserializeFrom(&reader);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().parent_size(), 8000u);
  // And the tool reads its own output back.
  EXPECT_EQ(RunTool("dump " + out), 0);
}

TEST_F(ToolTest, DumpReadsStoreWrittenEnvelopedFiles) {
  // Files written by FileSampleStore carry the v2 envelope; dump must
  // unwrap them, and must reject them once a payload byte is flipped.
  const std::string store_dir = dir_ + "/store";
  std::string path;
  {
    auto store = FileSampleStore::Open(store_dir);
    ASSERT_TRUE(store.ok());
    WarehouseOptions options;
    options.sampler.footprint_bound_bytes = 512;
    Warehouse wh(options, std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("ds").ok());
    std::vector<Value> values;
    for (Value v = 0; v < 2000; ++v) values.push_back(v);
    ASSERT_TRUE(wh.IngestBatch("ds", values, 1).ok());
  }
  for (const auto& entry : std::filesystem::directory_iterator(store_dir)) {
    if (entry.path().extension() == ".sample") path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(RunTool("dump " + path), 0);
  EXPECT_EQ(RunTool("profile " + path), 0);

  std::string bytes;
  ASSERT_TRUE(ReadFile(path, &bytes).ok());
  bytes[kSampleEnvelopeHeaderBytes] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  EXPECT_EQ(RunTool("dump " + path), 1);
}

TEST_F(ToolTest, CheckpointsPrintsChainStructure) {
  const std::string store_dir = dir_ + "/ckpt_store";
  {
    auto store = FileSampleStore::Open(store_dir);
    ASSERT_TRUE(store.ok());
    IngestCheckpoint snapshot;
    snapshot.next_sequence = 100;
    ASSERT_TRUE(store.value()->PutCheckpoint("ds", snapshot.Serialize()).ok());
    CheckpointDeltaRecord progress;
    progress.kind = CheckpointDeltaKind::kProgress;
    progress.next_sequence = 150;
    IngestCheckpoint closed;
    closed.next_sequence = 180;
    CheckpointDeltaRecord close_record;
    close_record.kind = CheckpointDeltaKind::kClosePending;
    close_record.checkpoint_payload = closed.Serialize();
    ASSERT_TRUE(store.value()
                    ->AppendCheckpointDeltas(
                        "ds", {progress.Serialize(), close_record.Serialize()})
                    .ok());
  }
  const std::string out_path = dir_ + "/checkpoints.out";
  const std::string command =
      ToolPath() + " checkpoints " + store_dir + " > " + out_path + " 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(command.c_str())), 0);
  std::string out;
  ASSERT_TRUE(ReadFile(out_path, &out).ok());
  // Summary line resolves the chain to the close-pending record's watermark.
  EXPECT_NE(out.find("dataset ds: watermark 180"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshot verified, 2 delta record(s)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("progress      watermark 150, crc ok, verified"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("close-pending watermark 180, crc ok, verified"),
            std::string::npos)
      << out;
}

TEST_F(ToolTest, InspectRestoredWarehouse) {
  const std::string store_dir = dir_ + "/store";
  const std::string manifest = dir_ + "/MANIFEST";
  {
    auto store = FileSampleStore::Open(store_dir);
    ASSERT_TRUE(store.ok());
    WarehouseOptions options;
    options.sampler.footprint_bound_bytes = 512;
    Warehouse wh(options, std::move(store).value());
    ASSERT_TRUE(wh.CreateDataset("ds").ok());
    std::vector<Value> values;
    for (Value v = 0; v < 3000; ++v) values.push_back(v);
    ASSERT_TRUE(wh.IngestBatch("ds", values, 3).ok());
    ASSERT_TRUE(wh.SaveManifest(manifest).ok());
  }
  EXPECT_EQ(RunTool("inspect " + store_dir + " " + manifest), 0);
  EXPECT_EQ(RunTool("inspect " + store_dir + " " + dir_ + "/nope"), 1);
}

}  // namespace
}  // namespace sampwh
