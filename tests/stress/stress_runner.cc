// Deterministic concurrency stress harness for the sample warehouse.
//
// Each round builds a file-backed warehouse in a private temp directory,
// arms seeded probabilistic transient-IO faults on the store, and drives
// concurrent ingest, union queries, retention roll-out and dataset churn
// against it for a fixed wall-clock budget. After the threads quiesce the
// round checks the warehouse's cross-thread invariants:
//
//   1. No invalid results ever escape: every successful query Validates and
//      respects the merge footprint bound; the only tolerated errors under
//      injected transient faults are IOError (fault exceeded the retry
//      budget), NotFound (racing roll-out/drop) and InvalidArgument (racing
//      an emptied dataset). Corruption or Internal at any point fails the
//      round.
//   2. No stale cache entries: a quiesced roll-out leaves no Peek-able
//      sample-cache entry, and post-roll-out queries still succeed.
//   3. Cache footprints stay within their byte budgets under churn.
//   4. GetMany propagates an injected prefetch fault as a whole-call error.
//   5. Warm (memoized) union queries are bit-identical to cold ones.
//   6. Crash recovery: a torn write crashing a Put, followed by a restart
//      through RestoreWithRecovery, quarantines the torn file, brings
//      catalog and store back into agreement, and leaves the surviving
//      partitions queryable.
//   7. Crash-resumable ingestion: for every sampler kind, a checkpointed
//      StreamIngestor killed at a seeded arbitrary point and resumed
//      against an at-least-once replay of the stream rolls in samples
//      bit-identical to an uninterrupted run. Each round also rotates
//      through the asynchronous-checkpointing failure modes — a torn
//      mid-snapshot write, a torn WAL tail (delta append cut mid-record),
//      and a lost WAL append (crash between the delta append and its
//      becoming visible) — under an aggressive compaction cadence so
//      snapshot rotation races the delta/close traffic.
//   8. Parallel ingest determinism: a multi-shard ParallelIngestor fed by
//      concurrent producer threads over tiny (high-contention) SPSC rings
//      rolls in exactly the same sample bytes as a 1-shard serial run of
//      the same stripes under the same seed.
//
// Faults, workload choices and data are all derived from --seed, so a
// failing round reproduces with its printed seed. Thread interleavings are
// OS-scheduled — the invariants must hold under every interleaving.
//
// Usage: stress_runner [--smoke|--soak] [--seed=N] [--rounds=N]
//                      [--duration-ms=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/testing/fault_injector.h"
#include "src/util/random.h"
#include "src/util/serialization.h"
#include "src/util/status.h"
#include "src/warehouse/parallel_ingestor.h"
#include "src/warehouse/partitioner.h"
#include "src/warehouse/sample_store.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"

namespace sampwh {
namespace {

struct HarnessConfig {
  uint64_t seed = 0x57485354ULL;  // "WHST"
  int rounds = 4;
  std::chrono::milliseconds round_duration{1000};
  double transient_fault_probability = 0.04;
};

std::string Describe(const Status& status) {
  return std::string(StatusCodeToString(status.code())) + ": " +
         status.message();
}

std::string Bytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

/// Collects invariant violations from every worker thread.
class Violations {
 public:
  void Add(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(what);
  }
  std::vector<std::string> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(items_);
  }

 private:
  std::mutex mu_;
  std::vector<std::string> items_;
};

/// Errors a query/mutation may legitimately surface while transient IO
/// faults are armed and partitions are rolling out underneath it.
bool TolerableUnderFaults(const Status& status) {
  return status.IsIOError() ||
         status.code() == StatusCode::kNotFound ||
         status.code() == StatusCode::kInvalidArgument;
}

struct RoundStats {
  std::atomic<uint64_t> ingests{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> rollouts{0};
  std::atomic<uint64_t> tolerated_errors{0};
};

class StressRound {
 public:
  StressRound(uint64_t seed, std::chrono::milliseconds duration,
              double fault_probability)
      : seed_(seed), duration_(duration),
        fault_probability_(fault_probability), rng_(seed, 0x57485354ULL) {}

  /// Runs one full scenario; returns the violations found (empty = pass).
  std::vector<std::string> Run() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sampwh_stress_" + std::to_string(seed_)))
               .string();
    std::filesystem::remove_all(dir_);
    if (!OpenWarehouse()) return violations_.Take();

    for (const char* ds : kDatasets) {
      if (Status s = warehouse_->CreateDataset(ds); !s.ok()) {
        violations_.Add(std::string("CreateDataset ") + ds + ": " +
                        Describe(s));
        return violations_.Take();
      }
    }
    // Seed every dataset so the first queries have partitions to merge.
    for (const char* ds : kDatasets) Ingest(ds, /*tolerate_faults=*/false);

    ArmTransientFaults();
    RunConcurrentPhase();
    injector_->DisarmAll();

    CheckQuiescedQueries();
    CheckStaleCacheOnRollOut();
    CheckCacheFootprints();
    CheckGetManyPropagation();
    CheckWarmColdIdentity();
    CheckTornWriteRecovery();
    CheckCrashResumeIngestion();
    CheckParallelIngestDeterminism();

    if (warehouse_ != nullptr) {
      AccumulateStoreStats(warehouse_->store_for_testing()->GetStoreStats());
    }
    warehouse_.reset();
    std::filesystem::remove_all(dir_);
    return violations_.Take();
  }

  const RoundStats& stats() const { return stats_; }
  const StoreStats& store_stats() const { return store_stats_; }

 private:
  static constexpr const char* kDatasets[3] = {"stress_a", "stress_b",
                                               "stress_churn"};

  bool OpenWarehouse() {
    auto store = FileSampleStore::Open(dir_);
    if (!store.ok()) {
      violations_.Add("open store: " + Describe(store.status()));
      return false;
    }
    injector_ = std::make_shared<FaultInjector>(seed_);
    store.value()->SetFaultInjector(injector_);
    // Tight backoff keeps retry storms cheap inside the harness budget.
    SampleStore::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff = std::chrono::microseconds(20);
    store.value()->SetRetryPolicy(policy);

    WarehouseOptions options;
    options.sampler.kind = SamplerKind::kHybridReservoir;
    options.sampler.footprint_bound_bytes = 1024;
    options.merge.footprint_bound_bytes = 1024;
    options.worker_threads = 2;
    options.sample_cache_bytes = 256 << 10;
    options.merge_memo_bytes = 256 << 10;
    options.seed = seed_;
    warehouse_ =
        std::make_unique<Warehouse>(options, std::move(store).value());
    return true;
  }

  void ArmTransientFaults() {
    injector_->ArmRandom(kFaultSitePutWrite, FaultKind::kIOError,
                         fault_probability_);
    injector_->ArmRandom(kFaultSiteGetRead, FaultKind::kIOError,
                         fault_probability_);
    injector_->ArmRandom(kFaultSiteDelete, FaultKind::kIOError,
                         fault_probability_);
  }

  void Ingest(const std::string& ds, bool tolerate_faults) {
    const uint64_t base = next_value_.fetch_add(4096);
    std::vector<Value> values;
    values.reserve(4096);
    for (uint64_t v = base; v < base + 4096; ++v) values.push_back(v);
    Result<std::vector<PartitionId>> ids =
        warehouse_->IngestBatch(ds, values, 2);
    if (ids.ok()) {
      stats_.ingests += ids.value().size();
    } else if (tolerate_faults && TolerableUnderFaults(ids.status())) {
      ++stats_.tolerated_errors;
    } else {
      violations_.Add("IngestBatch(" + ds + "): " + Describe(ids.status()));
    }
  }

  void CheckQueryResult(const std::string& ds,
                        const Result<PartitionSample>& result,
                        bool tolerate_faults) {
    if (!result.ok()) {
      if (tolerate_faults && TolerableUnderFaults(result.status())) {
        ++stats_.tolerated_errors;
      } else {
        violations_.Add("query(" + ds + "): " + Describe(result.status()));
      }
      return;
    }
    ++stats_.queries;
    if (Status s = result.value().Validate(); !s.ok()) {
      violations_.Add("query(" + ds + ") returned invalid sample: " +
                      Describe(s));
    }
    const uint64_t bound = warehouse_->options().merge.footprint_bound_bytes;
    if (result.value().footprint_bytes() > bound) {
      violations_.Add("query(" + ds + ") breached merge footprint bound: " +
                      std::to_string(result.value().footprint_bytes()) +
                      " > " + std::to_string(bound));
    }
  }

  void RunConcurrentPhase() {
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;

    // Ingesters: one per long-lived dataset.
    for (const char* ds : {kDatasets[0], kDatasets[1]}) {
      workers.emplace_back([this, ds, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
          Ingest(ds, /*tolerate_faults=*/true);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
    }
    // Query workers: whole-dataset unions plus explicit subsets, racing the
    // ingesters and the retention thread.
    for (int q = 0; q < 2; ++q) {
      workers.emplace_back([this, q, &stop] {
        Pcg64 rng(seed_, 0xC0FFEE00ULL + static_cast<uint64_t>(q));
        while (!stop.load(std::memory_order_relaxed)) {
          const std::string ds =
              kDatasets[rng.NextUint64() % 2];  // long-lived only
          if (rng.Bernoulli(0.5)) {
            CheckQueryResult(ds, warehouse_->MergedSampleAll(ds),
                             /*tolerate_faults=*/true);
          } else {
            Result<std::vector<PartitionInfo>> infos =
                warehouse_->ListPartitions(ds);
            if (!infos.ok() || infos.value().size() < 2) continue;
            // A sliding-window union over the oldest half: maximizes
            // overlap with concurrent retention roll-out.
            std::vector<PartitionId> ids;
            for (size_t i = 0; i < infos.value().size() / 2; ++i) {
              ids.push_back(infos.value()[i].id);
            }
            CheckQueryResult(ds, warehouse_->MergedSample(ds, ids),
                             /*tolerate_faults=*/true);
          }
        }
      });
    }
    // Retention: keeps each long-lived dataset bounded, constantly rolling
    // the oldest partitions out from under the query workers.
    workers.emplace_back([this, &stop] {
      RetentionPolicy policy;
      policy.keep_last_partitions = 8;
      while (!stop.load(std::memory_order_relaxed)) {
        for (const char* ds : {kDatasets[0], kDatasets[1]}) {
          Result<std::vector<PartitionId>> rolled =
              warehouse_->ApplyRetention(ds, policy, 0);
          if (rolled.ok()) {
            stats_.rollouts += rolled.value().size();
          } else if (TolerableUnderFaults(rolled.status())) {
            ++stats_.tolerated_errors;
          } else {
            violations_.Add(std::string("ApplyRetention(") + ds + "): " +
                            Describe(rolled.status()));
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    // Churn: drop/recreate one dataset, exercising epoch-bump invalidation
    // against in-flight readers.
    workers.emplace_back([this, &stop] {
      const std::string ds = kDatasets[2];
      while (!stop.load(std::memory_order_relaxed)) {
        Ingest(ds, /*tolerate_faults=*/true);
        Status dropped = warehouse_->DropDataset(ds);
        if (!dropped.ok() && !TolerableUnderFaults(dropped)) {
          violations_.Add("DropDataset: " + Describe(dropped));
        }
        Status created = warehouse_->CreateDataset(ds);
        if (!created.ok() &&
            created.code() != StatusCode::kAlreadyExists) {
          violations_.Add("CreateDataset churn: " + Describe(created));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    std::this_thread::sleep_for(duration_);
    stop.store(true);
    for (std::thread& t : workers) t.join();
  }

  // --- Quiesced invariant checks -----------------------------------------

  void CheckQuiescedQueries() {
    for (const char* ds : {kDatasets[0], kDatasets[1]}) {
      CheckQueryResult(ds, warehouse_->MergedSampleAll(ds),
                       /*tolerate_faults=*/false);
    }
  }

  void CheckStaleCacheOnRollOut() {
    const std::string ds = kDatasets[0];
    Result<std::vector<PartitionInfo>> infos = warehouse_->ListPartitions(ds);
    if (!infos.ok() || infos.value().size() < 2) return;
    const PartitionId victim = infos.value().front().id;
    // Warm the cache so the victim is definitely resident, then roll out.
    if (!warehouse_->MergedSampleAll(ds).ok()) {
      violations_.Add("stale-cache check: warmup query failed");
      return;
    }
    if (Status s = warehouse_->RollOut(ds, victim); !s.ok()) {
      violations_.Add("stale-cache check: RollOut: " + Describe(s));
      return;
    }
    const SampleCache* cache = warehouse_->sample_cache_for_testing();
    const uint64_t epoch = cache->CurrentEpoch(ds);
    if (cache->Peek(ds, epoch, victim) != nullptr) {
      violations_.Add("stale sample-cache entry survived quiesced roll-out "
                      "of partition " + std::to_string(victim));
    }
    CheckQueryResult(ds, warehouse_->MergedSampleAll(ds),
                     /*tolerate_faults=*/false);
  }

  void CheckCacheFootprints() {
    const WarehouseCacheStats stats = warehouse_->GetCacheStats();
    const WarehouseOptions& options = warehouse_->options();
    if (stats.sample_cache.bytes > options.sample_cache_bytes) {
      violations_.Add("sample cache over budget: " +
                      std::to_string(stats.sample_cache.bytes) + " > " +
                      std::to_string(options.sample_cache_bytes));
    }
    if (stats.merge_memo.bytes > options.merge_memo_bytes) {
      violations_.Add("merge memo over budget: " +
                      std::to_string(stats.merge_memo.bytes) + " > " +
                      std::to_string(options.merge_memo_bytes));
    }
  }

  void CheckGetManyPropagation() {
    const std::string ds = kDatasets[1];
    Result<std::vector<PartitionInfo>> infos = warehouse_->ListPartitions(ds);
    if (!infos.ok() || infos.value().empty()) return;
    std::vector<PartitionKey> keys;
    for (const PartitionInfo& p : infos.value()) {
      keys.push_back(PartitionKey{ds, p.id});
    }
    // One injected task fault among N keys: the whole call must fail.
    const size_t skip = rng_.NextUint64() % keys.size();
    injector_->Arm(kFaultSiteGetManyTask, FaultKind::kIOError, /*count=*/1,
                   skip);
    Result<std::vector<PartitionSample>> got =
        warehouse_->store_for_testing()->GetMany(keys);
    injector_->Disarm(kFaultSiteGetManyTask);
    if (got.ok()) {
      violations_.Add("GetMany swallowed an injected prefetch fault "
                      "(returned " + std::to_string(got.value().size()) +
                      " samples)");
    } else if (!got.status().IsIOError()) {
      violations_.Add("GetMany propagated wrong category: " +
                      Describe(got.status()));
    }
  }

  void CheckWarmColdIdentity() {
    const std::string ds = kDatasets[0];
    Result<PartitionSample> cold = warehouse_->MergedSampleAll(ds);
    Result<PartitionSample> warm = warehouse_->MergedSampleAll(ds);
    if (!cold.ok() || !warm.ok()) {
      violations_.Add("warm/cold check: query failed");
      return;
    }
    if (Bytes(cold.value()) != Bytes(warm.value())) {
      violations_.Add("memoized warm query differs from its predecessor");
    }
    warehouse_->InvalidateCaches();
    Result<PartitionSample> refetched = warehouse_->MergedSampleAll(ds);
    if (!refetched.ok() ||
        Bytes(refetched.value()) != Bytes(cold.value())) {
      violations_.Add("post-invalidation query differs from warm query "
                      "(memoized results must be cache-state independent)");
    }
  }

  void CheckTornWriteRecovery() {
    const std::string ds = kDatasets[0];
    Result<std::vector<PartitionInfo>> infos = warehouse_->ListPartitions(ds);
    if (!infos.ok() || infos.value().size() < 2) return;
    const PartitionId victim = infos.value().front().id;
    Result<PartitionSample> sample = warehouse_->GetSample(ds, victim);
    if (!sample.ok()) {
      violations_.Add("recovery check: GetSample: " +
                      Describe(sample.status()));
      return;
    }
    const std::string manifest = dir_ + "/manifest";
    if (Status s = warehouse_->SaveManifest(manifest); !s.ok()) {
      violations_.Add("recovery check: SaveManifest: " + Describe(s));
      return;
    }
    // Crash a rewrite of the victim's sample mid-write: the destination
    // file ends up torn.
    injector_->Arm(kFaultSitePutWrite, FaultKind::kTornWrite);
    Status torn = warehouse_->store_for_testing()->Put(
        PartitionKey{ds, victim}, sample.value());
    injector_->Disarm(kFaultSitePutWrite);
    if (!torn.IsIOError()) {
      violations_.Add("recovery check: torn Put did not surface IOError");
      return;
    }
    AccumulateStoreStats(warehouse_->store_for_testing()->GetStoreStats());
    warehouse_.reset();  // "crash": drop all in-memory state

    auto store = FileSampleStore::Open(dir_);
    if (!store.ok()) {
      violations_.Add("recovery check: reopen: " + Describe(store.status()));
      return;
    }
    WarehouseOptions options;
    options.sampler.kind = SamplerKind::kHybridReservoir;
    options.sampler.footprint_bound_bytes = 1024;
    options.merge.footprint_bound_bytes = 1024;
    options.sample_cache_bytes = 256 << 10;
    options.merge_memo_bytes = 256 << 10;
    options.seed = seed_;
    Result<Warehouse::RestoredWarehouse> restored =
        Warehouse::RestoreWithRecovery(options, std::move(store).value(),
                                       manifest);
    if (!restored.ok()) {
      violations_.Add("RestoreWithRecovery failed: " +
                      Describe(restored.status()));
      return;
    }
    if (restored.value().report.quarantined.empty()) {
      violations_.Add("recovery did not quarantine the torn sample file");
    }
    bool victim_dropped = false;
    for (const PartitionKey& key : restored.value().dropped_partitions) {
      victim_dropped |= key.dataset == ds && key.partition == victim;
    }
    if (!victim_dropped) {
      violations_.Add("recovery did not drop the torn partition from the "
                      "catalog");
    }
    warehouse_ = std::move(restored.value().warehouse);
    // Catalog and store agree; the survivors answer queries.
    Result<std::vector<PartitionInfo>> after = warehouse_->ListPartitions(ds);
    if (!after.ok()) {
      violations_.Add("recovery check: ListPartitions after restore: " +
                      Describe(after.status()));
      return;
    }
    for (const PartitionInfo& p : after.value()) {
      if (p.id == victim) {
        violations_.Add("torn partition still cataloged after recovery");
      }
      if (!warehouse_->GetSample(ds, p.id).ok()) {
        violations_.Add("surviving partition " + std::to_string(p.id) +
                        " unreadable after recovery");
      }
    }
    CheckQueryResult(ds, warehouse_->MergedSampleAll(ds),
                     /*tolerate_faults=*/false);
  }

  // --- Crash-resumable ingestion (invariant 7) ----------------------------

  void AccumulateStoreStats(const StoreStats& s) {
    store_stats_.retries_attempted += s.retries_attempted;
    store_stats_.retries_exhausted += s.retries_exhausted;
    store_stats_.quarantines += s.quarantines;
    store_stats_.recovered_temps += s.recovered_temps;
    store_stats_.checkpoints_written += s.checkpoints_written;
    store_stats_.checkpoints_restored += s.checkpoints_restored;
    store_stats_.wal_appends += s.wal_appends;
    store_stats_.wal_records_appended += s.wal_records_appended;
    store_stats_.wal_tails_truncated += s.wal_tails_truncated;
  }

  WarehouseOptions ResumeOptions(SamplerKind kind, uint64_t scenario_seed,
                                 const std::string& manifest) {
    WarehouseOptions options;
    options.sampler.kind = kind;
    options.sampler.footprint_bound_bytes = 512;
    options.sampler.expected_partition_size = 400;
    options.sampler.bernoulli_rate = 0.05;
    options.seed = scenario_seed;
    options.manifest_path = manifest;
    return options;
  }

  std::vector<std::string> RolledInBytes(Warehouse& warehouse,
                                         const std::string& ds,
                                         const std::string& label) {
    std::vector<std::string> out;
    Result<std::vector<PartitionInfo>> parts = warehouse.ListPartitions(ds);
    if (!parts.ok()) {
      violations_.Add(label + ": ListPartitions: " + Describe(parts.status()));
      return out;
    }
    for (const PartitionInfo& p : parts.value()) {
      Result<PartitionSample> sample = warehouse.GetSample(ds, p.id);
      if (!sample.ok()) {
        violations_.Add(label + ": GetSample(" + std::to_string(p.id) +
                        "): " + Describe(sample.status()));
        return out;
      }
      out.push_back(Bytes(sample.value()));
    }
    return out;
  }

  /// Asynchronous-checkpointing failure mode injected into one
  /// crash-resume scenario.
  enum class CrashFault {
    kNone,
    /// A full-snapshot write tears mid-file (the classic torn checkpoint).
    kTornCheckpoint,
    /// A WAL delta append is cut mid-record: the tail must be truncated to
    /// the last whole CRC-verified record on recovery.
    kTornWalTail,
    /// A WAL append vanishes entirely — the crash lands between the append
    /// and the records becoming visible; the chain resolves to an earlier
    /// (still valid) resume point.
    kLostWalAppend,
  };

  static const char* CrashFaultName(CrashFault fault) {
    switch (fault) {
      case CrashFault::kNone: return "";
      case CrashFault::kTornCheckpoint: return ",torn-ckpt";
      case CrashFault::kTornWalTail: return ",torn-wal";
      case CrashFault::kLostWalAppend: return ",lost-wal";
    }
    return "";
  }

  /// One kill-at-an-arbitrary-point scenario: ingest with asynchronous
  /// checkpoints until a seeded kill point (earlier if an injected close-
  /// barrier fault surfaces), destroy every in-memory object, restore +
  /// resume, replay the source stream from sequence 0, and demand
  /// bit-identity with an uninterrupted run.
  void RunCrashResumeScenario(SamplerKind kind, CrashFault fault) {
    const uint64_t scenario_seed = rng_.NextUint64();
    const std::string label =
        std::string("crash-resume(") + std::string(SamplerKindToString(kind)) +
        CrashFaultName(fault) + ")";
    const std::string ds = "resume";
    const uint64_t total = 1200;
    std::vector<Value> values;
    values.reserve(total);
    for (uint64_t v = 0; v < total; ++v) {
      values.push_back(static_cast<Value>(scenario_seed % 4096 + v));
    }
    const uint64_t kill_point = rng_.NextUint64() % (total + 1);
    CheckpointPolicy policy{.every_n_elements = 32 + rng_.NextUint64() % 224};
    // Aggressive writer cadences: frequent group commits and a tiny
    // compaction bound force snapshot rotation to race the delta and close
    // traffic within the scenario's short lifetime.
    policy.group_commit_micros = 100 + rng_.NextUint64() % 400;
    policy.snapshot_every_deltas = 1 + rng_.NextUint64() % 8;

    // Uninterrupted reference (in-memory store, same seed => same RNG).
    std::vector<std::string> want;
    {
      Warehouse reference(ResumeOptions(kind, scenario_seed, ""));
      if (!reference.CreateDataset(ds).ok()) {
        violations_.Add(label + ": reference CreateDataset failed");
        return;
      }
      StreamIngestor ingestor(&reference, ds, MakeCountPartitioner(400));
      if (!ingestor.AppendBatch(values).ok() || !ingestor.Flush().ok()) {
        violations_.Add(label + ": reference ingest failed");
        return;
      }
      want = RolledInBytes(reference, ds, label + " reference");
    }

    const std::string subdir = dir_ + "/" + label;
    std::filesystem::remove_all(subdir);
    const std::string manifest = subdir + "/manifest";
    const WarehouseOptions options =
        ResumeOptions(kind, scenario_seed, manifest);

    // Run 1: checkpointed ingest, killed at kill_point — or earlier if an
    // injected fault surfaces through the close-A durability barrier (the
    // only checkpoint write an async Append still waits on; cadence-path
    // failures are contained in the background writer, which heals by
    // promoting the next close to a fresh snapshot).
    {
      auto store = FileSampleStore::Open(subdir);
      if (!store.ok()) {
        violations_.Add(label + ": open store: " + Describe(store.status()));
        return;
      }
      auto injector = std::make_shared<FaultInjector>(scenario_seed);
      switch (fault) {
        case CrashFault::kNone:
          break;
        case CrashFault::kTornCheckpoint:
          injector->Arm(kFaultSiteCheckpointWrite, FaultKind::kTornWrite,
                        /*count=*/1, /*skip=*/rng_.NextUint64() % 4);
          break;
        case CrashFault::kTornWalTail:
          injector->Arm(kFaultSiteWalAppend, FaultKind::kTornWrite,
                        /*count=*/1, /*skip=*/rng_.NextUint64() % 4);
          break;
        case CrashFault::kLostWalAppend:
          injector->Arm(kFaultSiteWalAppend, FaultKind::kCrashBeforeRename,
                        /*count=*/1, /*skip=*/rng_.NextUint64() % 4);
          break;
      }
      store.value()->SetFaultInjector(injector);
      Warehouse warehouse(options, std::move(store).value());
      if (!warehouse.CreateDataset(ds).ok()) {
        violations_.Add(label + ": CreateDataset failed");
        return;
      }
      StreamIngestor ingestor(&warehouse, ds, MakeCountPartitioner(400));
      ingestor.EnableCheckpoints(policy);
      uint64_t i = 0;
      while (i < kill_point) {
        const uint64_t chunk = std::min<uint64_t>(kill_point - i, 17);
        const Status s = ingestor.AppendBatchAt(
            i, std::span<const Value>(values).subspan(i, chunk));
        if (s.IsIOError()) break;  // close-A barrier fault: crash here
        if (!s.ok()) {
          violations_.Add(label + ": ingest: " + Describe(s));
          return;
        }
        i = ingestor.next_sequence();
      }
      AccumulateStoreStats(
          warehouse.store_for_testing()->GetStoreStats());
      // "Crash": warehouse and ingestor destroyed, nothing flushed.
    }

    // Restart: recover, resume, replay the whole stream from sequence 0.
    auto store = FileSampleStore::Open(subdir);
    if (!store.ok()) {
      violations_.Add(label + ": reopen: " + Describe(store.status()));
      return;
    }
    Result<Warehouse::RestoredWarehouse> restored =
        Warehouse::RestoreWithRecovery(options, std::move(store).value(),
                                       manifest);
    if (!restored.ok()) {
      violations_.Add(label + ": RestoreWithRecovery: " +
                      Describe(restored.status()));
      return;
    }
    Warehouse& warehouse = *restored.value().warehouse;
    std::unique_ptr<StreamIngestor> ingestor;
    Result<std::unique_ptr<StreamIngestor>> resumed = StreamIngestor::Resume(
        &warehouse, ds, MakeCountPartitioner(400), policy);
    if (resumed.ok()) {
      ingestor = std::move(resumed).value();
    } else if (resumed.status().IsNotFound()) {
      // Killed before the first checkpoint: nothing was rolled in either,
      // so a fresh ingestor replaying from 0 reproduces the run (it forks
      // the same first RNG stream from the restored warehouse seed).
      ingestor = std::make_unique<StreamIngestor>(&warehouse, ds,
                                                  MakeCountPartitioner(400));
      ingestor->EnableCheckpoints(policy);
    } else {
      violations_.Add(label + ": Resume: " + Describe(resumed.status()));
      return;
    }
    if (ingestor->next_sequence() > kill_point) {
      violations_.Add(label + ": watermark " +
                      std::to_string(ingestor->next_sequence()) +
                      " ahead of kill point " + std::to_string(kill_point));
    }
    for (uint64_t i = 0; i < total;) {
      const uint64_t chunk = std::min<uint64_t>(total - i, 23);
      const Status s = ingestor->AppendBatchAt(
          i, std::span<const Value>(values).subspan(i, chunk));
      if (!s.ok()) {
        violations_.Add(label + ": replay at " + std::to_string(i) + ": " +
                        Describe(s));
        return;
      }
      i += chunk;
    }
    if (ingestor->next_sequence() != total) {
      violations_.Add(label + ": replay watermark " +
                      std::to_string(ingestor->next_sequence()) + " != " +
                      std::to_string(total));
      return;
    }
    if (const Status s = ingestor->Flush(); !s.ok()) {
      violations_.Add(label + ": Flush: " + Describe(s));
      return;
    }
    const std::vector<std::string> got =
        RolledInBytes(warehouse, ds, label + " resumed");
    if (got != want) {
      violations_.Add(label + ": resumed run is not bit-identical to the "
                      "uninterrupted run (" + std::to_string(got.size()) +
                      " vs " + std::to_string(want.size()) + " partitions)");
    }
    AccumulateStoreStats(warehouse.store_for_testing()->GetStoreStats());
  }

  // --- Parallel ingest determinism (invariant 8) --------------------------

  /// Runs one ParallelIngestor configuration over fixed per-stripe data and
  /// returns the sorted multiset of rolled-in sample bytes. Producer
  /// threads own disjoint stripe sets (p takes stripes ≡ p mod producers)
  /// and push interleaved chunks through deliberately tiny rings, so shard
  /// threads constantly race full/empty ring edges.
  std::vector<std::string> RunParallelIngest(
      const std::vector<std::vector<Value>>& stripe_data, uint64_t seed,
      size_t shards, size_t producers, const std::string& label) {
    Warehouse warehouse(
        ResumeOptions(SamplerKind::kStratifiedBernoulli, seed, ""));
    const std::string ds = "parallel";
    if (!warehouse.CreateDataset(ds).ok()) {
      violations_.Add(label + ": CreateDataset failed");
      return {};
    }
    ParallelIngestOptions options;
    options.shards = shards;
    options.ring_capacity = 4;
    ParallelIngestor ingestor(
        &warehouse, ds, [](uint64_t) { return MakeCountPartitioner(400); },
        options);
    const uint64_t stripes = stripe_data.size();
    const uint64_t per_stripe = stripe_data[0].size();
    std::vector<std::thread> feeders;
    for (size_t p = 0; p < producers; ++p) {
      ParallelIngestor::Producer* producer = ingestor.AddProducer();
      feeders.emplace_back([&, p, producer] {
        for (uint64_t offset = 0; offset < per_stripe; offset += 193) {
          for (uint64_t s = p; s < stripes; s += producers) {
            const uint64_t n = std::min<uint64_t>(193, per_stripe - offset);
            const Status pushed = producer->Append(
                s, std::span<const Value>(stripe_data[s]).subspan(offset, n));
            if (!pushed.ok()) {
              violations_.Add(label + ": Append: " + Describe(pushed));
              return;
            }
          }
        }
      });
    }
    for (std::thread& t : feeders) t.join();
    if (const Status s = ingestor.Finish(); !s.ok()) {
      violations_.Add(label + ": Finish: " + Describe(s));
      return {};
    }
    std::vector<std::string> bytes = RolledInBytes(warehouse, ds, label);
    std::sort(bytes.begin(), bytes.end());
    return bytes;
  }

  void CheckParallelIngestDeterminism() {
    constexpr uint64_t kStripes = 8;
    constexpr uint64_t kPerStripe = 2500;
    const uint64_t scenario_seed = rng_.NextUint64();
    std::vector<std::vector<Value>> stripe_data(kStripes);
    for (uint64_t s = 0; s < kStripes; ++s) {
      stripe_data[s].reserve(kPerStripe);
      for (uint64_t i = 0; i < kPerStripe; ++i) {
        stripe_data[s].push_back(
            static_cast<Value>(s * 1000000 + (scenario_seed + 31 * i) % 65536));
      }
    }
    const std::vector<std::string> serial = RunParallelIngest(
        stripe_data, scenario_seed, 1, 1, "parallel-ingest serial");
    const std::vector<std::string> parallel = RunParallelIngest(
        stripe_data, scenario_seed, 3, 2, "parallel-ingest 3x2");
    if (serial.empty() || parallel.empty()) return;  // already reported
    if (serial != parallel) {
      violations_.Add("parallel ingest (3 shards, 2 producers) is not "
                      "byte-identical to the 1-shard serial run (" +
                      std::to_string(parallel.size()) + " vs " +
                      std::to_string(serial.size()) + " partitions)");
    }
  }

  void CheckCrashResumeIngestion() {
    static constexpr SamplerKind kKinds[] = {SamplerKind::kHybridBernoulli,
                                             SamplerKind::kHybridReservoir,
                                             SamplerKind::kStratifiedBernoulli};
    for (SamplerKind kind : kKinds) {
      RunCrashResumeScenario(kind, CrashFault::kNone);
    }
    // Each async-checkpointing failure mode, on seed-rotated kinds.
    RunCrashResumeScenario(kKinds[seed_ % 3], CrashFault::kTornCheckpoint);
    RunCrashResumeScenario(kKinds[(seed_ + 1) % 3], CrashFault::kTornWalTail);
    RunCrashResumeScenario(kKinds[(seed_ + 2) % 3],
                           CrashFault::kLostWalAppend);
  }

  const uint64_t seed_;
  const std::chrono::milliseconds duration_;
  const double fault_probability_;
  Pcg64 rng_;
  std::string dir_;
  std::shared_ptr<FaultInjector> injector_;
  std::unique_ptr<Warehouse> warehouse_;
  std::atomic<uint64_t> next_value_{0};
  Violations violations_;
  RoundStats stats_;
  /// Reliability counters summed over every store the round opened (the
  /// main store plus each crash-resume scenario store).
  StoreStats store_stats_;
};

int RunHarness(const HarnessConfig& config) {
  int failures = 0;
  for (int round = 0; round < config.rounds; ++round) {
    const uint64_t seed = config.seed + static_cast<uint64_t>(round);
    StressRound runner(seed, config.round_duration,
                       config.transient_fault_probability);
    std::vector<std::string> violations = runner.Run();
    const RoundStats& stats = runner.stats();
    std::cout << "round " << round << " seed=" << seed
              << " ingests=" << stats.ingests.load()
              << " queries=" << stats.queries.load()
              << " rollouts=" << stats.rollouts.load()
              << " tolerated_errors=" << stats.tolerated_errors.load()
              << (violations.empty() ? " PASS" : " FAIL") << "\n";
    const StoreStats& ss = runner.store_stats();
    std::cout << "  store: retries=" << ss.retries_attempted
              << " exhausted=" << ss.retries_exhausted
              << " quarantines=" << ss.quarantines
              << " recovered_temps=" << ss.recovered_temps
              << " ckpt_written=" << ss.checkpoints_written
              << " ckpt_restored=" << ss.checkpoints_restored
              << " wal_appends=" << ss.wal_appends
              << " wal_records=" << ss.wal_records_appended
              << " wal_tails_truncated=" << ss.wal_tails_truncated << "\n";
    for (const std::string& v : violations) {
      std::cout << "  VIOLATION: " << v << "\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "stress: all rounds passed\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sampwh

int main(int argc, char** argv) {
  sampwh::HarnessConfig config;
  if (const char* soak = std::getenv("STRESS_SOAK");
      soak != nullptr && std::strcmp(soak, "0") != 0) {
    config.rounds = 16;
    config.round_duration = std::chrono::milliseconds(2000);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      config.rounds = 2;
      config.round_duration = std::chrono::milliseconds(400);
    } else if (arg == "--soak") {
      config.rounds = 16;
      config.round_duration = std::chrono::milliseconds(2000);
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--rounds=", 0) == 0) {
      config.rounds = std::stoi(arg.substr(9));
    } else if (arg.rfind("--duration-ms=", 0) == 0) {
      config.round_duration =
          std::chrono::milliseconds(std::stoll(arg.substr(14)));
    } else {
      std::cerr << "unknown flag: " << arg << "\n"
                << "usage: stress_runner [--smoke|--soak] [--seed=N] "
                   "[--rounds=N] [--duration-ms=N]\n";
      return 2;
    }
  }
  return sampwh::RunHarness(config);
}
