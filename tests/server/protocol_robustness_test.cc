// Protocol-robustness battery: seeded deterministic fuzzing of the wire
// format against a live server. Truncated and oversized frames, corrupted
// CRCs, bad magics, unknown verbs, malformed verb bodies, mid-frame
// disconnects, random garbage and a slow-loris peer must each yield a
// structured error response or a dropped connection — never a crash, a
// hang, or a leak (the suite runs under ASan/UBSan in CI and under TSan in
// scripts/check.sh --tsan). After every attack the server must still
// answer a well-formed ping from a fresh connection.

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/wire.h"
#include "src/util/random.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kFuzzSeed = 0x0B0DDE7EC7ULL;

/// Raw loopback socket, no client framing: the hostile peer.
class RawPeer {
 public:
  explicit RawPeer(const WarehouseServer& server) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, server.host().c_str(), &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (fd_ >= 0) {
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Bound every recv so a misbehaving server fails the test instead of
      // hanging it.
      timeval timeout{};
      timeout.tv_sec = 5;
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    }
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  void Send(std::string_view bytes) { (void)WriteAll(fd_, bytes); }

  /// Reads one response frame; empty on drop/timeout.
  std::string ReadResponse() {
    std::string payload;
    if (!ReadFrame(fd_, kWireDefaultMaxFrameBytes, &payload).ok()) return {};
    return payload;
  }

  /// True when the server closed the connection (EOF observed).
  bool Dropped() {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
};

std::string RequestPayload(uint32_t verb, std::string_view body = {}) {
  BinaryWriter writer;
  writer.PutFixed32(kWireRequestMagic);
  writer.PutFixed32(verb);
  if (!body.empty()) writer.PutRaw(body.data(), body.size());
  return writer.Release();
}

/// A v2 ("SWR2") request payload with a caller-supplied raw header
/// extension blob — well-formed or hostile.
std::string V2RequestPayload(uint32_t verb, std::string_view ext,
                             std::string_view body = {}) {
  BinaryWriter writer;
  writer.PutFixed32(kWireRequestMagicV2);
  writer.PutFixed32(verb);
  writer.PutString(ext);
  if (!body.empty()) writer.PutRaw(body.data(), body.size());
  return writer.Release();
}

/// A well-formed v2 extension: [deadline_millis, flags] varints.
std::string V2Extension(uint64_t deadline_millis, uint64_t flags = 0) {
  BinaryWriter ext;
  ext.PutVarint64(deadline_millis);
  ext.PutVarint64(flags);
  return ext.Release();
}

/// The server must answer a clean ping on a fresh connection — the "still
/// alive and framing-correct" probe after every attack.
void ExpectServerHealthy(const WarehouseServer& server) {
  auto client = WarehouseClient::Connect(server.host(), server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto banner = client.value()->Ping();
  ASSERT_TRUE(banner.ok()) << banner.status().ToString();
  EXPECT_EQ(banner.value(), "sampwh.warehouse/1");
}

class ProtocolRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options = TestServerOptions();
    options.read_timeout_millis = 300;  // hostile peers time out fast
    server_ = MustStart(std::move(options));
    ASSERT_NE(server_, nullptr);
  }

  std::unique_ptr<WarehouseServer> server_;
};

TEST_F(ProtocolRobustnessTest, TruncatedFramesDropWithoutCrash) {
  const std::string frame = EncodeFrame(RequestPayload(
      static_cast<uint32_t>(Verb::kPing)));
  Pcg64 rng(kFuzzSeed);
  for (int round = 0; round < 24; ++round) {
    const size_t cut = 1 + rng.NextUint64() % (frame.size() - 1);
    RawPeer peer(*server_);
    ASSERT_TRUE(peer.connected());
    peer.Send(std::string_view(frame).substr(0, cut));
    // Destructor closes with the frame half-sent: a mid-frame disconnect.
  }
  ExpectServerHealthy(*server_);
  EXPECT_EQ(server_->stats().requests_served, 1u);  // only the health ping
}

TEST_F(ProtocolRobustnessTest, OversizedDeclaredLengthIsRejectedBeforeAlloc) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  BinaryWriter header;
  header.PutFixed32(0xFFFFFFF0u);  // ~4 GiB declared payload
  header.PutFixed32(0);
  peer.Send(header.Release());
  const std::string response = peer.ReadResponse();
  ASSERT_FALSE(response.empty());
  BinaryReader reader(response);
  EXPECT_TRUE(ParseResponseHead(&reader).IsOutOfRange());
  EXPECT_TRUE(peer.Dropped());
  ExpectServerHealthy(*server_);
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ProtocolRobustnessTest, CorruptedCrcGetsStructuredErrorThenDrop) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  std::string frame =
      EncodeFrame(RequestPayload(static_cast<uint32_t>(Verb::kPing)));
  frame.back() ^= 0x40;
  peer.Send(frame);
  const std::string response = peer.ReadResponse();
  ASSERT_FALSE(response.empty());
  BinaryReader reader(response);
  EXPECT_TRUE(ParseResponseHead(&reader).IsCorruption());
  EXPECT_TRUE(peer.Dropped());
  ExpectServerHealthy(*server_);
}

TEST_F(ProtocolRobustnessTest, UnknownVerbsKeepTheConnection) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  Pcg64 rng(kFuzzSeed ^ 1);
  for (int round = 0; round < 16; ++round) {
    const uint32_t verb = 1000 + static_cast<uint32_t>(rng.NextUint64() % 64);
    peer.Send(EncodeFrame(RequestPayload(verb)));
    const std::string response = peer.ReadResponse();
    ASSERT_FALSE(response.empty()) << "connection lost on unknown verb";
    BinaryReader reader(response);
    EXPECT_TRUE(ParseResponseHead(&reader).IsInvalidArgument());
  }
  // Same connection still serves a real request.
  peer.Send(EncodeFrame(RequestPayload(static_cast<uint32_t>(Verb::kPing))));
  const std::string pong = peer.ReadResponse();
  ASSERT_FALSE(pong.empty());
  BinaryReader reader(pong);
  EXPECT_TRUE(ParseResponseHead(&reader).ok());
}

TEST_F(ProtocolRobustnessTest, BadMagicAnswersErrorAndKeepsFraming) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  BinaryWriter payload;
  payload.PutFixed32(0x4B4F4F42u);  // wrong magic, valid frame
  payload.PutFixed32(1);
  peer.Send(EncodeFrame(payload.Release()));
  const std::string response = peer.ReadResponse();
  ASSERT_FALSE(response.empty());
  BinaryReader reader(response);
  EXPECT_TRUE(ParseResponseHead(&reader).IsInvalidArgument());
  ExpectServerHealthy(*server_);
}

TEST_F(ProtocolRobustnessTest, MalformedVerbBodiesAnswerStructuredErrors) {
  // Every known verb, fed truncated/garbage bodies: structured error,
  // connection kept, server healthy. This is the per-verb decoder fuzz.
  const uint32_t verbs[] = {
      static_cast<uint32_t>(Verb::kCreateTenant),
      static_cast<uint32_t>(Verb::kSetTenantQuota),
      static_cast<uint32_t>(Verb::kTenantStats),
      static_cast<uint32_t>(Verb::kCreateDataset),
      static_cast<uint32_t>(Verb::kDropDataset),
      static_cast<uint32_t>(Verb::kListDatasets),
      static_cast<uint32_t>(Verb::kListPartitions),
      static_cast<uint32_t>(Verb::kRollIn),
      static_cast<uint32_t>(Verb::kRollInAt),
      static_cast<uint32_t>(Verb::kRollOut),
      static_cast<uint32_t>(Verb::kReplicaRollIn),
      static_cast<uint32_t>(Verb::kQuery),
      static_cast<uint32_t>(Verb::kPartitionDigests),
      static_cast<uint32_t>(Verb::kIngestOpen),
      static_cast<uint32_t>(Verb::kIngestAppend),
      static_cast<uint32_t>(Verb::kIngestFlush),
  };
  Pcg64 rng(kFuzzSeed ^ 2);
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  for (const uint32_t verb : verbs) {
    for (int round = 0; round < 8; ++round) {
      std::string body(rng.NextUint64() % 40, '\0');
      for (char& c : body) c = static_cast<char>(rng.NextUint64());
      peer.Send(EncodeFrame(RequestPayload(verb, body)));
      const std::string response = peer.ReadResponse();
      ASSERT_FALSE(response.empty())
          << "verb " << verb << " dropped the connection on a bad body";
      BinaryReader reader(response);
      EXPECT_FALSE(ParseResponseHead(&reader).ok())
          << "verb " << verb << " accepted garbage";
    }
  }
  ExpectServerHealthy(*server_);
}

TEST_F(ProtocolRobustnessTest, RandomGarbageStreamsNeverCrashTheServer) {
  Pcg64 rng(kFuzzSeed ^ 3);
  for (int round = 0; round < 32; ++round) {
    RawPeer peer(*server_);
    ASSERT_TRUE(peer.connected());
    std::string garbage(1 + rng.NextUint64() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextUint64());
    peer.Send(garbage);
    // Random first 4 bytes usually declare an absurd length (oversized) or
    // a length whose bytes never arrive (timeout); either way the server
    // must shed the connection on its own.
  }
  ExpectServerHealthy(*server_);
  EXPECT_GE(server_->stats().connections_accepted, 33u);
}

TEST_F(ProtocolRobustnessTest, SlowLorisPeersAreShedByTheReadTimeout) {
  const std::string frame =
      EncodeFrame(RequestPayload(static_cast<uint32_t>(Verb::kPing)));
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  // Trickle one byte, then stall past the 300 ms read timeout.
  peer.Send(std::string_view(frame).substr(0, 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  // The server sheds the connection: a best-effort structured error frame,
  // then the drop.
  const std::string response = peer.ReadResponse();
  if (!response.empty()) {
    BinaryReader reader(response);
    EXPECT_FALSE(ParseResponseHead(&reader).ok());
  }
  EXPECT_TRUE(peer.Dropped());
  ExpectServerHealthy(*server_);
  EXPECT_GE(server_->stats().connections_dropped, 1u);
}

TEST_F(ProtocolRobustnessTest, V2HeadWithDeadlineDecodesCleanly) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  peer.Send(EncodeFrame(V2RequestPayload(static_cast<uint32_t>(Verb::kPing),
                                         V2Extension(/*deadline=*/5'000))));
  const std::string response = peer.ReadResponse();
  ASSERT_FALSE(response.empty());
  BinaryReader reader(response);
  EXPECT_TRUE(ParseResponseHead(&reader).ok());
}

TEST_F(ProtocolRobustnessTest, V2TruncatedExtensionAnswersStructuredError) {
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  // Declared extension length far past the payload's end: the length-
  // delimited blob cannot be read, so the head itself is malformed.
  BinaryWriter payload;
  payload.PutFixed32(kWireRequestMagicV2);
  payload.PutFixed32(static_cast<uint32_t>(Verb::kPing));
  payload.PutVarint64(200);  // promises 200 ext bytes ...
  payload.PutRaw("abc", 3);  // ... delivers 3
  peer.Send(EncodeFrame(payload.Release()));
  const std::string response = peer.ReadResponse();
  ASSERT_FALSE(response.empty());
  BinaryReader reader(response);
  EXPECT_FALSE(ParseResponseHead(&reader).ok());
  // The head never parsed, but the FRAME was sound — connection kept.
  peer.Send(EncodeFrame(RequestPayload(static_cast<uint32_t>(Verb::kPing))));
  const std::string pong = peer.ReadResponse();
  ASSERT_FALSE(pong.empty());
  BinaryReader pong_reader(pong);
  EXPECT_TRUE(ParseResponseHead(&pong_reader).ok());
  ExpectServerHealthy(*server_);
}

TEST_F(ProtocolRobustnessTest, V2CorruptedDeadlineFieldsNeverCrash) {
  // Seeded fuzz of the extension blob itself: truncated varints, overlong
  // varints, short blobs missing the flags field, garbage. Every shape
  // must yield a structured answer (OK for decodable exts, error
  // otherwise) on a kept connection.
  Pcg64 rng(kFuzzSeed ^ 6);
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  for (int round = 0; round < 48; ++round) {
    std::string ext(rng.NextUint64() % 24, '\0');
    for (char& c : ext) c = static_cast<char>(rng.NextUint64());
    if (round % 4 == 0 && !ext.empty()) {
      // Bias toward the nastiest shape: a varint whose continuation bits
      // run off the blob's end.
      ext.back() = static_cast<char>(0x80 | (ext.back() & 0x7F));
    }
    peer.Send(EncodeFrame(
        V2RequestPayload(static_cast<uint32_t>(Verb::kPing), ext)));
    const std::string response = peer.ReadResponse();
    ASSERT_FALSE(response.empty())
        << "round " << round << " lost the connection on a hostile ext";
  }
  ExpectServerHealthy(*server_);
}

TEST_F(ProtocolRobustnessTest, InterleavedV1AndV2FramesOnOneConnection) {
  // A fleet of old and new clients behind one proxy socket looks exactly
  // like this: v1 and v2 heads alternating on a single connection, some
  // hostile. Each frame must be answered on its own terms and the
  // connection survive the lot.
  RawPeer peer(*server_);
  ASSERT_TRUE(peer.connected());
  Pcg64 rng(kFuzzSeed ^ 7);
  for (int round = 0; round < 24; ++round) {
    std::string payload;
    bool expect_ok = true;
    switch (round % 4) {
      case 0:  // plain v1
        payload = RequestPayload(static_cast<uint32_t>(Verb::kPing));
        break;
      case 1:  // well-formed v2 with a deadline and a failover flag
        payload = V2RequestPayload(
            static_cast<uint32_t>(Verb::kPing),
            V2Extension(1 + rng.NextUint64() % 10'000,
                        kRequestFlagFailoverRead));
        break;
      case 2: {  // v2 with a longer-than-known ext: appended fields ignored
        BinaryWriter ext;
        ext.PutVarint64(2'000);
        ext.PutVarint64(0);
        ext.PutVarint64(rng.NextUint64());  // a field this build predates
        payload =
            V2RequestPayload(static_cast<uint32_t>(Verb::kPing),
                             ext.Release());
        break;
      }
      default:  // v2 missing the flags varint: malformed head
        payload = V2RequestPayload(static_cast<uint32_t>(Verb::kPing),
                                   std::string(1, '\x07'));
        expect_ok = false;
        break;
    }
    peer.Send(EncodeFrame(payload));
    const std::string response = peer.ReadResponse();
    ASSERT_FALSE(response.empty()) << "round " << round;
    BinaryReader reader(response);
    EXPECT_EQ(ParseResponseHead(&reader).ok(), expect_ok)
        << "round " << round;
  }
  ExpectServerHealthy(*server_);
}

TEST(WireFuzzTest, DecodeFrameNeverCrashesOnRandomBuffers) {
  Pcg64 rng(kFuzzSeed ^ 4);
  for (int round = 0; round < 20000; ++round) {
    std::string buffer(rng.NextUint64() % 64, '\0');
    for (char& c : buffer) c = static_cast<char>(rng.NextUint64());
    std::string_view payload;
    size_t consumed = 0;
    const FrameDecodeResult result =
        DecodeFrame(buffer, /*max_frame_bytes=*/1024, &payload, &consumed);
    if (result == FrameDecodeResult::kOk) {
      EXPECT_LE(consumed, buffer.size());
    }
  }
}

TEST(WireFuzzTest, ResponseParserNeverCrashesOnRandomPayloads) {
  Pcg64 rng(kFuzzSeed ^ 5);
  for (int round = 0; round < 20000; ++round) {
    std::string payload(rng.NextUint64() % 48, '\0');
    for (char& c : payload) c = static_cast<char>(rng.NextUint64());
    BinaryReader reader(payload);
    (void)ParseResponseHead(&reader);
    BinaryReader request_reader(payload);
    uint32_t verb = 0;
    RequestHeader header;
    (void)ParseRequestHead(&request_reader, &verb, &header);
  }
}

}  // namespace
}  // namespace sampwh
