// Sharded-query exactness battery. The distributed contract under test:
// a ShardCoordinator querying partitions spread across 1, 2 or 4 warehouse
// server nodes returns merged samples BIT-IDENTICAL to a single embedded
// warehouse holding every partition under the same seed and merge options
// — for full unions and for random partition subsets, before and after
// roll-outs. A chi-square gate then checks that distribution does not just
// preserve determinism but the sampling law itself: merged subsets drawn
// through fresh 2-node deployments stay exactly uniform over the
// population, trial-seeded exactly like the warm-path uniformity suite.

#include "src/server/coordinator.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/stats/uniformity.h"
#include "src/warehouse/warehouse.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;

struct Deployment {
  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::unique_ptr<ShardCoordinator> coordinator;
};

/// Starts `num_nodes` servers plus a coordinator, all under one seed and
/// one merge footprint bound — the deployment-owned invariants the
/// exactness contract requires.
Deployment MakeDeployment(size_t num_nodes, uint64_t seed,
                          uint64_t merge_bound_bytes) {
  Deployment d;
  std::vector<ShardNodeAddress> nodes;
  for (size_t i = 0; i < num_nodes; ++i) {
    ServerOptions options = TestServerOptions(seed);
    options.warehouse.merge.footprint_bound_bytes = merge_bound_bytes;
    auto server = MustStart(std::move(options));
    if (server == nullptr) return {};
    nodes.push_back({server->host(), server->port()});
    d.servers.push_back(std::move(server));
  }
  CoordinatorOptions options;
  options.seed = seed;
  options.merge.footprint_bound_bytes = merge_bound_bytes;
  auto coordinator = ShardCoordinator::Connect(nodes, options);
  if (!coordinator.ok()) {
    ADD_FAILURE() << "coordinator: " << coordinator.status().ToString();
    return {};
  }
  d.coordinator = std::move(coordinator).value();
  return d;
}

TEST(ShardedQueryTest, BitIdenticalToSingleNodeAcrossNodeCounts) {
  constexpr uint64_t kPartitions = 9;
  constexpr uint64_t kBound = 4 * kSingletonFootprintBytes;

  for (const size_t num_nodes : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_nodes=" + std::to_string(num_nodes));
    Deployment d = MakeDeployment(num_nodes, kSeed, kBound);
    ASSERT_NE(d.coordinator, nullptr);
    ShardCoordinator& coord = *d.coordinator;
    ASSERT_TRUE(coord.CreateTenant("acme", {}).ok());
    ASSERT_TRUE(coord.CreateDataset("acme", "sales").ok());

    // The single-node reference: one warehouse, same seed and merge
    // options, holding every partition under the internal tenant key.
    ServerOptions reference_options = TestServerOptions(kSeed);
    reference_options.warehouse.merge.footprint_bound_bytes = kBound;
    Warehouse reference(reference_options.warehouse);
    ASSERT_TRUE(reference.CreateDataset("acme.sales").ok());

    std::vector<PartitionId> ids;
    for (uint64_t p = 0; p < kPartitions; ++p) {
      const PartitionSample sample =
          MakeReservoirSample(static_cast<Value>(p) * 100, 6);
      auto id = coord.RollIn("acme", "sales", sample, p, p);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      auto placed = reference.RollInAt("acme.sales", id.value(), sample, p, p);
      ASSERT_TRUE(placed.ok()) << placed.status().ToString();
      ids.push_back(id.value());
    }
    ASSERT_EQ(coord.ListAllPartitions("acme", "sales").value(), ids);

    if (num_nodes == 4) {
      // The placement must actually spread: a degenerate all-on-one-shard
      // layout would never exercise the coordinator's local joins.
      std::vector<bool> owns(num_nodes, false);
      for (const PartitionId id : ids) {
        owns[coord.ShardOf("acme", "sales", id)] = true;
      }
      EXPECT_GE(std::count(owns.begin(), owns.end(), true), 2);
    }

    // Full union.
    auto distributed = coord.Query("acme", "sales");
    ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
    auto local = reference.MergedSampleAll("acme.sales");
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(SampleBytes(distributed.value()), SampleBytes(local.value()));

    // Random subsets, unsorted on purpose: both sides canonicalize.
    Pcg64 rng(kSeed ^ num_nodes);
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<PartitionId> subset;
      for (const PartitionId id : ids) {
        if (rng.NextUint64() % 2 == 0) subset.push_back(id);
      }
      if (subset.empty()) subset.push_back(ids[rng.NextUint64() % ids.size()]);
      for (size_t i = subset.size(); i > 1; --i) {
        std::swap(subset[i - 1], subset[rng.NextUint64() % i]);
      }
      auto remote = coord.Query("acme", "sales", subset);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      auto expect = reference.MergedSample("acme.sales", subset);
      ASSERT_TRUE(expect.ok());
      EXPECT_EQ(SampleBytes(remote.value()), SampleBytes(expect.value()))
          << "subset trial " << trial;
    }

    // Roll-out shrinks the id set; the contract must hold on the remainder.
    ASSERT_TRUE(coord.RollOut("acme", "sales", ids[3]).ok());
    ASSERT_TRUE(reference.RollOut("acme.sales", ids[3]).ok());
    auto after = coord.Query("acme", "sales");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(SampleBytes(after.value()),
              SampleBytes(reference.MergedSampleAll("acme.sales").value()));
  }
}

TEST(ShardedQueryTest, PlacementIsStableAndUnionsAreComplete) {
  Deployment d = MakeDeployment(4, kSeed, 4 * kSingletonFootprintBytes);
  ASSERT_NE(d.coordinator, nullptr);
  ShardCoordinator& coord = *d.coordinator;
  ASSERT_TRUE(coord.CreateTenant("acme", {}).ok());
  ASSERT_TRUE(coord.CreateDataset("acme", "sales").ok());
  std::vector<PartitionId> ids;
  for (uint64_t p = 0; p < 12; ++p) {
    auto id = coord.RollIn("acme", "sales",
                           MakeReservoirSample(static_cast<Value>(p) * 10, 4));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }

  // ShardOf is a pure function: the same id always names the same home.
  for (const PartitionId id : ids) {
    EXPECT_EQ(coord.ShardOf("acme", "sales", id),
              coord.ShardOf("acme", "sales", id));
  }
  // Every partition lives on exactly the shard ShardOf names, and the
  // union over nodes recovers the full id set.
  size_t total = 0;
  for (size_t shard = 0; shard < coord.num_shards(); ++shard) {
    auto parts = coord.client(shard)->ListPartitions("acme", "sales");
    ASSERT_TRUE(parts.ok());
    total += parts.value().size();
    for (const PartitionInfo& info : parts.value()) {
      EXPECT_EQ(coord.ShardOf("acme", "sales", info.id), shard);
    }
  }
  EXPECT_EQ(total, ids.size());
  EXPECT_EQ(coord.ListAllPartitions("acme", "sales").value(), ids);
}

// --- Uniformity gate --------------------------------------------------------

constexpr uint64_t kUniformPartitions = 4;
constexpr uint64_t kValuesPerPartition = 2;
constexpr uint64_t kUniformityTrials = 1200;
constexpr double kAlpha = 1e-4;

/// One trial: a fresh trial-seeded 2-node deployment holding 4 reservoir
/// partitions of two values each, queried through the coordinator under a
/// merge bound of 2 singletons — an SRS of size 2 from the 8 stored
/// values. Returns the drawn values.
std::vector<Value> RunShardedTrial(Pcg64& trial_rng) {
  const uint64_t seed = trial_rng.NextUint64();
  Deployment d =
      MakeDeployment(2, seed, kValuesPerPartition * kSingletonFootprintBytes);
  if (d.coordinator == nullptr) return {};
  ShardCoordinator& coord = *d.coordinator;
  EXPECT_TRUE(coord.CreateTenant("t", {}).ok());
  EXPECT_TRUE(coord.CreateDataset("t", "w").ok());
  for (uint64_t p = 0; p < kUniformPartitions; ++p) {
    EXPECT_TRUE(
        coord
            .RollIn("t", "w",
                    MakeReservoirSample(
                        static_cast<Value>(p * kValuesPerPartition),
                        kValuesPerPartition))
            .ok());
  }
  auto merged = coord.Query("t", "w");
  EXPECT_TRUE(merged.ok()) << merged.status().ToString();
  if (!merged.ok()) return {};
  return merged.value().histogram().ToBag();
}

TEST(ShardedQueryProperty, DistributedMergesAreExactlyUniform) {
  std::vector<Value> population;
  for (uint64_t v = 0; v < kUniformPartitions * kValuesPerPartition; ++v) {
    population.push_back(static_cast<Value>(v));
  }
  Pcg64 rng(0x5EEDD157ULL);
  const UniformityReport report = RunSubsetUniformityExperiment(
      population, kUniformityTrials,
      [](Pcg64& trial_rng) { return RunShardedTrial(trial_rng); }, rng);
  ASSERT_GE(report.TestedClasses(), 1u);
  // The merge bound pins every draw at size 2: one class over C(8,2) = 28.
  const SizeClassResult& pinned = report.by_size.at(2);
  EXPECT_EQ(pinned.trials, kUniformityTrials);
  EXPECT_EQ(pinned.num_subsets, 28u);
  EXPECT_GT(report.MinPValue(), kAlpha);
}

}  // namespace
}  // namespace sampwh
