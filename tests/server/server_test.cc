// End-to-end coverage of the warehouse server: wire framing, admin and
// catalog verbs, roll-in/query round trips whose results are bit-identical
// to the embedded warehouse, exactly-once streaming ingest over the wire,
// and the stats/shutdown plumbing.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/wire.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

TEST(WireTest, FrameRoundTrip) {
  const std::string payload = "hello frame";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kWireFrameHeaderBytes + payload.size());
  std::string_view decoded;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, kWireDefaultMaxFrameBytes, &decoded, &consumed),
            FrameDecodeResult::kOk);
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(consumed, frame.size());
}

TEST(WireTest, PrefixNeedsMoreData) {
  const std::string frame = EncodeFrame("abcdef");
  std::string_view decoded;
  size_t consumed = 0;
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_EQ(DecodeFrame(std::string_view(frame).substr(0, cut),
                          kWireDefaultMaxFrameBytes, &decoded, &consumed),
              FrameDecodeResult::kNeedMoreData)
        << "cut=" << cut;
  }
}

TEST(WireTest, OversizedAndCorruptFramesAreRejected) {
  std::string frame = EncodeFrame("payload");
  std::string_view decoded;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame, /*max_frame_bytes=*/3, &decoded, &consumed),
            FrameDecodeResult::kOversized);
  frame.back() ^= 0x5A;  // corrupt one payload byte
  EXPECT_EQ(DecodeFrame(frame, kWireDefaultMaxFrameBytes, &decoded, &consumed),
            FrameDecodeResult::kBadCrc);
}

TEST(WireTest, ResponseHeadCarriesTypedStatus) {
  BinaryWriter writer;
  BeginResponse(&writer, Status::ResourceExhausted("quota"));
  const std::string payload = writer.Release();
  BinaryReader reader(payload);
  const Status status = ParseResponseHead(&reader);
  EXPECT_TRUE(status.IsResourceExhausted());
  EXPECT_EQ(status.message(), "quota");
}

TEST(ServerTest, BindsDistinctEphemeralPorts) {
  auto a = MustStart(TestServerOptions());
  auto b = MustStart(TestServerOptions());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->port(), 0);
  EXPECT_NE(b->port(), 0);
  EXPECT_NE(a->port(), b->port());
}

TEST(ServerTest, PingAndStats) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  auto banner = client->Ping();
  ASSERT_TRUE(banner.ok()) << banner.status().ToString();
  EXPECT_EQ(banner.value(), "sampwh.warehouse/1");
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().connections_accepted, 1u);
  EXPECT_GE(stats.value().requests_served, 2u);
  EXPECT_EQ(stats.value().protocol_errors, 0u);
}

TEST(ServerTest, TenantAndDatasetLifecycle) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  EXPECT_TRUE(client->CreateTenant("acme", {}).IsAlreadyExists());
  EXPECT_TRUE(client->CreateTenant("bad.name", {}).IsInvalidArgument());

  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());
  EXPECT_TRUE(client->CreateDataset("acme", "sales").IsAlreadyExists());
  EXPECT_TRUE(client->CreateDataset("ghost", "sales").IsNotFound());

  auto datasets = client->ListDatasets("acme");
  ASSERT_TRUE(datasets.ok());
  EXPECT_EQ(datasets.value(), std::vector<std::string>{"sales"});

  // The wire name is tenant-scoped; the warehouse stores the joined key.
  EXPECT_TRUE(server->warehouse_for_testing()->HasDataset("acme.sales"));

  ASSERT_TRUE(client->DropDataset("acme", "sales").ok());
  EXPECT_FALSE(server->warehouse_for_testing()->HasDataset("acme.sales"));
  EXPECT_TRUE(client->DropDataset("acme", "sales").IsNotFound());
}

TEST(ServerTest, RollInQueryRollOutRoundTrip) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());

  std::vector<PartitionId> ids;
  for (int p = 0; p < 5; ++p) {
    auto id = client->RollIn("acme", "sales", MakeReservoirSample(p * 10, 4),
                             /*min_timestamp=*/p, /*max_timestamp=*/p);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }

  auto parts = client->ListPartitions("acme", "sales");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 5u);
  EXPECT_EQ(parts.value()[2].parent_size, 4u);
  EXPECT_EQ(parts.value()[2].min_timestamp, 2u);

  // The remote merged sample must be bit-identical to what the embedded
  // warehouse computes — the wire adds transport, never randomness.
  auto remote = client->Query("acme", "sales");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto local = server->warehouse_for_testing()->MergedSampleAll("acme.sales");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(SampleBytes(remote.value()), SampleBytes(local.value()));

  // Subset query, same contract.
  const std::vector<PartitionId> subset = {ids[0], ids[2], ids[4]};
  auto remote_subset = client->Query("acme", "sales", subset);
  ASSERT_TRUE(remote_subset.ok());
  auto local_subset =
      server->warehouse_for_testing()->MergedSample("acme.sales", subset);
  ASSERT_TRUE(local_subset.ok());
  EXPECT_EQ(SampleBytes(remote_subset.value()),
            SampleBytes(local_subset.value()));

  ASSERT_TRUE(client->RollOut("acme", "sales", ids[1]).ok());
  EXPECT_TRUE(client->RollOut("acme", "sales", ids[1]).IsNotFound());
  auto after = client->ListPartitions("acme", "sales");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 4u);
}

TEST(ServerTest, RollInAtPlacesExplicitIds) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());

  auto placed =
      client->RollInAt("acme", "sales", 7, MakeReservoirSample(0, 3));
  ASSERT_TRUE(placed.ok());
  EXPECT_EQ(placed.value(), 7u);
  EXPECT_TRUE(
      client->RollInAt("acme", "sales", 7, MakeReservoirSample(10, 3))
          .status()
          .IsAlreadyExists());
  // The allocator stays ahead of explicit ids.
  auto allocated = client->RollIn("acme", "sales", MakeReservoirSample(20, 3));
  ASSERT_TRUE(allocated.ok());
  EXPECT_EQ(allocated.value(), 8u);
}

TEST(ServerTest, StreamingIngestIsExactlyOnceOverTheWire) {
  ServerOptions options = TestServerOptions();
  options.ingest_partition_elements = 64;
  auto server = MustStart(std::move(options));
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "events").ok());

  auto open = client->IngestOpen("acme", "events");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open.value().next_sequence, 0u);

  std::vector<Value> batch(50);
  for (size_t i = 0; i < batch.size(); ++i) batch[i] = static_cast<Value>(i);
  auto first = client->IngestAppend("acme", "events", 0, batch);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().next_sequence, 50u);

  // At-least-once delivery: the duplicate is acknowledged and skipped.
  auto duplicate = client->IngestAppend("acme", "events", 0, batch);
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate.value().next_sequence, 50u);

  // A straddling batch applies only its unapplied suffix (crosses the
  // 64-element partition boundary, so one partition rolls in).
  auto straddle = client->IngestAppend("acme", "events", 25, batch);
  ASSERT_TRUE(straddle.ok());
  EXPECT_EQ(straddle.value().next_sequence, 75u);
  EXPECT_EQ(straddle.value().partitions_rolled_in, 1u);

  // A delivery gap is a typed error, nothing applied.
  EXPECT_TRUE(client->IngestAppend("acme", "events", 100, batch)
                  .status()
                  .IsFailedPrecondition());

  auto flushed = client->IngestFlush("acme", "events");
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed.value().next_sequence, 75u);
  EXPECT_EQ(flushed.value().partitions_rolled_in, 2u);

  auto parts = client->ListPartitions("acme", "events");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 2u);
  EXPECT_EQ(parts.value()[0].parent_size, 64u);
  EXPECT_EQ(parts.value()[1].parent_size, 11u);

  EXPECT_TRUE(client->IngestAppend("acme", "ghost", 0, batch)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ServerTest, ShutdownVerbStopsTheServer) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Shutdown().ok());
  server->Stop();
  EXPECT_TRUE(server->stopped());
  EXPECT_FALSE(
      WarehouseClient::Connect(server->host(), server->port()).ok());
}

TEST(ServerTest, ShutdownVerbCanBeDisabled) {
  ServerOptions options = TestServerOptions();
  options.allow_remote_shutdown = false;
  auto server = MustStart(std::move(options));
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Shutdown().IsFailedPrecondition());
  EXPECT_FALSE(server->stop_requested());
}

}  // namespace
}  // namespace sampwh
