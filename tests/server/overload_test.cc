// Admission-control and drain battery. Overload sheds load explicitly: a
// connection beyond max_connections is answered a structured
// kResourceExhausted frame — never a silent FIN, never a hang — before any
// thread is spawned, and a draining server answers kUnavailable the same
// way. Shed and drained requests never reach a verb handler, so no tenant
// quota charge can leak from them. Drain itself keeps serving in-flight
// connections: a streaming ingest session finishes exactly-once (duplicate
// re-drives acknowledged and skipped) while new connections are refused.

#include "src/server/server.h"

#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/server/client.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

ClientOptions NoRetryOptions() {
  ClientOptions options;
  options.max_retries = 0;
  options.breaker_failure_threshold = 0;
  return options;
}

TEST(OverloadTest, OverCapConnectionsGetStructuredResourceExhausted) {
  ServerOptions options = TestServerOptions();
  options.max_connections = 2;
  options.bootstrap_tenants["acme"] = TenantQuota{};
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);

  // Two connections fill the cap and stay in flight.
  auto c1 = MustConnect(*server, NoRetryOptions());
  auto c2 = MustConnect(*server, NoRetryOptions());
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  ASSERT_TRUE(c1->Ping().ok());
  ASSERT_TRUE(c2->Ping().ok());
  ASSERT_TRUE(c1->CreateDataset("acme", "sales").ok());

  // The third is accepted at the TCP layer but refused on the wire, in
  // bounded time, with the machine-readable reason.
  auto c3 = WarehouseClient::Connect(server->host(), server->port(),
                                     NoRetryOptions());
  ASSERT_TRUE(c3.ok()) << c3.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  auto refused = c3.value()->RollIn("acme", "sales",
                                    MakeReservoirSample(0, 4));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("connection limit"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_GE(server->stats().connections_shed, 1u);

  // The shed roll-in never reached a handler: nothing was stored, nothing
  // was charged against the tenant.
  auto parts = c1->ListPartitions("acme", "sales");
  ASSERT_TRUE(parts.ok());
  EXPECT_TRUE(parts.value().empty());
  auto tenant = c1->GetTenantStats("acme");
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  EXPECT_EQ(tenant.value().usage.partitions, 0u);
  EXPECT_EQ(tenant.value().usage.bytes, 0u);

  // In-cap connections are unaffected by the shed.
  EXPECT_TRUE(c1->Ping().ok());
  EXPECT_TRUE(c2->Ping().ok());
}

TEST(OverloadTest, DrainRefusesNewConnectionsAndFinishesIngestExactlyOnce) {
  ServerOptions options = TestServerOptions();  // 256 elements/partition
  options.bootstrap_tenants["acme"] = TenantQuota{};
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);

  auto ingest = MustConnect(*server, NoRetryOptions());
  ASSERT_NE(ingest, nullptr);
  ASSERT_TRUE(ingest->CreateDataset("acme", "logs").ok());
  auto opened = ingest->IngestOpen("acme", "logs");
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened.value().next_sequence, 0u);

  std::vector<Value> batch(128);
  std::iota(batch.begin(), batch.end(), Value{0});
  auto ack = ingest->IngestAppend("acme", "logs", /*sequence=*/0, batch);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().next_sequence, 128u);

  server->BeginDrain();
  EXPECT_TRUE(server->draining());

  // A new connection is refused with a structured kUnavailable.
  auto late = WarehouseClient::Connect(server->host(), server->port(),
                                       NoRetryOptions());
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  auto refused = late.value()->Ping();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("draining"), std::string::npos)
      << refused.status().ToString();

  // The in-flight session keeps streaming through the drain.
  ack = ingest->IngestAppend("acme", "logs", /*sequence=*/128, batch);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().next_sequence, 256u);

  // An at-least-once re-drive of the same batch is acknowledged and
  // skipped — the watermark does not move, nothing is double-applied.
  auto dup = ingest->IngestAppend("acme", "logs", /*sequence=*/128, batch);
  ASSERT_TRUE(dup.ok()) << dup.status().ToString();
  EXPECT_EQ(dup.value().next_sequence, 256u);

  std::vector<Value> tail(256);
  std::iota(tail.begin(), tail.end(), Value{1'000});
  ack = ingest->IngestAppend("acme", "logs", /*sequence=*/256, tail);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().next_sequence, 512u);
  auto flushed = ingest->IngestFlush("acme", "logs");
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(flushed.value().partitions_rolled_in, 2u);

  // Quota was charged for exactly the two closed partitions (the duplicate
  // re-drive charged nothing), observed over the still-served connection.
  auto tenant = ingest->GetTenantStats("acme");
  ASSERT_TRUE(tenant.ok()) << tenant.status().ToString();
  EXPECT_EQ(tenant.value().usage.partitions, 2u);

  // Drained only once the in-flight connection ends.
  EXPECT_FALSE(server->WaitDrained(/*deadline_millis=*/50));
  ingest.reset();
  EXPECT_TRUE(server->WaitDrained(/*deadline_millis=*/5'000));
  EXPECT_GE(server->stats().connections_shed, 1u);

  // Exactly-once, end to end: 512 parent elements in 2 partitions.
  auto merged = server->warehouse_for_testing()->MergedSampleAll("acme.logs");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().parent_size(), 512u);
}

TEST(OverloadTest, V1AndV2RequestHeadsCoexistOnOneServer) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto v1 = MustConnect(*server);  // deadline 0 keeps the v1 head
  ClientOptions with_deadline;
  with_deadline.deadline_millis = 60'000;
  auto v2 = MustConnect(*server, with_deadline);  // v2 head + extension
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);

  ASSERT_TRUE(v1->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(v1->CreateDataset("acme", "sales").ok());
  for (uint64_t p = 0; p < 5; ++p) {
    ASSERT_TRUE(
        v1->RollIn("acme", "sales",
                   MakeReservoirSample(static_cast<Value>(p * 10), 4))
            .ok());
  }
  // Interleaved old- and new-style requests are served alike, and answers
  // do not depend on which head carried the query.
  auto old_style = v1->Query("acme", "sales");
  auto new_style = v2->Query("acme", "sales");
  ASSERT_TRUE(old_style.ok()) << old_style.status().ToString();
  ASSERT_TRUE(new_style.ok()) << new_style.status().ToString();
  EXPECT_EQ(SampleBytes(old_style.value()), SampleBytes(new_style.value()));
  EXPECT_TRUE(v1->Ping().ok());
  EXPECT_TRUE(v2->Ping().ok());
}

}  // namespace
}  // namespace sampwh
