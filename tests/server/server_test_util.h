// Shared fixtures for the warehouse-server test battery: in-process
// servers on ephemeral loopback ports, and small deterministic samples.

#ifndef SAMPWH_TESTS_SERVER_SERVER_TEST_UTIL_H_
#define SAMPWH_TESTS_SERVER_SERVER_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace sampwh {

/// Server options every server test starts from: in-memory store,
/// ephemeral port (bind 0, read back — never a fixed number that parallel
/// ctest processes could race on), merge memo enabled (the
/// distributed-exactness contract requires identity-derived node RNGs),
/// and a short read timeout so hostile-peer tests run fast.
inline ServerOptions TestServerOptions(uint64_t seed = 0x5157313136ULL) {
  ServerOptions options;
  options.port = 0;
  options.read_timeout_millis = 2'000;
  options.warehouse.seed = seed;
  options.warehouse.merge_memo_bytes = 4u << 20;
  options.warehouse.sampler.footprint_bound_bytes = 512;
  options.ingest_partition_elements = 256;
  return options;
}

inline std::unique_ptr<WarehouseServer> MustStart(ServerOptions options) {
  auto server = WarehouseServer::Start(std::move(options));
  if (!server.ok()) {
    ADD_FAILURE() << "server start failed: " << server.status().ToString();
    return nullptr;
  }
  return std::move(server).value();
}

inline std::unique_ptr<WarehouseClient> MustConnect(
    const WarehouseServer& server, ClientOptions options = {}) {
  auto client =
      WarehouseClient::Connect(server.host(), server.port(), options);
  if (!client.ok()) {
    ADD_FAILURE() << "connect failed: " << client.status().ToString();
    return nullptr;
  }
  return std::move(client).value();
}

/// A reservoir sample holding `count` distinct values starting at `first`,
/// covering its whole parent (merges over such samples stay on the HR
/// path with observable value sets).
inline PartitionSample MakeReservoirSample(Value first, uint64_t count) {
  CompactHistogram h;
  for (uint64_t i = 0; i < count; ++i) {
    h.Insert(first + static_cast<Value>(i), 1);
  }
  return PartitionSample::MakeReservoir(h, count,
                                        count * kSingletonFootprintBytes);
}

inline std::string SampleBytes(const PartitionSample& sample) {
  BinaryWriter writer;
  sample.SerializeTo(&writer);
  return writer.Release();
}

}  // namespace sampwh

#endif  // SAMPWH_TESTS_SERVER_SERVER_TEST_UTIL_H_
