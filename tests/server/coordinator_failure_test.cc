// Coordinator error-path battery: a sharded deployment losing nodes at
// startup, mid-query and across restarts. The degraded-operation contract
// under test: with allow_partial, the coordinator answers from the
// surviving shards, flags the result partial with the missing shards (and
// missing ids, for explicit-id queries) — and the partial answer is
// BIT-IDENTICAL to a single-node reference warehouse queried over exactly
// the surviving id set. After the dead node restarts on its old port from
// its durable store, strict queries return full exact answers again.

#include "src/server/coordinator.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/warehouse/warehouse.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;
constexpr uint64_t kBound = 4 * kSingletonFootprintBytes;
constexpr uint64_t kPartitions = 12;

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sampwh_coordfail_" + tag +
                          "_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

ServerOptions NodeOptions(const std::string& store_dir) {
  ServerOptions options = TestServerOptions(kSeed);
  options.warehouse.merge.footprint_bound_bytes = kBound;
  options.store_directory = store_dir;
  return options;
}

/// Client knobs that keep failure detection fast: one retry, short
/// timeouts, a 2-failure breaker with a short open window.
ClientOptions FastFailClientOptions() {
  ClientOptions options;
  options.connect_timeout_millis = 1'000;
  options.read_timeout_millis = 2'000;
  options.max_retries = 1;
  options.backoff_initial_millis = 5;
  options.backoff_max_millis = 20;
  options.breaker_failure_threshold = 2;
  options.breaker_open_millis = 250;
  return options;
}

CoordinatorOptions TolerantCoordinatorOptions() {
  CoordinatorOptions options;
  options.seed = kSeed;
  options.merge.footprint_bound_bytes = kBound;
  options.client = FastFailClientOptions();
  options.tolerate_unreachable = true;
  return options;
}

struct Fixture {
  std::vector<std::string> dirs;
  std::vector<ShardNodeAddress> nodes;
  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::unique_ptr<ShardCoordinator> coordinator;
  std::unique_ptr<Warehouse> reference;
  std::vector<PartitionId> ids;
};

/// Two file-backed nodes, a strict coordinator, `kPartitions` partitions
/// rolled in through it and mirrored into a single-node reference
/// warehouse under the same seed and merge options.
Fixture MakeFixture(const std::string& tag) {
  Fixture f;
  for (size_t i = 0; i < 2; ++i) {
    f.dirs.push_back(TempDir(tag + std::to_string(i)));
    auto server = MustStart(NodeOptions(f.dirs.back()));
    if (server == nullptr) return {};
    f.nodes.push_back({server->host(), server->port()});
    f.servers.push_back(std::move(server));
  }
  CoordinatorOptions options = TolerantCoordinatorOptions();
  options.tolerate_unreachable = false;
  auto coordinator = ShardCoordinator::Connect(f.nodes, options);
  if (!coordinator.ok()) {
    ADD_FAILURE() << "coordinator: " << coordinator.status().ToString();
    return {};
  }
  f.coordinator = std::move(coordinator).value();

  f.reference = std::make_unique<Warehouse>(NodeOptions("").warehouse);
  EXPECT_TRUE(f.coordinator->CreateTenant("acme", {}).ok());
  EXPECT_TRUE(f.coordinator->CreateDataset("acme", "sales").ok());
  EXPECT_TRUE(f.reference->CreateDataset("acme.sales").ok());
  for (uint64_t p = 0; p < kPartitions; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(p) * 100, 6);
    auto id = f.coordinator->RollIn("acme", "sales", sample, p, p);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return {};
    EXPECT_TRUE(
        f.reference->RollInAt("acme.sales", id.value(), sample, p, p).ok());
    f.ids.push_back(id.value());
  }
  return f;
}

/// The requested ids whose home shard is NOT in `missing`.
std::vector<PartitionId> Surviving(const ShardCoordinator& coord,
                                   const std::vector<PartitionId>& ids,
                                   const std::vector<size_t>& missing) {
  std::vector<PartitionId> out;
  for (const PartitionId id : ids) {
    if (std::find(missing.begin(), missing.end(),
                  coord.ShardOf("acme", "sales", id)) == missing.end()) {
      out.push_back(id);
    }
  }
  return out;
}

TEST(CoordinatorFailureTest, NodeUnreachableAtStartup) {
  Fixture f = MakeFixture("boot");
  ASSERT_NE(f.coordinator, nullptr);
  f.coordinator.reset();
  f.servers[1]->Stop();

  // Strict connect requires every node.
  auto strict =
      ShardCoordinator::Connect(f.nodes, [] {
        CoordinatorOptions o = TolerantCoordinatorOptions();
        o.tolerate_unreachable = false;
        return o;
      }());
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsIOError()) << strict.status().ToString();

  // A tolerant coordinator starts anyway and serves degraded queries.
  auto tolerant =
      ShardCoordinator::Connect(f.nodes, TolerantCoordinatorOptions());
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  ShardCoordinator& coord = *tolerant.value();

  // Strict query: the dead shard fails it.
  auto full = coord.Query("acme", "sales");
  ASSERT_FALSE(full.ok());
  EXPECT_TRUE(full.status().IsIOError() || full.status().IsUnavailable() ||
              full.status().IsDeadlineExceeded())
      << full.status().ToString();

  // Degraded all-partitions query: partial, missing shard 1, bit-identical
  // to the reference over the surviving ids.
  QueryOptions degraded;
  degraded.allow_partial = true;
  auto partial =
      coord.QueryWithOptions("acme", "sales", /*ids=*/{}, degraded);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial.value().partial);
  EXPECT_EQ(partial.value().missing_shards, std::vector<size_t>{1});
  EXPECT_TRUE(partial.value().missing_ids.empty());  // inventory unknowable
  const std::vector<PartitionId> surviving =
      Surviving(coord, f.ids, partial.value().missing_shards);
  ASSERT_FALSE(surviving.empty());
  ASSERT_LT(surviving.size(), f.ids.size());
  auto expect = f.reference->MergedSample("acme.sales", surviving);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(SampleBytes(partial.value().sample),
            SampleBytes(expect.value()));

  // Explicit-id degraded query: the excluded ids are named.
  auto named = coord.QueryWithOptions("acme", "sales", f.ids, degraded);
  ASSERT_TRUE(named.ok()) << named.status().ToString();
  EXPECT_TRUE(named.value().partial);
  std::vector<PartitionId> dead_ids;
  for (const PartitionId id : f.ids) {
    if (coord.ShardOf("acme", "sales", id) == 1) dead_ids.push_back(id);
  }
  EXPECT_EQ(named.value().missing_ids, dead_ids);
  EXPECT_EQ(SampleBytes(named.value().sample), SampleBytes(expect.value()));

  EXPECT_GE(coord.stats().partial_queries_served, 2u);
  const std::vector<bool> health = coord.CheckHealth();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_TRUE(health[0]);
  EXPECT_FALSE(health[1]);
}

TEST(CoordinatorFailureTest, NodeDyingMidMergeThenRestartRecovery) {
  Fixture f = MakeFixture("midq");
  ASSERT_NE(f.coordinator, nullptr);
  ShardCoordinator& coord = *f.coordinator;

  // Healthy baseline: strict full answer matches the reference.
  auto before = coord.Query("acme", "sales");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(SampleBytes(before.value()),
            SampleBytes(f.reference->MergedSampleAll("acme.sales").value()));

  // Node 1 dies with the coordinator's connections warm. An explicit-id
  // query goes straight to the merge, which discovers the death mid-tree
  // and — under allow_partial — restarts over the survivors.
  const uint16_t dead_port = f.servers[1]->port();
  f.servers[1]->Stop();

  QueryOptions degraded;
  degraded.allow_partial = true;
  degraded.deadline_millis = 10'000;
  auto partial = coord.QueryWithOptions("acme", "sales", f.ids, degraded);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial.value().partial);
  EXPECT_EQ(partial.value().missing_shards, std::vector<size_t>{1});
  const std::vector<PartitionId> surviving =
      Surviving(coord, f.ids, partial.value().missing_shards);
  auto expect = f.reference->MergedSample("acme.sales", surviving);
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(SampleBytes(partial.value().sample),
            SampleBytes(expect.value()));
  EXPECT_GE(coord.stats().partial_queries_served, 1u);
  EXPECT_GE(coord.stats().transport_errors, 1u);

  // The node restarts on its old port from its durable store (the server
  // listener binds with SO_REUSEADDR, so the rebind is immediate). Tenants
  // are provisioning state, not store state: the restarted node gets its
  // tenant back the way the serve tool would, via bootstrap.
  ServerOptions revived = NodeOptions(f.dirs[1]);
  revived.port = dead_port;
  revived.bootstrap_tenants["acme"] = TenantQuota{};
  f.servers[1] = MustStart(revived);
  ASSERT_NE(f.servers[1], nullptr);

  // Past the breaker's open window, the next strict query reconnects and
  // the full exact answer is back.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto healed = coord.Query("acme", "sales");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(SampleBytes(healed.value()),
            SampleBytes(f.reference->MergedSampleAll("acme.sales").value()));
  const std::vector<bool> health = coord.CheckHealth();
  EXPECT_TRUE(health[0]);
  EXPECT_TRUE(health[1]);
}

TEST(CoordinatorFailureTest, AllShardsDownIsCleanUnavailable) {
  Fixture f = MakeFixture("alldown");
  ASSERT_NE(f.coordinator, nullptr);
  ShardCoordinator& coord = *f.coordinator;
  f.servers[0]->Stop();
  f.servers[1]->Stop();

  QueryOptions degraded;
  degraded.allow_partial = true;
  auto none = coord.QueryWithOptions("acme", "sales", f.ids, degraded);
  ASSERT_FALSE(none.ok());
  EXPECT_TRUE(none.status().IsUnavailable() || none.status().IsIOError())
      << none.status().ToString();
}

}  // namespace
}  // namespace sampwh
