// End-to-end crash-resume over the wire: a real `sampwh_tool serve`
// process is SIGKILLed mid-ingest at seeded batch indices, restarted on
// the same store, and the client re-drives its stream at-least-once from
// sequence 0 after every crash. The final warehouse state — merged query
// bytes and partition metadata — must be BIT-IDENTICAL to an uninterrupted
// run of the same stream against a separate store. This exercises the
// whole durability stack through the RPC front end: the forced checkpoint
// before the IngestOpen ack, the two-phase partition-close protocol, the
// async delta WAL, manifest auto-persistence, and duplicate-batch
// acknowledgment on replay.

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kTotalElements = 400;
constexpr uint64_t kBatchElements = 37;
constexpr uint64_t kPartitionElements = 64;

Value ElementAt(uint64_t i) {
  return static_cast<Value>((i * 2654435761ull) % 1000);
}

std::vector<Value> BatchAt(uint64_t batch) {
  const uint64_t begin = batch * kBatchElements;
  const uint64_t end = std::min(kTotalElements, begin + kBatchElements);
  std::vector<Value> values;
  for (uint64_t i = begin; i < end; ++i) values.push_back(ElementAt(i));
  return values;
}

uint64_t NumBatches() {
  return (kTotalElements + kBatchElements - 1) / kBatchElements;
}

/// A `sampwh_tool serve` child process. Kill() delivers SIGKILL — the
/// crash under test; Shutdown() asks nicely over the wire. The destructor
/// SIGKILLs leftovers so a failing test never leaks a daemon.
class ServeProcess {
 public:
  static std::unique_ptr<ServeProcess> Start(const std::string& store_dir,
                                             const std::string& port_file) {
    ::unlink(port_file.c_str());
    const pid_t pid = ::fork();
    if (pid < 0) {
      ADD_FAILURE() << "fork: " << std::strerror(errno);
      return nullptr;
    }
    if (pid == 0) {
      const char* argv[] = {SAMPWH_TOOL_PATH,
                            "serve",
                            store_dir.c_str(),
                            "--port-file",
                            port_file.c_str(),
                            "--partition-elements",
                            "64",
                            "--tenant",
                            "acme",
                            nullptr};
      ::execv(SAMPWH_TOOL_PATH, const_cast<char* const*>(argv));
      ::_exit(127);  // exec failed
    }
    auto process = std::unique_ptr<ServeProcess>(new ServeProcess(pid));
    // The tool writes the port file (atomically) only once it is serving.
    for (int spin = 0; spin < 750; ++spin) {
      std::ifstream in(port_file);
      int port = 0;
      if (in >> port && port > 0) {
        process->port_ = static_cast<uint16_t>(port);
        return process;
      }
      ::usleep(20'000);
    }
    ADD_FAILURE() << "serve process never published its port";
    return nullptr;
  }

  ~ServeProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
    }
  }

  uint16_t port() const { return port_; }

  /// SIGKILL — no flush, no checkpoint, no goodbye.
  void Kill() {
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  /// Orderly remote shutdown; expects the process to exit cleanly.
  void Shutdown(WarehouseClient* client) {
    EXPECT_TRUE(client->Shutdown().ok());
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid_, &wstatus, 0), pid_);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
    pid_ = -1;
  }

 private:
  explicit ServeProcess(pid_t pid) : pid_(pid) {}
  pid_t pid_;
  uint16_t port_ = 0;
};

std::unique_ptr<WarehouseClient> ConnectTo(const ServeProcess& process) {
  auto client = WarehouseClient::Connect("127.0.0.1", process.port());
  if (!client.ok()) {
    ADD_FAILURE() << "connect: " << client.status().ToString();
    return nullptr;
  }
  return std::move(client).value();
}

/// Re-drives the stream from sequence 0 through batch `last` inclusive —
/// at-least-once delivery: already-applied batches must be acknowledged
/// and skipped, new ones applied exactly once.
void DriveBatches(WarehouseClient* client, uint64_t last) {
  auto open = client->IngestOpen("acme", "events");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  for (uint64_t b = 0; b <= last; ++b) {
    const std::vector<Value> values = BatchAt(b);
    auto ack =
        client->IngestAppend("acme", "events", b * kBatchElements, values);
    ASSERT_TRUE(ack.ok()) << "batch " << b << ": " << ack.status().ToString();
    EXPECT_GE(ack.value().next_sequence, b * kBatchElements + values.size());
  }
}

struct FinalState {
  std::string merged_bytes;
  std::vector<PartitionInfo> partitions;
};

void ReadFinalState(WarehouseClient* client, FinalState* out) {
  auto merged = client->Query("acme", "events");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  out->merged_bytes = SampleBytes(merged.value());
  auto parts = client->ListPartitions("acme", "events");
  ASSERT_TRUE(parts.ok());
  out->partitions = parts.value();
}

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sampwh_crash_" + tag + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(CrashResumeTest, SigkilledIngestReplaysToBitIdenticalState) {
  // --- Uninterrupted reference run -----------------------------------------
  const std::string ref_dir = TempDir("ref");
  FinalState reference;
  {
    auto server = ServeProcess::Start(ref_dir, ref_dir + "/port");
    ASSERT_NE(server, nullptr);
    auto client = ConnectTo(*server);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->CreateDataset("acme", "events").ok());
    ASSERT_NO_FATAL_FAILURE(DriveBatches(client.get(), NumBatches() - 1));
    auto flushed = client->IngestFlush("acme", "events");
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(flushed.value().next_sequence, kTotalElements);
    EXPECT_EQ(flushed.value().partitions_rolled_in,
              (kTotalElements + kPartitionElements - 1) / kPartitionElements);
    ASSERT_NO_FATAL_FAILURE(ReadFinalState(client.get(), &reference));
    server->Shutdown(client.get());
  }
  ASSERT_EQ(reference.partitions.size(), 7u);

  // --- Crashed run: SIGKILL mid-ingest at seeded batch indices -------------
  const std::string crash_dir = TempDir("crash");
  const uint64_t crash_after_batch[] = {2, 5, 9};
  int restart = 0;
  {
    auto server =
        ServeProcess::Start(crash_dir, crash_dir + "/port.boot");
    ASSERT_NE(server, nullptr);
    auto client = ConnectTo(*server);
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->CreateDataset("acme", "events").ok());
    ASSERT_NO_FATAL_FAILURE(DriveBatches(client.get(), crash_after_batch[0]));
    server->Kill();
  }
  for (size_t c = 1; c < std::size(crash_after_batch); ++c, ++restart) {
    auto server = ServeProcess::Start(
        crash_dir, crash_dir + "/port." + std::to_string(restart));
    ASSERT_NE(server, nullptr);
    auto client = ConnectTo(*server);
    ASSERT_NE(client, nullptr);
    // Re-drive from 0: everything durable is acked as duplicate, the tail
    // replays against the checkpointed RNG.
    ASSERT_NO_FATAL_FAILURE(DriveBatches(client.get(), crash_after_batch[c]));
    server->Kill();
  }

  // --- Final restart: complete the stream and compare ----------------------
  FinalState resumed;
  {
    auto server = ServeProcess::Start(crash_dir, crash_dir + "/port.final");
    ASSERT_NE(server, nullptr);
    auto client = ConnectTo(*server);
    ASSERT_NE(client, nullptr);
    ASSERT_NO_FATAL_FAILURE(DriveBatches(client.get(), NumBatches() - 1));
    auto flushed = client->IngestFlush("acme", "events");
    ASSERT_TRUE(flushed.ok());
    EXPECT_EQ(flushed.value().next_sequence, kTotalElements);
    ASSERT_NO_FATAL_FAILURE(ReadFinalState(client.get(), &resumed));
    server->Shutdown(client.get());
  }

  // Bit-identical merged sample, identical partition metadata: the crashes
  // were invisible.
  EXPECT_EQ(resumed.merged_bytes, reference.merged_bytes);
  ASSERT_EQ(resumed.partitions.size(), reference.partitions.size());
  for (size_t i = 0; i < reference.partitions.size(); ++i) {
    EXPECT_EQ(resumed.partitions[i].id, reference.partitions[i].id);
    EXPECT_EQ(resumed.partitions[i].parent_size,
              reference.partitions[i].parent_size);
    EXPECT_EQ(resumed.partitions[i].sample_size,
              reference.partitions[i].sample_size);
  }
}

}  // namespace
}  // namespace sampwh
