// Tenant catalog and multi-tenancy battery: id validation and key
// splitting, charge/credit bookkeeping, and — over the wire — full
// isolation of same-named datasets across tenants plus charge-before-mutate
// quota enforcement (exhaustion is a clean typed error that leaves no
// partial roll-in behind).

#include "src/server/tenant.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

TEST(TenantIdTest, ValidatesCharsetLengthAndDot) {
  EXPECT_TRUE(ValidateTenantId("acme").ok());
  EXPECT_TRUE(ValidateTenantId("Tenant_01-x").ok());
  EXPECT_TRUE(ValidateTenantId(std::string(64, 'a')).ok());

  EXPECT_TRUE(ValidateTenantId("").IsInvalidArgument());
  EXPECT_TRUE(ValidateTenantId(std::string(65, 'a')).IsInvalidArgument());
  EXPECT_TRUE(ValidateTenantId("has.dot").IsInvalidArgument());
  EXPECT_TRUE(ValidateTenantId("has/slash").IsInvalidArgument());
  EXPECT_TRUE(ValidateTenantId("has space").IsInvalidArgument());
}

TEST(TenantIdTest, KeyJoinAndSplitRoundTrip) {
  auto key = MakeTenantDatasetKey("acme", "sales");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value(), "acme.sales");

  std::string tenant, dataset;
  ASSERT_TRUE(SplitTenantDatasetKey(key.value(), &tenant, &dataset).ok());
  EXPECT_EQ(tenant, "acme");
  EXPECT_EQ(dataset, "sales");

  // Dataset names may themselves contain dots; the first '.' is the tenant
  // boundary because tenant ids exclude it.
  auto dotted = MakeTenantDatasetKey("acme", "sales.eu.2026");
  ASSERT_TRUE(dotted.ok());
  ASSERT_TRUE(SplitTenantDatasetKey(dotted.value(), &tenant, &dataset).ok());
  EXPECT_EQ(tenant, "acme");
  EXPECT_EQ(dataset, "sales.eu.2026");

  EXPECT_FALSE(MakeTenantDatasetKey("bad.tenant", "sales").ok());
  EXPECT_FALSE(MakeTenantDatasetKey("acme", "").ok());
  // The joined key must respect the dataset-id length bound (200 bytes).
  EXPECT_FALSE(
      MakeTenantDatasetKey(std::string(64, 'a'), std::string(150, 'd')).ok());
}

TEST(TenantCatalogTest, ChargeAndCreditBookkeeping) {
  TenantCatalog catalog;
  ASSERT_TRUE(catalog.CreateTenant("acme", {}).ok());
  EXPECT_TRUE(catalog.CreateTenant("acme", {}).IsAlreadyExists());
  EXPECT_TRUE(catalog.ChargeDataset("ghost").IsNotFound());

  TenantQuota quota;
  quota.max_bytes = 1000;
  quota.max_partitions = 2;
  quota.max_datasets = 1;
  ASSERT_TRUE(catalog.SetQuota("acme", quota).ok());

  ASSERT_TRUE(catalog.ChargeDataset("acme").ok());
  EXPECT_TRUE(catalog.ChargeDataset("acme").IsResourceExhausted());

  ASSERT_TRUE(catalog.ChargePartition("acme", "acme.sales", 1, 400).ok());
  ASSERT_TRUE(catalog.ChargePartition("acme", "acme.sales", 2, 400).ok());
  // Third partition trips the partition quota; a smaller byte charge would
  // still fit, so the rejection must charge nothing.
  EXPECT_TRUE(catalog.ChargePartition("acme", "acme.sales", 3, 100)
                  .IsResourceExhausted());
  auto usage = catalog.GetUsage("acme");
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().bytes, 800u);
  EXPECT_EQ(usage.value().partitions, 2u);
  EXPECT_EQ(usage.value().datasets, 1u);

  // Credit is exact: it returns the recorded charge, not the caller's
  // current guess.
  catalog.CreditPartition("acme", "acme.sales", 1);
  usage = catalog.GetUsage("acme");
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().bytes, 400u);
  EXPECT_EQ(usage.value().partitions, 1u);
  // Unknown charge: no-op, never underflow.
  catalog.CreditPartition("acme", "acme.sales", 99);
  EXPECT_EQ(catalog.GetUsage("acme").value().bytes, 400u);

  // Byte quota: 400 used, a 700-byte partition would exceed 1000.
  EXPECT_TRUE(catalog.ChargePartition("acme", "acme.sales", 4, 700)
                  .IsResourceExhausted());
  // ... but force pushes past it (startup reconciliation semantics).
  ASSERT_TRUE(
      catalog.ChargePartition("acme", "acme.sales", 4, 700, /*force=*/true)
          .ok());
  EXPECT_EQ(catalog.GetUsage("acme").value().bytes, 1100u);

  // Dropping the dataset credits every partition charge under its key.
  catalog.CreditDataset("acme", "acme.sales");
  usage = catalog.GetUsage("acme");
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().bytes, 0u);
  EXPECT_EQ(usage.value().partitions, 0u);
  EXPECT_EQ(usage.value().datasets, 0u);
}

TEST(TenantCatalogTest, RenameMovesProvisionalCharge) {
  TenantCatalog catalog;
  ASSERT_TRUE(catalog.CreateTenant("acme", {}).ok());
  const PartitionId provisional = (1ull << 62) + 17;
  ASSERT_TRUE(
      catalog.ChargePartition("acme", "acme.sales", provisional, 256).ok());
  catalog.RenamePartitionCharge("acme", "acme.sales", provisional, 5);
  // The charge now credits under the real id, not the provisional one.
  catalog.CreditPartition("acme", "acme.sales", provisional);
  EXPECT_EQ(catalog.GetUsage("acme").value().bytes, 256u);
  catalog.CreditPartition("acme", "acme.sales", 5);
  EXPECT_EQ(catalog.GetUsage("acme").value().bytes, 0u);
}

TEST(TenantServerTest, SameNamedDatasetsAreFullyIsolated) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);

  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client->CreateTenant("beta", {}).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());
  ASSERT_TRUE(client->CreateDataset("beta", "sales").ok());

  // Disjoint value ranges so cross-talk would be visible in the samples.
  ASSERT_TRUE(
      client->RollIn("acme", "sales", MakeReservoirSample(0, 8)).ok());
  ASSERT_TRUE(
      client->RollIn("acme", "sales", MakeReservoirSample(100, 8)).ok());
  ASSERT_TRUE(
      client->RollIn("beta", "sales", MakeReservoirSample(1000, 8)).ok());

  auto acme_parts = client->ListPartitions("acme", "sales");
  auto beta_parts = client->ListPartitions("beta", "sales");
  ASSERT_TRUE(acme_parts.ok());
  ASSERT_TRUE(beta_parts.ok());
  EXPECT_EQ(acme_parts.value().size(), 2u);
  EXPECT_EQ(beta_parts.value().size(), 1u);
  // Partition ids are allocated per internal key, so both tenants start
  // from the same id without colliding.
  EXPECT_EQ(acme_parts.value()[0].id, beta_parts.value()[0].id);

  // Each tenant's query resolves against its own internal key only.
  auto acme_query = client->Query("acme", "sales");
  auto beta_query = client->Query("beta", "sales");
  ASSERT_TRUE(acme_query.ok());
  ASSERT_TRUE(beta_query.ok());
  Warehouse* warehouse = server->warehouse_for_testing();
  EXPECT_EQ(SampleBytes(acme_query.value()),
            SampleBytes(warehouse->MergedSampleAll("acme.sales").value()));
  EXPECT_EQ(SampleBytes(beta_query.value()),
            SampleBytes(warehouse->MergedSampleAll("beta.sales").value()));
  EXPECT_NE(SampleBytes(acme_query.value()), SampleBytes(beta_query.value()));

  // Usage is tracked per tenant.
  auto acme_stats = client->GetTenantStats("acme");
  auto beta_stats = client->GetTenantStats("beta");
  ASSERT_TRUE(acme_stats.ok());
  ASSERT_TRUE(beta_stats.ok());
  EXPECT_EQ(acme_stats.value().usage.partitions, 2u);
  EXPECT_EQ(beta_stats.value().usage.partitions, 1u);
  EXPECT_EQ(acme_stats.value().usage.bytes,
            2 * beta_stats.value().usage.bytes);

  // Dropping one tenant's "sales" leaves the other's untouched.
  ASSERT_TRUE(client->DropDataset("acme", "sales").ok());
  EXPECT_TRUE(client->ListPartitions("acme", "sales").status().IsNotFound());
  auto beta_after = client->ListPartitions("beta", "sales");
  ASSERT_TRUE(beta_after.ok());
  EXPECT_EQ(beta_after.value().size(), 1u);
  EXPECT_EQ(client->GetTenantStats("acme").value().usage.bytes, 0u);
  EXPECT_EQ(client->GetTenantStats("beta").value().usage.partitions, 1u);
}

TEST(TenantServerTest, QuotaExhaustionLeavesNoPartialRollIn) {
  auto server = MustStart(TestServerOptions());
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);

  const PartitionSample sample = MakeReservoirSample(0, 8);
  TenantQuota quota;
  quota.max_partitions = 2;
  ASSERT_TRUE(client->CreateTenant("acme", quota).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());
  ASSERT_TRUE(client->RollIn("acme", "sales", sample).ok());
  ASSERT_TRUE(client->RollIn("acme", "sales", sample).ok());

  const std::string before =
      SampleBytes(client->Query("acme", "sales").value());
  auto rejected = client->RollIn("acme", "sales", sample);
  EXPECT_TRUE(rejected.status().IsResourceExhausted());

  // No partial roll-in: partition list, merged sample, usage and the
  // warehouse's own view are all exactly as before the rejected call.
  EXPECT_EQ(client->ListPartitions("acme", "sales").value().size(), 2u);
  EXPECT_EQ(SampleBytes(client->Query("acme", "sales").value()), before);
  auto stats = client->GetTenantStats("acme");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().usage.partitions, 2u);
  EXPECT_EQ(stats.value().usage.bytes, 2 * sample.footprint_bytes());
  EXPECT_EQ(server->warehouse_for_testing()
                ->ListPartitions("acme.sales")
                .value()
                .size(),
            2u);

  // Byte quotas reject the same way: room for one more partition but not
  // for its bytes.
  TenantQuota bytes_quota;
  bytes_quota.max_bytes = 2 * sample.footprint_bytes();
  ASSERT_TRUE(client->SetTenantQuota("acme", bytes_quota).ok());
  EXPECT_TRUE(client->RollIn("acme", "sales", sample)
                  .status()
                  .IsResourceExhausted());
  EXPECT_EQ(client->ListPartitions("acme", "sales").value().size(), 2u);

  // Roll-out credits the exact charge, after which growth resumes.
  const PartitionId first =
      client->ListPartitions("acme", "sales").value()[0].id;
  ASSERT_TRUE(client->RollOut("acme", "sales", first).ok());
  EXPECT_EQ(client->GetTenantStats("acme").value().usage.bytes,
            sample.footprint_bytes());
  EXPECT_TRUE(client->RollIn("acme", "sales", sample).ok());
}

TEST(TenantServerTest, StreamingIngestStopsAtTheQuota) {
  ServerOptions options = TestServerOptions();
  options.ingest_partition_elements = 64;
  auto server = MustStart(std::move(options));
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);

  TenantQuota quota;
  quota.max_partitions = 1;
  ASSERT_TRUE(client->CreateTenant("acme", quota).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "events").ok());
  ASSERT_TRUE(client->IngestOpen("acme", "events").ok());

  // The gate admits the batch while usage is under quota; partitions the
  // accepted elements close are charged as ground truth even if they land
  // past the limit (usage must never lie about stored bytes). The second
  // partition fills at exactly 128 elements but closes lazily (on the next
  // append or the flush), so one roll-in is visible here.
  std::vector<Value> batch(128);
  for (size_t i = 0; i < batch.size(); ++i) batch[i] = static_cast<Value>(i);
  auto accepted = client->IngestAppend("acme", "events", 0, batch);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted.value().partitions_rolled_in, 1u);

  // Now over quota: the next batch is a clean typed rejection with no
  // elements applied — the watermark proves nothing moved.
  auto rejected = client->IngestAppend("acme", "events", 128, batch);
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  auto flushed = client->IngestFlush("acme", "events");
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed.value().next_sequence, 128u);
  EXPECT_EQ(client->GetTenantStats("acme").value().usage.partitions, 2u);

  // Raising the quota reopens the stream.
  TenantQuota raised;
  raised.max_partitions = 8;
  ASSERT_TRUE(client->SetTenantQuota("acme", raised).ok());
  EXPECT_TRUE(client->IngestAppend("acme", "events", 128, batch).ok());
}

}  // namespace
}  // namespace sampwh
