// Client-resilience battery: the WarehouseClient's failure-handling
// machinery under injected network faults. Connect timeouts are bounded
// against a black-holed port; transport failures transparently reconnect
// and retry idempotent verbs (and ONLY idempotent verbs) through a chaos
// proxy; the per-client circuit breaker opens after consecutive transport
// failures, fails fast, and half-open-probes its way closed; and a
// propagated deadline aborts an oversized merge server-side with
// kDeadlineExceeded — after which the same query, re-run without a
// deadline, is bit-identical to an uninterrupted reference (cancellation
// probes consume no randomness).

#include "src/server/client.h"

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/testing/chaos_proxy.h"
#include "src/warehouse/warehouse.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;

std::chrono::milliseconds TimeCall(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
}

std::unique_ptr<ChaosProxy> MustProxy(const WarehouseServer& server,
                                      uint64_t seed) {
  ChaosProxy::Options options;
  options.upstream_host = server.host();
  options.upstream_port = server.port();
  options.seed = seed;
  auto proxy = ChaosProxy::Start(options);
  if (!proxy.ok()) {
    ADD_FAILURE() << "proxy start failed: " << proxy.status().ToString();
    return nullptr;
  }
  return std::move(proxy).value();
}

TEST(ClientResilienceTest, ConnectTimeoutIsBoundedAgainstBlackholedPort) {
  auto hole = BlackholePort::Open();
  ASSERT_TRUE(hole.ok()) << hole.status().ToString();

  ClientOptions options;
  options.connect_timeout_millis = 300;
  Status observed = Status::OK();
  const auto elapsed = TimeCall([&] {
    auto client = WarehouseClient::Connect(hole.value()->host(),
                                           hole.value()->port(), options);
    observed = client.status();
  });
  ASSERT_FALSE(observed.ok());
  EXPECT_TRUE(observed.IsDeadlineExceeded()) << observed.ToString();
  EXPECT_NE(observed.ToString().find("timed out"), std::string::npos)
      << observed.ToString();
  // The kernel's SYN-retry budget is minutes; the bound must hold with
  // generous sanitizer slack.
  EXPECT_LT(elapsed, std::chrono::seconds(30)) << elapsed.count() << "ms";
}

TEST(ClientResilienceTest, IdempotentVerbsRetryThroughConnectionResets) {
  auto server = MustStart(TestServerOptions(kSeed));
  ASSERT_NE(server, nullptr);
  auto proxy = MustProxy(*server, /*seed=*/0xC405);
  ASSERT_NE(proxy, nullptr);

  ClientOptions options;
  options.connect_timeout_millis = 2'000;
  options.max_retries = 2;
  options.backoff_initial_millis = 5;
  options.backoff_max_millis = 20;
  options.seed = 1;
  options.breaker_failure_threshold = 0;  // isolate the retry driver
  auto client =
      WarehouseClient::Connect(proxy->host(), proxy->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Quiet proxy: plain pass-through.
  ASSERT_TRUE(client.value()->Ping().ok());

  // Reset the next server->client chunk: the response dies mid-air, the
  // retry driver reconnects and re-drives the ping to success.
  proxy->Arm(kChaosSiteServerToClient, NetFaultKind::kReset, /*count=*/1);
  auto pong = client.value()->Ping();
  EXPECT_TRUE(pong.ok()) << pong.status().ToString();
  const ClientStatsSnapshot stats = client.value()->stats();
  EXPECT_GE(stats.retries_attempted, 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.transport_errors, 1u);
  EXPECT_EQ(proxy->FiredCount(kChaosSiteServerToClient), 1u);
}

TEST(ClientResilienceTest, NonIdempotentVerbsNeverRetry) {
  auto server = MustStart(TestServerOptions(kSeed));
  ASSERT_NE(server, nullptr);
  auto proxy = MustProxy(*server, /*seed=*/0xC406);
  ASSERT_NE(proxy, nullptr);

  ClientOptions options;
  options.max_retries = 3;
  options.backoff_initial_millis = 5;
  options.backoff_max_millis = 20;
  options.breaker_failure_threshold = 0;
  auto client =
      WarehouseClient::Connect(proxy->host(), proxy->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client.value()->CreateDataset("acme", "sales").ok());
  const uint64_t retries_before = client.value()->stats().retries_attempted;

  // The server applies the roll-in, the proxy resets the ack. A retry
  // would double-apply, so the transport error must surface instead.
  proxy->Arm(kChaosSiteServerToClient, NetFaultKind::kReset, /*count=*/1);
  auto id =
      client.value()->RollIn("acme", "sales", MakeReservoirSample(0, 4));
  ASSERT_FALSE(id.ok());
  EXPECT_TRUE(id.status().IsIOError()) << id.status().ToString();
  EXPECT_EQ(client.value()->stats().retries_attempted, retries_before);

  // Exactly one roll-in landed server-side (applied, just unacknowledged).
  auto direct = MustConnect(*server);
  ASSERT_NE(direct, nullptr);
  auto parts = direct->ListPartitions("acme", "sales");
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();
  EXPECT_EQ(parts.value().size(), 1u);
}

TEST(ClientResilienceTest, BreakerOpensFailsFastAndRecloses) {
  auto server = MustStart(TestServerOptions(kSeed));
  ASSERT_NE(server, nullptr);
  auto proxy = MustProxy(*server, /*seed=*/0xC407);
  ASSERT_NE(proxy, nullptr);

  ClientOptions options;
  options.connect_timeout_millis = 1'000;
  options.read_timeout_millis = 1'000;
  options.max_retries = 0;
  options.breaker_failure_threshold = 2;
  options.breaker_open_millis = 300;
  auto client =
      WarehouseClient::Connect(proxy->host(), proxy->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()->Ping().ok());
  EXPECT_FALSE(client.value()->breaker_open());

  // The node vanishes: two consecutive transport failures open the
  // breaker, after which calls fail fast without touching the network.
  proxy->Partition();
  EXPECT_FALSE(client.value()->Ping().ok());
  EXPECT_FALSE(client.value()->Ping().ok());
  EXPECT_TRUE(client.value()->breaker_open());
  Status fast = Status::OK();
  const auto elapsed =
      TimeCall([&] { fast = client.value()->Ping().status(); });
  ASSERT_FALSE(fast.ok());
  EXPECT_TRUE(fast.IsUnavailable()) << fast.ToString();
  EXPECT_NE(fast.ToString().find("circuit breaker"), std::string::npos)
      << fast.ToString();
  EXPECT_LT(elapsed, std::chrono::milliseconds(options.connect_timeout_millis))
      << elapsed.count() << "ms";
  EXPECT_GE(client.value()->stats().breaker_open_total, 1u);

  // The node heals; once the open window lapses the half-open probe
  // reconnects and closes the breaker.
  proxy->Heal();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto probe = client.value()->Ping();
  EXPECT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(client.value()->breaker_open());
}

TEST(ClientResilienceTest, DeadlineAbortsServerSideThenReplaysBitIdentical) {
  // A merge big enough that 1ms of budget deterministically runs out
  // between the server's cooperative deadline probes: 384 partitions of
  // 512 values each, under a merge bound that keeps subsampling (and so
  // RNG consumption) active at every tree node.
  constexpr uint64_t kParts = 384;
  constexpr uint64_t kValues = 512;
  ServerOptions server_options = TestServerOptions(kSeed);
  server_options.warehouse.merge.footprint_bound_bytes =
      16 * kSingletonFootprintBytes;
  auto server = MustStart(server_options);
  ASSERT_NE(server, nullptr);
  auto client = MustConnect(*server);
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(client->CreateDataset("acme", "sales").ok());

  Warehouse reference(server_options.warehouse);
  ASSERT_TRUE(reference.CreateDataset("acme.sales").ok());
  for (uint64_t p = 0; p < kParts; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(p * kValues), kValues);
    auto id = client->RollIn("acme", "sales", sample);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(reference.RollInAt("acme.sales", id.value(), sample).ok());
  }

  client->set_deadline_millis(1);
  auto denied = client->Query("acme", "sales");
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsDeadlineExceeded())
      << denied.status().ToString();

  // A structured kDeadlineExceeded is a served response, not a transport
  // failure: the connection stays usable and the server counted it.
  client->set_deadline_millis(0);
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats.value().deadlines_exceeded, 1u);
  EXPECT_EQ(client->stats().reconnects, 0u);

  // The canceled merge consumed no randomness and poisoned no memo state:
  // without the deadline the identical query answers bit-identically to an
  // uninterrupted reference warehouse.
  auto full = client->Query("acme", "sales");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto expect = reference.MergedSampleAll("acme.sales");
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(SampleBytes(full.value()), SampleBytes(expect.value()));
}

}  // namespace
}  // namespace sampwh
