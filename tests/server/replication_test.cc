// Replication battery: coordinator-driven shard replication (factor R),
// exact-query failover and anti-entropy repair. The contract under test:
//
//   1. A RollIn at replication factor R places the partition on all R
//      owners — quota-admitted once at the primary, force-charged on the
//      replicas — so every node's recorded tenant usage equals its stored
//      footprint exactly (zero quota drift).
//   2. With at most R-1 nodes killed or partitioned — even mid-merge —
//      every STRICT query (no allow_partial) still succeeds and its bytes
//      equal the single-node reference warehouse holding every partition.
//      Failover is invisible except in the counters.
//   3. ScrubDataset detects a corrupt (CRC-quarantined), missing or
//      divergent replica copy and re-replicates it from a healthy owner;
//      the healed bytes are byte-identical to the surviving copy, the
//      quarantined evidence stays on disk, and a later scrub round is
//      clean.
//
// The ~3-round chaos tier runs in ctest; REPL_SOAK=1 runs the long
// schedule (nightly CI), mirroring the CHAOS_SOAK convention.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/server/coordinator.h"
#include "src/testing/chaos_proxy.h"
#include "src/util/random.h"
#include "src/warehouse/warehouse.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;
constexpr uint64_t kBound = 4 * kSingletonFootprintBytes;
constexpr uint64_t kPartitions = 12;

int ReplChaosRounds() {
  if (const char* soak = std::getenv("REPL_SOAK");
      soak != nullptr && std::string_view(soak) != "0") {
    return 24;
  }
  return 3;
}

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sampwh_repl_" + tag + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

ServerOptions ReplNodeOptions(const std::string& store_dir) {
  ServerOptions options = TestServerOptions(kSeed);
  options.warehouse.merge.footprint_bound_bytes = kBound;
  options.store_directory = store_dir;
  return options;
}

ClientOptions FastFailClientOptions() {
  ClientOptions options;
  options.connect_timeout_millis = 1'000;
  options.read_timeout_millis = 2'000;
  options.max_retries = 1;
  options.backoff_initial_millis = 5;
  options.backoff_max_millis = 20;
  options.breaker_failure_threshold = 2;
  options.breaker_open_millis = 250;
  return options;
}

CoordinatorOptions ReplCoordinatorOptions(uint32_t replication_factor,
                                          uint32_t write_quorum = 0) {
  CoordinatorOptions options;
  options.seed = kSeed;
  options.merge.footprint_bound_bytes = kBound;
  options.client = FastFailClientOptions();
  options.tolerate_unreachable = true;
  options.replication_factor = replication_factor;
  options.write_quorum = write_quorum;
  return options;
}

struct ReplFixture {
  std::vector<std::string> dirs;
  std::vector<ShardNodeAddress> nodes;
  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::unique_ptr<ShardCoordinator> coordinator;
  std::unique_ptr<Warehouse> reference;
  std::vector<PartitionId> ids;
};

/// `num_nodes` file-backed nodes, a replication-factor-R coordinator, and
/// `kPartitions` partitions rolled in through it, mirrored into a
/// single-node reference warehouse under the same seed and merge options.
ReplFixture MakeReplFixture(const std::string& tag, size_t num_nodes,
                            uint32_t replication_factor) {
  ReplFixture f;
  for (size_t i = 0; i < num_nodes; ++i) {
    f.dirs.push_back(TempDir(tag + std::to_string(i)));
    auto server = MustStart(ReplNodeOptions(f.dirs.back()));
    if (server == nullptr) return {};
    f.nodes.push_back({server->host(), server->port()});
    f.servers.push_back(std::move(server));
  }
  auto coordinator = ShardCoordinator::Connect(
      f.nodes, ReplCoordinatorOptions(replication_factor));
  if (!coordinator.ok()) {
    ADD_FAILURE() << "coordinator: " << coordinator.status().ToString();
    return {};
  }
  f.coordinator = std::move(coordinator).value();

  f.reference = std::make_unique<Warehouse>(ReplNodeOptions("").warehouse);
  EXPECT_TRUE(f.coordinator->CreateTenant("acme", {}).ok());
  EXPECT_TRUE(f.coordinator->CreateDataset("acme", "sales").ok());
  EXPECT_TRUE(f.reference->CreateDataset("acme.sales").ok());
  for (uint64_t p = 0; p < kPartitions; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(p) * 100, 6);
    auto id = f.coordinator->RollIn("acme", "sales", sample, p, p);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return {};
    EXPECT_TRUE(
        f.reference->RollInAt("acme.sales", id.value(), sample, p, p).ok());
    f.ids.push_back(id.value());
  }
  return f;
}

/// Asserts that every node's recorded tenant usage equals the footprint it
/// actually stores — the zero-quota-drift invariant replication must keep
/// through forced replica charges, replaced copies and heals.
void ExpectZeroQuotaDrift(ReplFixture& f) {
  for (size_t node = 0; node < f.servers.size(); ++node) {
    const Warehouse* wh = f.servers[node]->warehouse_for_testing();
    uint64_t stored_bytes = 0;
    uint64_t stored_partitions = 0;
    auto parts = wh->ListPartitions("acme.sales");
    if (!parts.ok()) continue;
    for (const PartitionInfo& info : parts.value()) {
      auto sample = wh->GetSample("acme.sales", info.id);
      ASSERT_TRUE(sample.ok()) << sample.status().ToString();
      stored_bytes += sample.value().footprint_bytes();
      stored_partitions += 1;
    }
    auto usage =
        f.servers[node]->tenants_for_testing()->GetUsage("acme");
    ASSERT_TRUE(usage.ok()) << usage.status().ToString();
    EXPECT_EQ(usage.value().bytes, stored_bytes)
        << "node " << node << " byte usage drifted from stored footprint";
    EXPECT_EQ(usage.value().partitions, stored_partitions)
        << "node " << node << " partition count drifted";
  }
}

/// Direct (coordinator-bypassing) client to node `i` of the fixture.
std::unique_ptr<WarehouseClient> DirectClient(ReplFixture& f, size_t node) {
  auto client = WarehouseClient::Connect(f.nodes[node].host,
                                         f.nodes[node].port,
                                         FastFailClientOptions());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(client).value() : nullptr;
}

TEST(ReplicationTest, WritesLandOnEveryOwnerAndChargeOnce) {
  ReplFixture f = MakeReplFixture("write", /*num_nodes=*/3,
                                  /*replication_factor=*/2);
  ASSERT_NE(f.coordinator, nullptr);
  EXPECT_EQ(f.coordinator->replication_factor(), 2u);

  // Every id is present on exactly its R owners, absent elsewhere.
  for (const PartitionId id : f.ids) {
    const std::vector<size_t> owners =
        f.coordinator->OwnersOf(f.coordinator->ShardOf("acme", "sales", id));
    ASSERT_EQ(owners.size(), 2u);
    for (size_t node = 0; node < f.servers.size(); ++node) {
      const bool should_hold =
          std::find(owners.begin(), owners.end(), node) != owners.end();
      const bool holds = f.servers[node]
                             ->warehouse_for_testing()
                             ->GetSample("acme.sales", id)
                             .ok();
      EXPECT_EQ(holds, should_hold)
          << "id " << id << " on node " << node;
    }
  }

  // The replicas were written through kReplicaRollIn (visible in stats),
  // and every node's quota books balance against its stored bytes.
  uint64_t replica_writes = 0;
  for (size_t node = 0; node < f.servers.size(); ++node) {
    replica_writes += f.servers[node]->stats().replica_writes;
  }
  EXPECT_EQ(replica_writes, kPartitions);  // one replica copy per id at R=2
  ASSERT_NO_FATAL_FAILURE(ExpectZeroQuotaDrift(f));

  // A replicated inventory lists every id exactly once.
  auto inventory = f.coordinator->ListAllPartitions("acme", "sales");
  ASSERT_TRUE(inventory.ok());
  EXPECT_EQ(inventory.value(), f.ids);

  // RollOut removes every copy.
  const PartitionId victim = f.ids.front();
  ASSERT_TRUE(f.coordinator->RollOut("acme", "sales", victim).ok());
  for (auto& server : f.servers) {
    EXPECT_FALSE(
        server->warehouse_for_testing()->GetSample("acme.sales", victim).ok());
  }
}

TEST(ReplicationTest, StrictQueryFailsOverExactlyWhenANodeDies) {
  ReplFixture f = MakeReplFixture("failover", /*num_nodes=*/3,
                                  /*replication_factor=*/2);
  ASSERT_NE(f.coordinator, nullptr);
  const std::string expect =
      SampleBytes(f.reference->MergedSampleAll("acme.sales").value());

  // Healthy baseline.
  auto baseline = f.coordinator->Query("acme", "sales");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(SampleBytes(baseline.value()), expect);

  // Kill one node. Every id still has a live owner, so the STRICT query —
  // no allow_partial — must keep returning the full, bit-identical answer.
  f.servers[1]->Stop();
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto answer = f.coordinator->Query("acme", "sales");
    ASSERT_TRUE(answer.ok())
        << "attempt " << attempt << ": " << answer.status().ToString();
    EXPECT_EQ(SampleBytes(answer.value()), expect) << "attempt " << attempt;
  }
  EXPECT_GT(f.coordinator->stats().failover_reads, 0u);

  // The survivors saw flagged failover traffic.
  uint64_t failover_reads = 0;
  for (size_t node : {size_t{0}, size_t{2}}) {
    failover_reads += f.servers[node]->stats().failover_reads;
  }
  EXPECT_GT(failover_reads, 0u);

  // Explicit-id queries fail over identically.
  const std::vector<PartitionId> half(f.ids.begin(),
                                      f.ids.begin() + f.ids.size() / 2);
  auto partial_set = f.coordinator->Query("acme", "sales", half);
  ASSERT_TRUE(partial_set.ok()) << partial_set.status().ToString();
  EXPECT_EQ(SampleBytes(partial_set.value()),
            SampleBytes(f.reference->MergedSample("acme.sales", half).value()));
}

TEST(ReplicationTest, WriteQuorumToleratesAReplicaOutageAndScrubCompletes) {
  ReplFixture f = MakeReplFixture("quorum", /*num_nodes=*/3,
                                  /*replication_factor=*/2);
  ASSERT_NE(f.coordinator, nullptr);

  // Re-connect the coordinator with a majority write quorum (primary ack
  // suffices at R=2).
  f.coordinator.reset();
  auto coordinator =
      ShardCoordinator::Connect(f.nodes, ReplCoordinatorOptions(
                                             /*replication_factor=*/2,
                                             /*write_quorum=*/1));
  ASSERT_TRUE(coordinator.ok());
  f.coordinator = std::move(coordinator).value();

  // Kill one node; writes whose replica lives there lose one ack but make
  // quorum. Writes whose PRIMARY lives there fail (admission is at the
  // primary) — roll in until we get one of each shape.
  f.servers[2]->Stop();
  std::vector<PartitionId> accepted;
  size_t rejected = 0;
  for (uint64_t p = 0; p < 8; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(1000 + p * 10), 6);
    auto id = f.coordinator->RollIn("acme", "sales", sample, p, p);
    if (id.ok()) {
      accepted.push_back(id.value());
      EXPECT_TRUE(
          f.reference->RollInAt("acme.sales", id.value(), sample, p, p).ok());
    } else {
      ++rejected;
    }
  }
  EXPECT_FALSE(accepted.empty());

  // Restart the dead node from its durable store on its old port.
  ServerOptions revived = ReplNodeOptions(f.dirs[2]);
  revived.port = f.nodes[2].port;
  revived.bootstrap_tenants["acme"] = TenantQuota{};
  auto restarted = WarehouseServer::Start(revived);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  f.servers[2] = std::move(restarted).value();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // Anti-entropy completes the under-replicated writes onto the revived
  // node; a second round finds nothing left to do.
  auto report = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().healed, 0u);
  EXPECT_EQ(report.value().unhealable, 0u);
  auto clean = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().replicas_missing, 0u);
  EXPECT_EQ(clean.value().digest_mismatches, 0u);
  EXPECT_EQ(clean.value().healed, 0u);

  // Full replica count restored: every accepted id on both owners, books
  // balanced, and the strict query exact.
  for (const PartitionId id : accepted) {
    for (const size_t owner : f.coordinator->OwnersOf(
             f.coordinator->ShardOf("acme", "sales", id))) {
      EXPECT_TRUE(f.servers[owner]
                      ->warehouse_for_testing()
                      ->GetSample("acme.sales", id)
                      .ok())
          << "id " << id << " missing on owner " << owner;
    }
  }
  ASSERT_NO_FATAL_FAILURE(ExpectZeroQuotaDrift(f));
  auto answer = f.coordinator->Query("acme", "sales");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(SampleBytes(answer.value()),
            SampleBytes(f.reference->MergedSampleAll("acme.sales").value()));
}

/// Satellite: Recover() x replication. Corrupt one replica's envelope on
/// disk, scrub, and byte-compare the healed copy against the surviving
/// replica; the quarantined original must remain as evidence.
TEST(ReplicationTest, ScrubHealsCorruptReplicaFromSurvivor) {
  ReplFixture f = MakeReplFixture("heal", /*num_nodes=*/2,
                                  /*replication_factor=*/2);
  ASSERT_NE(f.coordinator, nullptr);

  // Flip a payload byte inside one replica's stored envelope. Targets the
  // copy on node 1 (every id lives on both nodes at N=2, R=2).
  const PartitionId victim = f.ids[f.ids.size() / 2];
  const std::string path =
      f.dirs[1] + "/acme.sales." + std::to_string(victim) + ".sample";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 8);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    file.seekp(size / 2);
    byte = static_cast<char>(byte ^ 0x5a);
    file.write(&byte, 1);
  }

  // Scrub: the digest scan quarantines the corrupt copy (it reads as
  // missing) and re-replicates from the intact owner.
  auto report = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().partitions_scanned, kPartitions);
  EXPECT_EQ(report.value().replicas_missing, 1u);
  EXPECT_EQ(report.value().healed, 1u);
  EXPECT_EQ(report.value().unhealable, 0u);

  // Healed copy is byte-identical to the survivor's on-disk copy.
  const std::string survivor_path =
      f.dirs[0] + "/acme.sales." + std::to_string(victim) + ".sample";
  std::ostringstream healed, survivor;
  healed << std::ifstream(path, std::ios::binary).rdbuf();
  survivor << std::ifstream(survivor_path, std::ios::binary).rdbuf();
  ASSERT_FALSE(survivor.str().empty());
  EXPECT_EQ(healed.str(), survivor.str());

  // Quarantine evidence preserved next to the healed file.
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantine"));

  // Server-side counters saw the round; the books still balance; a fresh
  // round is clean.
  uint64_t scrub_rounds = 0, partitions_healed = 0;
  for (auto& server : f.servers) {
    scrub_rounds += server->stats().scrub_rounds;
    partitions_healed += server->stats().partitions_healed;
  }
  EXPECT_GE(scrub_rounds, 2u);  // one digest listing per node per round
  EXPECT_EQ(partitions_healed, 1u);
  ASSERT_NO_FATAL_FAILURE(ExpectZeroQuotaDrift(f));
  auto clean = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().replicas_missing, 0u);
  EXPECT_EQ(clean.value().healed, 0u);

  // And the strict query still matches the reference bit-for-bit.
  auto answer = f.coordinator->Query("acme", "sales");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(SampleBytes(answer.value()),
            SampleBytes(f.reference->MergedSampleAll("acme.sales").value()));
}

TEST(ReplicationTest, ScrubRepairsDivergentReplicaToMajority) {
  ReplFixture f = MakeReplFixture("diverge", /*num_nodes=*/3,
                                  /*replication_factor=*/3);
  ASSERT_NE(f.coordinator, nullptr);

  // Overwrite one owner's copy with different (valid) bytes through the
  // replica verb directly — a divergence the digest comparison must catch.
  const PartitionId victim = f.ids.front();
  const std::vector<size_t> owners =
      f.coordinator->OwnersOf(f.coordinator->ShardOf("acme", "sales", victim));
  ASSERT_EQ(owners.size(), 3u);
  auto rogue = DirectClient(f, owners[2]);
  ASSERT_NE(rogue, nullptr);
  const PartitionSample divergent = MakeReservoirSample(9'000, 6);
  ASSERT_TRUE(rogue
                  ->ReplicaRollIn("acme", "sales", victim, divergent,
                                  /*min_timestamp=*/0, /*max_timestamp=*/0)
                  .ok());
  EXPECT_EQ(f.servers[owners[2]]->stats().digest_mismatches, 1u);

  // Two of three owners agree; the divergent copy loses the vote and is
  // rewritten from a majority owner.
  auto report = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().digest_mismatches, 1u);
  EXPECT_EQ(report.value().healed, 1u);
  auto clean = f.coordinator->ScrubDataset("acme", "sales");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().digest_mismatches, 0u);
  ASSERT_NO_FATAL_FAILURE(ExpectZeroQuotaDrift(f));

  auto answer = f.coordinator->Query("acme", "sales");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(SampleBytes(answer.value()),
            SampleBytes(f.reference->MergedSampleAll("acme.sales").value()));
}

/// Acceptance battery: 4 nodes at R=2 behind chaos proxies. Any single
/// node killed or partitioned mid-merge leaves every strict query
/// bit-identical to the single-node reference — never partial — and a
/// scrubber round after Heal() restores full replica count with zero
/// quota drift.
TEST(ReplicationTest, ChaosSingleNodeLossStaysExact) {
  constexpr size_t kChaosNodes = 4;
  ReplFixture f;
  std::vector<std::unique_ptr<ChaosProxy>> proxies;
  for (size_t i = 0; i < kChaosNodes; ++i) {
    f.dirs.push_back(TempDir("chaos" + std::to_string(i)));
    auto server = MustStart(ReplNodeOptions(f.dirs.back()));
    ASSERT_NE(server, nullptr);
    ChaosProxy::Options proxy_options;
    proxy_options.upstream_host = server->host();
    proxy_options.upstream_port = server->port();
    proxy_options.seed = 0x4E71C100 + i;
    auto proxy = ChaosProxy::Start(proxy_options);
    ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
    f.nodes.push_back({proxy.value()->host(), proxy.value()->port()});
    f.servers.push_back(std::move(server));
    proxies.push_back(std::move(proxy).value());
  }
  CoordinatorOptions options = ReplCoordinatorOptions(
      /*replication_factor=*/2, /*write_quorum=*/0);
  options.client.connect_timeout_millis = 500;
  options.client.read_timeout_millis = 800;
  auto coordinator = ShardCoordinator::Connect(f.nodes, options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  f.coordinator = std::move(coordinator).value();

  f.reference = std::make_unique<Warehouse>(ReplNodeOptions("").warehouse);
  ASSERT_TRUE(f.coordinator->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(f.coordinator->CreateDataset("acme", "sales").ok());
  ASSERT_TRUE(f.reference->CreateDataset("acme.sales").ok());
  for (uint64_t p = 0; p < kPartitions; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(p) * 50, 5);
    auto id = f.coordinator->RollIn("acme", "sales", sample, p, p);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(
        f.reference->RollInAt("acme.sales", id.value(), sample, p, p).ok());
    f.ids.push_back(id.value());
  }
  const std::string expect =
      SampleBytes(f.reference->MergedSampleAll("acme.sales").value());

  Pcg64 plan(kSeed, /*stream=*/0x4E71);
  const int rounds = ReplChaosRounds();
  for (int round = 0; round < rounds; ++round) {
    const size_t victim = plan.UniformInt(kChaosNodes);
    const bool partition = plan.UniformInt(2) == 0;
    ChaosProxy& proxy = *proxies[victim];
    const std::string trace = "round " + std::to_string(round) + ": " +
                              (partition ? "partition" : "reset") +
                              " on node " + std::to_string(victim);
    SCOPED_TRACE(trace);
    if (partition) {
      proxy.Partition();
    } else {
      proxy.Arm(kChaosSiteServerToClient, NetFaultKind::kReset, /*count=*/3);
    }

    // One node down at R=2: STRICT queries (no allow_partial) must stay
    // exact. Two per round so the second rides on opened breakers.
    for (int q = 0; q < 2; ++q) {
      const auto start = std::chrono::steady_clock::now();
      auto answer = f.coordinator->Query("acme", "sales");
      EXPECT_LT(std::chrono::steady_clock::now() - start,
                std::chrono::seconds(30))
          << "query hung";
      ASSERT_TRUE(answer.ok())
          << "query " << q << ": " << answer.status().ToString();
      EXPECT_EQ(SampleBytes(answer.value()), expect) << "query " << q;
    }

    proxy.Heal();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));

    // Post-heal scrub: replica count back to full, nothing unhealable,
    // books balanced.
    auto report = f.coordinator->ScrubDataset("acme", "sales");
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report.value().unhealable, 0u);
    auto clean = f.coordinator->ScrubDataset("acme", "sales");
    ASSERT_TRUE(clean.ok());
    EXPECT_EQ(clean.value().replicas_missing, 0u);
    EXPECT_EQ(clean.value().digest_mismatches, 0u);
    ASSERT_NO_FATAL_FAILURE(ExpectZeroQuotaDrift(f));

    auto recovered = f.coordinator->Query("acme", "sales");
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(SampleBytes(recovered.value()), expect);
  }

  // No partial answer was ever served, and failover did the carrying.
  EXPECT_EQ(f.coordinator->stats().partial_queries_served, 0u);
  auto inventory = f.coordinator->ListAllPartitions("acme", "sales");
  ASSERT_TRUE(inventory.ok());
  EXPECT_EQ(inventory.value(), f.ids);
}

}  // namespace
}  // namespace sampwh
