// Chaos battery for the distributed serving path: a 4-node sharded
// deployment, every node behind a seeded ChaosProxy, driven through
// seeded kill / partition / delay / reset / black-hole / mid-frame
// truncation schedules. The invariants a round may NEVER break:
//
//   1. No hangs — client timeouts, retries and breakers bound every query
//      regardless of the fault.
//   2. No corrupt answers — every successful query is either exact, or
//      explicitly flagged partial with the missing shards listed, and its
//      bytes equal the single-node reference warehouse queried over
//      exactly the surviving id set.
//   3. Clean failures — an unsuccessful query fails with a bounded,
//      structured kUnavailable / kDeadlineExceeded / IO error.
//   4. Full recovery — after Heal(), once the breakers' open windows
//      lapse, strict queries return full exact answers again.
//
// The ~4-round smoke tier runs in ctest; CHAOS_SOAK=1 runs the long
// schedule (nightly CI), mirroring the STRESS_SOAK convention.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/types.h"
#include "src/server/coordinator.h"
#include "src/testing/chaos_proxy.h"
#include "src/util/random.h"
#include "src/warehouse/warehouse.h"
#include "tests/server/server_test_util.h"

namespace sampwh {
namespace {

constexpr uint64_t kSeed = 0x5157313136ULL;
constexpr uint64_t kBound = 4 * kSingletonFootprintBytes;
constexpr size_t kNodes = 4;
constexpr uint64_t kPartitions = 16;

int ChaosRounds() {
  if (const char* soak = std::getenv("CHAOS_SOAK");
      soak != nullptr && std::string_view(soak) != "0") {
    return 24;
  }
  return 4;
}

ServerOptions ChaosNodeOptions() {
  ServerOptions options = TestServerOptions(kSeed);
  options.warehouse.merge.footprint_bound_bytes = kBound;
  return options;
}

/// Short timeouts everywhere so a black-holed or partitioned node costs
/// hundreds of milliseconds, not the kernel's default minutes.
ClientOptions ChaosClientOptions() {
  ClientOptions options;
  options.connect_timeout_millis = 500;
  options.read_timeout_millis = 800;
  options.max_retries = 1;
  options.backoff_initial_millis = 10;
  options.backoff_max_millis = 40;
  options.breaker_failure_threshold = 2;
  options.breaker_open_millis = 250;
  return options;
}

struct ChaosDeployment {
  std::vector<std::unique_ptr<WarehouseServer>> servers;
  std::vector<std::unique_ptr<ChaosProxy>> proxies;
  std::unique_ptr<ShardCoordinator> coordinator;
  std::unique_ptr<Warehouse> reference;
  std::vector<PartitionId> ids;
};

ChaosDeployment MakeChaosDeployment(uint64_t proxy_seed) {
  ChaosDeployment d;
  std::vector<ShardNodeAddress> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    auto server = MustStart(ChaosNodeOptions());
    if (server == nullptr) return {};
    ChaosProxy::Options proxy_options;
    proxy_options.upstream_host = server->host();
    proxy_options.upstream_port = server->port();
    proxy_options.seed = proxy_seed + i;
    proxy_options.delay_millis = 50;
    auto proxy = ChaosProxy::Start(proxy_options);
    if (!proxy.ok()) {
      ADD_FAILURE() << "proxy: " << proxy.status().ToString();
      return {};
    }
    nodes.push_back({proxy.value()->host(), proxy.value()->port()});
    d.servers.push_back(std::move(server));
    d.proxies.push_back(std::move(proxy).value());
  }
  CoordinatorOptions options;
  options.seed = kSeed;
  options.merge.footprint_bound_bytes = kBound;
  options.client = ChaosClientOptions();
  options.tolerate_unreachable = true;
  auto coordinator = ShardCoordinator::Connect(nodes, options);
  if (!coordinator.ok()) {
    ADD_FAILURE() << "coordinator: " << coordinator.status().ToString();
    return {};
  }
  d.coordinator = std::move(coordinator).value();

  d.reference = std::make_unique<Warehouse>(ChaosNodeOptions().warehouse);
  EXPECT_TRUE(d.coordinator->CreateTenant("acme", {}).ok());
  EXPECT_TRUE(d.coordinator->CreateDataset("acme", "sales").ok());
  EXPECT_TRUE(d.reference->CreateDataset("acme.sales").ok());
  for (uint64_t p = 0; p < kPartitions; ++p) {
    const PartitionSample sample =
        MakeReservoirSample(static_cast<Value>(p) * 50, 5);
    auto id = d.coordinator->RollIn("acme", "sales", sample, p, p);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return {};
    EXPECT_TRUE(
        d.reference->RollInAt("acme.sales", id.value(), sample, p, p).ok());
    d.ids.push_back(id.value());
  }
  return d;
}

/// One degraded query under whatever faults are armed, held to the
/// chaos invariants: bounded, and exact-or-verified-partial-or-clean-error.
void RunGuardedQuery(ChaosDeployment& d, const std::string& trace) {
  SCOPED_TRACE(trace);
  QueryOptions query_options;
  query_options.allow_partial = true;
  query_options.deadline_millis = 5'000;
  const auto start = std::chrono::steady_clock::now();
  auto result =
      d.coordinator->QueryWithOptions("acme", "sales", {}, query_options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(30)) << "query hung";
  if (!result.ok()) {
    const Status& st = result.status();
    EXPECT_TRUE(st.IsUnavailable() || st.IsDeadlineExceeded() ||
                st.IsIOError())
        << st.ToString();
    return;
  }
  const ShardQueryResult& answer = result.value();
  EXPECT_EQ(answer.partial, !answer.missing_shards.empty());
  std::vector<PartitionId> surviving;
  for (const PartitionId id : d.ids) {
    const size_t owner = d.coordinator->ShardOf("acme", "sales", id);
    if (std::find(answer.missing_shards.begin(), answer.missing_shards.end(),
                  owner) == answer.missing_shards.end()) {
      surviving.push_back(id);
    }
  }
  ASSERT_FALSE(surviving.empty());
  auto expect = d.reference->MergedSample("acme.sales", surviving);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  EXPECT_EQ(SampleBytes(answer.sample), SampleBytes(expect.value()))
      << "answer does not match the reference over the surviving "
      << surviving.size() << " ids";
}

TEST(ChaosTest, QuietProxyIsBitTransparent) {
  auto server = MustStart(ChaosNodeOptions());
  ASSERT_NE(server, nullptr);
  ChaosProxy::Options proxy_options;
  proxy_options.upstream_host = server->host();
  proxy_options.upstream_port = server->port();
  proxy_options.seed = 0xBEEF;
  auto proxy = ChaosProxy::Start(proxy_options);
  ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();

  auto direct = MustConnect(*server);
  ASSERT_NE(direct, nullptr);
  auto proxied = WarehouseClient::Connect(proxy.value()->host(),
                                          proxy.value()->port(), {});
  ASSERT_TRUE(proxied.ok()) << proxied.status().ToString();

  ASSERT_TRUE(direct->CreateTenant("acme", {}).ok());
  ASSERT_TRUE(direct->CreateDataset("acme", "sales").ok());
  for (uint64_t p = 0; p < 6; ++p) {
    ASSERT_TRUE(
        direct
            ->RollIn("acme", "sales",
                     MakeReservoirSample(static_cast<Value>(p) * 10, 4))
            .ok());
  }
  auto through_proxy = proxied.value()->Query("acme", "sales");
  auto straight = direct->Query("acme", "sales");
  ASSERT_TRUE(through_proxy.ok()) << through_proxy.status().ToString();
  ASSERT_TRUE(straight.ok());
  EXPECT_EQ(SampleBytes(through_proxy.value()),
            SampleBytes(straight.value()));
  EXPECT_GT(proxy.value()->HitCount(kChaosSiteClientToServer), 0u);
  EXPECT_GT(proxy.value()->HitCount(kChaosSiteServerToClient), 0u);
  EXPECT_EQ(proxy.value()->FiredCount(kChaosSiteClientToServer), 0u);
}

TEST(ChaosTest, SeededFaultScheduleNeverHangsOrCorrupts) {
  ChaosDeployment d = MakeChaosDeployment(/*proxy_seed=*/0xC4A05100);
  ASSERT_NE(d.coordinator, nullptr);

  // Healthy baseline through quiet proxies.
  auto baseline = d.coordinator->Query("acme", "sales");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(SampleBytes(baseline.value()),
            SampleBytes(d.reference->MergedSampleAll("acme.sales").value()));

  Pcg64 plan(kSeed, /*stream=*/0x0C4A05);
  const int rounds = ChaosRounds();
  for (int round = 0; round < rounds; ++round) {
    const size_t victim = plan.UniformInt(kNodes);
    const uint64_t fault = plan.UniformInt(5);
    ChaosProxy& proxy = *d.proxies[victim];
    std::string label;
    switch (fault) {
      case 0:
        label = "partition";
        proxy.Partition();
        break;
      case 1:
        label = "reset";
        proxy.Arm(kChaosSiteServerToClient, NetFaultKind::kReset,
                  /*count=*/2);
        break;
      case 2:
        label = "blackhole";
        proxy.Arm(kChaosSiteServerToClient, NetFaultKind::kBlackhole,
                  /*count=*/1);
        break;
      case 3:
        label = "truncate";
        proxy.Arm(kChaosSiteClientToServer, NetFaultKind::kTruncate,
                  /*count=*/2);
        break;
      default:
        label = "delay";
        proxy.ArmRandom(kChaosSiteClientToServer, NetFaultKind::kDelay, 0.5);
        proxy.ArmRandom(kChaosSiteServerToClient, NetFaultKind::kDelay, 0.5);
        break;
    }
    const std::string trace = "round " + std::to_string(round) + ": " +
                              label + " on node " + std::to_string(victim);
    for (int q = 0; q < 2; ++q) {
      ASSERT_NO_FATAL_FAILURE(
          RunGuardedQuery(d, trace + ", query " + std::to_string(q)));
    }

    // Fault window over: heal, let the breakers' open windows lapse, and
    // require the full exact answer back.
    proxy.Heal();
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    auto recovered = d.coordinator->Query("acme", "sales");
    ASSERT_TRUE(recovered.ok())
        << trace << " failed to recover: " << recovered.status().ToString();
    EXPECT_EQ(
        SampleBytes(recovered.value()),
        SampleBytes(d.reference->MergedSampleAll("acme.sales").value()))
        << trace;
  }

  // The servers themselves rode out every round: still serving, and no
  // partition was lost or duplicated along the way.
  for (size_t i = 0; i < kNodes; ++i) {
    EXPECT_FALSE(d.servers[i]->stop_requested());
  }
  auto inventory = d.coordinator->ListAllPartitions("acme", "sales");
  ASSERT_TRUE(inventory.ok()) << inventory.status().ToString();
  EXPECT_EQ(inventory.value(), d.ids);
}

}  // namespace
}  // namespace sampwh
