// Stream splitting (§2's second scenario): an incoming stream too fast for
// one machine is split round-robin across worker ingestors (each modeling
// one node), every worker samples its sub-stream independently with
// bounded footprint, and the warehouse merges the per-worker partition
// samples on demand into one uniform sample of the full stream.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/stats/estimators.h"
#include "src/warehouse/splitter.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

using namespace sampwh;

int main() {
  constexpr size_t kWorkers = 8;
  constexpr uint64_t kStreamLength = 2000000;

  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridBernoulli;
  options.sampler.footprint_bound_bytes = 32 * 1024;  // n_F = 4096
  Warehouse warehouse(options);
  if (!warehouse.CreateDataset("sensor.readings").ok()) return 1;

  // One ingestor per worker; each cuts its sub-stream into 100K-element
  // partitions so Algorithm HB knows N a priori (§4.3).
  StreamSplitter splitter(kWorkers, SplitPolicy::kRoundRobin);
  std::vector<std::unique_ptr<StreamIngestor>> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<StreamIngestor>(
        &warehouse, "sensor.readings", MakeCountPartitioner(100000)));
  }

  // Drive the stream: Zipf-distributed sensor ids over [1, 4000] (the
  // paper's skewed workload).
  DataGenerator gen =
      DataGenerator::Zipf(kStreamLength, kPaperZipfRange, 1.0, 2026);
  while (gen.HasNext()) {
    const Value v = gen.Next();
    if (!workers[splitter.Route(v)]->Append(v).ok()) return 1;
  }
  for (auto& worker : workers) {
    if (!worker->Flush().ok()) return 1;
  }

  const auto info = warehouse.GetDatasetInfo("sensor.readings");
  if (!info.ok()) return 1;
  std::printf("split %llu readings across %zu workers -> %llu partitions\n",
              static_cast<unsigned long long>(kStreamLength), kWorkers,
              static_cast<unsigned long long>(info.value().num_partitions));

  // Merge on demand (Fig. 1's right-hand side).
  auto merged = warehouse.MergedSampleAll("sensor.readings");
  if (!merged.ok()) return 1;
  std::printf(
      "merged sample: %llu values over %llu readings (phase %s, "
      "footprint %llu B <= %llu B bound)\n",
      static_cast<unsigned long long>(merged.value().size()),
      static_cast<unsigned long long>(merged.value().parent_size()),
      std::string(SamplePhaseToString(merged.value().phase())).c_str(),
      static_cast<unsigned long long>(merged.value().footprint_bytes()),
      static_cast<unsigned long long>(
          options.sampler.footprint_bound_bytes));

  // The hottest sensor (id 1) carries ~1/H(4000) ~ 11.6% of the traffic.
  const auto top = EstimateFrequency(merged.value(), 1);
  if (!top.ok()) return 1;
  std::printf("estimated readings from sensor 1: %.0f (+/- %.0f SE; "
              "truth ~%.0f)\n",
              top.value().value, top.value().standard_error,
              kStreamLength * 0.1165);
  return 0;
}
