// Daily roll-in / roll-out (§2's warehousing scenario): a stream is
// partitioned temporally into days; each day's sample rolls into the
// warehouse; weekly and monthly samples are built on demand by merging;
// and as the retention window slides, old daily samples roll out.

#include <cstdio>

#include "src/stats/estimators.h"
#include "src/warehouse/stream_ingestor.h"
#include "src/warehouse/warehouse.h"
#include "src/util/random.h"

using namespace sampwh;

int main() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 8 * 1024;  // n_F = 1024
  Warehouse warehouse(options);
  if (!warehouse.CreateDataset("clickstream").ok()) return 1;

  // Temporal partitioner: one partition per 24-tick "day".
  StreamIngestor ingestor(&warehouse, "clickstream",
                          MakeTemporalPartitioner(24));

  // Simulate 21 days of traffic with a weekly seasonality: weekends
  // (days 5, 6 of each week) see half the traffic.
  Pcg64 rng(7);
  for (uint64_t day = 0; day < 21; ++day) {
    const bool weekend = (day % 7) >= 5;
    const uint64_t events = weekend ? 20000 : 40000;
    for (uint64_t i = 0; i < events; ++i) {
      const uint64_t ts = day * 24 + (i * 24) / events;
      // Latency in microseconds: a wide domain, so daily samples really
      // are samples (a narrow domain would fit exhaustively in the
      // compact histogram).
      const Value latency_us = static_cast<Value>(
          20000 + rng.UniformInt(weekend ? 80000 : 180000));
      if (!ingestor.Append(latency_us, ts).ok()) return 1;
    }
  }
  if (!ingestor.Flush().ok()) return 1;
  std::printf("rolled in %zu daily partitions\n",
              ingestor.rolled_in().size());

  // Weekly rollups: merge each week's 7 daily samples.
  for (int week = 0; week < 3; ++week) {
    auto weekly = warehouse.MergedSampleInTimeRange(
        "clickstream", week * 7 * 24, (week + 1) * 7 * 24 - 1);
    if (!weekly.ok()) return 1;
    const auto mean = EstimateMean(weekly.value());
    if (!mean.ok()) return 1;
    std::printf(
        "week %d: %llu events, sample %llu, est. mean latency %.1f us "
        "(+/- %.1f us)\n",
        week,
        static_cast<unsigned long long>(weekly.value().parent_size()),
        static_cast<unsigned long long>(weekly.value().size()),
        mean.value().value, mean.value().standard_error);
  }

  // Monthly (well, 3-week) rollup across everything still rolled in.
  auto monthly = warehouse.MergedSampleAll("clickstream");
  if (!monthly.ok()) return 1;
  std::printf("3-week rollup: %llu events represented by %llu samples\n",
              static_cast<unsigned long long>(monthly.value().parent_size()),
              static_cast<unsigned long long>(monthly.value().size()));

  // Slide the retention window: week 0 ages out.
  auto old_days = warehouse.PartitionsInTimeRange("clickstream", 0,
                                                  7 * 24 - 1);
  if (!old_days.ok()) return 1;
  for (const PartitionId id : old_days.value()) {
    if (!warehouse.RollOut("clickstream", id).ok()) return 1;
  }
  auto remaining = warehouse.MergedSampleAll("clickstream");
  if (!remaining.ok()) return 1;
  std::printf(
      "after rolling out week 0: %llu events remain in the sample "
      "warehouse\n",
      static_cast<unsigned long long>(remaining.value().parent_size()));
  return 0;
}
