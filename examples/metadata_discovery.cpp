// Automated metadata discovery over samples (§1's second motivation, the
// authors' BHUNT/CORDS line of work): with only the bounded-footprint
// samples in the warehouse — never touching the full data — discover that
// two columns likely share a domain (sample-overlap evidence), estimate
// distinct-value counts, and flag a candidate key column.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/stats/estimators.h"
#include "src/warehouse/dictionary.h"
#include "src/warehouse/warehouse.h"
#include "src/util/random.h"

using namespace sampwh;

namespace {

// Jaccard-style overlap between the distinct values of two samples.
double SampleOverlap(const PartitionSample& a, const PartitionSample& b) {
  std::set<Value> va;
  a.histogram().ForEach([&](Value v, uint64_t) { va.insert(v); });
  uint64_t intersection = 0;
  uint64_t b_distinct = 0;
  b.histogram().ForEach([&](Value v, uint64_t) {
    ++b_distinct;
    if (va.contains(v)) ++intersection;
  });
  const uint64_t union_size = va.size() + b_distinct - intersection;
  return union_size == 0
             ? 0.0
             : static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

}  // namespace

int main() {
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 16 * 1024;
  Warehouse warehouse(options);

  // Three "columns" from an imaginary schema. orders.customer_id and
  // payments.customer_id draw from the same 30K-customer domain;
  // orders.order_id is a key (all distinct).
  ValueDictionary dict;  // shared string-code space for the id columns
  Pcg64 rng(3);

  auto ingest = [&](const std::string& name,
                    const std::vector<Value>& data) {
    if (!warehouse.CreateDataset(name).ok()) std::abort();
    if (!warehouse.IngestBatch(name, data, 4).ok()) std::abort();
  };

  std::vector<Value> orders_customer;
  std::vector<Value> payments_customer;
  std::vector<Value> order_ids;
  for (int i = 0; i < 400000; ++i) {
    const std::string customer =
        "cust_" + std::to_string(rng.UniformInt(30000));
    orders_customer.push_back(dict.Encode(customer));
    // Keys live in their own numeric domain, far from dictionary codes.
    order_ids.push_back(static_cast<Value>(10000000 + i));
  }
  for (int i = 0; i < 250000; ++i) {
    const std::string customer =
        "cust_" + std::to_string(rng.UniformInt(30000));
    payments_customer.push_back(dict.Encode(customer));
  }
  ingest("orders.customer_id", orders_customer);
  ingest("payments.customer_id", payments_customer);
  ingest("orders.order_id", order_ids);

  // Pull merged samples — all discovery below runs on these alone.
  const auto s_orders = warehouse.MergedSampleAll("orders.customer_id");
  const auto s_payments = warehouse.MergedSampleAll("payments.customer_id");
  const auto s_keys = warehouse.MergedSampleAll("orders.order_id");
  if (!s_orders.ok() || !s_payments.ok() || !s_keys.ok()) return 1;

  std::printf("column profiles (from samples only):\n");
  for (const auto& [name, sample] :
       std::vector<std::pair<std::string, const PartitionSample*>>{
           {"orders.customer_id", &s_orders.value()},
           {"payments.customer_id", &s_payments.value()},
           {"orders.order_id", &s_keys.value()}}) {
    const auto distinct = EstimateDistinctCount(*sample);
    if (!distinct.ok()) return 1;
    const double ratio =
        distinct.value().value / static_cast<double>(sample->parent_size());
    std::printf(
        "  %-24s rows %-8llu sample %-6llu est. distinct %-9.0f "
        "key-likelihood %.2f%s\n",
        name.c_str(),
        static_cast<unsigned long long>(sample->parent_size()),
        static_cast<unsigned long long>(sample->size()),
        distinct.value().value, ratio,
        ratio > 0.9 ? "  <- candidate key" : "");
  }

  // Join-path discovery: overlapping sample domains suggest a foreign-key
  // relationship between the two customer_id columns, and none between
  // customer ids and order ids.
  std::printf("\nsample-domain overlap (Jaccard over sampled values):\n");
  std::printf("  orders.customer_id  ~ payments.customer_id : %.3f\n",
              SampleOverlap(s_orders.value(), s_payments.value()));
  std::printf("  orders.customer_id  ~ orders.order_id      : %.3f\n",
              SampleOverlap(s_orders.value(), s_keys.value()));
  std::printf(
      "\nHigh overlap on a shared dictionary domain flags a candidate "
      "join path for a CORDS/BHUNT-style discovery pipeline.\n");
  return 0;
}
