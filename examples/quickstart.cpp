// Quickstart: create a sample warehouse, bulk load a data set in parallel
// partitions, and run approximate queries against the merged sample.
//
//   $ ./quickstart
//
// Walks the minimal end-to-end path: Warehouse -> CreateDataset ->
// IngestBatch -> MergedSampleAll -> estimators.

#include <cstdio>

#include "src/stats/estimators.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

using namespace sampwh;

int main() {
  // 1. Configure: Algorithm HR (hybrid reservoir) with a 16 KiB footprint
  //    bound per partition sample. n_F = 2048 sample values.
  WarehouseOptions options;
  options.sampler.kind = SamplerKind::kHybridReservoir;
  options.sampler.footprint_bound_bytes = 16 * 1024;
  Warehouse warehouse(options);

  // 2. Create a data set and bulk load 1M values (uniform on [1, 10^6])
  //    as 8 independently sampled partitions, in parallel.
  if (!warehouse.CreateDataset("orders.amount").ok()) return 1;
  DataGenerator gen = DataGenerator::Uniform(1000000, 1000000, /*seed=*/42);
  ThreadPool pool(4);
  const auto ids =
      warehouse.IngestBatch("orders.amount", gen.TakeAll(), 8, &pool);
  if (!ids.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n",
                 ids.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested 1,000,000 values as %zu partitions\n",
              ids.value().size());

  // 3. Merge the per-partition samples into one uniform sample of the
  //    whole data set (Fig. 1's S_{*,*}).
  auto merged = warehouse.MergedSampleAll("orders.amount");
  if (!merged.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 merged.status().ToString().c_str());
    return 1;
  }
  const PartitionSample& sample = merged.value();
  std::printf("merged sample: %llu values (%s phase), footprint %llu B\n",
              static_cast<unsigned long long>(sample.size()),
              std::string(SamplePhaseToString(sample.phase())).c_str(),
              static_cast<unsigned long long>(sample.footprint_bytes()));

  // 4. Approximate analytics. True mean of Uniform[1, 10^6] is 500000.5;
  //    true selectivity of amount <= 250000 is 0.25.
  const auto mean = EstimateMean(sample);
  const auto sel = EstimateSelectivity(
      sample, [](Value v) { return v <= 250000; });
  const auto total = EstimateSum(sample);
  if (!mean.ok() || !sel.ok() || !total.ok()) return 1;
  std::printf("estimated mean:        %.1f  (+/- %.1f SE; truth 500000.5)\n",
              mean.value().value, mean.value().standard_error);
  std::printf("estimated selectivity: %.4f (+/- %.4f SE; truth 0.2500)\n",
              sel.value().value, sel.value().standard_error);
  std::printf("estimated sum:         %.3e (truth 5.000e+11)\n",
              total.value().value);
  return 0;
}
