// Approximate query answering over the sample warehouse (§1's first
// motivation): compare sample-based estimates with exact answers computed
// from the full data, across several query shapes, and show the error
// shrinking as the footprint budget grows.

#include <cstdio>
#include <cmath>
#include <vector>

#include "src/stats/estimators.h"
#include "src/warehouse/warehouse.h"
#include "src/workload/generators.h"

using namespace sampwh;

namespace {

struct GroundTruth {
  double sum = 0.0;
  double mean = 0.0;
  uint64_t below_100k = 0;
  uint64_t equal_7 = 0;
};

GroundTruth Exact(const std::vector<Value>& data) {
  GroundTruth truth;
  for (const Value v : data) {
    truth.sum += static_cast<double>(v);
    if (v <= 100000) ++truth.below_100k;
    if (v == 7) ++truth.equal_7;
  }
  truth.mean = truth.sum / static_cast<double>(data.size());
  return truth;
}

}  // namespace

int main() {
  // A 2M-value data set: 90% uniform on [1, 10^6], 10% the literal value 7
  // (a heavy hitter the frequency query will chase).
  std::vector<Value> data;
  Pcg64 rng(11);
  for (int i = 0; i < 2000000; ++i) {
    data.push_back(rng.Bernoulli(0.1)
                       ? 7
                       : static_cast<Value>(rng.UniformInt(1000000)) + 1);
  }
  const GroundTruth truth = Exact(data);
  std::printf("ground truth: sum %.4e  mean %.1f  count(v<=1e5) %llu  "
              "count(v=7) %llu\n\n",
              truth.sum, truth.mean,
              static_cast<unsigned long long>(truth.below_100k),
              static_cast<unsigned long long>(truth.equal_7));

  std::printf("%-12s%-14s%-14s%-16s%-16s\n", "footprint", "mean(err%)",
              "sum(err%)", "count<=1e5(err%)", "count=7(err%)");
  for (const uint64_t f : {4096ULL, 16384ULL, 65536ULL, 262144ULL}) {
    WarehouseOptions options;
    options.sampler.kind = SamplerKind::kHybridReservoir;
    options.sampler.footprint_bound_bytes = f;
    Warehouse warehouse(options);
    if (!warehouse.CreateDataset("facts").ok()) return 1;
    if (!warehouse.IngestBatch("facts", data, 16).ok()) return 1;
    auto merged = warehouse.MergedSampleAll("facts");
    if (!merged.ok()) return 1;

    const auto mean = EstimateMean(merged.value());
    const auto sum = EstimateSum(merged.value());
    const auto below = EstimateCount(merged.value(),
                                     [](Value v) { return v <= 100000; });
    const auto sevens = EstimateFrequency(merged.value(), 7);
    if (!mean.ok() || !sum.ok() || !below.ok() || !sevens.ok()) return 1;

    auto err = [](double estimate, double exact) {
      return 100.0 * std::fabs(estimate - exact) / exact;
    };
    std::printf("%-12llu%-14.3f%-14.3f%-16.3f%-16.3f\n",
                static_cast<unsigned long long>(f),
                err(mean.value().value, truth.mean),
                err(sum.value().value, truth.sum),
                err(below.value().value,
                    static_cast<double>(truth.below_100k)),
                err(sevens.value().value,
                    static_cast<double>(truth.equal_7)));
  }
  std::printf("\nLarger footprint budgets buy proportionally tighter "
              "estimates; all queries ran on the sample warehouse alone.\n");
  return 0;
}
