// Tour of the §6 future-work extensions implemented in this library:
// stratified estimation over per-partition samples, weight-biased
// (Efraimidis-Spirakis) mergeable reservoirs, and systematic sampling —
// with a side-by-side look at when each beats plain uniform sampling.

#include <cstdio>

#include "src/core/hybrid_reservoir.h"
#include "src/core/systematic_sampler.h"
#include "src/core/weighted_sampler.h"
#include "src/stats/stratified.h"
#include "src/util/random.h"

using namespace sampwh;

namespace {

// Three regional "shards" with very different value levels: strata are
// internally homogeneous, the textbook case for stratified estimation.
PartitionSample SampleRegion(int region, uint64_t elements, Pcg64 rng) {
  HybridReservoirSampler::Options options;
  options.footprint_bound_bytes = 2048;  // 256 values per region
  HybridReservoirSampler sampler(options, std::move(rng));
  Pcg64 noise(1000 + region);
  for (uint64_t i = 0; i < elements; ++i) {
    sampler.Add(region * 100000 + static_cast<Value>(noise.UniformInt(500)));
  }
  return sampler.Finalize();
}

}  // namespace

int main() {
  Pcg64 seeder(42);

  // --- 1. Stratified estimation (§4.1 concatenation + §6) ---------------
  StratifiedSample strat;
  MergeOptions merge_options;
  merge_options.footprint_bound_bytes = 2048;
  for (int region = 0; region < 3; ++region) {
    if (!strat.AddStratum(SampleRegion(region, 200000, seeder.Fork(region)))
             .ok()) {
      return 1;
    }
  }
  const auto strat_mean = strat.EstimateMean();
  Pcg64 merge_rng = seeder.Fork(100);
  const auto uniform = strat.ToUniformSample(merge_options, merge_rng);
  if (!strat_mean.ok() || !uniform.ok()) return 1;
  const auto pooled_mean = EstimateMean(uniform.value());
  if (!pooled_mean.ok()) return 1;
  std::printf("stratified vs pooled estimation (true mean 100249.5):\n");
  std::printf("  stratified mean: %.1f  (SE %.1f)\n",
              strat_mean.value().value, strat_mean.value().standard_error);
  std::printf("  pooled mean:     %.1f  (SE %.1f)  <- between-strata "
              "spread inflates the error\n\n",
              pooled_mean.value().value,
              pooled_mean.value().standard_error);

  // --- 2. Weighted (biased) reservoirs, mergeable across shards ----------
  // Items are "sessions" weighted by revenue; the warehouse keeps the
  // revenue-biased sample per shard and merges by key union.
  WeightedReservoirSampler shard_a(8, seeder.Fork(200));
  WeightedReservoirSampler shard_b(8, seeder.Fork(201));
  Pcg64 weights_rng(7);
  for (Value session = 0; session < 20000; ++session) {
    const bool whale = weights_rng.Bernoulli(0.001);
    const double revenue =
        whale ? 50000.0
              : 1.0 + static_cast<double>(weights_rng.UniformInt(20));
    (session % 2 == 0 ? shard_a : shard_b).Add(session, revenue);
  }
  const auto merged = WeightedReservoirSampler::Merge(shard_a, shard_b);
  if (!merged.ok()) return 1;
  std::printf("revenue-biased sample (capacity 8) after merging 2 shards:\n");
  int whales = 0;
  for (const WeightedItem& item : merged.value().Items()) {
    if (item.weight >= 50000.0) ++whales;
    std::printf("  session %lld  weight %.0f\n",
                static_cast<long long>(item.value), item.weight);
  }
  std::printf("  -> %d of 8 slots hold the ~20 'whale' sessions a uniform "
              "sampler would almost surely miss\n\n",
              whales);

  // --- 3. Systematic sampling: cheap, stable size, NOT uniform -----------
  SystematicSampler systematic(1000, seeder.Fork(300));
  for (Value v = 0; v < 1000000; ++v) systematic.Add(v);
  std::printf("systematic (stride 1000) over 1M elements: size %llu "
              "(deterministic within 1), offset %llu\n",
              static_cast<unsigned long long>(systematic.sample_size()),
              static_cast<unsigned long long>(systematic.offset()));
  std::printf("  caveat: only `stride` distinct samples are possible — "
              "systematic samples stay outside the uniform merge paths.\n");
  return 0;
}
