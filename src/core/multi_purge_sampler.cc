#include "src/core/multi_purge_sampler.h"

#include <utility>

#include "src/core/purge.h"
#include "src/core/qbound.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

MultiPurgeBernoulliSampler::MultiPurgeBernoulliSampler(const Options& options,
                                                       Pcg64 rng)
    : options_(options),
      n_F_(MaxSampleSizeForFootprint(options.footprint_bound_bytes)),
      rng_(std::move(rng)) {
  SAMPWH_CHECK(n_F_ >= 1);
  SAMPWH_CHECK(options_.purge_shrink > 0.0 && options_.purge_shrink < 1.0);
  SAMPWH_CHECK(options_.exceedance_probability > 0.0 &&
               options_.exceedance_probability <= 0.5);
}

void MultiPurgeBernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (phase_ == SamplePhase::kExhaustive) {
    hist_.Insert(v);
    if (hist_.footprint_bytes() >= options_.footprint_bound_bytes) {
      const uint64_t n = options_.expected_population_size > 0
                             ? options_.expected_population_size
                             : elements_seen_;
      q_ = ApproxBernoulliRate(n, options_.exceedance_probability, n_F_);
      PurgeBernoulli(&hist_, q_, rng_);
      phase_ = SamplePhase::kBernoulli;
      PurgeWhileAtCapacity();
      gap_ = SampleGeometricSkip(rng_, q_);
    }
    return;
  }
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  PurgeWhileAtCapacity();
  gap_ = SampleGeometricSkip(rng_, q_);
}

PartitionSample MultiPurgeBernoulliSampler::Finalize() {
  CompactHistogram hist = std::move(hist_);
  hist_.Clear();
  const uint64_t bound = options_.footprint_bound_bytes;
  if (phase_ == SamplePhase::kExhaustive) {
    return PartitionSample::MakeExhaustive(std::move(hist), elements_seen_,
                                           bound);
  }
  return PartitionSample::MakeBernoulli(std::move(hist), elements_seen_, q_,
                                        bound);
}

void MultiPurgeBernoulliSampler::PurgeWhileAtCapacity() {
  while (hist_.total_count() >= n_F_) {
    const double new_q = q_ * options_.purge_shrink;
    PurgeBernoulli(&hist_, new_q / q_, rng_);
    q_ = new_q;
    ++forced_purges_;
  }
}

}  // namespace sampwh
