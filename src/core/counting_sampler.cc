#include "src/core/counting_sampler.h"

#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace sampwh {

CountingSampler::CountingSampler(const Options& options, Pcg64 rng)
    : options_(options), rng_(std::move(rng)) {
  SAMPWH_CHECK(options_.footprint_bound_bytes >= kPairFootprintBytes);
  SAMPWH_CHECK(options_.threshold_growth > 1.0);
}

void CountingSampler::Add(Value v) {
  ++elements_seen_;
  if (hist_.CountOf(v) > 0) {
    // Membership established: count exactly from now on.
    hist_.Insert(v);
  } else if (tau_ <= 1.0 || rng_.Bernoulli(1.0 / tau_)) {
    hist_.Insert(v);
  } else {
    return;
  }
  RaiseThresholdWhileOverBound();
}

bool CountingSampler::Delete(Value v) {
  if (hist_.CountOf(v) == 0) return false;
  hist_.Remove(v, 1);
  return true;
}

void CountingSampler::RaiseThresholdWhileOverBound() {
  while (hist_.footprint_bytes() > options_.footprint_bound_bytes) {
    const double new_tau = tau_ * options_.threshold_growth;
    // Gibbons-Matias threshold raise: for each value, flip a coin with
    // heads probability tau/tau'; on tails decrement and keep flipping at
    // heads probability 1/tau' until heads or the count hits zero.
    std::vector<std::pair<Value, uint64_t>> removals;
    hist_.ForEach([&](Value value, uint64_t count) {
      uint64_t removed = 0;
      if (!rng_.Bernoulli(tau_ / new_tau)) {
        ++removed;
        while (removed < count && !rng_.Bernoulli(1.0 / new_tau)) {
          ++removed;
        }
      }
      if (removed > 0) removals.emplace_back(value, removed);
    });
    for (const auto& [value, removed] : removals) {
      hist_.Remove(value, removed);
    }
    tau_ = new_tau;
  }
}

}  // namespace sampwh
