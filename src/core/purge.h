// The two subsampling primitives of §4 that operate directly on the compact
// (value, count) representation, without ever expanding a sample to a bag:
//
//  * purgeBernoulli (Fig. 3): Bern(q) subsample via per-pair binomial
//    thinning.
//  * purgeReservoir (Fig. 4): simple random subsample of a fixed size via
//    reservoir sampling over the implicit expanded stream, driven by Vitter
//    skips; victims are selected in O(log m) with a Fenwick tree over the
//    partially built new counts.

#ifndef SAMPWH_CORE_PURGE_H_
#define SAMPWH_CORE_PURGE_H_

#include <cstdint>
#include <vector>

#include "src/core/compact_histogram.h"
#include "src/util/random.h"

namespace sampwh {

/// Replaces *sample with a Bern(q) subsample of it: each (v, n) entry's
/// count is redrawn as Binomial(n, q) and dropped at zero (paper Fig. 3).
/// If *sample was a Bern(r) sample of a population, the result is a
/// Bern(r * q) sample of that population (§3.1).
void PurgeBernoulli(CompactHistogram* sample, double q, Pcg64& rng);

/// Returns a simple random subsample of size min(M, total) drawn from the
/// concatenation of the expanded bags of `sources`, processing entries in
/// sorted-value order within each source (paper Fig. 4, generalized to a
/// multi-source stream so HBMerge's overflow path — Fig. 6 lines 15-16 —
/// can stream S2 into the reservoir built over S1 without expansion).
CompactHistogram PurgeReservoirStreamed(
    const std::vector<const CompactHistogram*>& sources, uint64_t M,
    Pcg64& rng);

/// In-place single-source convenience wrapper: *sample becomes a simple
/// random subsample of itself of size min(M, |*sample|).
void PurgeReservoir(CompactHistogram* sample, uint64_t M, Pcg64& rng);

/// Reference implementation of purgeReservoir with the paper's literal
/// victim-selection rule (Fig. 4 line 9): a linear scan of the partial
/// prefix sums, O(m) per eviction instead of the Fenwick tree's O(log m).
/// Statistically identical to PurgeReservoirStreamed; exists for the
/// bench_ablation_purge comparison and as an oracle in tests.
CompactHistogram PurgeReservoirStreamedLinearScan(
    const std::vector<const CompactHistogram*>& sources, uint64_t M,
    Pcg64& rng);

}  // namespace sampwh

#endif  // SAMPWH_CORE_PURGE_H_
