#include "src/core/vitter.h"

#include <cmath>

#include "src/util/logging.h"

namespace sampwh {

VitterSkip::VitterSkip(uint64_t k, Mode mode) : k_(k), mode_(mode) {
  SAMPWH_CHECK(k >= 1);
  w_ = 0.0;  // lazily initialized on first Algorithm Z call
}

VitterSkip::State VitterSkip::SaveState() const {
  State state;
  state.k = k_;
  state.mode = static_cast<uint8_t>(mode_);
  state.w = w_;
  return state;
}

VitterSkip VitterSkip::FromState(const State& state) {
  SAMPWH_CHECK(state.mode <= 2);
  VitterSkip skip(state.k, static_cast<Mode>(state.mode));
  skip.w_ = state.w;
  return skip;
}

uint64_t VitterSkip::NextInsertionIndex(Pcg64& rng, uint64_t n) {
  SAMPWH_DCHECK(n >= k_);
  uint64_t skip;
  switch (mode_) {
    case Mode::kAlgorithmX:
      skip = SkipX(rng, n);
      break;
    case Mode::kAlgorithmZ:
      skip = SkipZ(rng, n);
      break;
    case Mode::kAuto:
    default:
      skip = (n <= kXtoZSwitchFactor * k_) ? SkipX(rng, n) : SkipZ(rng, n);
      break;
  }
  return n + skip + 1;
}

uint64_t VitterSkip::SkipX(Pcg64& rng, uint64_t n) const {
  // Sequential search: P{skip >= s} = prod_{j=1..s} (n + j - k) / (n + j).
  const double v = rng.NextDoubleOpen();
  uint64_t s = 0;
  double t = static_cast<double>(n) + 1.0;
  double quot = (t - static_cast<double>(k_)) / t;
  while (quot > v) {
    ++s;
    t += 1.0;
    quot *= (t - static_cast<double>(k_)) / t;
  }
  return s;
}

uint64_t VitterSkip::SkipZ(Pcg64& rng, uint64_t n) {
  // Vitter 1985, Algorithm Z: generate the skip S by rejection from the
  // continuous envelope X = n (W - 1), with an inexpensive squeeze test
  // before the exact (product-form) acceptance test.
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k_);
  if (w_ == 0.0) {
    w_ = std::exp(-std::log(rng.NextDoubleOpen()) / kd);
  }
  const double term = nd - kd + 1.0;
  for (;;) {
    double u;
    double x;
    double s_floor;
    // Generate U and X.
    for (;;) {
      u = rng.NextDoubleOpen();
      x = nd * (w_ - 1.0);
      s_floor = std::floor(x);
      if (s_floor >= 0.0) break;
      // Numerical underflow (w_ rounded to 1.0); refresh W and retry.
      w_ = std::exp(-std::log(rng.NextDoubleOpen()) / kd);
    }
    // Squeeze acceptance test.
    const double lhs = std::exp(
        std::log(((u * ((nd + 1.0) / term) * ((nd + 1.0) / term)) *
                  (term + s_floor)) /
                 (nd + x)) /
        kd);
    const double rhs = (((nd + x) / (term + s_floor)) * term) / nd;
    if (lhs <= rhs) {
      w_ = rhs / lhs;
      return static_cast<uint64_t>(s_floor);
    }
    // Exact acceptance test.
    double y = (((u * (nd + 1.0)) / term) * (nd + s_floor + 1.0)) / (nd + x);
    double denom;
    double numer_lim;
    if (kd < s_floor) {
      denom = nd;
      numer_lim = term + s_floor;
    } else {
      denom = nd - kd + s_floor;
      numer_lim = nd + 1.0;
    }
    for (double numer = nd + s_floor; numer >= numer_lim; numer -= 1.0) {
      y = (y * numer) / denom;
      denom -= 1.0;
    }
    w_ = std::exp(-std::log(rng.NextDoubleOpen()) / kd);
    if (std::exp(std::log(y) / kd) <= (nd + x) / nd) {
      return static_cast<uint64_t>(s_floor);
    }
  }
}

}  // namespace sampwh
