#include "src/core/batch_accept.h"

#include <atomic>
#include <bit>

namespace sampwh {
namespace {

constexpr BernAcceptMode kCompiledDefault =
#if defined(SAMPWH_DEFAULT_BITMASK_ACCEPT) && SAMPWH_DEFAULT_BITMASK_ACCEPT
    BernAcceptMode::kBitmask;
#else
    BernAcceptMode::kAuto;
#endif

std::atomic<BernAcceptMode> g_default_mode{kCompiledDefault};

}  // namespace

BernAcceptMode DefaultBernAcceptMode() {
  return g_default_mode.load(std::memory_order_relaxed);
}

void SetDefaultBernAcceptMode(BernAcceptMode mode) {
  g_default_mode.store(mode, std::memory_order_relaxed);
}

uint64_t BernoulliAcceptMask(Pcg64& rng, double q, size_t lanes) {
  if (lanes == 0) return 0;
  if (lanes > 64) lanes = 64;
  // Degenerate probabilities consume no draws, exactly like Bernoulli().
  if (q <= 0.0) return 0;
  if (q >= 1.0) return lanes == 64 ? ~0ULL : (1ULL << lanes) - 1;

  // Phase 1: fill the draw buffer serially (the RNG recurrence is a chain).
  uint64_t draws[64];
  for (size_t i = 0; i < lanes; ++i) draws[i] = rng.NextUint64();

  // Phase 2: branch-free compare loop — no data-dependent control flow, no
  // cross-iteration dependence, so the compiler is free to vectorize it.
  // Each lane reproduces NextDouble() < q bit-for-bit.
  uint64_t mask = 0;
  for (size_t i = 0; i < lanes; ++i) {
    const double u = static_cast<double>(draws[i] >> 11) * 0x1.0p-53;
    mask |= static_cast<uint64_t>(u < q) << i;
  }
  return mask;
}

size_t CompressAccepted(std::span<const Value> values, uint64_t mask,
                        Value* out) {
  if (values.size() < 64) mask &= (1ULL << values.size()) - 1;
  size_t stored = 0;
  while (mask != 0) {
    const int lane = std::countr_zero(mask);
    out[stored++] = values[static_cast<size_t>(lane)];
    mask &= mask - 1;
  }
  return stored;
}

}  // namespace sampwh
