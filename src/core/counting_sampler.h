// Counting sampling (Gibbons & Matias, SIGMOD 1998), the deletion-capable
// extension of concise sampling that the paper cites in §3.3: once a value
// enters the sample, every later occurrence increments its count exactly,
// and deletions in the parent data set are reflected by decrementing
// counts. Like concise sampling it is NOT uniform (the paper notes both
// schemes share the bias), so it stays outside the warehouse's uniform
// merge paths; it is provided for parity with [7] and for the tests that
// demonstrate the bias.

#ifndef SAMPWH_CORE_COUNTING_SAMPLER_H_
#define SAMPWH_CORE_COUNTING_SAMPLER_H_

#include <cstdint>

#include "src/core/compact_histogram.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class CountingSampler {
 public:
  struct Options {
    /// F: bound on the compact-representation footprint, in bytes.
    uint64_t footprint_bound_bytes = 64 * 1024;
    /// Multiplicative threshold increase per purge round.
    double threshold_growth = 1.1;
  };

  CountingSampler(const Options& options, Pcg64 rng);

  /// Processes one arriving data element. Values already present always
  /// have their count incremented; new values enter with probability
  /// 1/tau. Raises the threshold while the footprint exceeds the bound.
  void Add(Value v);

  /// Processes a deletion from the parent data set: if v is in the sample,
  /// one occurrence is removed. Returns true when the sample changed.
  bool Delete(Value v);

  uint64_t elements_seen() const { return elements_seen_; }
  double threshold() const { return tau_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  uint64_t footprint_bytes() const { return hist_.footprint_bytes(); }
  const CompactHistogram& histogram() const { return hist_; }

 private:
  void RaiseThresholdWhileOverBound();

  Options options_;
  Pcg64 rng_;
  uint64_t elements_seen_ = 0;
  double tau_ = 1.0;
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_COUNTING_SAMPLER_H_
