// Algorithm HR (paper §4.2, Fig. 7): hybrid reservoir sampling with an
// a priori bounded footprint.
//
// Phase 1 ingests every value into a compact histogram. When the footprint
// reaches the bound F, the sampler switches to reservoir mode: on the first
// reservoir insertion the histogram is cut down to a simple random sample
// of size n_F (purgeReservoir) and expanded to a bag; thereafter standard
// reservoir sampling with Vitter skips maintains a size-n_F simple random
// sample. Unlike Algorithm HB, no a priori knowledge of the partition size
// is needed and the terminal sample size is stable (exactly n_F whenever
// the data outgrew the footprint).

#ifndef SAMPWH_CORE_HYBRID_RESERVOIR_H_
#define SAMPWH_CORE_HYBRID_RESERVOIR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/compact_histogram.h"
#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/core/vitter.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace sampwh {

class HybridReservoirSampler {
 public:
  struct Options {
    /// F: hard bound, in bytes, on the sample footprint at every instant.
    uint64_t footprint_bound_bytes = 64 * 1024;
  };

  HybridReservoirSampler(const Options& options, Pcg64 rng);

  /// Resumes Algorithm HR from an existing sample (HRMerge's exhaustive
  /// case, Fig. 8 lines 1-4). A Bernoulli base sample is accepted too and
  /// treated, conditionally on its size, as a simple random sample — the
  /// device HBMerge relies on when it delegates mixed merges here.
  static Result<HybridReservoirSampler> Resume(const PartitionSample& base,
                                               const Options& options,
                                               Pcg64 rng);

  /// Processes one arriving data element.
  void Add(Value v);

  /// Batch fast path. Phase 1 stays per-element (each value updates the
  /// histogram footprint); phase 2 jumps directly between Vitter insertion
  /// indices so the amortized cost per element is O(n_F / n). The phase
  /// transition can occur mid-batch, at the same element where an
  /// element-wise Add loop would transition; RNG draw order matches Add
  /// exactly (identical samples under the same seed).
  void AddBatch(std::span<const Value> values);

  uint64_t elements_seen() const { return elements_seen_; }

  /// kExhaustive while in phase 1, kReservoir in phase 2.
  SamplePhase phase() const { return phase_; }

  uint64_t sample_size() const;
  uint64_t footprint_bytes() const;

  /// Converts the running state into a finalized PartitionSample. The
  /// sampler is left empty.
  PartitionSample Finalize();

  /// Serializes the complete mid-stream state (see HybridBernoulliSampler::
  /// SaveState); LoadState() resumes bit-identically.
  void SaveState(BinaryWriter* writer) const;
  static Result<HybridReservoirSampler> LoadState(BinaryReader* reader);

 private:
  void ExpandIfNeeded();

  Options options_;
  uint64_t n_F_;
  Pcg64 rng_;

  SamplePhase phase_ = SamplePhase::kExhaustive;
  uint64_t elements_seen_ = 0;
  uint64_t reservoir_capacity_ = 0;

  CompactHistogram hist_;  // phase 1, or unexpanded phase-2 state
  bool expanded_ = false;
  std::vector<Value> bag_;

  std::optional<VitterSkip> reservoir_skip_;
  uint64_t next_reservoir_index_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_HYBRID_RESERVOIR_H_
