#include "src/core/compact_histogram.h"

#include <algorithm>

#include "src/util/logging.h"

namespace sampwh {

void CompactHistogram::Insert(Value v, uint64_t n) {
  if (n == 0) return;
  uint64_t& count = counts_[v];
  if (count == 0) {
    // New entry: singleton if n == 1, pair otherwise.
    footprint_bytes_ +=
        (n == 1) ? kSingletonFootprintBytes : kPairFootprintBytes;
  } else if (count == 1) {
    // Singleton becomes a pair.
    footprint_bytes_ += kPairFootprintBytes - kSingletonFootprintBytes;
  }
  count += n;
  total_count_ += n;
}

void CompactHistogram::Remove(Value v, uint64_t n) {
  if (n == 0) return;
  auto it = counts_.find(v);
  SAMPWH_CHECK(it != counts_.end() && it->second >= n);
  const uint64_t old_count = it->second;
  const uint64_t new_count = old_count - n;
  auto contribution = [](uint64_t c) -> uint64_t {
    if (c == 0) return 0;
    return c == 1 ? kSingletonFootprintBytes : kPairFootprintBytes;
  };
  footprint_bytes_ += contribution(new_count);
  footprint_bytes_ -= contribution(old_count);
  total_count_ -= n;
  if (new_count == 0) {
    counts_.erase(it);
  } else {
    it->second = new_count;
  }
}

uint64_t CompactHistogram::CountOf(Value v) const {
  const auto it = counts_.find(v);
  return it == counts_.end() ? 0 : it->second;
}

void CompactHistogram::ForEach(
    const std::function<void(Value, uint64_t)>& fn) const {
  for (const auto& [v, n] : counts_) fn(v, n);
}

std::vector<std::pair<Value, uint64_t>> CompactHistogram::SortedEntries()
    const {
  std::vector<std::pair<Value, uint64_t>> entries(counts_.begin(),
                                                  counts_.end());
  std::sort(entries.begin(), entries.end());
  return entries;
}

std::vector<Value> CompactHistogram::ToBag() const {
  std::vector<Value> bag;
  bag.reserve(total_count_);
  for (const auto& [v, n] : SortedEntries()) {
    bag.insert(bag.end(), n, v);
  }
  return bag;
}

CompactHistogram CompactHistogram::FromBag(const std::vector<Value>& bag) {
  CompactHistogram hist;
  for (const Value v : bag) hist.Insert(v);
  return hist;
}

void CompactHistogram::Join(const CompactHistogram& other) {
  other.ForEach([this](Value v, uint64_t n) { Insert(v, n); });
}

uint64_t CompactHistogram::JoinedFootprintBytes(
    const CompactHistogram& other) const {
  uint64_t footprint = footprint_bytes_;
  other.ForEach([this, &footprint](Value v, uint64_t n) {
    const uint64_t existing = CountOf(v);
    if (existing == 0) {
      footprint += (n == 1) ? kSingletonFootprintBytes : kPairFootprintBytes;
    } else if (existing == 1) {
      footprint += kPairFootprintBytes - kSingletonFootprintBytes;
    }
  });
  return footprint;
}

Value CompactHistogram::RemoveRandomVictim(Pcg64& rng) {
  SAMPWH_CHECK(total_count_ > 0);
  uint64_t target = rng.UniformInt(total_count_);
  for (const auto& [v, n] : counts_) {
    if (target < n) {
      const Value victim = v;
      Remove(victim, 1);
      return victim;
    }
    target -= n;
  }
  // Unreachable: total_count_ equals the sum of all counts.
  SAMPWH_CHECK(false);
  return 0;
}

void CompactHistogram::Clear() {
  counts_.clear();
  total_count_ = 0;
  footprint_bytes_ = 0;
}

void CompactHistogram::SerializeTo(BinaryWriter* writer) const {
  const auto entries = SortedEntries();
  writer->PutVarint64(entries.size());
  Value previous = 0;
  for (const auto& [v, n] : entries) {
    writer->PutVarintSigned64(v - previous);
    writer->PutVarint64(n);
    previous = v;
  }
}

Result<CompactHistogram> CompactHistogram::DeserializeFrom(
    BinaryReader* reader) {
  uint64_t num_entries;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&num_entries));
  CompactHistogram hist;
  Value previous = 0;
  for (uint64_t i = 0; i < num_entries; ++i) {
    int64_t delta;
    uint64_t count;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarintSigned64(&delta));
    SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&count));
    if (count == 0) {
      return Status::Corruption("zero count in histogram entry");
    }
    previous += delta;
    hist.Insert(previous, count);
  }
  return hist;
}

}  // namespace sampwh
