#include "src/core/bernoulli_sampler.h"

#include <utility>

#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

BernoulliSampler::BernoulliSampler(double q, Pcg64 rng)
    : q_(q), rng_(std::move(rng)) {
  SAMPWH_CHECK(q > 0.0 && q <= 1.0);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::AddBatch(std::span<const Value> values) {
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    const size_t remaining = n - i;
    if (gap_ >= remaining) {
      gap_ -= remaining;
      break;
    }
    i += gap_;
    hist_.Insert(values[i]);
    ++i;
    gap_ = SampleGeometricSkip(rng_, q_);
  }
  elements_seen_ += n;
}

PartitionSample BernoulliSampler::Finalize() {
  CompactHistogram hist = std::move(hist_);
  hist_.Clear();
  return PartitionSample::MakeBernoulli(std::move(hist), elements_seen_, q_,
                                        /*footprint_bound_bytes=*/0);
}

}  // namespace sampwh
