#include "src/core/bernoulli_sampler.h"

#include <algorithm>
#include <utility>

#include "src/core/sampler_state.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

BernoulliSampler::BernoulliSampler(double q, Pcg64 rng, BernAcceptMode mode)
    : q_(q), rng_(std::move(rng)), mode_(mode) {
  SAMPWH_CHECK(q > 0.0 && q <= 1.0);
  // kAuto resolves before any RNG draw, so a sampler constructed with kAuto
  // is indistinguishable — including its RNG stream — from one constructed
  // with the concrete mode it resolves to, and SaveState() always records
  // the concrete mode.
  if (mode_ == BernAcceptMode::kAuto) {
    mode_ = q_ >= kAutoBitmaskRateThreshold ? BernAcceptMode::kBitmask
                                            : BernAcceptMode::kGeometricSkip;
  }
  // The bitmask mode draws once per element, so there is no pending skip to
  // pre-draw; keeping the constructor draw-free in that mode is what makes
  // its Add loop bit-identical to BernoulliAcceptMask lanes.
  if (mode_ == BernAcceptMode::kGeometricSkip) {
    gap_ = SampleGeometricSkip(rng_, q_);
  }
}

void BernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (mode_ == BernAcceptMode::kBitmask) {
    if (rng_.Bernoulli(q_)) hist_.Insert(v);
    return;
  }
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::AddBatch(std::span<const Value> values) {
  if (mode_ == BernAcceptMode::kBitmask) {
    Value accepted[64];
    for (size_t i = 0; i < values.size(); i += 64) {
      const size_t lanes = std::min<size_t>(64, values.size() - i);
      const uint64_t mask = BernoulliAcceptMask(rng_, q_, lanes);
      const size_t stored =
          CompressAccepted(values.subspan(i, lanes), mask, accepted);
      for (size_t j = 0; j < stored; ++j) hist_.Insert(accepted[j]);
    }
    elements_seen_ += values.size();
    return;
  }
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    const size_t remaining = n - i;
    if (gap_ >= remaining) {
      gap_ -= remaining;
      break;
    }
    i += gap_;
    hist_.Insert(values[i]);
    ++i;
    gap_ = SampleGeometricSkip(rng_, q_);
  }
  elements_seen_ += n;
}

void BernoulliSampler::SaveState(BinaryWriter* writer) const {
  writer->PutDouble(q_);
  SaveRngState(rng_, writer);
  writer->PutVarint64(elements_seen_);
  writer->PutVarint64(gap_);
  hist_.SerializeTo(writer);
  writer->PutVarint64(static_cast<uint64_t>(mode_));
}

Result<BernoulliSampler> BernoulliSampler::LoadState(BinaryReader* reader,
                                                     uint64_t version) {
  double q;
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&q));
  if (!(q > 0.0 && q <= 1.0)) {
    return Status::Corruption("SB state: bad sampling rate");
  }
  // The constructor draws the first geometric skip from the RNG it is
  // given; build with a throwaway engine, then restore every field from
  // the record (including the real engine state).
  BernoulliSampler s(q, Pcg64(0), BernAcceptMode::kGeometricSkip);
  SAMPWH_RETURN_IF_ERROR(LoadRngState(reader, &s.rng_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.elements_seen_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.gap_));
  SAMPWH_ASSIGN_OR_RETURN(s.hist_, CompactHistogram::DeserializeFrom(reader));
  if (version >= 2) {
    // v1 records predate the acceptance-mode field: scalar skip implied.
    uint64_t mode;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&mode));
    // Only concrete modes round-trip: the constructor resolves kAuto
    // before its first draw, so a serialized kAuto is corruption.
    if (mode > static_cast<uint64_t>(BernAcceptMode::kBitmask)) {
      return Status::Corruption("SB state: bad acceptance mode");
    }
    s.mode_ = static_cast<BernAcceptMode>(mode);
  }
  return s;
}

PartitionSample BernoulliSampler::Finalize() {
  CompactHistogram hist = std::move(hist_);
  hist_.Clear();
  return PartitionSample::MakeBernoulli(std::move(hist), elements_seen_, q_,
                                        /*footprint_bound_bytes=*/0);
}

}  // namespace sampwh
