#include "src/core/bernoulli_sampler.h"

#include <utility>

#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

BernoulliSampler::BernoulliSampler(double q, Pcg64 rng)
    : q_(q), rng_(std::move(rng)) {
  SAMPWH_CHECK(q > 0.0 && q <= 1.0);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  gap_ = SampleGeometricSkip(rng_, q_);
}

PartitionSample BernoulliSampler::Finalize() {
  CompactHistogram hist = std::move(hist_);
  hist_.Clear();
  return PartitionSample::MakeBernoulli(std::move(hist), elements_seen_, q_,
                                        /*footprint_bound_bytes=*/0);
}

}  // namespace sampwh
