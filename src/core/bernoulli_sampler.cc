#include "src/core/bernoulli_sampler.h"

#include <utility>

#include "src/core/sampler_state.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

BernoulliSampler::BernoulliSampler(double q, Pcg64 rng)
    : q_(q), rng_(std::move(rng)) {
  SAMPWH_CHECK(q > 0.0 && q <= 1.0);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  gap_ = SampleGeometricSkip(rng_, q_);
}

void BernoulliSampler::AddBatch(std::span<const Value> values) {
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    const size_t remaining = n - i;
    if (gap_ >= remaining) {
      gap_ -= remaining;
      break;
    }
    i += gap_;
    hist_.Insert(values[i]);
    ++i;
    gap_ = SampleGeometricSkip(rng_, q_);
  }
  elements_seen_ += n;
}

void BernoulliSampler::SaveState(BinaryWriter* writer) const {
  writer->PutDouble(q_);
  SaveRngState(rng_, writer);
  writer->PutVarint64(elements_seen_);
  writer->PutVarint64(gap_);
  hist_.SerializeTo(writer);
}

Result<BernoulliSampler> BernoulliSampler::LoadState(BinaryReader* reader) {
  double q;
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&q));
  if (!(q > 0.0 && q <= 1.0)) {
    return Status::Corruption("SB state: bad sampling rate");
  }
  // The constructor draws the first geometric skip from the RNG it is
  // given; build with a throwaway engine, then restore every field from
  // the record (including the real engine state).
  BernoulliSampler s(q, Pcg64(0));
  SAMPWH_RETURN_IF_ERROR(LoadRngState(reader, &s.rng_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.elements_seen_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.gap_));
  SAMPWH_ASSIGN_OR_RETURN(s.hist_, CompactHistogram::DeserializeFrom(reader));
  return s;
}

PartitionSample BernoulliSampler::Finalize() {
  CompactHistogram hist = std::move(hist_);
  hist_.Clear();
  return PartitionSample::MakeBernoulli(std::move(hist), elements_seen_, q_,
                                        /*footprint_bound_bytes=*/0);
}

}  // namespace sampwh
