#include "src/core/systematic_sampler.h"

#include <utility>

#include "src/util/logging.h"

namespace sampwh {

SystematicSampler::SystematicSampler(uint64_t stride, Pcg64 rng)
    : stride_(stride) {
  SAMPWH_CHECK(stride >= 1);
  offset_ = rng.UniformInt(stride);
}

void SystematicSampler::Add(Value v) {
  if (elements_seen_ % stride_ == offset_) {
    hist_.Insert(v);
  }
  ++elements_seen_;
}

}  // namespace sampwh
