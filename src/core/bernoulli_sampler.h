// Plain Bern(q) sampling (§3.1) at a fixed rate, implemented with geometric
// skips so that excluded elements cost no random-number draws. This is the
// per-partition worker of Algorithm SB, the paper's speed baseline: uniform,
// trivially mergeable (union of equal-rate Bernoulli samples of disjoint
// partitions is a Bernoulli sample of the union), but with no a priori bound
// on the sample footprint.

#ifndef SAMPWH_CORE_BERNOULLI_SAMPLER_H_
#define SAMPWH_CORE_BERNOULLI_SAMPLER_H_

#include <cstdint>
#include <span>

#include "src/core/batch_accept.h"
#include "src/core/compact_histogram.h"
#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class BernoulliSampler {
 public:
  /// Samples at fixed rate q in (0, 1]. `mode` picks the batch-acceptance
  /// strategy (see batch_accept.h); the two modes consume the RNG stream
  /// differently but draw from the same distribution, so the mode is part
  /// of the sampler's serialized state.
  BernoulliSampler(double q, Pcg64 rng,
                   BernAcceptMode mode = DefaultBernAcceptMode());

  void Add(Value v);

  /// Batch fast path. In kGeometricSkip mode, jumps directly from inclusion
  /// to inclusion with the geometric skip, so the per-element cost is O(q)
  /// amortized instead of O(1) per element. In kBitmask mode, generates
  /// 64-lane acceptance bitmasks with a branch-free vectorizable compare
  /// loop and compress-stores the accepted values. Either mode consumes the
  /// RNG in exactly the same order as an element-wise Add loop in that
  /// mode, so batch and element-wise paths produce identical samples under
  /// the same seed.
  void AddBatch(std::span<const Value> values);

  uint64_t elements_seen() const { return elements_seen_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  double sampling_rate() const { return q_; }
  BernAcceptMode accept_mode() const { return mode_; }

  /// Finalizes into an (unbounded-footprint) Bernoulli PartitionSample.
  PartitionSample Finalize();

  /// Serializes rate, histogram, the pending geometric skip, the RNG engine
  /// and the acceptance mode; LoadState() resumes bit-identically.
  /// `version` is the enclosing sampler-state record version: v1 records
  /// predate the acceptance-mode field and load as kGeometricSkip.
  void SaveState(BinaryWriter* writer) const;
  static Result<BernoulliSampler> LoadState(BinaryReader* reader,
                                            uint64_t version);

 private:
  double q_;
  Pcg64 rng_;
  BernAcceptMode mode_;
  uint64_t elements_seen_ = 0;
  uint64_t gap_ = 0;  // kGeometricSkip: elements to skip before inclusion
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_BERNOULLI_SAMPLER_H_
