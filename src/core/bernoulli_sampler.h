// Plain Bern(q) sampling (§3.1) at a fixed rate, implemented with geometric
// skips so that excluded elements cost no random-number draws. This is the
// per-partition worker of Algorithm SB, the paper's speed baseline: uniform,
// trivially mergeable (union of equal-rate Bernoulli samples of disjoint
// partitions is a Bernoulli sample of the union), but with no a priori bound
// on the sample footprint.

#ifndef SAMPWH_CORE_BERNOULLI_SAMPLER_H_
#define SAMPWH_CORE_BERNOULLI_SAMPLER_H_

#include <cstdint>
#include <span>

#include "src/core/compact_histogram.h"
#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class BernoulliSampler {
 public:
  /// Samples at fixed rate q in (0, 1].
  BernoulliSampler(double q, Pcg64 rng);

  void Add(Value v);

  /// Batch fast path: jumps directly from inclusion to inclusion with the
  /// geometric skip, so the per-element cost is O(q) amortized instead of
  /// O(1) per element. Consumes the RNG in exactly the same order as an
  /// element-wise Add loop, so both paths produce identical samples under
  /// the same seed.
  void AddBatch(std::span<const Value> values);

  uint64_t elements_seen() const { return elements_seen_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  double sampling_rate() const { return q_; }

  /// Finalizes into an (unbounded-footprint) Bernoulli PartitionSample.
  PartitionSample Finalize();

  /// Serializes rate, histogram, the pending geometric skip and the RNG
  /// engine; LoadState() resumes bit-identically.
  void SaveState(BinaryWriter* writer) const;
  static Result<BernoulliSampler> LoadState(BinaryReader* reader);

 private:
  double q_;
  Pcg64 rng_;
  uint64_t elements_seen_ = 0;
  uint64_t gap_ = 0;  // elements to skip before the next inclusion
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_BERNOULLI_SAMPLER_H_
