// SIMD-friendly Bern(q) batch acceptance: instead of a data-dependent
// branch per element (or the geometric-skip jump, whose inner loop is
// serial in the RNG), acceptance decisions are generated as a 64-bit mask
// over a span of up to 64 elements — a branch-free compare loop the
// compiler can vectorize — followed by a compress-store of the accepted
// values. Each lane's decision is bit-identical to Pcg64::Bernoulli(q) on
// the same engine, so the mask path is an exact drop-in for a per-element
// acceptance loop (proven in tests/core/batch_accept_test.cc), while the
// classic geometric-skip path remains available as the scalar fallback and
// stays RNG-order-identical to the pre-existing AddBatch behavior.
//
// Mode selection: BernoulliSampler picks its acceptance mode at
// construction from the process-wide default, which is kAuto — resolve per
// sampling rate, because neither concrete mode wins everywhere
// (BENCH_ingest.json: bitmask runs at 0.27x the skip path at q=0.01 but
// 1.5x at q=0.50; the crossover sits between q=0.1 and q=0.5). kAuto
// resolves to a concrete mode before the sampler's first RNG draw, so the
// serialized state always names an exact RNG-consumption discipline and
// restores bit-identically. The default can still be pinned at compile
// time (-DSAMPWH_DEFAULT_BITMASK_ACCEPT=1 → kBitmask) or at runtime
// (SetDefaultBernAcceptMode).

#ifndef SAMPWH_CORE_BATCH_ACCEPT_H_
#define SAMPWH_CORE_BATCH_ACCEPT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

enum class BernAcceptMode : uint8_t {
  /// Jump between inclusions with geometric skips (O(q) RNG draws per
  /// element amortized; serial, branchy). The legacy path.
  kGeometricSkip = 0,
  /// Branch-free 64-lane acceptance bitmasks + compress-store (one RNG
  /// draw per element; vector-friendly inner loop).
  kBitmask = 1,
  /// Resolve per sampling rate at construction: kGeometricSkip below
  /// kAutoBitmaskRateThreshold (sparse acceptance — skips amortize the RNG
  /// cost), kBitmask at or above it (dense acceptance — the branch-free
  /// mask wins). Never appears in serialized state: samplers store the
  /// resolved concrete mode.
  kAuto = 2,
};

/// Sampling rate at or above which kAuto resolves to kBitmask. Calibrated
/// from BENCH_ingest.json (bitmask/skip throughput ratio: 0.27x at q=0.01,
/// 0.97x at q=0.10, 1.5x at q=0.50): the crossover is just above q=0.1;
/// 0.2 keeps a margin so kAuto never picks the mask where it measurably
/// loses.
inline constexpr double kAutoBitmaskRateThreshold = 0.2;

/// The process-wide default mode new samplers are constructed with.
BernAcceptMode DefaultBernAcceptMode();
void SetDefaultBernAcceptMode(BernAcceptMode mode);

/// Acceptance bitmask for `lanes` (1..64) Bern(q) trials: bit i is set iff
/// trial i accepts. Consumes exactly `lanes` NextUint64 draws, in lane
/// order, and lane i's decision equals rng.Bernoulli(q) evaluated on the
/// same draw — the mask path and a per-element loop are interchangeable
/// mid-stream. Branch-free in the lanes loop.
uint64_t BernoulliAcceptMask(Pcg64& rng, double q, size_t lanes);

/// Compress-store: appends values[i] for every set bit i of `mask` to
/// `out` (which must have room for popcount(mask) values). Returns the
/// number of values stored. `values.size()` bounds the highest inspected
/// lane.
size_t CompressAccepted(std::span<const Value> values, uint64_t mask,
                        Value* out);

}  // namespace sampwh

#endif  // SAMPWH_CORE_BATCH_ACCEPT_H_
