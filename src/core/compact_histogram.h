// The compact sample representation shared by every sampler in the library:
// a frequency histogram storing each distinct value once, as either a bare
// singleton (count 1) or a (value, count) pair, with incremental byte
// footprint accounting. This is the representation of §2 requirement 4 and
// of the concise-sampling data structure in [Gibbons & Matias 1998].

#ifndef SAMPWH_CORE_COMPACT_HISTOGRAM_H_
#define SAMPWH_CORE_COMPACT_HISTOGRAM_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/types.h"
#include "src/util/random.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace sampwh {

class CompactHistogram {
 public:
  CompactHistogram() = default;

  /// Adds `n` occurrences of `v` (insertValue in the paper's pseudocode,
  /// generalized to batch inserts for the join / merge paths).
  void Insert(Value v, uint64_t n = 1);

  /// Removes `n` occurrences of `v`; the value disappears when its count
  /// reaches zero. `n` must not exceed the current count.
  void Remove(Value v, uint64_t n = 1);

  /// Current count of `v` (0 when absent).
  uint64_t CountOf(Value v) const;

  /// Number of distinct values stored.
  uint64_t distinct_count() const { return counts_.size(); }

  /// Total number of data-element values represented, |S| = L + sum n_i.
  uint64_t total_count() const { return total_count_; }

  bool empty() const { return total_count_ == 0; }

  /// Current compact-representation footprint in bytes: singletons cost
  /// kSingletonFootprintBytes, pairs kPairFootprintBytes. Maintained
  /// incrementally, O(1) per update.
  uint64_t footprint_bytes() const { return footprint_bytes_; }

  /// Applies fn(value, count) to every entry, in unspecified order.
  void ForEach(const std::function<void(Value, uint64_t)>& fn) const;

  /// All (value, count) entries sorted by value — deterministic order for
  /// serialization, streaming merges, and tests.
  std::vector<std::pair<Value, uint64_t>> SortedEntries() const;

  /// expand(S): the sample as a bag of values (order: sorted by value,
  /// duplicates adjacent).
  std::vector<Value> ToBag() const;

  /// Builds a histogram from a bag of values.
  static CompactHistogram FromBag(const std::vector<Value>& bag);

  /// Sums `other` into this histogram (the paper's join function: the
  /// compact representation of expand(S1) ∪ expand(S2) without expanding).
  void Join(const CompactHistogram& other);

  /// Footprint in bytes that joining `other` into this histogram would
  /// produce, without materializing the join (Fig. 6 line 12).
  uint64_t JoinedFootprintBytes(const CompactHistogram& other) const;

  /// Removes and returns one uniformly random data-element value
  /// (removeRandomVictim over the compact form). O(distinct) worst case;
  /// the hot purge paths use FenwickTree-based selection instead.
  Value RemoveRandomVictim(Pcg64& rng);

  void Clear();

  /// Encodes the histogram as (entry count, then sorted delta-encoded
  /// (value, count) pairs) — the same wire idiom PartitionSample uses, so
  /// multiset-equal histograms always serialize to identical bytes.
  void SerializeTo(BinaryWriter* writer) const;

  /// Bounds-checked decode; Corruption on zero counts or malformed input.
  static Result<CompactHistogram> DeserializeFrom(BinaryReader* reader);

  bool operator==(const CompactHistogram& other) const {
    return counts_ == other.counts_;
  }

 private:
  std::unordered_map<Value, uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t footprint_bytes_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_COMPACT_HISTOGRAM_H_
