// Systematic sampling (§6 future work: "systematic sampling"): include
// every stride-th element starting from a uniformly random offset in
// [0, stride). Classic survey-sampling design: each element has marginal
// inclusion probability exactly 1/stride and the sample size is within 1
// of N/stride deterministically, but the joint distribution is maximally
// correlated — only `stride` distinct samples are possible — so it is NOT
// uniform in the paper's §3 sense and is kept out of the warehouse's
// uniform merge paths (like concise sampling, it exposes its histogram
// directly).

#ifndef SAMPWH_CORE_SYSTEMATIC_SAMPLER_H_
#define SAMPWH_CORE_SYSTEMATIC_SAMPLER_H_

#include <cstdint>

#include "src/core/compact_histogram.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class SystematicSampler {
 public:
  /// Samples every `stride`-th element (stride >= 1); the starting offset
  /// is drawn uniformly from [0, stride).
  SystematicSampler(uint64_t stride, Pcg64 rng);

  void Add(Value v);

  uint64_t stride() const { return stride_; }
  uint64_t offset() const { return offset_; }
  uint64_t elements_seen() const { return elements_seen_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  const CompactHistogram& histogram() const { return hist_; }

 private:
  uint64_t stride_;
  uint64_t offset_;
  uint64_t elements_seen_ = 0;
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_SYSTEMATIC_SAMPLER_H_
