// A value-semantic wrapper selecting one of the library's partition
// samplers at runtime — the unit of configuration for the warehouse
// ingestion layer ("sample this dataset's partitions with HB at 64 KiB /
// p = 1e-3") and for the benchmark harnesses that sweep over algorithms.

#ifndef SAMPWH_CORE_ANY_SAMPLER_H_
#define SAMPWH_CORE_ANY_SAMPLER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>

#include "src/core/bernoulli_sampler.h"
#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/sample.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace sampwh {

enum class SamplerKind {
  kHybridBernoulli,     ///< Algorithm HB
  kHybridReservoir,     ///< Algorithm HR
  kStratifiedBernoulli, ///< Algorithm SB's per-partition worker (fixed rate)
};

std::string_view SamplerKindToString(SamplerKind kind);

struct SamplerConfig {
  SamplerKind kind = SamplerKind::kHybridReservoir;
  /// F for HB / HR.
  uint64_t footprint_bound_bytes = 64 * 1024;
  /// HB only: p.
  double exceedance_probability = 1e-3;
  /// HB only: expected partition size N (0: let the ingestion layer fill
  /// it in when the partition size is known, e.g. batch loads).
  uint64_t expected_partition_size = 0;
  /// HB only: solve the rate equation exactly.
  bool use_exact_rate = false;
  /// SB only: fixed Bernoulli rate.
  double bernoulli_rate = 0.01;
};

class AnySampler {
 public:
  AnySampler(const SamplerConfig& config, Pcg64 rng);

  void Add(Value v);

  /// Forwards the whole batch through one virtual dispatch to the selected
  /// sampler's skip-based batch path (identical results to an element-wise
  /// Add loop under the same seed).
  void AddBatch(std::span<const Value> values);

  uint64_t elements_seen() const;
  uint64_t sample_size() const;
  PartitionSample Finalize();

  /// Serializes the complete mid-stream state — kind tag, configuration,
  /// compact histogram / bag, skip counters and the RNG engine — as a
  /// self-describing sampler-state record (kSamplerStateRecordMagic).
  /// LoadState() reconstructs a sampler that continues bit-identically to
  /// one that was never serialized. The bytes are meant to ride inside the
  /// checksummed SWV2 envelope; neither side applies its own checksum.
  std::string SaveState() const;
  static Result<AnySampler> LoadState(std::string_view bytes);

 private:
  using Impl = std::variant<HybridBernoulliSampler, HybridReservoirSampler,
                            BernoulliSampler>;

  explicit AnySampler(Impl impl) : impl_(std::move(impl)) {}

  Impl impl_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_ANY_SAMPLER_H_
