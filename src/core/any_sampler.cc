#include "src/core/any_sampler.h"

#include <type_traits>
#include <utility>

#include "src/util/serialization.h"

namespace sampwh {

namespace {

// Kind tags in the serialized sampler-state record. Stable on-disk values —
// do not renumber.
constexpr uint64_t kStateTagHybridBernoulli = 1;
constexpr uint64_t kStateTagHybridReservoir = 2;
constexpr uint64_t kStateTagBernoulli = 3;

// v2 appended the Bern(q) acceptance-mode field to the SB record; v1
// records are still readable (mode defaults to the scalar skip path).
constexpr uint64_t kSamplerStateVersion = 2;
constexpr uint64_t kMinSamplerStateVersion = 1;

std::variant<HybridBernoulliSampler, HybridReservoirSampler, BernoulliSampler>
MakeImpl(const SamplerConfig& config, Pcg64 rng) {
  switch (config.kind) {
    case SamplerKind::kHybridBernoulli: {
      HybridBernoulliSampler::Options options;
      options.footprint_bound_bytes = config.footprint_bound_bytes;
      options.expected_population_size = config.expected_partition_size;
      options.exceedance_probability = config.exceedance_probability;
      options.use_exact_rate = config.use_exact_rate;
      return HybridBernoulliSampler(options, std::move(rng));
    }
    case SamplerKind::kStratifiedBernoulli:
      return BernoulliSampler(config.bernoulli_rate, std::move(rng));
    case SamplerKind::kHybridReservoir:
    default: {
      HybridReservoirSampler::Options options;
      options.footprint_bound_bytes = config.footprint_bound_bytes;
      return HybridReservoirSampler(options, std::move(rng));
    }
  }
}

}  // namespace

std::string_view SamplerKindToString(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kHybridBernoulli:
      return "HB";
    case SamplerKind::kHybridReservoir:
      return "HR";
    case SamplerKind::kStratifiedBernoulli:
      return "SB";
  }
  return "unknown";
}

AnySampler::AnySampler(const SamplerConfig& config, Pcg64 rng)
    : impl_(MakeImpl(config, std::move(rng))) {}

void AnySampler::Add(Value v) {
  std::visit([v](auto& sampler) { sampler.Add(v); }, impl_);
}

void AnySampler::AddBatch(std::span<const Value> values) {
  std::visit([values](auto& sampler) { sampler.AddBatch(values); }, impl_);
}

uint64_t AnySampler::elements_seen() const {
  return std::visit([](const auto& sampler) { return sampler.elements_seen(); },
                    impl_);
}

uint64_t AnySampler::sample_size() const {
  return std::visit([](const auto& sampler) { return sampler.sample_size(); },
                    impl_);
}

PartitionSample AnySampler::Finalize() {
  return std::visit([](auto& sampler) { return sampler.Finalize(); }, impl_);
}

std::string AnySampler::SaveState() const {
  BinaryWriter writer;
  writer.PutFixed32(kSamplerStateRecordMagic);
  writer.PutVarint64(kSamplerStateVersion);
  std::visit(
      [&writer](const auto& sampler) {
        using T = std::decay_t<decltype(sampler)>;
        if constexpr (std::is_same_v<T, HybridBernoulliSampler>) {
          writer.PutVarint64(kStateTagHybridBernoulli);
        } else if constexpr (std::is_same_v<T, HybridReservoirSampler>) {
          writer.PutVarint64(kStateTagHybridReservoir);
        } else {
          writer.PutVarint64(kStateTagBernoulli);
        }
        sampler.SaveState(&writer);
      },
      impl_);
  return std::move(writer).Release();
}

Result<AnySampler> AnySampler::LoadState(std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t magic;
  SAMPWH_RETURN_IF_ERROR(reader.GetFixed32(&magic));
  if (magic != kSamplerStateRecordMagic) {
    return Status::Corruption("not a sampler-state record");
  }
  uint64_t version;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&version));
  if (version < kMinSamplerStateVersion || version > kSamplerStateVersion) {
    return Status::Corruption("unsupported sampler-state version");
  }
  uint64_t tag;
  SAMPWH_RETURN_IF_ERROR(reader.GetVarint64(&tag));
  Impl impl = BernoulliSampler(1.0, Pcg64(0));
  switch (tag) {
    case kStateTagHybridBernoulli: {
      SAMPWH_ASSIGN_OR_RETURN(auto sampler,
                              HybridBernoulliSampler::LoadState(&reader));
      impl = std::move(sampler);
      break;
    }
    case kStateTagHybridReservoir: {
      SAMPWH_ASSIGN_OR_RETURN(auto sampler,
                              HybridReservoirSampler::LoadState(&reader));
      impl = std::move(sampler);
      break;
    }
    case kStateTagBernoulli: {
      SAMPWH_ASSIGN_OR_RETURN(auto sampler,
                              BernoulliSampler::LoadState(&reader, version));
      impl = std::move(sampler);
      break;
    }
    default:
      return Status::Corruption("unknown sampler-state kind tag");
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after sampler state");
  }
  return AnySampler(std::move(impl));
}

}  // namespace sampwh
