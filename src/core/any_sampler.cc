#include "src/core/any_sampler.h"

#include <utility>

namespace sampwh {

namespace {

std::variant<HybridBernoulliSampler, HybridReservoirSampler, BernoulliSampler>
MakeImpl(const SamplerConfig& config, Pcg64 rng) {
  switch (config.kind) {
    case SamplerKind::kHybridBernoulli: {
      HybridBernoulliSampler::Options options;
      options.footprint_bound_bytes = config.footprint_bound_bytes;
      options.expected_population_size = config.expected_partition_size;
      options.exceedance_probability = config.exceedance_probability;
      options.use_exact_rate = config.use_exact_rate;
      return HybridBernoulliSampler(options, std::move(rng));
    }
    case SamplerKind::kStratifiedBernoulli:
      return BernoulliSampler(config.bernoulli_rate, std::move(rng));
    case SamplerKind::kHybridReservoir:
    default: {
      HybridReservoirSampler::Options options;
      options.footprint_bound_bytes = config.footprint_bound_bytes;
      return HybridReservoirSampler(options, std::move(rng));
    }
  }
}

}  // namespace

std::string_view SamplerKindToString(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kHybridBernoulli:
      return "HB";
    case SamplerKind::kHybridReservoir:
      return "HR";
    case SamplerKind::kStratifiedBernoulli:
      return "SB";
  }
  return "unknown";
}

AnySampler::AnySampler(const SamplerConfig& config, Pcg64 rng)
    : impl_(MakeImpl(config, std::move(rng))) {}

void AnySampler::Add(Value v) {
  std::visit([v](auto& sampler) { sampler.Add(v); }, impl_);
}

void AnySampler::AddBatch(std::span<const Value> values) {
  std::visit([values](auto& sampler) { sampler.AddBatch(values); }, impl_);
}

uint64_t AnySampler::elements_seen() const {
  return std::visit([](const auto& sampler) { return sampler.elements_seen(); },
                    impl_);
}

uint64_t AnySampler::sample_size() const {
  return std::visit([](const auto& sampler) { return sampler.sample_size(); },
                    impl_);
}

PartitionSample AnySampler::Finalize() {
  return std::visit([](auto& sampler) { return sampler.Finalize(); }, impl_);
}

}  // namespace sampwh
