#include "src/core/hybrid_bernoulli.h"

#include <utility>

#include "src/core/purge.h"
#include "src/core/qbound.h"
#include "src/core/sampler_state.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

HybridBernoulliSampler::HybridBernoulliSampler(const Options& options,
                                               Pcg64 rng)
    : options_(options),
      n_F_(MaxSampleSizeForFootprint(options.footprint_bound_bytes)),
      rng_(std::move(rng)) {
  SAMPWH_CHECK(n_F_ >= 1);
  SAMPWH_CHECK(options_.exceedance_probability > 0.0 &&
               options_.exceedance_probability <= 0.5);
}

Result<HybridBernoulliSampler> HybridBernoulliSampler::Resume(
    const PartitionSample& base, const Options& options, Pcg64 rng) {
  SAMPWH_RETURN_IF_ERROR(base.Validate());
  HybridBernoulliSampler sampler(options, std::move(rng));
  sampler.elements_seen_ = base.parent_size();
  sampler.hist_ = base.histogram();
  switch (base.phase()) {
    case SamplePhase::kExhaustive:
      sampler.phase_ = SamplePhase::kExhaustive;
      // Under a tighter bound than the base was collected with, the
      // exhaustive histogram may already be over the line.
      if (sampler.hist_.footprint_bytes() >
          options.footprint_bound_bytes) {
        sampler.TransitionFromPhase1(sampler.elements_seen_);
      }
      break;
    case SamplePhase::kBernoulli:
      sampler.phase_ = SamplePhase::kBernoulli;
      sampler.q_ = base.sampling_rate();
      if (sampler.q_ <= 0.0 || sampler.q_ > 1.0) {
        return Status::InvalidArgument("base sample has invalid rate");
      }
      if (base.size() >= sampler.n_F_) {
        // At or above the size cap (a duplicate-compressed join can hold
        // more than n_F values inside F bytes): conditioned on its size, a
        // Bernoulli sample is a simple random sample, so cut it to n_F and
        // continue in phase 3 exactly as Fig. 2 line 17 would have.
        PurgeReservoir(&sampler.hist_, sampler.n_F_, sampler.rng_);
        sampler.EnterPhase3(sampler.elements_seen_);
      } else {
        sampler.bernoulli_gap_ =
            SampleGeometricSkip(sampler.rng_, sampler.q_);
      }
      break;
    case SamplePhase::kReservoir: {
      sampler.phase_ = SamplePhase::kReservoir;
      uint64_t k = base.size();
      if (k > sampler.n_F_) {
        // Shrinking the bound: an SRS subsample of an SRS is an SRS.
        PurgeReservoir(&sampler.hist_, sampler.n_F_, sampler.rng_);
        k = sampler.n_F_;
      }
      if (k == 0) {
        return Status::InvalidArgument("empty reservoir base sample");
      }
      sampler.reservoir_skip_.emplace(k);
      sampler.next_reservoir_index_ = sampler.reservoir_skip_->
          NextInsertionIndex(sampler.rng_, sampler.elements_seen_);
      break;
    }
  }
  return sampler;
}

uint64_t HybridBernoulliSampler::sample_size() const {
  return expanded_ ? bag_.size() : hist_.total_count();
}

uint64_t HybridBernoulliSampler::footprint_bytes() const {
  return expanded_ ? bag_.size() * kSingletonFootprintBytes
                   : hist_.footprint_bytes();
}

void HybridBernoulliSampler::Add(Value v) {
  ++elements_seen_;
  if (phase_ == SamplePhase::kExhaustive) {
    // Fig. 2 lines 1-11, with the footprint check moved BEFORE the
    // insertion so the bound holds at every instant even when the insert
    // would jump past F (the +4/+8 footprint steps of duplicate-heavy
    // streams can straddle F without equaling it). If the value fits, stay
    // in phase 1; otherwise transition using the elements_seen_ - 1
    // elements ingested so far and give the current element the regular
    // phase-2/3 treatment by falling through.
    const uint64_t existing = hist_.CountOf(v);
    const uint64_t growth =
        existing == 0 ? kSingletonFootprintBytes
        : existing == 1 ? kPairFootprintBytes - kSingletonFootprintBytes
                        : 0;
    if (hist_.footprint_bytes() + growth <= options_.footprint_bound_bytes) {
      hist_.Insert(v);
      return;
    }
    TransitionFromPhase1(elements_seen_ - 1);
  }
  if (phase_ == SamplePhase::kBernoulli) {
    if (bernoulli_gap_ > 0) {
      --bernoulli_gap_;
      return;
    }
    ExpandIfNeeded();
    bag_.push_back(v);
    if (bag_.size() >= n_F_) {
      EnterPhase3(elements_seen_);  // Fig. 2 lines 17-19
    } else {
      bernoulli_gap_ = SampleGeometricSkip(rng_, q_);
    }
    return;
  }
  // Phase 3: reservoir step (Fig. 2 lines 21-27).
  if (elements_seen_ == next_reservoir_index_) {
    ExpandIfNeeded();
    // removeRandomVictim + insert, fused as an overwrite.
    const size_t victim = static_cast<size_t>(rng_.UniformInt(bag_.size()));
    bag_[victim] = v;
    next_reservoir_index_ =
        reservoir_skip_->NextInsertionIndex(rng_, elements_seen_);
  }
}

void HybridBernoulliSampler::AddBatch(std::span<const Value> values) {
  size_t i = 0;
  const size_t n = values.size();
  // Phase 1 ingests every element into the histogram with a footprint
  // check each time; delegate to the scalar path until it transitions
  // (which also gives the transition element its phase-2/3 treatment).
  while (i < n && phase_ == SamplePhase::kExhaustive) {
    Add(values[i]);
    ++i;
  }
  // Phase 2: geometric-skip jumps (Fig. 2 lines 13-19, batched).
  while (i < n && phase_ == SamplePhase::kBernoulli) {
    const size_t remaining = n - i;
    if (bernoulli_gap_ >= remaining) {
      bernoulli_gap_ -= remaining;
      elements_seen_ += remaining;
      return;
    }
    i += bernoulli_gap_;
    elements_seen_ += bernoulli_gap_ + 1;
    ExpandIfNeeded();
    bag_.push_back(values[i]);
    ++i;
    if (bag_.size() >= n_F_) {
      EnterPhase3(elements_seen_);
    } else {
      bernoulli_gap_ = SampleGeometricSkip(rng_, q_);
    }
  }
  // Phase 3: Vitter-skip jumps (Fig. 2 lines 21-27, batched).
  while (i < n) {
    const uint64_t remaining = n - i;
    if (next_reservoir_index_ > elements_seen_ + remaining) {
      elements_seen_ += remaining;
      return;
    }
    i += next_reservoir_index_ - elements_seen_ - 1;
    elements_seen_ = next_reservoir_index_;
    ExpandIfNeeded();
    const size_t victim = static_cast<size_t>(rng_.UniformInt(bag_.size()));
    bag_[victim] = values[i];
    ++i;
    next_reservoir_index_ =
        reservoir_skip_->NextInsertionIndex(rng_, elements_seen_);
  }
}

void HybridBernoulliSampler::TransitionFromPhase1(uint64_t processed) {
  const uint64_t n = options_.expected_population_size > 0
                         ? options_.expected_population_size
                         : elements_seen_;
  q_ = options_.use_exact_rate
           ? ExactBernoulliRate(n, options_.exceedance_probability, n_F_)
           : ApproxBernoulliRate(n, options_.exceedance_probability, n_F_);
  // Precompute the Bern(q) subsample S' of the exhaustive histogram
  // (Fig. 2 line 4).
  PurgeBernoulli(&hist_, q_, rng_);
  expanded_ = false;
  if (hist_.total_count() < n_F_) {
    phase_ = SamplePhase::kBernoulli;  // Fig. 2 line 6
    bernoulli_gap_ = SampleGeometricSkip(rng_, q_);
  } else {
    // Subsample is too large (Fig. 2 lines 8-10): reservoir-subsample it
    // and switch directly to reservoir mode.
    hist_ = PurgeReservoirStreamed({&hist_}, n_F_, rng_);
    EnterPhase3(processed);
  }
}

void HybridBernoulliSampler::EnterPhase3(uint64_t processed) {
  phase_ = SamplePhase::kReservoir;
  const uint64_t k = sample_size();
  SAMPWH_CHECK(k >= 1);
  reservoir_skip_.emplace(k);
  next_reservoir_index_ =
      reservoir_skip_->NextInsertionIndex(rng_, processed);
}

void HybridBernoulliSampler::ExpandIfNeeded() {
  if (expanded_) return;
  bag_ = hist_.ToBag();
  bag_.reserve(n_F_);
  hist_.Clear();
  expanded_ = true;
}

void HybridBernoulliSampler::SaveState(BinaryWriter* writer) const {
  writer->PutVarint64(options_.footprint_bound_bytes);
  writer->PutVarint64(options_.expected_population_size);
  writer->PutDouble(options_.exceedance_probability);
  writer->PutVarint64(options_.use_exact_rate ? 1 : 0);
  SaveRngState(rng_, writer);
  writer->PutVarint64(static_cast<uint64_t>(phase_));
  writer->PutVarint64(elements_seen_);
  writer->PutDouble(q_);
  hist_.SerializeTo(writer);
  writer->PutVarint64(expanded_ ? 1 : 0);
  SaveValueBag(bag_, writer);
  writer->PutVarint64(bernoulli_gap_);
  SaveVitterState(reservoir_skip_, writer);
  writer->PutVarint64(next_reservoir_index_);
}

Result<HybridBernoulliSampler> HybridBernoulliSampler::LoadState(
    BinaryReader* reader) {
  Options options;
  uint64_t use_exact;
  SAMPWH_RETURN_IF_ERROR(
      reader->GetVarint64(&options.footprint_bound_bytes));
  SAMPWH_RETURN_IF_ERROR(
      reader->GetVarint64(&options.expected_population_size));
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&options.exceedance_probability));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&use_exact));
  options.use_exact_rate = use_exact != 0;
  // Re-validate the constructor preconditions so corrupt state fails with
  // Corruption instead of tripping a CHECK.
  if (MaxSampleSizeForFootprint(options.footprint_bound_bytes) < 1) {
    return Status::Corruption("HB state: footprint bound below one value");
  }
  if (!(options.exceedance_probability > 0.0 &&
        options.exceedance_probability <= 0.5)) {
    return Status::Corruption("HB state: bad exceedance probability");
  }
  Pcg64 rng(0);
  SAMPWH_RETURN_IF_ERROR(LoadRngState(reader, &rng));
  HybridBernoulliSampler s(options, std::move(rng));
  uint64_t phase_raw;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&phase_raw));
  if (phase_raw < 1 || phase_raw > 3) {
    return Status::Corruption("HB state: bad phase");
  }
  s.phase_ = static_cast<SamplePhase>(phase_raw);
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.elements_seen_));
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&s.q_));
  if (!(s.q_ > 0.0 && s.q_ <= 1.0)) {
    return Status::Corruption("HB state: bad sampling rate");
  }
  SAMPWH_ASSIGN_OR_RETURN(s.hist_, CompactHistogram::DeserializeFrom(reader));
  uint64_t expanded_raw;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&expanded_raw));
  if (expanded_raw > 1) {
    return Status::Corruption("HB state: bad expanded flag");
  }
  s.expanded_ = expanded_raw != 0;
  SAMPWH_RETURN_IF_ERROR(LoadValueBag(reader, &s.bag_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.bernoulli_gap_));
  SAMPWH_RETURN_IF_ERROR(LoadVitterState(reader, &s.reservoir_skip_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.next_reservoir_index_));
  if (s.phase_ == SamplePhase::kReservoir && !s.reservoir_skip_.has_value()) {
    return Status::Corruption("HB state: reservoir phase without skip");
  }
  if (s.expanded_ && s.bag_.empty() && s.phase_ == SamplePhase::kReservoir) {
    return Status::Corruption("HB state: empty expanded reservoir");
  }
  return s;
}

PartitionSample HybridBernoulliSampler::Finalize() {
  CompactHistogram hist =
      expanded_ ? CompactHistogram::FromBag(bag_) : std::move(hist_);
  bag_.clear();
  hist_.Clear();
  const uint64_t parent = elements_seen_;
  const uint64_t bound = options_.footprint_bound_bytes;
  switch (phase_) {
    case SamplePhase::kExhaustive:
      return PartitionSample::MakeExhaustive(std::move(hist), parent, bound);
    case SamplePhase::kBernoulli:
      return PartitionSample::MakeBernoulli(std::move(hist), parent, q_,
                                            bound);
    case SamplePhase::kReservoir:
    default:
      return PartitionSample::MakeReservoir(std::move(hist), parent, bound);
  }
}

}  // namespace sampwh
