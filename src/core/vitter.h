// The reservoir-sampling skip function skip(n; k) of §3.2: given that
// element n has just been processed, how many elements to pass over before
// the next reservoir insertion. Implements Vitter's Algorithm X (sequential
// search, O(skip) time) and Algorithm Z (rejection with a squeeze, O(1)
// expected time), switching from X to Z once n > kXtoZSwitchFactor * k as
// Vitter recommends.

#ifndef SAMPWH_CORE_VITTER_H_
#define SAMPWH_CORE_VITTER_H_

#include <cstdint>

#include "src/util/random.h"

namespace sampwh {

class VitterSkip {
 public:
  /// Threshold on n/k below which Algorithm X beats Algorithm Z (Vitter
  /// suggests ~22).
  static constexpr uint64_t kXtoZSwitchFactor = 22;

  enum class Mode {
    kAuto,         ///< X for small n/k, Z beyond (production setting).
    kAlgorithmX,   ///< always sequential search (ablation / testing).
    kAlgorithmZ,   ///< always rejection (ablation / testing).
  };

  /// A skip generator for a reservoir of capacity `k` >= 1.
  explicit VitterSkip(uint64_t k, Mode mode = Mode::kAuto);

  uint64_t reservoir_size() const { return k_; }

  /// The paper's n + skip(n; k): the 1-based index of the next element to
  /// insert into the reservoir, given that `n` elements have been processed
  /// so far. Requires n >= k (the first k elements are always inserted
  /// without consulting the skip function). Always returns > n.
  uint64_t NextInsertionIndex(Pcg64& rng, uint64_t n);

  /// Serializable generator state. `w` is Algorithm Z's rejection-envelope
  /// variable W, carried across calls (0.0 before its lazy initialization);
  /// restoring it bit-exactly is what makes a resumed reservoir sampler
  /// draw the identical skip sequence.
  struct State {
    uint64_t k = 0;
    uint8_t mode = 0;  // static_cast of Mode
    double w = 0.0;
  };

  State SaveState() const;

  /// Rebuilds a skip generator. Callers must validate k >= 1 and
  /// mode <= 2 before calling (deserializers do; this CHECKs).
  static VitterSkip FromState(const State& state);

 private:
  uint64_t SkipX(Pcg64& rng, uint64_t n) const;
  uint64_t SkipZ(Pcg64& rng, uint64_t n);

  uint64_t k_;
  Mode mode_;
  double w_;  // Algorithm Z state: W = exp(-log(U)/k), refreshed on accept
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_VITTER_H_
