#include "src/core/merge.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <optional>
#include <utility>

#include "src/core/hybrid_bernoulli.h"
#include "src/core/hybrid_reservoir.h"
#include "src/core/purge.h"
#include "src/core/qbound.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

namespace {

// Streams every value of an exhaustive sample's histogram into `sampler`
// (one Add per data element). Values are fed in sorted order; uniformity
// does not depend on the order because inclusion decisions are independent
// of element identity.
template <typename Sampler>
void StreamHistogramInto(const CompactHistogram& hist, Sampler* sampler) {
  for (const auto& [v, n] : hist.SortedEntries()) {
    for (uint64_t i = 0; i < n; ++i) sampler->Add(v);
  }
}

bool IsReservoir(const PartitionSample& s) {
  return s.phase() == SamplePhase::kReservoir;
}

bool IsExhaustive(const PartitionSample& s) {
  return s.phase() == SamplePhase::kExhaustive;
}

}  // namespace

uint64_t MergeOptionsFingerprint(const MergeOptions& options) {
  uint64_t rate_bits = 0;
  static_assert(sizeof(rate_bits) == sizeof(options.exceedance_probability));
  std::memcpy(&rate_bits, &options.exceedance_probability, sizeof(rate_bits));
  SplitMix64 mixer(options.footprint_bound_bytes);
  uint64_t fp = mixer.Next();
  fp ^= SplitMix64(rate_bits).Next();
  fp ^= SplitMix64((options.use_exact_rate ? 2u : 0u) |
                   (options.alias_cache != nullptr ? 1u : 0u))
            .Next();
  return fp;
}

uint64_t AliasCache::Sample(uint64_t n1, uint64_t n2, uint64_t k,
                            Pcg64& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_tuple(n1, n2, k);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    const HypergeometricDistribution dist(n1, n2, k);
    Entry entry{dist.support_min(), AliasTable(dist.PmfVector())};
    it = tables_.emplace(key, std::move(entry)).first;
  }
  return it->second.support_min + it->second.table.Sample(rng);
}

size_t AliasCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.size();
}

uint64_t SampleHypergeometricSplit(uint64_t n1, uint64_t n2, uint64_t k,
                                   Pcg64& rng, AliasCache* cache) {
  if (cache != nullptr) return cache->Sample(n1, n2, k, rng);
  return HypergeometricDistribution(n1, n2, k).Sample(rng);
}

Result<PartitionSample> HBMerge(const PartitionSample& s1,
                                const PartitionSample& s2,
                                const MergeOptions& options, Pcg64& rng) {
  SAMPWH_RETURN_IF_ERROR(s1.Validate());
  SAMPWH_RETURN_IF_ERROR(s2.Validate());
  const uint64_t n_f = MaxSampleSizeForFootprint(options.footprint_bound_bytes);
  if (n_f == 0) {
    return Status::InvalidArgument("footprint bound below one value");
  }

  // Fig. 6 lines 1-4: at least one sample is exhaustive — replay its values
  // through Algorithm HB resumed from the other sample. When both are
  // exhaustive, stream the SMALLER one: a left fold over exhaustive
  // partitions then costs O(total data) instead of O(partitions * total).
  if (IsExhaustive(s1) || IsExhaustive(s2)) {
    const bool stream_s1 =
        IsExhaustive(s1) &&
        (!IsExhaustive(s2) || s1.size() <= s2.size());
    const PartitionSample& streamed = stream_s1 ? s1 : s2;
    const PartitionSample& base = stream_s1 ? s2 : s1;
    HybridBernoulliSampler::Options hb_options;
    hb_options.footprint_bound_bytes = options.footprint_bound_bytes;
    hb_options.expected_population_size =
        s1.parent_size() + s2.parent_size();
    hb_options.exceedance_probability = options.exceedance_probability;
    hb_options.use_exact_rate = options.use_exact_rate;
    SAMPWH_ASSIGN_OR_RETURN(
        HybridBernoulliSampler sampler,
        HybridBernoulliSampler::Resume(base, hb_options, rng.Fork(0x4862)));
    StreamHistogramInto(streamed.histogram(), &sampler);
    return sampler.Finalize();
  }

  // Fig. 6 lines 5-7: a reservoir sample is involved.
  if (IsReservoir(s1) || IsReservoir(s2)) {
    return HRMerge(s1, s2, options, rng);
  }

  // Fig. 6 lines 8-16: both are Bernoulli samples.
  const uint64_t merged_parent = s1.parent_size() + s2.parent_size();
  const double q =
      options.use_exact_rate
          ? ExactBernoulliRate(merged_parent, options.exceedance_probability,
                               n_f)
          : ApproxBernoulliRate(merged_parent,
                                options.exceedance_probability, n_f);
  const double q1 = s1.sampling_rate();
  const double q2 = s2.sampling_rate();
  if (q > q1 || q > q2) {
    // Cannot thin upward: a Bern(q) sample cannot be manufactured from a
    // Bern(q_i < q) sample. This only happens when the merged bound is far
    // looser than the bounds the inputs were collected under; fall back to
    // the hypergeometric merge, which needs no common rate.
    return HRMerge(s1, s2, options, rng);
  }

  CompactHistogram h1 = s1.histogram();
  CompactHistogram h2 = s2.histogram();
  PurgeBernoulli(&h1, q / q1, rng);
  PurgeBernoulli(&h2, q / q2, rng);

  if (h1.JoinedFootprintBytes(h2) <= options.footprint_bound_bytes) {
    h1.Join(h2);
    return PartitionSample::MakeBernoulli(std::move(h1), merged_parent, q,
                                          options.footprint_bound_bytes);
  }

  // Fig. 6 lines 14-16 (low-probability case): reservoir-sample S1 and
  // stream S2 through the same reservoir, all in compact form.
  CompactHistogram merged =
      PurgeReservoirStreamed({&h1, &h2}, n_f, rng);
  return PartitionSample::MakeReservoir(std::move(merged), merged_parent,
                                        options.footprint_bound_bytes);
}

Result<PartitionSample> HRMerge(const PartitionSample& s1,
                                const PartitionSample& s2,
                                const MergeOptions& options, Pcg64& rng) {
  SAMPWH_RETURN_IF_ERROR(s1.Validate());
  SAMPWH_RETURN_IF_ERROR(s2.Validate());
  const uint64_t n_f = MaxSampleSizeForFootprint(options.footprint_bound_bytes);
  if (n_f == 0) {
    return Status::InvalidArgument("footprint bound below one value");
  }

  // Fig. 8 lines 1-4: at least one sample is exhaustive — replay its values
  // through Algorithm HR resumed from the other sample (the smaller side
  // when both are exhaustive; see the HBMerge note).
  if (IsExhaustive(s1) || IsExhaustive(s2)) {
    const bool stream_s1 =
        IsExhaustive(s1) &&
        (!IsExhaustive(s2) || s1.size() <= s2.size());
    const PartitionSample& streamed = stream_s1 ? s1 : s2;
    const PartitionSample& base = stream_s1 ? s2 : s1;
    HybridReservoirSampler::Options hr_options;
    hr_options.footprint_bound_bytes = options.footprint_bound_bytes;
    SAMPWH_ASSIGN_OR_RETURN(
        HybridReservoirSampler sampler,
        HybridReservoirSampler::Resume(base, hr_options, rng.Fork(0x4852)));
    StreamHistogramInto(streamed.histogram(), &sampler);
    return sampler.Finalize();
  }

  // Fig. 8 lines 5-12. Bernoulli inputs are admissible: conditioned on its
  // size, a Bernoulli sample is a simple random sample (§3.2).
  const uint64_t merged_parent = s1.parent_size() + s2.parent_size();
  uint64_t k = std::min(s1.size(), s2.size());
  k = std::min(k, n_f);  // honor a tighter merged bound
  if (k == 0) {
    // One input is empty (possible for Bernoulli inputs); the only simple
    // random sample of size 0 is the empty sample.
    return PartitionSample::MakeReservoir(CompactHistogram(), merged_parent,
                                          options.footprint_bound_bytes);
  }

  const uint64_t l = SampleHypergeometricSplit(
      s1.parent_size(), s2.parent_size(), k, rng, options.alias_cache);
  SAMPWH_CHECK(l <= k);

  CompactHistogram h1 = s1.histogram();
  CompactHistogram h2 = s2.histogram();
  PurgeReservoir(&h1, l, rng);
  PurgeReservoir(&h2, k - l, rng);
  h1.Join(h2);
  SAMPWH_CHECK(h1.total_count() == k);
  return PartitionSample::MakeReservoir(std::move(h1), merged_parent,
                                        options.footprint_bound_bytes);
}

Result<PartitionSample> MergeSamples(const PartitionSample& s1,
                                     const PartitionSample& s2,
                                     const MergeOptions& options,
                                     Pcg64& rng) {
  if (IsReservoir(s1) || IsReservoir(s2)) {
    return HRMerge(s1, s2, options, rng);
  }
  return HBMerge(s1, s2, options, rng);
}

Result<PartitionSample> UnionBernoulli(
    const std::vector<const PartitionSample*>& samples, Pcg64& rng) {
  if (samples.empty()) {
    return Status::InvalidArgument("UnionBernoulli of zero samples");
  }
  double min_rate = 1.0;
  uint64_t merged_parent = 0;
  for (const PartitionSample* s : samples) {
    SAMPWH_RETURN_IF_ERROR(s->Validate());
    if (s->phase() == SamplePhase::kReservoir) {
      return Status::InvalidArgument(
          "UnionBernoulli requires Bernoulli or exhaustive inputs");
    }
    min_rate = std::min(min_rate, s->sampling_rate());
    merged_parent += s->parent_size();
  }
  CompactHistogram merged;
  for (const PartitionSample* s : samples) {
    CompactHistogram h = s->histogram();
    if (s->sampling_rate() > min_rate) {
      // Equalize rates before unioning (§4.1 closing remark).
      PurgeBernoulli(&h, min_rate / s->sampling_rate(), rng);
    }
    merged.Join(h);
  }
  if (min_rate >= 1.0) {
    return PartitionSample::MakeExhaustive(std::move(merged), merged_parent,
                                           /*footprint_bound_bytes=*/0);
  }
  return PartitionSample::MakeBernoulli(std::move(merged), merged_parent,
                                        min_rate,
                                        /*footprint_bound_bytes=*/0);
}

namespace {

Result<PartitionSample> MergeRange(
    const std::vector<const PartitionSample*>& samples, size_t begin,
    size_t end, const MergeOptions& options, Pcg64& rng) {
  SAMPWH_DCHECK(end > begin);
  if (end - begin == 1) return *samples[begin];
  const size_t mid = begin + (end - begin) / 2;
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample left,
                          MergeRange(samples, begin, mid, options, rng));
  SAMPWH_ASSIGN_OR_RETURN(PartitionSample right,
                          MergeRange(samples, mid, end, options, rng));
  return MergeSamples(left, right, options, rng);
}

}  // namespace

Result<PartitionSample> MergeAll(
    const std::vector<const PartitionSample*>& samples,
    const MergeOptions& options, Pcg64& rng, MergeStrategy strategy) {
  if (samples.empty()) {
    return Status::InvalidArgument("MergeAll of zero samples");
  }
  if (samples.size() == 1) return *samples[0];
  if (strategy == MergeStrategy::kBalancedTree ||
      strategy == MergeStrategy::kParallelTree) {
    return MergeRange(samples, 0, samples.size(), options, rng);
  }
  PartitionSample acc = *samples[0];
  for (size_t i = 1; i < samples.size(); ++i) {
    SAMPWH_ASSIGN_OR_RETURN(acc,
                            MergeSamples(acc, *samples[i], options, rng));
  }
  return acc;
}

Result<PartitionSample> MergeAllParallel(
    const std::vector<const PartitionSample*>& samples,
    const MergeOptions& options, Pcg64& rng, ThreadPool* pool) {
  if (samples.empty()) {
    return Status::InvalidArgument("MergeAll of zero samples");
  }
  if (samples.size() == 1) return *samples[0];
  if (pool == nullptr || samples.size() == 2) {
    return MergeAll(samples, options, rng, MergeStrategy::kBalancedTree);
  }

  std::vector<PartitionSample> level;
  level.reserve(samples.size());
  for (const PartitionSample* s : samples) level.push_back(*s);

  while (level.size() > 1) {
    const size_t pairs = level.size() / 2;
    // Fork all node RNGs up front, in index order, so results are
    // independent of pool scheduling.
    std::vector<Pcg64> node_rngs;
    node_rngs.reserve(pairs);
    for (size_t j = 0; j < pairs; ++j) node_rngs.push_back(rng.Fork(j));

    std::vector<std::optional<PartitionSample>> merged(pairs);
    std::vector<Status> statuses(pairs, Status::OK());
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t remaining = pairs;

    std::vector<std::function<void()>> tasks;
    tasks.reserve(pairs);
    for (size_t j = 0; j < pairs; ++j) {
      tasks.push_back([&, j] {
        Result<PartitionSample> r = MergeSamples(
            level[2 * j], level[2 * j + 1], options, node_rngs[j]);
        if (r.ok()) {
          merged[j] = std::move(r).value();
        } else {
          statuses[j] = r.status();
        }
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_all();
      });
    }
    pool->SubmitBatch(std::move(tasks));
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return remaining == 0; });
    }

    std::vector<PartitionSample> next;
    next.reserve(pairs + (level.size() % 2));
    for (size_t j = 0; j < pairs; ++j) {
      SAMPWH_RETURN_IF_ERROR(statuses[j]);
      next.push_back(std::move(*merged[j]));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  return std::move(level.front());
}

}  // namespace sampwh
