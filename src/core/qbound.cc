#include "src/core/qbound.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/special_functions.h"

namespace sampwh {

double ApproxBernoulliRate(uint64_t N, double p, uint64_t n_F) {
  SAMPWH_CHECK(N >= 1);
  SAMPWH_CHECK(p > 0.0 && p <= 0.5);
  if (n_F >= N) return 1.0;
  const double n = static_cast<double>(N);
  const double nf = static_cast<double>(n_F);
  const double z = NormalQuantile(1.0 - p);
  const double z2 = z * z;
  const double discriminant = n * (n * z2 + 4.0 * n * nf - 4.0 * nf * nf);
  SAMPWH_CHECK(discriminant >= 0.0);
  const double q =
      (n * (2.0 * nf + z2) - z * std::sqrt(discriminant)) /
      (2.0 * n * (n + z2));
  // Clamp to a valid probability; the approximation can stray marginally
  // outside [0, 1] for extreme parameters.
  if (q < 0.0) return 0.0;
  if (q > 1.0) return 1.0;
  return q;
}

double ExactBernoulliRate(uint64_t N, double p, uint64_t n_F) {
  SAMPWH_CHECK(N >= 1);
  SAMPWH_CHECK(p > 0.0 && p < 1.0);
  if (n_F >= N) return 1.0;
  // f(q) = P{Bin(N, q) > n_F} = I_q(n_F + 1, N - n_F) is continuous and
  // strictly increasing in q on (0, 1), f(0) = 0, f(1) = 1, so the root is
  // unique and bisection is safe.
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double tail = BinomialTailProbability(N, mid, n_F);
    if (tail > p) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < 1e-15 * hi) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace sampwh
