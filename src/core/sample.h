// PartitionSample: a compact uniform random sample of one data-set
// partition, together with the metadata the merge procedures need — which
// terminal phase produced it (exhaustive / Bernoulli / reservoir, the h_i of
// Figs. 6 and 8), the parent partition size |D|, the Bernoulli rate q, and
// the footprint bound it was collected under. This is the unit that flows
// between samplers, the merge layer, and the warehouse.

#ifndef SAMPWH_CORE_SAMPLE_H_
#define SAMPWH_CORE_SAMPLE_H_

#include <cstdint>
#include <string_view>

#include "src/core/compact_histogram.h"
#include "src/core/types.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace sampwh {

/// Terminal phase of the producing algorithm (paper notation h_i).
enum class SamplePhase : uint8_t {
  /// Phase 1: the sample is the exact frequency histogram of the parent.
  kExhaustive = 1,
  /// Phase 2: the sample is (essentially) a Bern(q) sample of the parent.
  kBernoulli = 2,
  /// Phase 3: the sample is a simple random sample of fixed size.
  kReservoir = 3,
};

std::string_view SamplePhaseToString(SamplePhase phase);

class PartitionSample {
 public:
  PartitionSample() = default;

  /// An exhaustive sample: `hist` is the exact histogram of all
  /// `parent_size` values of the partition.
  static PartitionSample MakeExhaustive(CompactHistogram hist,
                                        uint64_t parent_size,
                                        uint64_t footprint_bound_bytes);

  /// A Bernoulli(q) sample of a partition of `parent_size` values.
  /// `footprint_bound_bytes` == 0 means unbounded (Algorithm SB).
  static PartitionSample MakeBernoulli(CompactHistogram hist,
                                       uint64_t parent_size, double q,
                                       uint64_t footprint_bound_bytes);

  /// A simple random (reservoir) sample of a partition of `parent_size`
  /// values.
  static PartitionSample MakeReservoir(CompactHistogram hist,
                                       uint64_t parent_size,
                                       uint64_t footprint_bound_bytes);

  SamplePhase phase() const { return phase_; }
  /// |D|: number of data elements in the parent partition.
  uint64_t parent_size() const { return parent_size_; }
  /// The Bernoulli rate q (meaningful when phase() == kBernoulli; 1.0 for
  /// exhaustive samples).
  double sampling_rate() const { return q_; }
  /// The footprint bound F under which the sample was collected; 0 means
  /// unbounded.
  uint64_t footprint_bound_bytes() const { return footprint_bound_bytes_; }
  /// n_F corresponding to the bound (0 when unbounded).
  uint64_t max_sample_size() const {
    return MaxSampleSizeForFootprint(footprint_bound_bytes_);
  }

  const CompactHistogram& histogram() const { return hist_; }
  CompactHistogram& mutable_histogram() { return hist_; }

  /// |S|: number of data-element values in the sample.
  uint64_t size() const { return hist_.total_count(); }
  uint64_t footprint_bytes() const { return hist_.footprint_bytes(); }

  /// Checks the structural invariants: exhaustive samples cover the parent
  /// exactly; sizes never exceed the parent or the footprint bound; rates
  /// are valid probabilities.
  Status Validate() const;

  /// On-disk encoding (versioned; values delta-encoded, counts varint).
  void SerializeTo(BinaryWriter* writer) const;
  static Result<PartitionSample> DeserializeFrom(BinaryReader* reader);

 private:
  SamplePhase phase_ = SamplePhase::kExhaustive;
  uint64_t parent_size_ = 0;
  double q_ = 1.0;
  uint64_t footprint_bound_bytes_ = 0;
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_SAMPLE_H_
