// The multiple-purge variant of Algorithm HB sketched (and dismissed) in
// §4.1: eliminate phase 3 and, whenever the phase-2 sample reaches n_F
// values, repeatedly thin it with ever smaller Bernoulli rates, in the
// spirit of concise sampling but operating on whole samples so uniformity
// is preserved. The paper argues this variant is dominated by Algorithm HB
// — more expensive on average, with smaller and less stable final sample
// sizes. It is implemented here as an ablation; bench_ablation_multipurge
// measures both claims.
//
// A pleasant side effect of never expanding: the sample stays in compact
// histogram form for its entire lifetime.

#ifndef SAMPWH_CORE_MULTI_PURGE_SAMPLER_H_
#define SAMPWH_CORE_MULTI_PURGE_SAMPLER_H_

#include <cstdint>

#include "src/core/compact_histogram.h"
#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class MultiPurgeBernoulliSampler {
 public:
  struct Options {
    /// F: hard bound, in bytes, on the sample footprint at every instant.
    uint64_t footprint_bound_bytes = 64 * 1024;
    /// N: expected partition size (as in Algorithm HB).
    uint64_t expected_population_size = 0;
    /// p: target exceedance probability for the initial rate choice.
    double exceedance_probability = 1e-3;
    /// Rate shrink factor applied at each forced purge (q' = q * shrink).
    double purge_shrink = 0.8;
  };

  MultiPurgeBernoulliSampler(const Options& options, Pcg64 rng);

  void Add(Value v);

  uint64_t elements_seen() const { return elements_seen_; }
  SamplePhase phase() const { return phase_; }
  double sampling_rate() const { return q_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  uint64_t footprint_bytes() const { return hist_.footprint_bytes(); }
  /// Number of forced purges executed so far (ablation metric).
  uint64_t forced_purges() const { return forced_purges_; }

  PartitionSample Finalize();

 private:
  void PurgeWhileAtCapacity();

  Options options_;
  uint64_t n_F_;
  Pcg64 rng_;
  SamplePhase phase_ = SamplePhase::kExhaustive;
  uint64_t elements_seen_ = 0;
  double q_ = 1.0;
  uint64_t gap_ = 0;
  uint64_t forced_purges_ = 0;
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_MULTI_PURGE_SAMPLER_H_
