#include "src/core/weighted_sampler.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace sampwh {

namespace {
bool KeyGreater(const WeightedItem& a, const WeightedItem& b) {
  return a.key > b.key;  // std::*_heap with this comparator => min-heap
}
}  // namespace

WeightedReservoirSampler::WeightedReservoirSampler(uint64_t capacity,
                                                   Pcg64 rng)
    : capacity_(capacity), rng_(std::move(rng)) {
  SAMPWH_CHECK(capacity >= 1);
  heap_.reserve(capacity);
}

void WeightedReservoirSampler::Add(Value v, double weight) {
  SAMPWH_CHECK(weight > 0.0);
  ++elements_seen_;
  total_weight_seen_ += weight;
  // A-ES key: u^(1/w), computed in log space for numerical stability with
  // very large or very small weights.
  const double u = rng_.NextDoubleOpen();
  const double key = std::exp(std::log(u) / weight);
  if (heap_.size() < capacity_) {
    PushItem(WeightedItem{v, weight, key});
    return;
  }
  if (key > heap_.front().key) {
    std::pop_heap(heap_.begin(), heap_.end(), KeyGreater);
    heap_.back() = WeightedItem{v, weight, key};
    std::push_heap(heap_.begin(), heap_.end(), KeyGreater);
  }
}

void WeightedReservoirSampler::PushItem(const WeightedItem& item) {
  heap_.push_back(item);
  std::push_heap(heap_.begin(), heap_.end(), KeyGreater);
}

std::vector<WeightedItem> WeightedReservoirSampler::Items() const {
  std::vector<WeightedItem> items = heap_;
  std::sort(items.begin(), items.end(),
            [](const WeightedItem& a, const WeightedItem& b) {
              return a.key > b.key;
            });
  return items;
}

Result<WeightedReservoirSampler> WeightedReservoirSampler::Merge(
    const WeightedReservoirSampler& a, const WeightedReservoirSampler& b) {
  // Keys of items that fell out of either reservoir are, by the A-ES
  // invariant, smaller than every retained key — so the top-k of the
  // retained union equals the top-k the single-pass sampler would have
  // kept over the concatenated stream.
  const uint64_t capacity = std::min(a.capacity_, b.capacity_);
  std::vector<WeightedItem> all = a.heap_;
  all.insert(all.end(), b.heap_.begin(), b.heap_.end());
  std::sort(all.begin(), all.end(),
            [](const WeightedItem& x, const WeightedItem& y) {
              return x.key > y.key;
            });
  if (all.size() > capacity) all.resize(capacity);

  WeightedReservoirSampler merged(capacity, Pcg64(0));
  merged.elements_seen_ = a.elements_seen_ + b.elements_seen_;
  merged.total_weight_seen_ = a.total_weight_seen_ + b.total_weight_seen_;
  for (const WeightedItem& item : all) merged.PushItem(item);
  return merged;
}

}  // namespace sampwh
