// Weight-biased sampling (§6 future work: "biased sampling"), implemented
// with the Efraimidis-Spirakis A-ES weighted reservoir: each arriving item
// with weight w > 0 draws the key u^(1/w) (u uniform) and the sampler
// keeps the k largest-keyed items. The result is a weighted random sample
// without replacement: at every prefix of the stream, item i is the
// first-selected with probability w_i / sum w_j, etc.
//
// The scheme fits this library's warehouse philosophy because it is
// MERGEABLE in the same spirit as §4: keys are retained alongside the
// items, and a weighted sample of the union of two disjoint partitions is
// exactly the top-k of the union of the two key sets — no rescaling, no
// communication beyond the samples themselves.

#ifndef SAMPWH_CORE_WEIGHTED_SAMPLER_H_
#define SAMPWH_CORE_WEIGHTED_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/core/types.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace sampwh {

struct WeightedItem {
  Value value = 0;
  double weight = 0.0;
  /// The A-ES key u^(1/weight); larger keys win.
  double key = 0.0;
};

class WeightedReservoirSampler {
 public:
  /// Keeps the `capacity` largest-keyed items.
  WeightedReservoirSampler(uint64_t capacity, Pcg64 rng);

  /// Processes one item; `weight` must be positive.
  void Add(Value v, double weight);

  uint64_t capacity() const { return capacity_; }
  uint64_t elements_seen() const { return elements_seen_; }
  uint64_t sample_size() const { return heap_.size(); }
  /// Total weight observed so far (for expansion estimates).
  double total_weight_seen() const { return total_weight_seen_; }

  /// Current items, sorted by descending key (deterministic output order).
  std::vector<WeightedItem> Items() const;

  /// Merges two weighted reservoirs over DISJOINT streams into one of
  /// capacity min(a.capacity, b.capacity): the top-k of the key union.
  static Result<WeightedReservoirSampler> Merge(
      const WeightedReservoirSampler& a, const WeightedReservoirSampler& b);

 private:
  void PushItem(const WeightedItem& item);

  uint64_t capacity_;
  Pcg64 rng_;
  uint64_t elements_seen_ = 0;
  double total_weight_seen_ = 0.0;
  // Min-heap on key: heap_[0] is the current threshold item.
  std::vector<WeightedItem> heap_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_WEIGHTED_SAMPLER_H_
