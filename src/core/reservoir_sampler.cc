#include "src/core/reservoir_sampler.h"

#include <utility>

#include "src/core/compact_histogram.h"
#include "src/util/logging.h"

namespace sampwh {

ReservoirSampler::ReservoirSampler(uint64_t capacity, Pcg64 rng,
                                   VitterSkip::Mode skip_mode)
    : capacity_(capacity), rng_(std::move(rng)), skip_(capacity, skip_mode) {
  SAMPWH_CHECK(capacity >= 1);
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Add(Value v) {
  ++elements_seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(v);
    if (reservoir_.size() == capacity_) {
      next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
    }
    return;
  }
  if (elements_seen_ == next_insertion_index_) {
    const size_t victim = static_cast<size_t>(rng_.UniformInt(capacity_));
    reservoir_[victim] = v;
    next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
  }
}

void ReservoirSampler::AddBatch(std::span<const Value> values) {
  size_t i = 0;
  const size_t n = values.size();
  // Fill phase: the first k elements are always admitted.
  while (i < n && reservoir_.size() < capacity_) {
    reservoir_.push_back(values[i]);
    ++elements_seen_;
    ++i;
    if (reservoir_.size() == capacity_) {
      next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
    }
  }
  // Skip phase: jump straight to each insertion index.
  while (i < n) {
    const uint64_t remaining = n - i;
    if (next_insertion_index_ > elements_seen_ + remaining) {
      elements_seen_ += remaining;
      break;
    }
    i += next_insertion_index_ - elements_seen_ - 1;
    elements_seen_ = next_insertion_index_;
    const size_t victim = static_cast<size_t>(rng_.UniformInt(capacity_));
    reservoir_[victim] = values[i];
    ++i;
    next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
  }
}

PartitionSample ReservoirSampler::Finalize() {
  CompactHistogram hist = CompactHistogram::FromBag(reservoir_);
  const uint64_t bound = capacity_ * kSingletonFootprintBytes;
  PartitionSample sample =
      (elements_seen_ <= capacity_)
          ? PartitionSample::MakeExhaustive(std::move(hist), elements_seen_,
                                            bound)
          : PartitionSample::MakeReservoir(std::move(hist), elements_seen_,
                                           bound);
  reservoir_.clear();
  elements_seen_ = 0;
  return sample;
}

}  // namespace sampwh
