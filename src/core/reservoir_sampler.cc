#include "src/core/reservoir_sampler.h"

#include <utility>

#include "src/core/compact_histogram.h"
#include "src/util/logging.h"

namespace sampwh {

ReservoirSampler::ReservoirSampler(uint64_t capacity, Pcg64 rng,
                                   VitterSkip::Mode skip_mode)
    : capacity_(capacity), rng_(std::move(rng)), skip_(capacity, skip_mode) {
  SAMPWH_CHECK(capacity >= 1);
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Add(Value v) {
  ++elements_seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(v);
    if (reservoir_.size() == capacity_) {
      next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
    }
    return;
  }
  if (elements_seen_ == next_insertion_index_) {
    const size_t victim = static_cast<size_t>(rng_.UniformInt(capacity_));
    reservoir_[victim] = v;
    next_insertion_index_ = skip_.NextInsertionIndex(rng_, elements_seen_);
  }
}

PartitionSample ReservoirSampler::Finalize() {
  CompactHistogram hist = CompactHistogram::FromBag(reservoir_);
  const uint64_t bound = capacity_ * kSingletonFootprintBytes;
  PartitionSample sample =
      (elements_seen_ <= capacity_)
          ? PartitionSample::MakeExhaustive(std::move(hist), elements_seen_,
                                            bound)
          : PartitionSample::MakeReservoir(std::move(hist), elements_seen_,
                                           bound);
  reservoir_.clear();
  elements_seen_ = 0;
  return sample;
}

}  // namespace sampwh
