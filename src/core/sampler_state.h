// Shared encode/decode helpers for mid-stream sampler state: the RNG
// engine, Vitter skip generators, and expanded sample bags. Every sampler's
// SaveState()/LoadState() builds on these so the pieces common to HB, HR
// and SB have exactly one wire form.
//
// The expanded bag is serialized IN ELEMENT ORDER, not sorted: reservoir
// insertions overwrite uniformly random bag positions, so the bag's order
// is entangled with the RNG stream — a reordered bag would make the resumed
// sampler place future victims differently than the uninterrupted one.

#ifndef SAMPWH_CORE_SAMPLER_STATE_H_
#define SAMPWH_CORE_SAMPLER_STATE_H_

#include <optional>
#include <vector>

#include "src/core/types.h"
#include "src/core/vitter.h"
#include "src/util/random.h"
#include "src/util/serialization.h"
#include "src/util/status.h"

namespace sampwh {

/// The four state words of the PCG engine, fixed-width.
void SaveRngState(const Pcg64& rng, BinaryWriter* writer);
Status LoadRngState(BinaryReader* reader, Pcg64* rng);

/// Presence flag, then {k, mode, W} when engaged. Validates k >= 1 and the
/// mode range on load, so corrupt input fails cleanly instead of tripping
/// VitterSkip's constructor CHECK.
void SaveVitterState(const std::optional<VitterSkip>& skip,
                     BinaryWriter* writer);
Status LoadVitterState(BinaryReader* reader,
                       std::optional<VitterSkip>* skip);

/// Size-prefixed values, zig-zag varints, order preserved.
void SaveValueBag(const std::vector<Value>& bag, BinaryWriter* writer);
Status LoadValueBag(BinaryReader* reader, std::vector<Value>* bag);

}  // namespace sampwh

#endif  // SAMPWH_CORE_SAMPLER_STATE_H_
