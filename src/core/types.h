// Core value and footprint model.
//
// The warehouse stores 64-bit value codes. Wider payloads (strings, doubles,
// composite keys) are dictionary-encoded by the warehouse layer
// (src/warehouse/dictionary.h) before sampling, the standard column-store
// trick; the sampling algorithms themselves only ever see Value codes.
//
// The footprint model follows the paper's compact representation (§3.3):
// a (value, count) pair costs kPairFootprintBytes and a singleton value is
// stored as the bare value, costing kSingletonFootprintBytes. The
// user-supplied bound F caps footprint(S) in bytes at every instant, and
// n_F = F / kSingletonFootprintBytes is the corresponding cap on the number
// of data-element values once a sample is expanded to a bag.

#ifndef SAMPWH_CORE_TYPES_H_
#define SAMPWH_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace sampwh {

/// The data-element value type seen by all samplers.
using Value = int64_t;

/// Footprint of a bare singleton value (8-byte value).
inline constexpr size_t kSingletonFootprintBytes = 8;

/// Footprint of a (value, count) pair (8-byte value + 4-byte count).
inline constexpr size_t kPairFootprintBytes = 12;

/// Maximum number of expanded data-element values that fit in a footprint
/// of `footprint_bytes`: n_F in the paper.
inline constexpr uint64_t MaxSampleSizeForFootprint(uint64_t footprint_bytes) {
  return footprint_bytes / kSingletonFootprintBytes;
}

}  // namespace sampwh

#endif  // SAMPWH_CORE_TYPES_H_
