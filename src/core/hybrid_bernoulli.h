// Algorithm HB (paper §4.1, Fig. 2): hybrid Bernoulli sampling with an
// a priori bounded footprint.
//
// Phase 1 ingests every value into a compact histogram (rate q = 1). If the
// footprint reaches the bound F, the sampler picks the Bernoulli rate
// q = q(N, p, n_F) so that a Bern(q) sample of the full partition exceeds
// n_F values only with probability p, thins the histogram to a Bern(q)
// subsample (purgeBernoulli), and continues in phase 2 as a plain Bern(q)
// sampler (implemented with geometric skips, the optimization of [11]). In
// the low-probability event that the sample still reaches n_F values, the
// sampler falls back to reservoir sampling of size n_F (phase 3, Vitter
// skips). The result is a uniform sample whose footprint never exceeded F
// at any instant.
//
// Reproduction note on the phase-2 -> 3 fallback (Fig. 2 lines 17-19).
// When the Bernoulli sample hits n_F values at stream position T, the
// paper's pseudocode freezes it as the initial reservoir. Conditioned on
// that stopping time, the sample is uniform over the n_F-subsets of the
// first T elements THAT CONTAIN element T — not over all n_F-subsets — so
// samples that terminate in phase 3 via this path slightly over-represent
// later stream positions. Samples terminating in phase 1 or 2, and phase-3
// samples reached directly from phase 1, are exactly uniform. The bias is
// entered with probability at most p by construction (total-variation
// impact <= p), which is why it is invisible at the paper's p <= 1e-3;
// tests/property/uniformity_property_test.cc demonstrates both the exact
// uniformity at small p and the bias when p is forced large. Callers
// needing exact uniformity under severe overshoot should use
// HybridReservoirSampler or MultiPurgeBernoulliSampler instead.

#ifndef SAMPWH_CORE_HYBRID_BERNOULLI_H_
#define SAMPWH_CORE_HYBRID_BERNOULLI_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/compact_histogram.h"
#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/core/vitter.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace sampwh {

class HybridBernoulliSampler {
 public:
  struct Options {
    /// F: hard bound, in bytes, on the sample footprint at every instant.
    uint64_t footprint_bound_bytes = 64 * 1024;
    /// N: the (expected) partition size, required a priori by Algorithm HB
    /// to choose q. If the actual stream is longer, the phase-3 fallback
    /// still guarantees the footprint bound; if much shorter, the sample
    /// will be smaller than necessary (the paper's §4.3 caveat).
    uint64_t expected_population_size = 0;
    /// p: target probability that a Bern(q) sample of N values exceeds n_F.
    double exceedance_probability = 1e-3;
    /// Solve f(q) = p exactly (bisection) instead of using the Eq. (1)
    /// normal approximation. Off by default, as in the paper.
    bool use_exact_rate = false;
  };

  /// `rng` should be an independent stream per partition (Pcg64::Fork).
  HybridBernoulliSampler(const Options& options, Pcg64 rng);

  /// Resumes Algorithm HB from an existing sample, used by HBMerge's
  /// exhaustive case (Fig. 6 lines 1-4): the running state is initialized
  /// from `base` (phase, rate, histogram) with
  /// options.expected_population_size set to the size of the merged parent.
  /// Fails if `base` is invalid or incompatible with the footprint bound.
  static Result<HybridBernoulliSampler> Resume(const PartitionSample& base,
                                               const Options& options,
                                               Pcg64 rng);

  /// Processes one arriving data element.
  void Add(Value v);

  /// Processes a batch of arriving data elements. Phase 1 is inherently
  /// per-element (every value updates the histogram and its footprint);
  /// phases 2 and 3 jump directly between inclusions with the geometric /
  /// Vitter skips, so RNG draws and sample updates scale with the number
  /// of inclusions, not the batch size. Phase transitions can occur
  /// mid-batch at exactly the element where the element-wise path would
  /// transition; RNG draw order matches Add exactly, so both paths yield
  /// identical samples under the same seed.
  void AddBatch(std::span<const Value> values);

  /// Number of data elements processed so far.
  uint64_t elements_seen() const { return elements_seen_; }

  /// Current phase (1, 2 or 3 in the paper's numbering).
  SamplePhase phase() const { return phase_; }

  /// The phase-2 Bernoulli rate (1.0 while in phase 1).
  double sampling_rate() const { return q_; }

  /// Current number of data-element values in the sample.
  uint64_t sample_size() const;

  /// Current footprint in bytes (never exceeds the bound).
  uint64_t footprint_bytes() const;

  /// Converts the running state into a finalized PartitionSample (compact
  /// histogram form). The sampler is left empty.
  PartitionSample Finalize();

  /// Serializes the complete mid-stream state — options, phase, rate,
  /// histogram / expanded bag (in element order), the pending geometric and
  /// Vitter skips, and the RNG engine. Non-destructive; LoadState() yields
  /// a sampler that continues bit-identically to this one.
  void SaveState(BinaryWriter* writer) const;
  static Result<HybridBernoulliSampler> LoadState(BinaryReader* reader);

 private:
  // `processed` is the number of stream elements already fully processed
  // when the transition happens; reservoir skips resume from there.
  void TransitionFromPhase1(uint64_t processed);
  void EnterPhase3(uint64_t processed);
  void ExpandIfNeeded();

  Options options_;
  uint64_t n_F_;
  Pcg64 rng_;

  SamplePhase phase_ = SamplePhase::kExhaustive;
  uint64_t elements_seen_ = 0;
  double q_ = 1.0;

  // Phase 1 histogram, or the unexpanded phase-2/3 subsample S' before the
  // first post-transition insertion.
  CompactHistogram hist_;
  bool expanded_ = false;
  std::vector<Value> bag_;  // expanded sample (phases 2 and 3)

  uint64_t bernoulli_gap_ = 0;  // elements to skip before next inclusion
  std::optional<VitterSkip> reservoir_skip_;
  uint64_t next_reservoir_index_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_HYBRID_BERNOULLI_H_
