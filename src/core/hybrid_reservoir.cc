#include "src/core/hybrid_reservoir.h"

#include <utility>

#include "src/core/purge.h"
#include "src/core/sampler_state.h"
#include "src/util/logging.h"

namespace sampwh {

HybridReservoirSampler::HybridReservoirSampler(const Options& options,
                                               Pcg64 rng)
    : options_(options),
      n_F_(MaxSampleSizeForFootprint(options.footprint_bound_bytes)),
      rng_(std::move(rng)) {
  SAMPWH_CHECK(n_F_ >= 1);
}

Result<HybridReservoirSampler> HybridReservoirSampler::Resume(
    const PartitionSample& base, const Options& options, Pcg64 rng) {
  SAMPWH_RETURN_IF_ERROR(base.Validate());
  HybridReservoirSampler sampler(options, std::move(rng));
  sampler.elements_seen_ = base.parent_size();
  sampler.hist_ = base.histogram();
  if (base.phase() == SamplePhase::kExhaustive) {
    sampler.phase_ = SamplePhase::kExhaustive;
    if (sampler.hist_.footprint_bytes() > options.footprint_bound_bytes) {
      // The base histogram exceeds the (tighter) target bound; cut it to a
      // simple random sample of size n_F immediately so the bound holds
      // from the first instant, and continue in reservoir mode.
      PurgeReservoir(&sampler.hist_, sampler.n_F_, sampler.rng_);
      sampler.phase_ = SamplePhase::kReservoir;
      sampler.reservoir_capacity_ = sampler.n_F_;
      sampler.reservoir_skip_.emplace(sampler.n_F_);
      sampler.next_reservoir_index_ =
          sampler.reservoir_skip_->NextInsertionIndex(
              sampler.rng_, sampler.elements_seen_);
    }
    return sampler;
  }
  // Reservoir base, or Bernoulli base viewed (conditionally on its size) as
  // a simple random sample.
  uint64_t k = base.size();
  if (k > sampler.n_F_) {
    PurgeReservoir(&sampler.hist_, sampler.n_F_, sampler.rng_);
    k = sampler.n_F_;
  }
  if (k == 0) {
    return Status::InvalidArgument("cannot resume from an empty sample");
  }
  sampler.phase_ = SamplePhase::kReservoir;
  sampler.reservoir_capacity_ = k;
  sampler.expanded_ = true;
  sampler.bag_ = sampler.hist_.ToBag();
  sampler.hist_.Clear();
  sampler.reservoir_skip_.emplace(k);
  sampler.next_reservoir_index_ = sampler.reservoir_skip_->NextInsertionIndex(
      sampler.rng_, sampler.elements_seen_);
  return sampler;
}

uint64_t HybridReservoirSampler::sample_size() const {
  return expanded_ ? bag_.size() : hist_.total_count();
}

uint64_t HybridReservoirSampler::footprint_bytes() const {
  return expanded_ ? bag_.size() * kSingletonFootprintBytes
                   : hist_.footprint_bytes();
}

void HybridReservoirSampler::Add(Value v) {
  ++elements_seen_;
  if (phase_ == SamplePhase::kExhaustive) {
    // Fig. 7 lines 3-5, with the check moved BEFORE the insertion so the
    // footprint bound holds at every instant even when the insertion would
    // jump past F (duplicate-heavy streams grow the footprint in +4/+8
    // steps and can straddle F without ever equaling it). If this value
    // still fits, stay exhaustive; otherwise switch to reservoir mode over
    // the elements_seen_ - 1 elements ingested so far — the footprint
    // argument guarantees that count is >= n_F — and give the current
    // element the standard reservoir treatment below. The purge of the
    // histogram down to n_F values happens lazily at the first reservoir
    // insertion (Fig. 7 lines 9-11).
    const uint64_t existing = hist_.CountOf(v);
    const uint64_t growth =
        existing == 0 ? kSingletonFootprintBytes
        : existing == 1 ? kPairFootprintBytes - kSingletonFootprintBytes
                        : 0;
    if (hist_.footprint_bytes() + growth <= options_.footprint_bound_bytes) {
      hist_.Insert(v);
      return;
    }
    phase_ = SamplePhase::kReservoir;
    reservoir_capacity_ = n_F_;
    reservoir_skip_.emplace(n_F_);
    next_reservoir_index_ =
        reservoir_skip_->NextInsertionIndex(rng_, elements_seen_ - 1);
  }
  if (elements_seen_ == next_reservoir_index_) {
    ExpandIfNeeded();
    const size_t victim = static_cast<size_t>(rng_.UniformInt(bag_.size()));
    bag_[victim] = v;
    next_reservoir_index_ =
        reservoir_skip_->NextInsertionIndex(rng_, elements_seen_);
  }
}

void HybridReservoirSampler::AddBatch(std::span<const Value> values) {
  size_t i = 0;
  const size_t n = values.size();
  // Phase 1: per-element footprint accounting; the scalar path also gives
  // the transition element its reservoir treatment when the bound trips.
  while (i < n && phase_ == SamplePhase::kExhaustive) {
    Add(values[i]);
    ++i;
  }
  // Phase 2: jump straight to each Vitter insertion index (Fig. 7 lines
  // 7-13, batched).
  while (i < n) {
    const uint64_t remaining = n - i;
    if (next_reservoir_index_ > elements_seen_ + remaining) {
      elements_seen_ += remaining;
      return;
    }
    i += next_reservoir_index_ - elements_seen_ - 1;
    elements_seen_ = next_reservoir_index_;
    ExpandIfNeeded();
    const size_t victim = static_cast<size_t>(rng_.UniformInt(bag_.size()));
    bag_[victim] = values[i];
    ++i;
    next_reservoir_index_ =
        reservoir_skip_->NextInsertionIndex(rng_, elements_seen_);
  }
}

void HybridReservoirSampler::ExpandIfNeeded() {
  if (expanded_) return;
  if (hist_.total_count() > reservoir_capacity_) {
    hist_ = PurgeReservoirStreamed({&hist_}, reservoir_capacity_, rng_);
  }
  bag_ = hist_.ToBag();
  hist_.Clear();
  expanded_ = true;
}

void HybridReservoirSampler::SaveState(BinaryWriter* writer) const {
  writer->PutVarint64(options_.footprint_bound_bytes);
  SaveRngState(rng_, writer);
  writer->PutVarint64(static_cast<uint64_t>(phase_));
  writer->PutVarint64(elements_seen_);
  writer->PutVarint64(reservoir_capacity_);
  hist_.SerializeTo(writer);
  writer->PutVarint64(expanded_ ? 1 : 0);
  SaveValueBag(bag_, writer);
  SaveVitterState(reservoir_skip_, writer);
  writer->PutVarint64(next_reservoir_index_);
}

Result<HybridReservoirSampler> HybridReservoirSampler::LoadState(
    BinaryReader* reader) {
  Options options;
  SAMPWH_RETURN_IF_ERROR(
      reader->GetVarint64(&options.footprint_bound_bytes));
  if (MaxSampleSizeForFootprint(options.footprint_bound_bytes) < 1) {
    return Status::Corruption("HR state: footprint bound below one value");
  }
  Pcg64 rng(0);
  SAMPWH_RETURN_IF_ERROR(LoadRngState(reader, &rng));
  HybridReservoirSampler s(options, std::move(rng));
  uint64_t phase_raw;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&phase_raw));
  if (phase_raw != static_cast<uint64_t>(SamplePhase::kExhaustive) &&
      phase_raw != static_cast<uint64_t>(SamplePhase::kReservoir)) {
    return Status::Corruption("HR state: bad phase");
  }
  s.phase_ = static_cast<SamplePhase>(phase_raw);
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.elements_seen_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.reservoir_capacity_));
  SAMPWH_ASSIGN_OR_RETURN(s.hist_, CompactHistogram::DeserializeFrom(reader));
  uint64_t expanded_raw;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&expanded_raw));
  if (expanded_raw > 1) {
    return Status::Corruption("HR state: bad expanded flag");
  }
  s.expanded_ = expanded_raw != 0;
  SAMPWH_RETURN_IF_ERROR(LoadValueBag(reader, &s.bag_));
  SAMPWH_RETURN_IF_ERROR(LoadVitterState(reader, &s.reservoir_skip_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.next_reservoir_index_));
  if (s.phase_ == SamplePhase::kReservoir &&
      (!s.reservoir_skip_.has_value() || s.reservoir_capacity_ == 0)) {
    return Status::Corruption("HR state: reservoir phase without skip");
  }
  return s;
}

PartitionSample HybridReservoirSampler::Finalize() {
  CompactHistogram hist =
      expanded_ ? CompactHistogram::FromBag(bag_) : std::move(hist_);
  bag_.clear();
  hist_.Clear();
  const uint64_t parent = elements_seen_;
  const uint64_t bound = options_.footprint_bound_bytes;
  if (phase_ == SamplePhase::kExhaustive) {
    return PartitionSample::MakeExhaustive(std::move(hist), parent, bound);
  }
  // In reservoir mode the histogram may still hold more than n_F values if
  // no insertion ever fired after the phase switch; cut it down so the
  // finalized sample is a true size-n_F simple random sample.
  if (!hist.empty() && hist.total_count() > reservoir_capacity_) {
    hist = PurgeReservoirStreamed({&hist}, reservoir_capacity_, rng_);
  }
  return PartitionSample::MakeReservoir(std::move(hist), parent, bound);
}

}  // namespace sampwh
