#include "src/core/sample.h"

#include <utility>

namespace sampwh {

namespace {
// Format version tag for the serialized encoding.
constexpr uint32_t kSampleFormatMagic = 0x53575331;  // "SWS1"
}  // namespace

std::string_view SamplePhaseToString(SamplePhase phase) {
  switch (phase) {
    case SamplePhase::kExhaustive:
      return "exhaustive";
    case SamplePhase::kBernoulli:
      return "bernoulli";
    case SamplePhase::kReservoir:
      return "reservoir";
  }
  return "unknown";
}

PartitionSample PartitionSample::MakeExhaustive(
    CompactHistogram hist, uint64_t parent_size,
    uint64_t footprint_bound_bytes) {
  PartitionSample s;
  s.phase_ = SamplePhase::kExhaustive;
  s.parent_size_ = parent_size;
  s.q_ = 1.0;
  s.footprint_bound_bytes_ = footprint_bound_bytes;
  s.hist_ = std::move(hist);
  return s;
}

PartitionSample PartitionSample::MakeBernoulli(
    CompactHistogram hist, uint64_t parent_size, double q,
    uint64_t footprint_bound_bytes) {
  PartitionSample s;
  s.phase_ = SamplePhase::kBernoulli;
  s.parent_size_ = parent_size;
  s.q_ = q;
  s.footprint_bound_bytes_ = footprint_bound_bytes;
  s.hist_ = std::move(hist);
  return s;
}

PartitionSample PartitionSample::MakeReservoir(
    CompactHistogram hist, uint64_t parent_size,
    uint64_t footprint_bound_bytes) {
  PartitionSample s;
  s.phase_ = SamplePhase::kReservoir;
  s.parent_size_ = parent_size;
  s.q_ = 1.0;
  s.footprint_bound_bytes_ = footprint_bound_bytes;
  s.hist_ = std::move(hist);
  return s;
}

Status PartitionSample::Validate() const {
  if (q_ < 0.0 || q_ > 1.0) {
    return Status::Corruption("sampling rate outside [0, 1]");
  }
  if (size() > parent_size_) {
    return Status::Corruption("sample larger than its parent partition");
  }
  if (phase_ == SamplePhase::kExhaustive && size() != parent_size_) {
    return Status::Corruption("exhaustive sample does not cover its parent");
  }
  // The a priori bound of §2 requirement 3 is on the FOOTPRINT, not the
  // value count: a merged Bernoulli sample over duplicate-heavy data may
  // legitimately hold more than n_F values inside F bytes of (value,
  // count) pairs.
  if (footprint_bound_bytes_ > 0 &&
      footprint_bytes() > footprint_bound_bytes_) {
    return Status::Corruption("sample footprint exceeds its bound");
  }
  return Status::OK();
}

void PartitionSample::SerializeTo(BinaryWriter* writer) const {
  writer->PutFixed32(kSampleFormatMagic);
  writer->PutVarint64(static_cast<uint64_t>(phase_));
  writer->PutVarint64(parent_size_);
  writer->PutDouble(q_);
  writer->PutVarint64(footprint_bound_bytes_);
  const auto entries = hist_.SortedEntries();
  writer->PutVarint64(entries.size());
  // Values are sorted, so delta encoding keeps most varints short.
  Value previous = 0;
  for (const auto& [v, n] : entries) {
    writer->PutVarintSigned64(v - previous);
    writer->PutVarint64(n);
    previous = v;
  }
}

Result<PartitionSample> PartitionSample::DeserializeFrom(
    BinaryReader* reader) {
  uint32_t magic;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed32(&magic));
  if (magic != kSampleFormatMagic) {
    return Status::Corruption("bad sample magic");
  }
  uint64_t phase_raw;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&phase_raw));
  if (phase_raw < 1 || phase_raw > 3) {
    return Status::Corruption("bad sample phase");
  }
  PartitionSample s;
  s.phase_ = static_cast<SamplePhase>(phase_raw);
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.parent_size_));
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&s.q_));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&s.footprint_bound_bytes_));
  uint64_t num_entries;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&num_entries));
  Value previous = 0;
  for (uint64_t i = 0; i < num_entries; ++i) {
    int64_t delta;
    uint64_t count;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarintSigned64(&delta));
    SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&count));
    if (count == 0) return Status::Corruption("zero count in sample entry");
    previous += delta;
    s.hist_.Insert(previous, count);
  }
  SAMPWH_RETURN_IF_ERROR(s.Validate());
  return s;
}

}  // namespace sampwh
