#include "src/core/concise_sampler.h"

#include <utility>

#include "src/core/purge.h"
#include "src/util/distributions.h"
#include "src/util/logging.h"

namespace sampwh {

ConciseSampler::ConciseSampler(const Options& options, Pcg64 rng)
    : options_(options), rng_(std::move(rng)) {
  SAMPWH_CHECK(options_.footprint_bound_bytes >= kPairFootprintBytes);
  SAMPWH_CHECK(options_.threshold_growth > 1.0);
}

void ConciseSampler::Add(Value v) {
  ++elements_seen_;
  if (gap_ > 0) {
    --gap_;
    return;
  }
  hist_.Insert(v);
  PurgeWhileOverBound();
  if (tau_ > 1.0) {
    gap_ = SampleGeometricSkip(rng_, 1.0 / tau_);
  }
}

void ConciseSampler::PurgeWhileOverBound() {
  // §3.3: reduce the sampling rate and thin the sample; by luck of the draw
  // a purge may not shrink the footprint, in which case it is repeated (at
  // an ever lower rate) until the bound holds again.
  while (hist_.footprint_bytes() > options_.footprint_bound_bytes) {
    const double new_tau = tau_ * options_.threshold_growth;
    PurgeBernoulli(&hist_, tau_ / new_tau, rng_);
    tau_ = new_tau;
  }
}

}  // namespace sampwh
