// Plain bounded reservoir sampling (§3.2): maintains a simple random sample
// of fixed capacity k over a stream, using Vitter skips. This is the
// classical building block Algorithms HB and HR fall back to; it is exposed
// directly for callers that want size control without the compact phase-1
// histogram.

#ifndef SAMPWH_CORE_RESERVOIR_SAMPLER_H_
#define SAMPWH_CORE_RESERVOIR_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/sample.h"
#include "src/core/types.h"
#include "src/core/vitter.h"
#include "src/util/random.h"

namespace sampwh {

class ReservoirSampler {
 public:
  /// Maintains a simple random sample of at most `capacity` values.
  ReservoirSampler(uint64_t capacity, Pcg64 rng,
                   VitterSkip::Mode skip_mode = VitterSkip::Mode::kAuto);

  void Add(Value v);

  /// Batch fast path: once the reservoir is full, jumps directly between
  /// Vitter insertion indices, so the amortized cost per element is
  /// O(k / n) rather than O(1). RNG draw order matches an element-wise
  /// Add loop exactly (identical samples under the same seed).
  void AddBatch(std::span<const Value> values);

  uint64_t elements_seen() const { return elements_seen_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t sample_size() const { return reservoir_.size(); }

  /// The current reservoir contents (exposed for tests).
  const std::vector<Value>& contents() const { return reservoir_; }

  /// Finalizes into a PartitionSample: exhaustive if the stream never
  /// outgrew the reservoir, a reservoir sample otherwise. The footprint
  /// bound recorded is capacity * kSingletonFootprintBytes.
  PartitionSample Finalize();

 private:
  uint64_t capacity_;
  Pcg64 rng_;
  VitterSkip skip_;
  uint64_t elements_seen_ = 0;
  uint64_t next_insertion_index_ = 0;
  std::vector<Value> reservoir_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_RESERVOIR_SAMPLER_H_
