#include "src/core/sampler_state.h"

namespace sampwh {

void SaveRngState(const Pcg64& rng, BinaryWriter* writer) {
  const Pcg64::State state = rng.SaveState();
  writer->PutFixed64(state.state_hi);
  writer->PutFixed64(state.state_lo);
  writer->PutFixed64(state.inc_hi);
  writer->PutFixed64(state.inc_lo);
}

Status LoadRngState(BinaryReader* reader, Pcg64* rng) {
  Pcg64::State state;
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed64(&state.state_hi));
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed64(&state.state_lo));
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed64(&state.inc_hi));
  SAMPWH_RETURN_IF_ERROR(reader->GetFixed64(&state.inc_lo));
  *rng = Pcg64::FromState(state);
  return Status::OK();
}

void SaveVitterState(const std::optional<VitterSkip>& skip,
                     BinaryWriter* writer) {
  writer->PutVarint64(skip.has_value() ? 1 : 0);
  if (!skip.has_value()) return;
  const VitterSkip::State state = skip->SaveState();
  writer->PutVarint64(state.k);
  writer->PutVarint64(state.mode);
  writer->PutDouble(state.w);
}

Status LoadVitterState(BinaryReader* reader,
                       std::optional<VitterSkip>* skip) {
  uint64_t present;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&present));
  if (present == 0) {
    skip->reset();
    return Status::OK();
  }
  if (present != 1) return Status::Corruption("bad vitter presence flag");
  VitterSkip::State state;
  uint64_t mode;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&state.k));
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&mode));
  SAMPWH_RETURN_IF_ERROR(reader->GetDouble(&state.w));
  if (state.k < 1) return Status::Corruption("vitter state with k = 0");
  if (mode > 2) return Status::Corruption("bad vitter mode");
  state.mode = static_cast<uint8_t>(mode);
  skip->emplace(VitterSkip::FromState(state));
  return Status::OK();
}

void SaveValueBag(const std::vector<Value>& bag, BinaryWriter* writer) {
  writer->PutVarint64(bag.size());
  for (const Value v : bag) writer->PutVarintSigned64(v);
}

Status LoadValueBag(BinaryReader* reader, std::vector<Value>* bag) {
  uint64_t size;
  SAMPWH_RETURN_IF_ERROR(reader->GetVarint64(&size));
  // A value costs at least one encoded byte; reject sizes the remaining
  // input cannot possibly hold before reserving memory for them.
  if (size > reader->remaining()) {
    return Status::Corruption("bag size exceeds input");
  }
  bag->clear();
  bag->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    int64_t v;
    SAMPWH_RETURN_IF_ERROR(reader->GetVarintSigned64(&v));
    bag->push_back(v);
  }
  return Status::OK();
}

}  // namespace sampwh
