// Concise sampling (Gibbons & Matias, SIGMOD 1998), the paper's §3.3
// strawman: bounded footprint and compact storage, obtained by Bernoulli
// sampling whose rate 1/tau is lowered (with a purge of the current sample)
// whenever the footprint would exceed the bound.
//
// The paper proves this scheme is NOT uniform: because the footprint check
// operates on the *compact* representation, samples with fewer distinct
// values fit where equally sized samples with more distinct values do not,
// biasing the scheme toward low-diversity samples and under-representing
// rare values. The library therefore does not admit concise samples into
// the warehouse; the class exists as a baseline and for the empirical
// non-uniformity demonstration (tests + bench_uniformity_demo), which
// reproduces the paper's {a,a,a,b,b,b} counterexample.

#ifndef SAMPWH_CORE_CONCISE_SAMPLER_H_
#define SAMPWH_CORE_CONCISE_SAMPLER_H_

#include <cstdint>

#include "src/core/compact_histogram.h"
#include "src/core/types.h"
#include "src/util/random.h"

namespace sampwh {

class ConciseSampler {
 public:
  struct Options {
    /// F: bound on the compact-representation footprint, in bytes.
    uint64_t footprint_bound_bytes = 64 * 1024;
    /// Multiplicative threshold increase per purge round (tau' = tau *
    /// growth). Gibbons & Matias leave the schedule open; 1.1 mirrors their
    /// "raise by a small factor" guidance.
    double threshold_growth = 1.1;
  };

  ConciseSampler(const Options& options, Pcg64 rng);

  /// Processes one arriving data element: include with probability 1/tau,
  /// then purge (lowering the rate) while the footprint exceeds the bound.
  void Add(Value v);

  uint64_t elements_seen() const { return elements_seen_; }
  /// Current threshold tau (the sampling rate is 1/tau).
  double threshold() const { return tau_; }
  double sampling_rate() const { return 1.0 / tau_; }
  uint64_t sample_size() const { return hist_.total_count(); }
  uint64_t footprint_bytes() const { return hist_.footprint_bytes(); }

  /// The current concise sample. Deliberately NOT a PartitionSample: the
  /// scheme is not uniform, so its output must not enter merge paths that
  /// assume uniformity.
  const CompactHistogram& histogram() const { return hist_; }

 private:
  void PurgeWhileOverBound();

  Options options_;
  Pcg64 rng_;
  uint64_t elements_seen_ = 0;
  double tau_ = 1.0;
  uint64_t gap_ = 0;
  CompactHistogram hist_;
};

}  // namespace sampwh

#endif  // SAMPWH_CORE_CONCISE_SAMPLER_H_
