// Selection of the phase-2 Bernoulli sampling rate in Algorithm HB: the
// largest q such that a Bern(q) sample from a population of size N exceeds
// n_F data-element values with probability at most p. Provides the paper's
// closed-form normal approximation (Eq. 1) and the exact solution of
// f(q) = p obtained by bisection on the binomial tail — the two series
// whose relative difference is the paper's Figure 5.

#ifndef SAMPWH_CORE_QBOUND_H_
#define SAMPWH_CORE_QBOUND_H_

#include <cstdint>

namespace sampwh {

/// Eq. (1): q(N, p, n_F) via the central limit approximation
///   q ≈ [N(2 n_F + z_p^2) − z_p sqrt(N (N z_p^2 + 4 N n_F − 4 n_F^2))]
///       / (2 N (N + z_p^2)),
/// where z_p is the (1-p)-quantile of the standard normal. Requires
/// 0 < p <= 0.5. Returns 1.0 when n_F >= N (the whole population fits).
double ApproxBernoulliRate(uint64_t N, double p, uint64_t n_F);

/// The exact root of f(q) = P{Binomial(N, q) > n_F} = p, solved by
/// bisection on the (monotone increasing) regularized-incomplete-beta form
/// of the binomial tail. Returns 1.0 when n_F >= N.
double ExactBernoulliRate(uint64_t N, double p, uint64_t n_F);

}  // namespace sampwh

#endif  // SAMPWH_CORE_QBOUND_H_
