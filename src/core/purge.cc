#include "src/core/purge.h"

#include <utility>

#include "src/core/vitter.h"
#include "src/util/distributions.h"
#include "src/util/fenwick_tree.h"
#include "src/util/logging.h"

namespace sampwh {

void PurgeBernoulli(CompactHistogram* sample, double q, Pcg64& rng) {
  SAMPWH_CHECK(q >= 0.0 && q <= 1.0);
  if (q >= 1.0) return;
  CompactHistogram thinned;
  // Iterate in sorted order, not hash order: one binomial draw per entry
  // means the iteration order is part of the RNG stream, and hash order
  // depends on the histogram's insertion history — a histogram rebuilt
  // from its serialized (sorted) form would purge differently. Sorted
  // iteration keeps purges reproducible across save/restore and across
  // standard-library hash implementations.
  for (const auto& [v, n] : sample->SortedEntries()) {
    const uint64_t kept = SampleBinomial(rng, n, q);
    if (kept > 0) thinned.Insert(v, kept);
  }
  *sample = std::move(thinned);
}

CompactHistogram PurgeReservoirStreamed(
    const std::vector<const CompactHistogram*>& sources, uint64_t M,
    Pcg64& rng) {
  CompactHistogram result;
  if (M == 0) return result;

  // Flatten entry lists (sorted within each source for determinism).
  std::vector<std::pair<Value, uint64_t>> entries;
  for (const CompactHistogram* source : sources) {
    const auto sorted = source->SortedEntries();
    entries.insert(entries.end(), sorted.begin(), sorted.end());
  }

  FenwickTree new_counts(entries.size());
  VitterSkip skip(M);
  uint64_t b = 0;  // elements of the implicit expanded stream seen so far
  uint64_t L = 0;  // current reservoir occupancy
  uint64_t j = 1;  // 1-based stream index of the next insertion

  for (size_t i = 0; i < entries.size(); ++i) {
    b += entries[i].second;
    while (j <= b) {
      if (L == M) {
        // Evict a uniformly random victim: a random position in [1, M]
        // mapped through the prefix sums of the new counts.
        const uint64_t target = rng.UniformInt(M) + 1;
        const size_t victim = new_counts.FindByPrefixSum(target);
        new_counts.Add(victim, -1);
        --L;
      }
      new_counts.Add(i, +1);
      ++L;
      j = (j < M) ? j + 1 : skip.NextInsertionIndex(rng, j);
    }
  }

  for (size_t i = 0; i < entries.size(); ++i) {
    const uint64_t n = new_counts.Get(i);
    if (n > 0) result.Insert(entries[i].first, n);
  }
  return result;
}

void PurgeReservoir(CompactHistogram* sample, uint64_t M, Pcg64& rng) {
  if (sample->total_count() <= M) return;
  *sample = PurgeReservoirStreamed({sample}, M, rng);
}

CompactHistogram PurgeReservoirStreamedLinearScan(
    const std::vector<const CompactHistogram*>& sources, uint64_t M,
    Pcg64& rng) {
  CompactHistogram result;
  if (M == 0) return result;

  std::vector<std::pair<Value, uint64_t>> entries;
  for (const CompactHistogram* source : sources) {
    const auto sorted = source->SortedEntries();
    entries.insert(entries.end(), sorted.begin(), sorted.end());
  }

  std::vector<uint64_t> new_counts(entries.size(), 0);
  VitterSkip skip(M);
  uint64_t b = 0;
  uint64_t L = 0;
  uint64_t j = 1;

  for (size_t i = 0; i < entries.size(); ++i) {
    b += entries[i].second;
    while (j <= b) {
      if (L == M) {
        // Fig. 4 lines 8-9 verbatim: find the l with
        // sum_{gamma < l} n_gamma < v <= sum_{gamma <= l} n_gamma.
        uint64_t v = rng.UniformInt(M) + 1;
        size_t victim = 0;
        while (v > new_counts[victim]) {
          v -= new_counts[victim];
          ++victim;
        }
        --new_counts[victim];
        --L;
      }
      ++new_counts[i];
      ++L;
      j = (j < M) ? j + 1 : skip.NextInsertionIndex(rng, j);
    }
  }

  for (size_t i = 0; i < entries.size(); ++i) {
    if (new_counts[i] > 0) result.Insert(entries[i].first, new_counts[i]);
  }
  return result;
}

}  // namespace sampwh
