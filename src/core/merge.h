// Sample merging (paper §4.1-4.2, Figs. 6 and 8): given uniform samples S1,
// S2 of disjoint partitions D1, D2, produce a uniform sample of D1 ∪ D2
// while respecting the footprint bound.
//
//  * HBMerge (Fig. 6) — for Algorithm HB families. Exhaustive inputs are
//    streamed into a resumed HB sampler; two Bernoulli samples are thinned
//    to a common rate q(|D1|+|D2|, p, n_F) and joined, with a streamed
//    reservoir fallback when the joined footprint would break the bound;
//    anything involving a reservoir sample delegates to HRMerge.
//  * HRMerge (Fig. 8) — for simple random samples. Draws the left share
//    L from the hypergeometric law of Eq. (2) (Theorem 1), subsamples each
//    side with purgeReservoir, and joins. An optional AliasCache implements
//    the §4.2 alias-method optimization for repeated symmetric merges.
//  * MergeSamples — phase-based dispatch; MergeAll — serial left-fold or
//    balanced-tree multiway merging.
//
// All merge routines require the parent partitions to be disjoint; that
// contract is owned by the warehouse catalog.

#ifndef SAMPWH_CORE_MERGE_H_
#define SAMPWH_CORE_MERGE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/core/sample.h"
#include "src/util/alias_table.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace sampwh {

/// Caches alias tables for hypergeometric split distributions keyed by
/// (|D1|, |D2|, k). In a symmetric pairwise merge tree every level reuses
/// one distribution, so each table is built once and then sampled in O(1)
/// (paper §4.2). Thread-safe: merge nodes running concurrently on a
/// thread pool may share one cache.
class AliasCache {
 public:
  /// Draws L from Hypergeometric(n1, n2, k), building the table on first
  /// use for this key.
  uint64_t Sample(uint64_t n1, uint64_t n2, uint64_t k, Pcg64& rng);

  /// Number of distinct distributions cached so far.
  size_t size() const;

 private:
  struct Entry {
    uint64_t support_min;
    AliasTable table;
  };
  mutable std::mutex mu_;
  std::map<std::tuple<uint64_t, uint64_t, uint64_t>, Entry> tables_;
};

struct MergeOptions {
  /// F for the merged sample.
  uint64_t footprint_bound_bytes = 64 * 1024;
  /// p used when re-deriving a common Bernoulli rate in HBMerge.
  double exceedance_probability = 1e-3;
  /// Solve the rate equation exactly instead of via Eq. (1).
  bool use_exact_rate = false;
  /// When non-null, HRMerge draws its hypergeometric splits through this
  /// cache (§4.2 optimization); otherwise it uses direct inversion.
  AliasCache* alias_cache = nullptr;
  /// Forces every query down the uncached merge path even when the caller
  /// (e.g. a Warehouse with a merge memo configured) could reuse memoized
  /// merge-tree nodes. The memoized path derives each node's RNG stream
  /// from the node's partition-id set, so repeated identical queries return
  /// the identical sample; tests that need independent randomness across
  /// repeated queries (the uniformity property suite) set this flag.
  bool disable_memoization = false;
};

/// Stable fingerprint of every MergeOptions field that can change the
/// merged sample's bits for a fixed RNG stream: the footprint bound, the
/// exceedance target, exact-vs-approximate rate solving, and whether an
/// alias cache is wired in (alias-table sampling consumes the RNG
/// differently from direct inversion). Memoized merge-tree nodes are keyed
/// by this fingerprint so a cached node is never served to a query running
/// under different merge semantics.
uint64_t MergeOptionsFingerprint(const MergeOptions& options);

/// Draws L, the number of elements a size-k simple random sample of
/// D1 ∪ D2 takes from D1 (|D1| = n1, |D2| = n2): Eq. (2).
uint64_t SampleHypergeometricSplit(uint64_t n1, uint64_t n2, uint64_t k,
                                   Pcg64& rng, AliasCache* cache = nullptr);

/// Fig. 6. Accepts samples whose terminal phase is exhaustive or Bernoulli
/// from either Algorithm HB or SB; delegates to HRMerge when a reservoir
/// sample is involved.
Result<PartitionSample> HBMerge(const PartitionSample& s1,
                                const PartitionSample& s2,
                                const MergeOptions& options, Pcg64& rng);

/// Fig. 8 / Theorem 1. Both inputs must be exhaustive, reservoir, or
/// (conditionally viewed as simple random samples) Bernoulli.
Result<PartitionSample> HRMerge(const PartitionSample& s1,
                                const PartitionSample& s2,
                                const MergeOptions& options, Pcg64& rng);

/// Phase-based dispatch: HBMerge when both inputs are Bernoulli-family
/// (exhaustive counts as either), HRMerge as soon as a reservoir sample is
/// involved.
Result<PartitionSample> MergeSamples(const PartitionSample& s1,
                                     const PartitionSample& s2,
                                     const MergeOptions& options, Pcg64& rng);

/// Union of Bernoulli samples WITHOUT enforcing a footprint bound (§4.1
/// closing remark; this is Algorithm SB's merge). All inputs must be
/// Bernoulli (or exhaustive, which is Bern(1)); rates are first equalized
/// to the minimum input rate by purgeBernoulli, then the histograms are
/// joined.
Result<PartitionSample> UnionBernoulli(
    const std::vector<const PartitionSample*>& samples, Pcg64& rng);

enum class MergeStrategy {
  kLeftFold,       ///< the paper's serial pairwise merges
  kBalancedTree,   ///< pairwise tree; pairs AliasCache for symmetric inputs
  kParallelTree,   ///< balanced tree with independent nodes run on a pool
};

/// Merges any number of per-partition samples into one sample of the union
/// of their parents. Empty input is an error; a single input is returned
/// unchanged. kParallelTree without a pool degrades to kBalancedTree.
Result<PartitionSample> MergeAll(
    const std::vector<const PartitionSample*>& samples,
    const MergeOptions& options, Pcg64& rng,
    MergeStrategy strategy = MergeStrategy::kLeftFold);

/// Parallel k-way merge: reduces the samples level by level, scheduling
/// the pairwise HBMerge/HRMerge nodes of each level on `pool` (all levels
/// of the tree but the last have independent nodes). Every node draws from
/// its own RNG stream forked from `rng` before scheduling, so the merged
/// sample is deterministic for a given seed regardless of how the pool
/// interleaves the nodes — and identical across runs with any pool size.
/// Falls back to the serial balanced tree when `pool` is null. Safe to
/// call on a pool shared with other producers: completion is tracked
/// per-node, not via ThreadPool::Wait.
Result<PartitionSample> MergeAllParallel(
    const std::vector<const PartitionSample*>& samples,
    const MergeOptions& options, Pcg64& rng, ThreadPool* pool);

}  // namespace sampwh

#endif  // SAMPWH_CORE_MERGE_H_
