#include "src/stats/stratified.h"

#include <cmath>
#include <utility>

namespace sampwh {

Status StratifiedSample::AddStratum(PartitionSample sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  if (sample.size() == 0) {
    return Status::InvalidArgument(
        "stratum contributes no sample values; its stratum mean is "
        "undefined");
  }
  total_parent_size_ += sample.parent_size();
  strata_.push_back(std::move(sample));
  return Status::OK();
}

uint64_t StratifiedSample::total_sample_size() const {
  uint64_t total = 0;
  for (const PartitionSample& s : strata_) total += s.size();
  return total;
}

Result<Estimate> StratifiedSample::EstimateMean() const {
  if (strata_.empty()) {
    return Status::FailedPrecondition("no strata");
  }
  const double big_n = static_cast<double>(total_parent_size_);
  double mean = 0.0;
  double variance = 0.0;
  bool exact = true;
  for (const PartitionSample& s : strata_) {
    SAMPWH_ASSIGN_OR_RETURN(Estimate stratum_mean, sampwh::EstimateMean(s));
    const double weight = static_cast<double>(s.parent_size()) / big_n;
    mean += weight * stratum_mean.value;
    variance += weight * weight * stratum_mean.standard_error *
                stratum_mean.standard_error;
    exact = exact && stratum_mean.exact;
  }
  Estimate out;
  out.value = mean;
  out.standard_error = std::sqrt(variance);
  out.exact = exact;
  return out;
}

Result<Estimate> StratifiedSample::EstimateSum() const {
  SAMPWH_ASSIGN_OR_RETURN(Estimate mean, EstimateMean());
  const double big_n = static_cast<double>(total_parent_size_);
  Estimate out;
  out.value = big_n * mean.value;
  out.standard_error = big_n * mean.standard_error;
  out.exact = mean.exact;
  return out;
}

Result<Estimate> StratifiedSample::EstimateSelectivity(
    const std::function<bool(Value)>& pred) const {
  if (strata_.empty()) {
    return Status::FailedPrecondition("no strata");
  }
  const double big_n = static_cast<double>(total_parent_size_);
  double fraction = 0.0;
  double variance = 0.0;
  bool exact = true;
  for (const PartitionSample& s : strata_) {
    SAMPWH_ASSIGN_OR_RETURN(Estimate stratum_sel,
                            sampwh::EstimateSelectivity(s, pred));
    const double weight = static_cast<double>(s.parent_size()) / big_n;
    fraction += weight * stratum_sel.value;
    variance += weight * weight * stratum_sel.standard_error *
                stratum_sel.standard_error;
    exact = exact && stratum_sel.exact;
  }
  Estimate out;
  out.value = fraction;
  out.standard_error = std::sqrt(variance);
  out.exact = exact;
  return out;
}

Result<PartitionSample> StratifiedSample::ToUniformSample(
    const MergeOptions& options, Pcg64& rng) const {
  if (strata_.empty()) {
    return Status::FailedPrecondition("no strata");
  }
  std::vector<const PartitionSample*> pointers;
  pointers.reserve(strata_.size());
  for (const PartitionSample& s : strata_) pointers.push_back(&s);
  return MergeAll(pointers, options, rng);
}

}  // namespace sampwh
