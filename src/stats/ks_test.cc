#include "src/stats/ks_test.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace sampwh {

double KolmogorovQ(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        std::exp(-2.0 * static_cast<double>(j) * static_cast<double>(j) *
                 lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

namespace {

KsResult FinishKs(double d, uint64_t n) {
  KsResult result;
  result.statistic = d;
  result.n = n;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  // Stephens' small-sample correction.
  result.p_value =
      KolmogorovQ((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

}  // namespace

KsResult KsTestUniform(std::vector<double> values, double lo, double hi) {
  SAMPWH_CHECK(!values.empty());
  SAMPWH_CHECK(hi > lo);
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double d = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double f = (values[i] - lo) / (hi - lo);
    const double above = static_cast<double>(i + 1) / n - f;
    const double below = f - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }
  return FinishKs(d, values.size());
}

KsResult KsTestDiscreteUniform(std::vector<Value> values, Value lo,
                               Value hi) {
  SAMPWH_CHECK(!values.empty());
  SAMPWH_CHECK(hi >= lo);
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  const double range = static_cast<double>(hi - lo) + 1.0;
  double d = 0.0;
  for (size_t i = 0; i < values.size();) {
    // Process each distinct value once: the empirical CDF jumps at ties.
    size_t j = i;
    while (j < values.size() && values[j] == values[i]) ++j;
    const double ref_cdf =
        static_cast<double>(values[i] - lo + 1) / range;  // P{V <= v}
    const double ref_cdf_left =
        static_cast<double>(values[i] - lo) / range;  // P{V < v}
    const double emp_after = static_cast<double>(j) / n;
    const double emp_before = static_cast<double>(i) / n;
    d = std::max({d, std::fabs(emp_after - ref_cdf),
                  std::fabs(emp_before - ref_cdf_left)});
    i = j;
  }
  return FinishKs(d, values.size());
}

KsResult KsTestTwoSample(std::vector<double> a, std::vector<double> b) {
  SAMPWH_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  KsResult result;
  result.statistic = d;
  result.n = a.size() + b.size();
  const double ne = na * nb / (na + nb);
  const double sqrt_ne = std::sqrt(ne);
  result.p_value = KolmogorovQ((sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d);
  return result;
}

}  // namespace sampwh
