// Stratified samples (§4.1): "the samples produced by Algorithm HB can
// also be simply concatenated, yielding a stratified random sample of the
// concatenation of the parent data-set partitions. A similar observation
// applies to Algorithm HR." This module makes that observation usable: a
// StratifiedSample holds one uniform sample per stratum (partition) and
// provides the classical stratified expansion estimators, which are often
// sharper than estimates from a single merged uniform sample when the
// strata are internally homogeneous. §6 lists stratified sampling as
// future work; this is that extension.

#ifndef SAMPWH_STATS_STRATIFIED_H_
#define SAMPWH_STATS_STRATIFIED_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/merge.h"
#include "src/core/sample.h"
#include "src/stats/estimators.h"
#include "src/util/status.h"

namespace sampwh {

class StratifiedSample {
 public:
  StratifiedSample() = default;

  /// Adds one stratum. The sample must validate; strata must come from
  /// mutually disjoint partitions (the caller's/warehouse's contract).
  Status AddStratum(PartitionSample sample);

  size_t num_strata() const { return strata_.size(); }
  const PartitionSample& stratum(size_t i) const { return strata_[i]; }

  /// Sum of stratum parent sizes (the size of the concatenated data set).
  uint64_t total_parent_size() const { return total_parent_size_; }
  /// Sum of stratum sample sizes.
  uint64_t total_sample_size() const;

  /// Stratified estimator of the mean of the concatenated data set:
  /// sum_h (N_h / N) * ybar_h, with the textbook stratified variance
  /// (finite-population corrected within each stratum).
  Result<Estimate> EstimateMean() const;

  /// Stratified estimator of the total: N * stratified mean.
  Result<Estimate> EstimateSum() const;

  /// Stratified estimator of the fraction of elements satisfying `pred`.
  Result<Estimate> EstimateSelectivity(
      const std::function<bool(Value)>& pred) const;

  /// Collapses the strata into ONE uniform sample of the concatenation via
  /// the merge layer — the bridge back to §4's uniform world.
  Result<PartitionSample> ToUniformSample(const MergeOptions& options,
                                          Pcg64& rng) const;

 private:
  std::vector<PartitionSample> strata_;
  uint64_t total_parent_size_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_STATS_STRATIFIED_H_
