#include "src/stats/estimators.h"

#include <algorithm>
#include <cmath>

namespace sampwh {

namespace {

// Finite-population correction factor sqrt((N - n) / (N - 1)) for
// without-replacement sampling; ~1 for Bernoulli samples of large parents.
double Fpc(double big_n, double n) {
  if (big_n <= 1.0 || n >= big_n) return 0.0;
  return std::sqrt((big_n - n) / (big_n - 1.0));
}

}  // namespace

Result<Estimate> EstimateCount(const PartitionSample& sample,
                               const std::function<bool(Value)>& predicate) {
  SAMPWH_ASSIGN_OR_RETURN(Estimate sel,
                          EstimateSelectivity(sample, predicate));
  const double big_n = static_cast<double>(sample.parent_size());
  Estimate out;
  out.value = sel.value * big_n;
  out.standard_error = sel.standard_error * big_n;
  out.exact = sel.exact;
  return out;
}

Result<Estimate> EstimateSum(const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const uint64_t n = sample.size();
  if (n == 0) return Status::FailedPrecondition("empty sample");
  double sum = 0.0;
  sample.histogram().ForEach([&](Value v, uint64_t c) {
    sum += static_cast<double>(v) * static_cast<double>(c);
  });
  const double big_n = static_cast<double>(sample.parent_size());
  Estimate out;
  if (sample.phase() == SamplePhase::kExhaustive) {
    out.value = sum;
    out.exact = true;
    return out;
  }
  SAMPWH_ASSIGN_OR_RETURN(Estimate mean, EstimateMean(sample));
  out.value = big_n * mean.value;
  out.standard_error = big_n * mean.standard_error;
  return out;
}

Result<Estimate> EstimateMean(const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const uint64_t n = sample.size();
  if (n == 0) return Status::FailedPrecondition("empty sample");
  double sum = 0.0;
  double sum_sq = 0.0;
  sample.histogram().ForEach([&](Value v, uint64_t c) {
    const double x = static_cast<double>(v);
    const double cd = static_cast<double>(c);
    sum += x * cd;
    sum_sq += x * x * cd;
  });
  const double nd = static_cast<double>(n);
  const double mean = sum / nd;
  Estimate out;
  out.value = mean;
  if (sample.phase() == SamplePhase::kExhaustive) {
    out.exact = true;
    return out;
  }
  const double variance =
      n > 1 ? (sum_sq - nd * mean * mean) / (nd - 1.0) : 0.0;
  const double big_n = static_cast<double>(sample.parent_size());
  out.standard_error =
      std::sqrt(std::max(0.0, variance) / nd) * Fpc(big_n, nd);
  return out;
}

Result<Estimate> EstimateSelectivity(
    const PartitionSample& sample,
    const std::function<bool(Value)>& predicate) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const uint64_t n = sample.size();
  if (n == 0) return Status::FailedPrecondition("empty sample");
  uint64_t matching = 0;
  sample.histogram().ForEach([&](Value v, uint64_t c) {
    if (predicate(v)) matching += c;
  });
  const double nd = static_cast<double>(n);
  const double fraction = static_cast<double>(matching) / nd;
  Estimate out;
  out.value = fraction;
  if (sample.phase() == SamplePhase::kExhaustive) {
    out.exact = true;
    return out;
  }
  const double big_n = static_cast<double>(sample.parent_size());
  out.standard_error =
      std::sqrt(fraction * (1.0 - fraction) / nd) * Fpc(big_n, nd);
  return out;
}

Result<Estimate> EstimateFrequency(const PartitionSample& sample, Value v) {
  return EstimateCount(sample, [v](Value x) { return x == v; });
}

Result<Estimate> EstimateDistinctCount(const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const uint64_t d = sample.histogram().distinct_count();
  Estimate out;
  if (sample.phase() == SamplePhase::kExhaustive) {
    out.value = static_cast<double>(d);
    out.exact = true;
    return out;
  }
  uint64_t f1 = 0;
  uint64_t f2 = 0;
  sample.histogram().ForEach([&](Value, uint64_t c) {
    if (c == 1) ++f1;
    if (c == 2) ++f2;
  });
  // Chao (1984): a lower-bound-style correction for unseen values. When no
  // doubletons exist, use the bias-corrected variant f1 (f1 - 1) / 2.
  double correction;
  if (f2 > 0) {
    correction = static_cast<double>(f1) * static_cast<double>(f1) /
                 (2.0 * static_cast<double>(f2));
  } else {
    correction = static_cast<double>(f1) *
                 (static_cast<double>(f1) - 1.0) / 2.0;
  }
  out.value = static_cast<double>(d) + correction;
  // Cap at the parent size: no population has more distinct values than
  // elements.
  out.value =
      std::min(out.value, static_cast<double>(sample.parent_size()));
  // Heuristic SE: Chao's variance approximation is omitted; report the
  // correction magnitude as a crude spread indicator.
  out.standard_error = correction;
  return out;
}

Result<Estimate> EstimateDistinctCountGee(const PartitionSample& sample) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  const uint64_t n = sample.size();
  if (n == 0) return Status::FailedPrecondition("empty sample");
  const uint64_t d = sample.histogram().distinct_count();
  Estimate out;
  if (sample.phase() == SamplePhase::kExhaustive) {
    out.value = static_cast<double>(d);
    out.exact = true;
    return out;
  }
  uint64_t f1 = 0;
  sample.histogram().ForEach([&](Value, uint64_t c) {
    if (c == 1) ++f1;
  });
  const double big_n = static_cast<double>(sample.parent_size());
  const double scale = std::sqrt(big_n / static_cast<double>(n));
  // sqrt(N/n) f1 + (d - f1): singletons are scaled up (they stand in for
  // unseen values), repeated values are counted once.
  out.value = scale * static_cast<double>(f1) +
              static_cast<double>(d - f1);
  out.value = std::min(out.value, big_n);
  // Report the scaled-singleton mass as a crude spread indicator, in the
  // same spirit as EstimateDistinctCount.
  out.standard_error = (scale - 1.0) * static_cast<double>(f1);
  return out;
}

}  // namespace sampwh
