// Pearson chi-square goodness-of-fit testing, used by the uniformity
// harness to verify the library's central statistical claim — that every
// sampler and merge produces equally likely equal-size samples — and to
// reproduce the paper's §3.3 demonstration that concise sampling does not.

#ifndef SAMPWH_STATS_CHI_SQUARE_H_
#define SAMPWH_STATS_CHI_SQUARE_H_

#include <cstdint>
#include <vector>

namespace sampwh {

struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// P{chi2(df) >= statistic}: small values reject the null hypothesis
  /// that the observations follow the expected distribution.
  double p_value = 1.0;
  /// Total observations.
  uint64_t total = 0;
  /// Smallest expected cell count (the test is unreliable below ~5).
  double min_expected = 0.0;
};

/// Goodness of fit of `observed` counts against `expected_probabilities`
/// (must sum to ~1; same length as observed).
ChiSquareResult ChiSquareGoodnessOfFit(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected_probabilities);

/// Goodness of fit against the uniform distribution over all cells.
ChiSquareResult ChiSquareUniformFit(const std::vector<uint64_t>& observed);

}  // namespace sampwh

#endif  // SAMPWH_STATS_CHI_SQUARE_H_
