#include "src/stats/profile.h"

#include <algorithm>
#include <limits>
#include <set>

#include "src/stats/estimators.h"

namespace sampwh {

Result<ColumnProfile> ProfileColumn(const PartitionSample& sample,
                                    size_t max_heavy_hitters) {
  SAMPWH_RETURN_IF_ERROR(sample.Validate());
  if (sample.size() == 0) {
    return Status::FailedPrecondition("cannot profile an empty sample");
  }
  ColumnProfile profile;
  profile.parent_size = sample.parent_size();
  profile.sample_size = sample.size();
  profile.phase = sample.phase();
  profile.exact = sample.phase() == SamplePhase::kExhaustive;

  profile.min_value = std::numeric_limits<Value>::max();
  profile.max_value = std::numeric_limits<Value>::min();
  double sum = 0.0;
  uint64_t singletons = 0;
  std::vector<HeavyHitter> hitters;
  const double expansion =
      static_cast<double>(sample.parent_size()) /
      static_cast<double>(sample.size());
  sample.histogram().ForEach([&](Value v, uint64_t count) {
    profile.min_value = std::min(profile.min_value, v);
    profile.max_value = std::max(profile.max_value, v);
    sum += static_cast<double>(v) * static_cast<double>(count);
    if (count == 1) ++singletons;
    hitters.push_back(HeavyHitter{
        v, count, static_cast<double>(count) * expansion});
  });
  profile.mean = sum / static_cast<double>(sample.size());
  profile.distinct_in_sample = sample.histogram().distinct_count();
  profile.singleton_fraction =
      static_cast<double>(singletons) /
      static_cast<double>(profile.distinct_in_sample);

  SAMPWH_ASSIGN_OR_RETURN(Estimate distinct, EstimateDistinctCount(sample));
  profile.estimated_distinct = distinct.value;
  profile.key_likelihood =
      profile.parent_size == 0
          ? 0.0
          : distinct.value / static_cast<double>(profile.parent_size);

  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.sample_count != b.sample_count) {
                return a.sample_count > b.sample_count;
              }
              return a.value < b.value;
            });
  if (hitters.size() > max_heavy_hitters) {
    hitters.resize(max_heavy_hitters);
  }
  profile.heavy_hitters = std::move(hitters);
  return profile;
}

namespace {

// Intersection and per-side distinct counts of two sample domains.
void DomainCounts(const PartitionSample& a, const PartitionSample& b,
                  uint64_t* a_distinct, uint64_t* b_distinct,
                  uint64_t* intersection) {
  std::set<Value> domain_a;
  a.histogram().ForEach([&](Value v, uint64_t) { domain_a.insert(v); });
  *a_distinct = domain_a.size();
  *b_distinct = 0;
  *intersection = 0;
  b.histogram().ForEach([&](Value v, uint64_t) {
    ++*b_distinct;
    if (domain_a.contains(v)) ++*intersection;
  });
}

}  // namespace

double SampleDomainOverlap(const PartitionSample& a,
                           const PartitionSample& b) {
  uint64_t a_distinct;
  uint64_t b_distinct;
  uint64_t intersection;
  DomainCounts(a, b, &a_distinct, &b_distinct, &intersection);
  const uint64_t union_size = a_distinct + b_distinct - intersection;
  if (union_size == 0) return 0.0;
  return static_cast<double>(intersection) /
         static_cast<double>(union_size);
}

double SampleDomainContainment(const PartitionSample& a,
                               const PartitionSample& b) {
  uint64_t a_distinct;
  uint64_t b_distinct;
  uint64_t intersection;
  DomainCounts(a, b, &a_distinct, &b_distinct, &intersection);
  if (a_distinct == 0) return 0.0;
  return static_cast<double>(intersection) /
         static_cast<double>(a_distinct);
}

}  // namespace sampwh
