// Column profiling over warehouse samples — the metadata-discovery
// consumer the paper's introduction motivates (BHUNT, CORDS, data
// integration): summarize a data set from its bounded-footprint sample
// alone, and compare two columns' profiles for join-path evidence.

#ifndef SAMPWH_STATS_PROFILE_H_
#define SAMPWH_STATS_PROFILE_H_

#include <cstdint>
#include <vector>

#include "src/core/sample.h"
#include "src/util/status.h"

namespace sampwh {

/// A (value, estimated parent frequency) heavy hitter.
struct HeavyHitter {
  Value value = 0;
  uint64_t sample_count = 0;
  double estimated_frequency = 0.0;  ///< estimated count in the parent
};

/// Sample-derived summary of one data set (column).
struct ColumnProfile {
  uint64_t parent_size = 0;
  uint64_t sample_size = 0;
  SamplePhase phase = SamplePhase::kExhaustive;
  /// Exact when the sample is exhaustive.
  bool exact = false;

  Value min_value = 0;
  Value max_value = 0;
  double mean = 0.0;

  /// Distinct values observed in the sample (a lower bound for the parent).
  uint64_t distinct_in_sample = 0;
  /// Chao-corrected estimate of the parent's distinct count.
  double estimated_distinct = 0.0;
  /// estimated_distinct / parent_size: ~1 flags a key/unique column.
  double key_likelihood = 0.0;
  /// Fraction of sampled values whose sample count is 1; high values
  /// indicate a wide, key-like domain, low values a categorical column.
  double singleton_fraction = 0.0;

  /// Most frequent values, by sample count, descending.
  std::vector<HeavyHitter> heavy_hitters;
};

/// Builds a profile from a (uniform) partition sample. `max_heavy_hitters`
/// caps the heavy-hitter list.
Result<ColumnProfile> ProfileColumn(const PartitionSample& sample,
                                    size_t max_heavy_hitters = 10);

/// Jaccard overlap of the distinct values observed in two samples:
/// |A ∩ B| / |A ∪ B|. High overlap between columns sampled over a shared
/// (dictionary) domain is join-path evidence.
double SampleDomainOverlap(const PartitionSample& a,
                           const PartitionSample& b);

/// Containment of a's sampled domain in b's: |A ∩ B| / |A|. Asymmetric:
/// foreign keys are contained in the primary key's domain but not vice
/// versa.
double SampleDomainContainment(const PartitionSample& a,
                               const PartitionSample& b);

}  // namespace sampwh

#endif  // SAMPWH_STATS_PROFILE_H_
