#include "src/stats/chi_square.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"
#include "src/util/special_functions.h"

namespace sampwh {

ChiSquareResult ChiSquareGoodnessOfFit(
    const std::vector<uint64_t>& observed,
    const std::vector<double>& expected_probabilities) {
  SAMPWH_CHECK(observed.size() == expected_probabilities.size());
  SAMPWH_CHECK(observed.size() >= 2);
  ChiSquareResult result;
  for (const uint64_t o : observed) result.total += o;
  SAMPWH_CHECK(result.total > 0);

  result.min_expected = std::numeric_limits<double>::infinity();
  const double total = static_cast<double>(result.total);
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probabilities[i] * total;
    SAMPWH_CHECK(expected > 0.0);
    result.min_expected = std::min(result.min_expected, expected);
    const double diff = static_cast<double>(observed[i]) - expected;
    result.statistic += diff * diff / expected;
  }
  result.degrees_of_freedom = static_cast<double>(observed.size()) - 1.0;
  result.p_value =
      1.0 - ChiSquareCdf(result.statistic, result.degrees_of_freedom);
  return result;
}

ChiSquareResult ChiSquareUniformFit(const std::vector<uint64_t>& observed) {
  const std::vector<double> uniform(
      observed.size(), 1.0 / static_cast<double>(observed.size()));
  return ChiSquareGoodnessOfFit(observed, uniform);
}

}  // namespace sampwh
