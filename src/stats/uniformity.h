// Empirical uniformity verification (the library's central statistical
// claim, §2 requirement 1, and the §3.3 counterexample).
//
// A sampling scheme is uniform iff, conditioned on the sample size k, every
// size-k subset of the population is equally likely. For a small population
// of DISTINCT values, the produced value set identifies the element subset
// exactly, so the harness can enumerate all C(n, k) subsets, tally how
// often each one is produced over many independent runs, and chi-square
// each size class against the uniform law.
//
// For populations WITH duplicates (the paper's {a,a,a,b,b,b} example),
// element subsets are not observable; the harness instead tallies compact
// histogram outcomes, which is exactly the granularity at which the paper
// proves concise sampling non-uniform (outcome H3 = {(a,2),b} must occur
// nine times as often as H1 = {(a,3)} under any uniform scheme, but concise
// sampling never produces it).

#ifndef SAMPWH_STATS_UNIFORMITY_H_
#define SAMPWH_STATS_UNIFORMITY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/core/types.h"
#include "src/stats/chi_square.h"
#include "src/util/random.h"

namespace sampwh {

/// Ranks size-k subsets of {0, ..., n-1} with the combinatorial number
/// system: a bijection between sorted index tuples and [0, C(n, k)).
class SubsetRanker {
 public:
  /// Supports subsets of a ground set of size n (kept small: the table is
  /// O(n^2) and ranks must fit in 64 bits).
  explicit SubsetRanker(uint32_t n);

  uint32_t n() const { return n_; }

  /// C(m, k) from the precomputed table, m <= n.
  uint64_t Choose(uint32_t m, uint32_t k) const;

  /// Rank of a strictly increasing index tuple within its size class.
  uint64_t Rank(const std::vector<uint32_t>& sorted_indices) const;

  /// Inverse of Rank.
  std::vector<uint32_t> Unrank(uint64_t rank, uint32_t k) const;

 private:
  uint32_t n_;
  std::vector<std::vector<uint64_t>> choose_;
};

/// One trial of a sampling experiment: sample the (implicit, fixed)
/// population and return the sampled values.
using SampleTrialFn = std::function<std::vector<Value>(Pcg64&)>;

/// Chi-square verdict for one sample-size class.
struct SizeClassResult {
  uint64_t trials = 0;       ///< trials that produced this size
  uint64_t num_subsets = 0;  ///< C(n, k)
  bool tested = false;       ///< false when expected counts were too small
  ChiSquareResult chi_square;
};

struct UniformityReport {
  uint64_t total_trials = 0;
  std::map<uint64_t, SizeClassResult> by_size;

  /// Smallest p-value across all tested size classes (1.0 if none tested).
  double MinPValue() const;
  /// Number of size classes that were actually chi-square tested.
  uint64_t TestedClasses() const;
};

/// Runs `trials` independent trials of `sample_fn` against a population of
/// DISTINCT values, maps each returned value set to its subset rank, and
/// chi-squares every size class whose expected per-cell count reaches
/// `min_expected_per_cell`.
UniformityReport RunSubsetUniformityExperiment(
    const std::vector<Value>& distinct_population, uint64_t trials,
    const SampleTrialFn& sample_fn, Pcg64& rng,
    double min_expected_per_cell = 5.0);

/// Outcome tally keyed by the sorted compact histogram of the returned
/// sample — the duplicate-friendly granularity of the §3.3 example.
using HistogramOutcome = std::vector<std::pair<Value, uint64_t>>;

std::map<HistogramOutcome, uint64_t> TallyHistogramOutcomes(
    uint64_t trials, const SampleTrialFn& sample_fn, Pcg64& rng);

}  // namespace sampwh

#endif  // SAMPWH_STATS_UNIFORMITY_H_
