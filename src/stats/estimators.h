// Approximate-query estimators over partition samples — the consumer side
// of the sample warehouse (§1: "quick approximate answers to analytical
// queries"). All estimators exploit the sample metadata (parent size,
// phase, rate); for uniform samples the standard expansion estimators are
// unbiased.

#ifndef SAMPWH_STATS_ESTIMATORS_H_
#define SAMPWH_STATS_ESTIMATORS_H_

#include <cstdint>
#include <functional>

#include "src/core/sample.h"
#include "src/util/status.h"

namespace sampwh {

/// A point estimate with a large-sample standard error (0 when the sample
/// is exhaustive, in which case the estimate is exact).
struct Estimate {
  double value = 0.0;
  double standard_error = 0.0;
  bool exact = false;
};

/// Estimated number of parent elements satisfying `predicate`
/// (expansion estimator N * s/n with finite-population-corrected SE).
Result<Estimate> EstimateCount(const PartitionSample& sample,
                               const std::function<bool(Value)>& predicate);

/// Estimated sum of all parent values.
Result<Estimate> EstimateSum(const PartitionSample& sample);

/// Estimated mean of the parent values (sample mean, SE with fpc).
Result<Estimate> EstimateMean(const PartitionSample& sample);

/// Estimated fraction of parent elements satisfying `predicate`.
Result<Estimate> EstimateSelectivity(
    const PartitionSample& sample,
    const std::function<bool(Value)>& predicate);

/// Estimated number of parent elements equal to `v` (frequency estimate).
Result<Estimate> EstimateFrequency(const PartitionSample& sample, Value v);

/// Estimated number of distinct values in the parent. `d` alone is a lower
/// bound; the Chao (1984) correction d + f1^2 / (2 f2) is returned when
/// applicable. Exact for exhaustive samples. Heuristic, documented as such.
Result<Estimate> EstimateDistinctCount(const PartitionSample& sample);

/// GEE (Charikar et al. 2000): D_hat = sqrt(N/n) * f1 + sum_{j>=2} f_j,
/// the guaranteed-error estimator for uniform samples — its ratio error is
/// within O(sqrt(N/n)) of the best achievable by ANY sample-based distinct
/// estimator. Exact for exhaustive samples. Complements the Chao estimate:
/// GEE is pessimistic-robust, Chao adapts to the observed collision
/// structure.
Result<Estimate> EstimateDistinctCountGee(const PartitionSample& sample);

}  // namespace sampwh

#endif  // SAMPWH_STATS_ESTIMATORS_H_
