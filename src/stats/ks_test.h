// One-sample Kolmogorov-Smirnov test against the discrete-uniform and
// continuous-uniform laws, plus a two-sample variant. Complements the
// chi-square harness: KS is sensitive to distributional drift across the
// value range (e.g. a sampler that under-represents large values), which a
// coarse chi-square on subsets can miss.

#ifndef SAMPWH_STATS_KS_TEST_H_
#define SAMPWH_STATS_KS_TEST_H_

#include <vector>

#include "src/core/types.h"

namespace sampwh {

struct KsResult {
  /// The KS statistic D = sup |F_empirical - F_reference|.
  double statistic = 0.0;
  /// Asymptotic p-value via the Kolmogorov distribution.
  double p_value = 1.0;
  uint64_t n = 0;
};

/// Asymptotic Kolmogorov complementary CDF
/// Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
double KolmogorovQ(double lambda);

/// Tests `values` (continuous, any order) against U(lo, hi).
KsResult KsTestUniform(std::vector<double> values, double lo, double hi);

/// Tests integer sample values against the discrete uniform law on
/// [lo, hi]; ties are handled by comparing against the right-continuous
/// reference CDF, which is conservative.
KsResult KsTestDiscreteUniform(std::vector<Value> values, Value lo, Value hi);

/// Two-sample KS test (e.g. sampler output vs. a reference sampler).
KsResult KsTestTwoSample(std::vector<double> a, std::vector<double> b);

}  // namespace sampwh

#endif  // SAMPWH_STATS_KS_TEST_H_
