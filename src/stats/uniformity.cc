#include "src/stats/uniformity.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/logging.h"

namespace sampwh {

SubsetRanker::SubsetRanker(uint32_t n) : n_(n) {
  SAMPWH_CHECK(n >= 1 && n <= 62);  // ranks must fit comfortably in 64 bits
  choose_.assign(n + 1, std::vector<uint64_t>(n + 1, 0));
  for (uint32_t m = 0; m <= n; ++m) {
    choose_[m][0] = 1;
    for (uint32_t k = 1; k <= m; ++k) {
      choose_[m][k] =
          choose_[m - 1][k - 1] + (k <= m - 1 ? choose_[m - 1][k] : 0);
    }
  }
}

uint64_t SubsetRanker::Choose(uint32_t m, uint32_t k) const {
  if (k > m || m > n_) return 0;
  return choose_[m][k];
}

uint64_t SubsetRanker::Rank(
    const std::vector<uint32_t>& sorted_indices) const {
  // Combinatorial number system: rank = sum_i C(c_i, i + 1) for the sorted
  // indices c_0 < c_1 < ... < c_{k-1}.
  uint64_t rank = 0;
  for (size_t i = 0; i < sorted_indices.size(); ++i) {
    SAMPWH_DCHECK(sorted_indices[i] < n_);
    rank += Choose(sorted_indices[i], static_cast<uint32_t>(i) + 1);
  }
  return rank;
}

std::vector<uint32_t> SubsetRanker::Unrank(uint64_t rank, uint32_t k) const {
  std::vector<uint32_t> indices(k);
  uint64_t remaining = rank;
  for (uint32_t i = k; i >= 1; --i) {
    // Largest c with C(c, i) <= remaining.
    uint32_t c = i - 1;
    while (c + 1 < n_ && Choose(c + 1, i) <= remaining) ++c;
    indices[i - 1] = c;
    remaining -= Choose(c, i);
  }
  return indices;
}

double UniformityReport::MinPValue() const {
  double min_p = 1.0;
  for (const auto& [k, result] : by_size) {
    if (result.tested) min_p = std::min(min_p, result.chi_square.p_value);
  }
  return min_p;
}

uint64_t UniformityReport::TestedClasses() const {
  uint64_t tested = 0;
  for (const auto& [k, result] : by_size) {
    if (result.tested) ++tested;
  }
  return tested;
}

UniformityReport RunSubsetUniformityExperiment(
    const std::vector<Value>& distinct_population, uint64_t trials,
    const SampleTrialFn& sample_fn, Pcg64& rng,
    double min_expected_per_cell) {
  const uint32_t n = static_cast<uint32_t>(distinct_population.size());
  SubsetRanker ranker(n);
  std::unordered_map<Value, uint32_t> index_of;
  for (uint32_t i = 0; i < n; ++i) {
    const bool inserted =
        index_of.emplace(distinct_population[i], i).second;
    SAMPWH_CHECK(inserted);  // population must be distinct
  }

  // counts[k][rank]
  std::map<uint64_t, std::vector<uint64_t>> counts;
  for (uint64_t t = 0; t < trials; ++t) {
    std::vector<Value> sampled = sample_fn(rng);
    std::vector<uint32_t> indices;
    indices.reserve(sampled.size());
    for (const Value v : sampled) {
      const auto it = index_of.find(v);
      SAMPWH_CHECK(it != index_of.end());
      indices.push_back(it->second);
    }
    std::sort(indices.begin(), indices.end());
    SAMPWH_CHECK(std::adjacent_find(indices.begin(), indices.end()) ==
                 indices.end());  // distinct population => sample is a set
    const uint64_t k = indices.size();
    auto& cells = counts[k];
    if (cells.empty()) cells.assign(ranker.Choose(n, k), 0);
    ++cells[ranker.Rank(indices)];
  }

  UniformityReport report;
  report.total_trials = trials;
  for (auto& [k, cells] : counts) {
    SizeClassResult result;
    result.num_subsets = cells.size();
    for (const uint64_t c : cells) result.trials += c;
    // Size classes 0 and n have a single subset: nothing to test.
    if (cells.size() >= 2 &&
        static_cast<double>(result.trials) >=
            min_expected_per_cell * static_cast<double>(cells.size())) {
      result.chi_square = ChiSquareUniformFit(cells);
      result.tested = true;
    }
    report.by_size[k] = result;
  }
  return report;
}

std::map<HistogramOutcome, uint64_t> TallyHistogramOutcomes(
    uint64_t trials, const SampleTrialFn& sample_fn, Pcg64& rng) {
  std::map<HistogramOutcome, uint64_t> tally;
  for (uint64_t t = 0; t < trials; ++t) {
    std::vector<Value> sampled = sample_fn(rng);
    std::sort(sampled.begin(), sampled.end());
    HistogramOutcome outcome;
    for (size_t i = 0; i < sampled.size();) {
      size_t j = i;
      while (j < sampled.size() && sampled[j] == sampled[i]) ++j;
      outcome.emplace_back(sampled[i], j - i);
      i = j;
    }
    ++tally[outcome];
  }
  return tally;
}

}  // namespace sampwh
