#include "src/util/sharded_cache.h"

namespace sampwh {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  insertions += other.insertions;
  evictions += other.evictions;
  invalidations += other.invalidations;
  entries += other.entries;
  bytes += other.bytes;
  return *this;
}

namespace cache_internal {

size_t NormalizeShardCount(size_t requested) {
  if (requested == 0) requested = 1;
  if (requested > 256) requested = 256;
  size_t shards = 1;
  while (shards < requested) shards <<= 1;
  return shards;
}

uint64_t MixHash(uint64_t h) {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace cache_internal

}  // namespace sampwh
