// Lightweight assertion macros. SAMPWH_CHECK fires in all build types
// (invariant violations in a sampling warehouse silently corrupt statistics,
// which is worse than crashing); SAMPWH_DCHECK compiles out in release.

#ifndef SAMPWH_UTIL_LOGGING_H_
#define SAMPWH_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace sampwh::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SAMPWH_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace sampwh::internal

#define SAMPWH_CHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) {                                                \
      ::sampwh::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define SAMPWH_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SAMPWH_DCHECK(expr) SAMPWH_CHECK(expr)
#endif

#endif  // SAMPWH_UTIL_LOGGING_H_
