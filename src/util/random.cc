#include "src/util/random.h"

namespace sampwh {

namespace {
constexpr unsigned __int128 kPcgMultiplier =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;
}  // namespace

Pcg64::Pcg64(uint64_t seed, uint64_t stream) {
  SplitMix64 mix(seed);
  u128 init_state =
      (static_cast<u128>(mix.Next()) << 64) | mix.Next();
  SplitMix64 mix_stream(stream ^ 0xda3e39cb94b95bdbULL);
  u128 init_seq =
      (static_cast<u128>(mix_stream.Next()) << 64) | mix_stream.Next();
  inc_ = (init_seq << 1) | 1;  // must be odd
  state_ = 0;
  NextUint64();
  state_ += init_state;
  NextUint64();
}

uint64_t Pcg64::NextUint64() {
  state_ = state_ * kPcgMultiplier + inc_;
  // XSL-RR output: xor-fold the 128-bit state to 64 bits, then rotate by the
  // top 6 bits.
  uint64_t xored =
      static_cast<uint64_t>(state_ >> 64) ^ static_cast<uint64_t>(state_);
  unsigned rot = static_cast<unsigned>(state_ >> 122);
  return (xored >> rot) | (xored << ((64 - rot) & 63));
}

uint64_t Pcg64::UniformInt(uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire 2018: multiply-shift with rejection of the biased low region.
  uint64_t x = NextUint64();
  u128 m = static_cast<u128>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<u128>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

Pcg64 Pcg64::Fork(uint64_t salt) {
  uint64_t child_seed = NextUint64();
  return Pcg64(child_seed, salt ^ 0x9e3779b97f4a7c15ULL);
}

Pcg64::State Pcg64::SaveState() const {
  State s;
  s.state_hi = static_cast<uint64_t>(state_ >> 64);
  s.state_lo = static_cast<uint64_t>(state_);
  s.inc_hi = static_cast<uint64_t>(inc_ >> 64);
  s.inc_lo = static_cast<uint64_t>(inc_);
  return s;
}

Pcg64 Pcg64::FromState(const State& state) {
  Pcg64 rng(0);
  rng.state_ =
      (static_cast<u128>(state.state_hi) << 64) | state.state_lo;
  rng.inc_ =
      ((static_cast<u128>(state.inc_hi) << 64) | state.inc_lo) | 1;
  return rng;
}

}  // namespace sampwh
