// Status / Result error handling, following the RocksDB idiom: library
// functions never throw across API boundaries; fallible operations return a
// Status (or a Result<T> carrying a value on success).

#ifndef SAMPWH_UTIL_STATUS_H_
#define SAMPWH_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace sampwh {

/// Error taxonomy for the library. Kept deliberately small; the message
/// string carries operation-specific detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIOError = 7,
  kInternal = 8,
  /// A per-tenant quota (bytes, partitions, datasets) would be exceeded.
  /// The operation was rejected before any state changed.
  kResourceExhausted = 9,
  /// The caller's deadline passed before the operation completed. Whatever
  /// work had started was abandoned cooperatively; no partial state is
  /// observable.
  kDeadlineExceeded = 10,
  /// The target is temporarily unreachable or refusing work (node down,
  /// circuit breaker open, server draining). Retrying later may succeed.
  kUnavailable = 11,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation);
/// error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status plus, on success, a value of type T. Access to the value when
/// !ok() is a programming error (asserted in debug builds). T need not be
/// default-constructible.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK status: failure. Constructing from an OK status
  /// without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status with no value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sampwh

/// Propagates a non-OK Status to the caller. `expr` is evaluated once.
#define SAMPWH_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::sampwh::Status _sampwh_status = (expr);         \
    if (!_sampwh_status.ok()) return _sampwh_status;  \
  } while (0)

#define SAMPWH_INTERNAL_CONCAT_IMPL(a, b) a##b
#define SAMPWH_INTERNAL_CONCAT(a, b) SAMPWH_INTERNAL_CONCAT_IMPL(a, b)

#define SAMPWH_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define SAMPWH_ASSIGN_OR_RETURN(lhs, expr)                                 \
  SAMPWH_INTERNAL_ASSIGN_OR_RETURN(                                        \
      SAMPWH_INTERNAL_CONCAT(_sampwh_result_, __COUNTER__), lhs, expr)

#endif  // SAMPWH_UTIL_STATUS_H_
