#include "src/util/serialization.h"

#include <array>
#include <cstdio>
#include <cstring>

namespace sampwh {

void BinaryWriter::PutFixed32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  buffer_.append(buf, 4);
}

void BinaryWriter::PutFixed64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  buffer_.append(buf, 8);
}

void BinaryWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buffer_.push_back(static_cast<char>(v));
}

void BinaryWriter::PutVarintSigned64(int64_t v) {
  // Zig-zag: map sign bit into bit 0 so small magnitudes stay short.
  const uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(encoded);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutVarint64(s.size());
  buffer_.append(s.data(), s.size());
}

void BinaryWriter::PutRaw(const void* data, size_t n) {
  buffer_.append(static_cast<const char*>(data), n);
}

Status BinaryReader::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return Status::OutOfRange("truncated fixed32");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status BinaryReader::GetFixed64(uint64_t* v) {
  if (remaining() < 8) return Status::OutOfRange("truncated fixed64");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status BinaryReader::GetVarint64(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && byte > 1) {
      return Status::Corruption("varint64 overflow");
    }
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return Status::OK();
    }
    shift += 7;
    if (shift > 63) return Status::Corruption("varint64 too long");
  }
  return Status::OutOfRange("truncated varint64");
}

Status BinaryReader::GetVarintSigned64(int64_t* v) {
  uint64_t encoded;
  SAMPWH_RETURN_IF_ERROR(GetVarint64(&encoded));
  *v = static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
  return Status::OK();
}

Status BinaryReader::GetDouble(double* v) {
  uint64_t bits;
  SAMPWH_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status BinaryReader::GetString(std::string* s) {
  uint64_t n;
  SAMPWH_RETURN_IF_ERROR(GetVarint64(&n));
  if (remaining() < n) return Status::OutOfRange("truncated string body");
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

uint32_t Crc32(std::string_view data) {
  // Table generated once; the reflected 0xEDB88320 polynomial.
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapSampleEnvelope(std::string_view payload) {
  BinaryWriter writer;
  writer.PutFixed32(kSampleEnvelopeMagic);
  writer.PutFixed32(kSampleEnvelopeVersion);
  writer.PutFixed64(payload.size());
  writer.PutFixed32(Crc32(payload));
  writer.PutRaw(payload.data(), payload.size());
  return writer.Release();
}

bool HasSampleEnvelope(std::string_view file) {
  uint32_t magic;
  BinaryReader reader(file);
  return reader.GetFixed32(&magic).ok() && magic == kSampleEnvelopeMagic;
}

Status UnwrapSampleEnvelope(std::string_view file, std::string_view* payload) {
  BinaryReader reader(file);
  uint32_t magic;
  if (!reader.GetFixed32(&magic).ok() || magic != kSampleEnvelopeMagic) {
    return Status::Corruption("bad sample envelope magic");
  }
  uint32_t version;
  uint64_t payload_size;
  uint32_t crc;
  if (!reader.GetFixed32(&version).ok() ||
      !reader.GetFixed64(&payload_size).ok() || !reader.GetFixed32(&crc).ok()) {
    return Status::Corruption("truncated sample envelope header");
  }
  if (version != kSampleEnvelopeVersion) {
    return Status::Corruption("unsupported sample envelope version " +
                              std::to_string(version));
  }
  if (reader.remaining() != payload_size) {
    return Status::Corruption("sample envelope payload size mismatch (torn "
                              "or truncated file)");
  }
  const std::string_view body = file.substr(kSampleEnvelopeHeaderBytes);
  if (Crc32(body) != crc) {
    return Status::Corruption("sample payload CRC mismatch");
  }
  *payload = body;
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool flush_ok = (std::fflush(f) == 0);
  std::fclose(f);
  if (written != contents.size() || !flush_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed for " + path);
  }
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* contents) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  contents->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents->append(buf, n);
  }
  const bool error = std::ferror(f) != 0;
  std::fclose(f);
  if (error) return Status::IOError("read failed for " + path);
  return Status::OK();
}

}  // namespace sampwh
