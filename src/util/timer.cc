#include "src/util/timer.h"

#include <ctime>

namespace sampwh {

namespace {
int64_t NowNs(clockid_t clock) {
  timespec ts;
  clock_gettime(clock, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}
}  // namespace

void WallTimer::Restart() { start_ns_ = NowNs(CLOCK_MONOTONIC); }

double WallTimer::ElapsedSeconds() const {
  return static_cast<double>(NowNs(CLOCK_MONOTONIC) - start_ns_) * 1e-9;
}

void CpuTimer::Restart() { start_ns_ = NowNs(CLOCK_PROCESS_CPUTIME_ID); }

double CpuTimer::ElapsedSeconds() const {
  return static_cast<double>(NowNs(CLOCK_PROCESS_CPUTIME_ID) - start_ns_) *
         1e-9;
}

}  // namespace sampwh
