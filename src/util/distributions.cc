#include "src/util/distributions.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/special_functions.h"

namespace sampwh {

namespace {

// Exact CDF inversion using the pmf recurrence
//   pmf(k+1) = pmf(k) * (n - k) / (k + 1) * p / (1 - p).
// Intended for n * p small enough that pmf(0) does not underflow.
uint64_t BinomialInversion(Pcg64& rng, uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  double pmf = std::exp(static_cast<double>(n) * std::log(q));
  double cdf = pmf;
  double u = rng.NextDouble();
  uint64_t k = 0;
  while (u > cdf && k < n) {
    pmf *= s * static_cast<double>(n - k) / static_cast<double>(k + 1);
    cdf += pmf;
    ++k;
    // Numerical guard: if pmf has decayed to zero the remaining tail mass
    // is below double precision; stop.
    if (pmf <= 0.0) break;
  }
  return k;
}

// BTRS: binomial transformed rejection with squeeze (Hörmann 1993).
// Requires p <= 0.5 and n * p >= 10.
uint64_t BinomialBtrs(Pcg64& rng, uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double spq = std::sqrt(nd * p * (1.0 - p));
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double vr = 0.92 - 4.2 / b;
  const double urvr = 0.86 * vr;
  const double m = std::floor((nd + 1.0) * p);
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double lpq = std::log(p / (1.0 - p));
  const double h = LogFactorial(static_cast<uint64_t>(m)) +
                   LogFactorial(static_cast<uint64_t>(nd - m));

  for (;;) {
    double v = rng.NextDouble();
    double u;
    if (v <= urvr) {
      u = v / vr - 0.43;
      const double us = 0.5 - std::fabs(u);
      return static_cast<uint64_t>(
          std::floor((2.0 * a / us + b) * u + c));
    }
    if (v >= vr) {
      u = rng.NextDouble() - 0.5;
    } else {
      u = v / vr - 0.93;
      u = (u < 0.0 ? -0.5 : 0.5) - u;
      v = rng.NextDouble() * vr;
    }
    const double us = 0.5 - std::fabs(u);
    if (us < 0.013 && v > us) continue;  // squeeze reject
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    v = v * alpha / (a / (us * us) + b);
    const uint64_t k = static_cast<uint64_t>(kd);
    if (std::log(v) <=
        h - LogFactorial(k) - LogFactorial(n - k) + (kd - m) * lpq) {
      return k;
    }
  }
}

}  // namespace

uint64_t SampleBinomial(Pcg64& rng, uint64_t n, double p) {
  SAMPWH_CHECK(p >= 0.0 && p <= 1.0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - SampleBinomial(rng, n, 1.0 - p);
  if (static_cast<double>(n) * p < 30.0) {
    return BinomialInversion(rng, n, p);
  }
  return BinomialBtrs(rng, n, p);
}

uint64_t SampleGeometricSkip(Pcg64& rng, double p) {
  SAMPWH_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inversion: floor(log U / log(1 - p)) failures before the next success.
  const double u = rng.NextDoubleOpen();
  const double g = std::floor(std::log(u) / std::log1p(-p));
  // Guard against pathological rounding for p very close to 0.
  if (g < 0.0) return 0;
  if (g > 9.2e18) return UINT64_MAX;
  return static_cast<uint64_t>(g);
}

HypergeometricDistribution::HypergeometricDistribution(uint64_t n1,
                                                       uint64_t n2,
                                                       uint64_t k)
    : n1_(n1), n2_(n2), k_(k) {
  SAMPWH_CHECK(k <= n1 + n2);
  support_min_ = (k > n2) ? k - n2 : 0;
  support_max_ = std::min(k, n1);
}

uint64_t HypergeometricDistribution::Mode() const {
  // Mode = floor((k + 1)(n1 + 1) / (n1 + n2 + 2)), clamped to the support.
  const double m = std::floor(static_cast<double>(k_ + 1) *
                              static_cast<double>(n1_ + 1) /
                              static_cast<double>(n1_ + n2_ + 2));
  uint64_t mode = static_cast<uint64_t>(std::max(0.0, m));
  return std::clamp(mode, support_min_, support_max_);
}

double HypergeometricDistribution::Pmf(uint64_t l) const {
  if (l < support_min_ || l > support_max_) return 0.0;
  const double log_pmf = LogBinomialCoefficient(n1_, l) +
                         LogBinomialCoefficient(n2_, k_ - l) -
                         LogBinomialCoefficient(n1_ + n2_, k_);
  return std::exp(log_pmf);
}

std::vector<double> HypergeometricDistribution::PmfVector() const {
  // Anchor the Eq. (3) recurrence at the MODE rather than the support
  // minimum: for large populations P(support_min) underflows to zero in
  // double precision, and multiplying zero forward would wipe out the
  // whole vector. Relative to the mode, entries that underflow carry
  // negligible true mass; a final normalization restores sum == 1.
  const size_t size = static_cast<size_t>(support_max_ - support_min_ + 1);
  std::vector<double> pmf(size, 0.0);
  const uint64_t mode = Mode();
  const size_t mode_index = static_cast<size_t>(mode - support_min_);

  // Eq. (3): P(l+1) / P(l).
  auto ratio_up = [this](uint64_t l) {
    return static_cast<double>(k_ - l) * static_cast<double>(n1_ - l) /
           (static_cast<double>(l + 1) *
            static_cast<double>(n2_ - k_ + l + 1));
  };

  pmf[mode_index] = 1.0;
  double p = 1.0;
  for (uint64_t l = mode; l < support_max_; ++l) {
    p *= ratio_up(l);
    pmf[l - support_min_ + 1] = p;
  }
  p = 1.0;
  for (uint64_t l = mode; l > support_min_; --l) {
    p /= ratio_up(l - 1);
    pmf[l - support_min_ - 1] = p;
  }

  double total = 0.0;
  for (const double value : pmf) total += value;
  for (double& value : pmf) value /= total;
  return pmf;
}

uint64_t HypergeometricDistribution::Sample(Pcg64& rng) const {
  if (support_min_ == support_max_) return support_min_;
  const uint64_t mode = Mode();
  const double u = rng.NextDouble();

  double acc = Pmf(mode);
  if (u <= acc) return mode;

  // Zig-zag outward from the mode; the pmf is unimodal, so probability mass
  // is consumed in (nearly) decreasing order and the expected number of
  // steps is O(stddev).
  auto ratio_up = [this](uint64_t l) {
    // P(l+1) / P(l), Eq. (3).
    return static_cast<double>(k_ - l) * static_cast<double>(n1_ - l) /
           (static_cast<double>(l + 1) *
            static_cast<double>(n2_ - k_ + l + 1));
  };

  uint64_t left = mode;
  uint64_t right = mode;
  double pmf_left = acc;
  double pmf_right = acc;
  for (;;) {
    bool advanced = false;
    if (right < support_max_) {
      pmf_right *= ratio_up(right);
      ++right;
      acc += pmf_right;
      advanced = true;
      if (u <= acc) return right;
    }
    if (left > support_min_) {
      pmf_left /= ratio_up(left - 1);
      --left;
      acc += pmf_left;
      advanced = true;
      if (u <= acc) return left;
    }
    if (!advanced) {
      // u landed in the sliver of mass lost to floating-point rounding;
      // return the heavier boundary.
      return pmf_right >= pmf_left ? right : left;
    }
  }
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  SAMPWH_CHECK(n >= 1);
  SAMPWH_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t v = 1; v <= n; ++v) {
    total += std::exp(-s * std::log(static_cast<double>(v)));
    cdf_[v - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

uint64_t ZipfGenerator::Sample(Pcg64& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace sampwh
