#include "src/util/special_functions.h"

#include <array>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace sampwh {

namespace {

// Lanczos approximation, g = 7, 9 coefficients (Godfrey / Boost parameters).
constexpr double kLanczosG = 7.0;
constexpr std::array<double, 9> kLanczosCoefficients = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

constexpr double kLogSqrtTwoPi = 0.91893853320467274178;  // ln sqrt(2*pi)

// ln(n!) table for n <= 255.
constexpr int kLogFactorialTableSize = 256;

const std::array<double, kLogFactorialTableSize>& LogFactorialTable() {
  static const std::array<double, kLogFactorialTableSize> table = [] {
    std::array<double, kLogFactorialTableSize> t{};
    t[0] = 0.0;
    for (int i = 1; i < kLogFactorialTableSize; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}

// Continued fraction for the incomplete beta function (modified Lentz).
double IncompleteBetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 400;
  constexpr double kEpsilon = 1e-15;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;

  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;

  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    // Even step.
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

// Series expansion for P(a, x), valid for x < a + 1.
double LowerIncompleteGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x), valid for x >= a + 1 (modified Lentz).
double UpperIncompleteGammaContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - LogGamma(a));
}

}  // namespace

double LogGamma(double x) {
  SAMPWH_CHECK(x > 0.0);
  if (x < 0.5) {
    // Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x).
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kLanczosCoefficients[0];
  for (size_t i = 1; i < kLanczosCoefficients.size(); ++i) {
    sum += kLanczosCoefficients[i] / (z + static_cast<double>(i));
  }
  const double t = z + kLanczosG + 0.5;
  return kLogSqrtTwoPi + (z + 0.5) * std::log(t) - t + std::log(sum);
}

double LogFactorial(uint64_t n) {
  if (n < kLogFactorialTableSize) {
    return LogFactorialTable()[n];
  }
  return LogGamma(static_cast<double>(n) + 1.0);
}

double LogBinomialCoefficient(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  SAMPWH_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                           a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the symmetry relation to keep the continued fraction in its
  // fast-converging region.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * IncompleteBetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * IncompleteBetaContinuedFraction(b, a, 1.0 - x) / b;
}

double RegularizedLowerIncompleteGamma(double a, double x) {
  SAMPWH_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return LowerIncompleteGammaSeries(a, x);
  return 1.0 - UpperIncompleteGammaContinuedFraction(a, x);
}

double RegularizedUpperIncompleteGamma(double a, double x) {
  SAMPWH_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - LowerIncompleteGammaSeries(a, x);
  return UpperIncompleteGammaContinuedFraction(a, x);
}

double Erfc(double x) {
  if (x < 0.0) return 2.0 - Erfc(-x);
  return RegularizedUpperIncompleteGamma(0.5, x * x);
}

double Erf(double x) { return 1.0 - Erfc(x); }

double NormalCdf(double x) { return 0.5 * Erfc(-x / M_SQRT2); }

double NormalQuantile(double p) {
  SAMPWH_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on the central region and
  // both tails.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step against the forward CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double BinomialTailProbability(uint64_t n, double q, uint64_t m) {
  SAMPWH_CHECK(q >= 0.0 && q <= 1.0);
  if (m >= n) return 0.0;
  if (q <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  // P{X > m} = P{X >= m+1} = I_q(m+1, n-m).
  return RegularizedIncompleteBeta(static_cast<double>(m) + 1.0,
                                   static_cast<double>(n - m), q);
}

double ChiSquareCdf(double x, double df) {
  SAMPWH_CHECK(df > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedLowerIncompleteGamma(df / 2.0, x / 2.0);
}

double BinomialPmf(uint64_t n, double q, uint64_t k) {
  if (k > n) return 0.0;
  if (q <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (q >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         static_cast<double>(k) * std::log(q) +
                         static_cast<double>(n - k) * std::log1p(-q);
  return std::exp(log_pmf);
}

}  // namespace sampwh
