// A bounded lock-free single-producer single-consumer ring buffer — the
// hand-off primitive of the parallel ingestion layer. One ring exists per
// producer→shard pair, so neither side ever takes a mutex on the hot path:
// the producer owns the tail, the consumer owns the head, and each side
// keeps a cached copy of the other's index so the common case touches no
// cross-core cache line at all (the "fast SPSC" layout of Rigtorp /
// folly::ProducerConsumerQueue).
//
// Memory ordering: the producer publishes a slot with a release store of
// tail_, the consumer acquires it before reading the slot (and vice versa
// for reclamation through head_), which is the complete synchronization
// story — there are no other shared fields.

#ifndef SAMPWH_UTIL_SPSC_RING_H_
#define SAMPWH_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sampwh {

/// Exactly one thread may call the producer side (TryPush) and one thread
/// the consumer side (TryPop) at a time; the two may differ and may change
/// between externally synchronized phases (e.g. after a thread join).
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Moves `item` into the ring and returns true; returns false (leaving
  /// `item` untouched) when the ring is full.
  bool TryPush(T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Moves the oldest element into `*out` and returns true; false when the
  /// ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// True when the ring held no elements at some instant during the call.
  /// Exact when the caller is the only active side; otherwise a snapshot.
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Elements resident at some instant during the call (same caveat).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

 private:
  static constexpr size_t kCacheLine = 64;

  std::vector<T> slots_;
  size_t mask_ = 0;

  /// Consumer index: written by the consumer, acquired by the producer.
  alignas(kCacheLine) std::atomic<uint64_t> head_{0};
  /// Producer's cached view of head_ (producer-private).
  alignas(kCacheLine) uint64_t cached_head_ = 0;
  /// Producer index: written by the producer, acquired by the consumer.
  alignas(kCacheLine) std::atomic<uint64_t> tail_{0};
  /// Consumer's cached view of tail_ (consumer-private).
  alignas(kCacheLine) uint64_t cached_tail_ = 0;
};

}  // namespace sampwh

#endif  // SAMPWH_UTIL_SPSC_RING_H_
